// Serving-layer unit tests: wire framing, request schema, the power-table
// and instance LRU caches, shared-vs-private table bit-identity, and the
// per-request thread-budget reporting contract. End-to-end server tests
// (real subprocess + socket) live in test_serve_e2e.cpp.
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/pipeline.hpp"
#include "cli/spec.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "serve/client.hpp"
#include "serve/instance_store.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace detcol::serve {
namespace {

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(ServeFraming, RoundTripsPayloadBytes) {
  SocketPair sp;
  const std::string payload = "{\"op\":\"ping\",\"blob\":\"snow\"}";
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, payload, &error)) << error;
  std::string got;
  ASSERT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kOk) << error;
  EXPECT_EQ(got, payload);
}

TEST(ServeFraming, EmptyPayloadRoundTrips) {
  SocketPair sp;
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, "", &error)) << error;
  std::string got;
  ASSERT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kOk) << error;
  EXPECT_EQ(got, "");
}

TEST(ServeFraming, CleanCloseBeforeHeaderIsEof) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  std::string got, error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kEof);
}

TEST(ServeFraming, CloseMidHeaderIsTornFrameError) {
  SocketPair sp;
  const char partial[3] = {'D', 'C', 'S'};
  ASSERT_EQ(::send(sp.a, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(sp.a);
  sp.a = -1;
  std::string got, error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kError);
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
}

TEST(ServeFraming, CloseMidPayloadIsTornFrameError) {
  SocketPair sp;
  // Header promising 100 bytes, then only 3 delivered.
  unsigned char header[8] = {'D', 'C', 'S', '1', 100, 0, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ASSERT_EQ(::send(sp.a, "abc", 3, 0), 3);
  ::close(sp.a);
  sp.a = -1;
  std::string got, error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kError);
}

TEST(ServeFraming, BadMagicIsRejected) {
  SocketPair sp;
  unsigned char header[8] = {'X', 'C', 'S', '1', 0, 0, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  std::string got, error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kError);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(ServeFraming, OversizeLengthIsRejectedBeforeAllocation) {
  SocketPair sp;
  // Length field 0xFFFFFFFF — must be rejected from the header alone.
  unsigned char header[8] = {'D', 'C', 'S', '1', 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  std::string got, error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), FrameStatus::kError);
}

// ---------------------------------------------------------------------------
// Request schema.
// ---------------------------------------------------------------------------

TEST(ServeRequest, RenderParseRoundTripsEveryField) {
  Request req;
  req.op = "color";
  req.graph_spec = "--gen=gnp --n=64 --p=0.1 --seed=1";
  req.palette_spec = "--palette=lists --color-space=4096";
  req.algo = "lowspace";
  req.seed = 7;
  req.threads = 4;
  req.want_stats = true;
  req.timeout_seconds = 2.5;
  const Request back = parse_request(render_request(req));
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.graph_spec, req.graph_spec);
  EXPECT_EQ(back.palette_spec, req.palette_spec);
  EXPECT_EQ(back.algo, req.algo);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.threads, req.threads);
  EXPECT_EQ(back.want_stats, req.want_stats);
  EXPECT_DOUBLE_EQ(back.timeout_seconds, req.timeout_seconds);
}

TEST(ServeRequest, VerifyFieldsRoundTrip) {
  Request req;
  req.op = "verify";
  req.coloring_text = "# graph: --gen=ring --n=4\n0\n1\n0\n1\n";
  req.proper_only = true;
  const Request back = parse_request(render_request(req));
  EXPECT_EQ(back.coloring_text, req.coloring_text);
  EXPECT_TRUE(back.proper_only);
}

TEST(ServeRequest, DefaultsOmittedFromWireAndRestored) {
  Request req;
  req.op = "ping";
  const std::string wire = render_request(req);
  // Default-valued fields stay off the wire entirely.
  EXPECT_EQ(wire.find("threads"), std::string::npos) << wire;
  EXPECT_EQ(wire.find("seed"), std::string::npos) << wire;
  const Request back = parse_request(wire);
  EXPECT_EQ(back.threads, 1u);
  EXPECT_EQ(back.seed, 1u);
  EXPECT_EQ(back.algo, "reduce");
}

TEST(ServeRequest, MalformedPayloadsThrowUsageError) {
  EXPECT_THROW(parse_request("not json"), cli::UsageError);
  EXPECT_THROW(parse_request("{}"), cli::UsageError);          // no op
  EXPECT_THROW(parse_request("{\"op\":7}"), cli::UsageError);  // wrong type
  EXPECT_THROW(parse_request("{\"op\":\"color\",\"threads\":0}"),
               cli::UsageError);
  EXPECT_THROW(parse_request("{\"op\":\"color\",\"threads\":100000}"),
               cli::UsageError);
  EXPECT_THROW(parse_request("{\"op\":\"color\",\"seed\":\"x\"}"),
               cli::UsageError);
}

TEST(ServeRequest, ErrorFrameCarriesClassAndMessage) {
  const std::string payload = render_error("timeout", "deadline \"hit\"");
  const JsonValue doc = parse_json(payload, "error frame");
  const JsonValue* ok = doc.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_value);
  ASSERT_NE(doc.find("error_class"), nullptr);
  EXPECT_EQ(doc.find("error_class")->string_value, "timeout");
  EXPECT_EQ(doc.find("message")->string_value, "deadline \"hit\"");
}

TEST(ServeRequest, ParseEndpointForms) {
  const Endpoint unix_ep = parse_endpoint("/tmp/x.sock");
  EXPECT_FALSE(unix_ep.tcp);
  EXPECT_EQ(unix_ep.path_or_host, "/tmp/x.sock");
  const Endpoint tcp_ep = parse_endpoint("tcp:127.0.0.1:9000");
  EXPECT_TRUE(tcp_ep.tcp);
  EXPECT_EQ(tcp_ep.path_or_host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 9000);
  EXPECT_THROW(parse_endpoint(""), cli::UsageError);
  EXPECT_THROW(parse_endpoint("tcp:nohost"), cli::UsageError);
  EXPECT_THROW(parse_endpoint("tcp:127.0.0.1:notaport"), cli::UsageError);
  EXPECT_THROW(parse_endpoint("tcp:127.0.0.1:99999"), cli::UsageError);
}

// ---------------------------------------------------------------------------
// PowerTableStore.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> iota_points(std::uint64_t n) {
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(PowerTableStore, SecondAcquireSharesTheTable) {
  PowerTableStore store;
  const auto points = iota_points(50);
  const auto first = store.acquire(points, 4);
  const auto second = store.acquire(points, 4);
  EXPECT_EQ(first.get(), second.get());
  const auto c = store.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.resident_tables, 1u);
}

TEST(PowerTableStore, DifferentIndependenceIsADifferentTable) {
  PowerTableStore store;
  const auto points = iota_points(50);
  const auto a = store.acquire(points, 4);
  const auto b = store.acquire(points, 5);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(store.counters().misses, 2u);
}

TEST(PowerTableStore, ByteBoundEvictsLeastRecentlyUsed) {
  // Each table holds n*independence field elements; bound the store so only
  // one table of this shape fits at a time.
  PowerTableStore store(/*max_bytes=*/100 * 4 * 8 + 64);
  const auto points_a = iota_points(100);
  const auto points_b = iota_points(101);
  const auto a = store.acquire(points_a, 4);
  const auto b = store.acquire(points_b, 4);
  EXPECT_TRUE(b->matches(points_b, 4));
  EXPECT_GE(store.counters().evictions, 1u);
  // The evicted table is still alive through our shared_ptr, and
  // re-acquiring builds a fresh (but bit-identical) one.
  const auto a2 = store.acquire(points_a, 4);
  EXPECT_NE(a.get(), a2.get());
  ASSERT_EQ(a->num_points(), a2->num_points());
  EXPECT_TRUE(a2->matches(points_a, 4));
}

TEST(PowerTableStore, ConcurrentAcquiresConverge) {
  PowerTableStore store;
  const auto points = iota_points(200);
  std::vector<std::shared_ptr<const M61PowerTable>> got(8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back(
        [&store, &points, &got, i] { got[i] = store.acquire(points, 4); });
  }
  for (auto& t : threads) t.join();
  for (const auto& table : got) {
    ASSERT_NE(table, nullptr);
    EXPECT_TRUE(table->matches(points, 4));
  }
  // Racing builds may waste work but exactly one table stays resident.
  EXPECT_EQ(store.counters().resident_tables, 1u);
}

// ---------------------------------------------------------------------------
// InstanceStore.
// ---------------------------------------------------------------------------

TEST(InstanceStore, RawSpecAliasHitsAfterFirstBuild) {
  InstanceStore store(4);
  const auto first = store.acquire("--gen=gnp --n=60 --p=0.1", {});
  EXPECT_FALSE(first.hit);
  const auto second = store.acquire("--gen=gnp --n=60 --p=0.1", {});
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.instance.get(), second.instance.get());
}

TEST(InstanceStore, CanonicalSpellingResolvesToTheSameInstance) {
  InstanceStore store(4);
  const auto raw = store.acquire("--n=60 --p=0.1", {});  // gen/seed defaulted
  // The canonical spec build_graph produced for it is also registered.
  const auto canonical = store.acquire(raw.instance->canonical_spec(), {});
  EXPECT_TRUE(canonical.hit);
  EXPECT_EQ(raw.instance.get(), canonical.instance.get());
  EXPECT_EQ(store.counters().resident, 1u);
}

TEST(InstanceStore, ChecksumDedupsDifferentSpecsOfTheSameGraph) {
  InstanceStore store(4);
  // A 3-node ring and K3 are the same labeled graph from different specs.
  const auto ring = store.acquire("--gen=ring --n=3", {});
  const auto complete = store.acquire("--gen=complete --n=3", {});
  EXPECT_FALSE(ring.hit);
  EXPECT_TRUE(complete.hit);
  EXPECT_EQ(ring.instance.get(), complete.instance.get());
  EXPECT_EQ(store.counters().resident, 1u);
}

TEST(InstanceStore, LruEvictsTheOldestInstance) {
  InstanceStore store(2);
  store.acquire("--gen=ring --n=10", {});
  store.acquire("--gen=ring --n=11", {});
  store.acquire("--gen=ring --n=10", {});  // touch: 10 is now most recent
  store.acquire("--gen=ring --n=12", {});  // evicts 11
  EXPECT_EQ(store.counters().evictions, 1u);
  EXPECT_EQ(store.counters().resident, 2u);
  EXPECT_TRUE(store.acquire("--gen=ring --n=10", {}).hit);
  EXPECT_FALSE(store.acquire("--gen=ring --n=11", {}).hit);  // rebuilt
}

TEST(InstanceStore, EvictionIsSafeUnderAnOutstandingHandle) {
  InstanceStore store(1);
  const auto held = store.acquire("--gen=ring --n=20", {});
  store.acquire("--gen=ring --n=21", {});  // evicts n=20 from residency
  // The held instance stays fully usable.
  EXPECT_EQ(held.instance->graph().num_nodes(), 20u);
  const auto palettes = held.instance->palettes("", nullptr);
  EXPECT_EQ(palettes->num_nodes(), 20u);
}

TEST(InstanceStore, MalformedSpecThrowsWithoutPoisoningTheStore) {
  InstanceStore store(4);
  EXPECT_THROW(store.acquire("--gen=nosuch --n=10", {}), cli::UsageError);
  EXPECT_THROW(store.acquire("--n=banana", {}), cli::UsageError);
  const auto ok = store.acquire("--gen=ring --n=8", {});
  EXPECT_EQ(ok.instance->graph().num_nodes(), 8u);
  EXPECT_EQ(store.counters().resident, 1u);
}

TEST(ServeInstance, PaletteCacheAliasesRawSpellings) {
  InstanceStore store(2);
  const auto acq = store.acquire("--gen=gnp --n=40 --p=0.2", {});
  std::string canon_a, canon_b;
  const auto a = acq.instance->palettes("", &canon_a);
  const auto b = acq.instance->palettes("--palette=delta1", &canon_b);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(canon_a, canon_b);
  const auto c = acq.instance->palettes(
      "--palette=lists --color-space=4096 --palette-seed=3", nullptr);
  EXPECT_NE(a.get(), c.get());
}

// ---------------------------------------------------------------------------
// Shared tables and budgets never change bytes.
// ---------------------------------------------------------------------------

TEST(ServeDeterminism, SharedPowerTablesMatchPrivateOnes) {
  const cli::GraphSource src = cli::build_graph(
      cli::parse_spec("--gen=gnp --n=300 --p=0.05 --seed=3"),
      /*allow_algo_seed=*/false);
  const cli::PaletteSource pal =
      cli::build_palettes(cli::parse_spec(""), src.graph);
  InstanceStore store(2);
  const auto inst = store.acquire("--gen=gnp --n=300 --p=0.05 --seed=3", {});
  for (const char* algo : {"reduce", "lowspace", "mis"}) {
    cli::PipelineRun private_run = cli::run_pipeline(
        algo, src.graph, pal.palettes, {}, 1, /*want_stats=*/false, nullptr);
    cli::PipelineRun shared_run = cli::run_pipeline(
        algo, src.graph, pal.palettes, {}, 1, /*want_stats=*/false,
        &inst.instance->tables());
    EXPECT_EQ(private_run.coloring.color, shared_run.coloring.color)
        << "algo=" << algo;
    EXPECT_EQ(private_run.rounds, shared_run.rounds) << "algo=" << algo;
  }
  // The shared runs actually exercised the store.
  const auto c = inst.instance->tables().counters();
  EXPECT_GT(c.misses + c.hits, 0u);
}

TEST(ServeDeterminism, RepeatRunsThroughTheStoreHitTables) {
  const cli::GraphSource src = cli::build_graph(
      cli::parse_spec("--gen=gnp --n=300 --p=0.05 --seed=3"),
      /*allow_algo_seed=*/false);
  const cli::PaletteSource pal =
      cli::build_palettes(cli::parse_spec(""), src.graph);
  InstanceStore store(2);
  const auto inst = store.acquire("--gen=gnp --n=300 --p=0.05 --seed=3", {});
  cli::PipelineRun first =
      cli::run_pipeline("reduce", src.graph, pal.palettes, {}, 1, false,
                        &inst.instance->tables());
  const std::uint64_t misses_after_first =
      inst.instance->tables().counters().misses;
  cli::PipelineRun second =
      cli::run_pipeline("reduce", src.graph, pal.palettes, {}, 1, false,
                        &inst.instance->tables());
  EXPECT_EQ(first.coloring.color, second.coloring.color);
  // The warm run built nothing new: every table came from the store.
  EXPECT_EQ(inst.instance->tables().counters().misses, misses_after_first);
  EXPECT_GT(inst.instance->tables().counters().hits, 0u);
}

TEST(ServeBudget, BudgetIsReportedVerbatimEvenAbovePoolWidth) {
  // A server with few workers must still *report* the request's thread
  // budget (the stats document records it), while execution is capped by
  // the pool — unobservable by determinism.
  const ExecHolder holder = make_exec_holder(2);
  EXPECT_EQ(holder.exec.num_threads(), 2u);
  const ExecContext over = holder.exec.with_budget(7);
  EXPECT_EQ(over.num_threads(), 7u);
  EXPECT_FALSE(over.budgeted());  // no narrowing: budget >= pool width
  const ExecContext under = holder.exec.with_budget(1);
  EXPECT_EQ(under.num_threads(), 1u);
  EXPECT_TRUE(under.budgeted());
}

}  // namespace
}  // namespace detcol::serve
