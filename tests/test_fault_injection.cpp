// End-to-end fault-injection tests: drive the real detcol binary (path
// injected by CMake as DETCOL_BIN) through injected write failures,
// allocation failures, per-cell timeouts and mid-run kills, and assert the
// crash-safety contract — correct exit codes, no torn or leftover .tmp
// files, structured error cells, and byte-identical reports after a
// kill + --resume. The failpoint/atomic-file unit tests live in
// test_failpoint.cpp.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

std::string shq(const std::string& s) { return "'" + s + "'"; }

/// Runs `detcol <args>` through the shell; returns the process exit code
/// (or 128+signal for a signalled child — std::_Exit(137) from the kill
/// action arrives as a normal exit with status 137).
int run_detcol(const std::string& args) {
  const std::string cmd = shq(DETCOL_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "system() failed for: " << cmd;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::path(::testing::TempDir()) / "detcol_fi" / info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  ASSERT_TRUE(os.good()) << path;
}

/// No stray atomic-writer temp file anywhere in the test directory.
void expect_no_tmp_files(const fs::path& dir) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

/// The spec used by the suite tests: two graphs (one per-generator), three
/// pipelines, two thread counts; `timing off` so full reports are
/// byte-identical across runs.
std::string matrix_spec() {
  return
      "graph small --gen=gnp --n=80 --p=0.08 --seed=3\n"
      "graph ring --gen=ring --n=64\n"
      "pipelines reduce greedy trial\n"
      "threads 1 2\n"
      "timing off\n";
}

// ---------------------------------------------------------------------------
// Injected write failures: the target is never torn.
// ---------------------------------------------------------------------------

TEST(FaultInjection, ConvertEnospcLeavesNoArtifactAndNoTmp) {
  const fs::path dir = test_dir();
  const fs::path out = dir / "g.dcg";
  for (const char* site :
       {"atomic.write.body@1", "atomic.fsync@1", "atomic.rename@1",
        "dcg.write.body@1"}) {
    EXPECT_EQ(run_detcol("convert --gen=gnp --n=64 --seed=1 --quiet --out=" +
                         shq(out.string()) + " --failpoints=" + site),
              1)
        << site;
    EXPECT_FALSE(fs::exists(out)) << site;
    expect_no_tmp_files(dir);
  }
  // Same invocation unarmed succeeds and leaves a clean directory.
  EXPECT_EQ(run_detcol("convert --gen=gnp --n=64 --seed=1 --quiet --out=" +
                       shq(out.string())),
            0);
  EXPECT_TRUE(fs::exists(out));
  expect_no_tmp_files(dir);
}

TEST(FaultInjection, ConvertEnospcPreservesPreviousFileContent) {
  const fs::path dir = test_dir();
  const fs::path out = dir / "g.edges";
  ASSERT_EQ(run_detcol("convert --gen=ring --n=16 --quiet --out=" +
                       shq(out.string())),
            0);
  const std::string before = read_file(out);
  EXPECT_EQ(run_detcol("convert --gen=ring --n=32 --quiet --out=" +
                       shq(out.string()) + " --failpoints=atomic.rename@1"),
            1);
  EXPECT_EQ(read_file(out), before);  // old content intact, not torn
  expect_no_tmp_files(dir);
}

TEST(FaultInjection, ColoringOutputWriteFailureIsExitOneNoTorn) {
  const fs::path dir = test_dir();
  const fs::path out = dir / "run.colors";
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet --out=" +
                       shq(out.string()) + " --failpoints=out.write@1"),
            1);
  EXPECT_FALSE(fs::exists(out));
  expect_no_tmp_files(dir);
}

// ---------------------------------------------------------------------------
// Injected pipeline failures: taxonomy-correct exit codes.
// ---------------------------------------------------------------------------

TEST(FaultInjection, ColorInjectedOomAndCheckExitOne) {
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null "
                       "--failpoints=color_reduce.recurse@1:oom"),
            1);
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null "
                       "--failpoints=color_reduce.recurse@1:check"),
            1);
  EXPECT_EQ(run_detcol("color --algo=lowspace --gen=gnp --n=60 --seed=1 "
                       "--quiet --out=/dev/null "
                       "--failpoints=lowspace.recurse@1:check"),
            1);
}

TEST(FaultInjection, EnvVarArmsAndFlagWins) {
  // Env arms the failpoint ...
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null "
                       "--failpoints=color_reduce.recurse@1:check"),
            1);
  const std::string env_cmd =
      "DETCOL_FAILPOINTS=color_reduce.recurse@1:check " + shq(DETCOL_BIN) +
      " color --gen=gnp --n=60 --seed=1 --quiet --out=/dev/null";
  EXPECT_EQ(WEXITSTATUS(std::system(env_cmd.c_str())), 1);
  // ... and an explicit (harmless) flag overrides the env spec.
  const std::string win_cmd =
      "DETCOL_FAILPOINTS=color_reduce.recurse@1:check " + shq(DETCOL_BIN) +
      " color --gen=gnp --n=60 --seed=1 --quiet --out=/dev/null "
      "--failpoints=unused.site@1";
  EXPECT_EQ(WEXITSTATUS(std::system(win_cmd.c_str())), 0);
}

TEST(FaultInjection, MalformedFailpointSpecIsUsageError) {
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null --failpoints=bogus"),
            2);
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null --failpoints=x@0"),
            2);
  EXPECT_EQ(run_detcol("color --gen=gnp --n=60 --seed=1 --quiet "
                       "--out=/dev/null --failpoints=x@1:frob"),
            2);
}

// ---------------------------------------------------------------------------
// Suite: per-cell isolation, timeouts, corrupt graphs.
// ---------------------------------------------------------------------------

/// Parses the report and returns its cells as (status, error_class) pairs in
/// matrix order.
std::vector<std::pair<std::string, std::string>> cell_statuses(
    const std::string& report) {
  const JsonValue doc = parse_json(report, "report");
  std::vector<std::pair<std::string, std::string>> out;
  for (const JsonValue& cell : doc.find("cells")->items) {
    const JsonValue* cls = cell.find("error_class");
    out.emplace_back(cell.find("status")->string_value,
                     cls != nullptr ? cls->string_value : "");
  }
  return out;
}

TEST(FaultInjection, SuiteCellFailureIsIsolated) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  const fs::path report = dir / "r.json";
  write_file(spec, matrix_spec());
  // Cell 2 of the 14-cell matrix fails with an injected CheckError; every
  // other cell still runs and verifies.
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=" + shq(report.string()) +
                       " --failpoints=suite.cell@2:check"),
            1);
  const auto cells = cell_statuses(read_file(report));
  ASSERT_EQ(cells.size(), 10u);  // 2 graphs x (reduce,trial x 2 + greedy x 1)
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 1) {
      EXPECT_EQ(cells[i].first, "error");
      EXPECT_EQ(cells[i].second, "check");
    } else {
      EXPECT_EQ(cells[i].first, "ok") << "cell " << i;
    }
  }
  expect_no_tmp_files(dir);
}

TEST(FaultInjection, SuiteInjectedTimeoutCell) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  const fs::path report = dir / "r.json";
  write_file(spec, matrix_spec());
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=" + shq(report.string()) +
                       " --failpoints=suite.cell@3:timeout"),
            1);
  const auto cells = cell_statuses(read_file(report));
  ASSERT_EQ(cells.size(), 10u);
  EXPECT_EQ(cells[2].first, "timeout");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 2) {
      EXPECT_EQ(cells[i].first, "ok") << "cell " << i;
    }
  }
}

TEST(FaultInjection, SuiteRealDeadlineExpiresCell) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "t.spec";
  const fs::path report = dir / "r.json";
  // A budget far below any real run: the first recursion-entry poll fires.
  write_file(spec,
             "graph g --gen=gnp --n=200 --p=0.05 --seed=1\n"
             "pipelines reduce\n"
             "threads 1\n"
             "timeout_seconds 0.000001\n"
             "timing off\n");
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=" + shq(report.string())),
            1);
  const JsonValue doc = parse_json(read_file(report), "report");
  ASSERT_EQ(doc.find("cells")->items.size(), 1u);
  EXPECT_EQ(doc.find("cells")->items[0].find("status")->string_value,
            "timeout");
  EXPECT_EQ(doc.find("timeout_seconds")->number, 0.000001);
}

TEST(FaultInjection, SuiteCorruptGraphMarksOnlyItsCells) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  const fs::path report = dir / "r.json";
  const fs::path corrupt = dir / "corrupt.dcg";
  write_file(corrupt, "this is not a dcg file");
  write_file(spec,
             "graph good --gen=ring --n=32\n"
             "graph bad --input=" + corrupt.string() + "\n"
             "graph missing --input=" + (dir / "nope.graph").string() + "\n"
             "pipelines greedy\n"
             "timing off\n");
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=" + shq(report.string())),
            1);
  const std::string text = read_file(report);
  const auto cells = cell_statuses(text);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].first, "ok");
  EXPECT_EQ(cells[1], (std::pair<std::string, std::string>{"error", "load"}));
  EXPECT_EQ(cells[2], (std::pair<std::string, std::string>{"error", "load"}));
  // The failed graphs' header rows record the load error.
  const JsonValue doc = parse_json(text, "report");
  const auto& graphs = doc.find("graphs")->items;
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_EQ(graphs[0].find("load_error"), nullptr);
  EXPECT_NE(graphs[1].find("load_error"), nullptr);
  EXPECT_NE(graphs[2].find("load_error"), nullptr);
}

// ---------------------------------------------------------------------------
// Crash-safety: kill between checkpoints, resume, byte-identical reports.
// ---------------------------------------------------------------------------

TEST(FaultInjection, SuiteResumeAfterKillIsByteIdentical) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  write_file(spec, matrix_spec());
  const std::string base = "suite --spec=" + shq(spec.string()) + " --quiet ";

  const fs::path clean = dir / "clean.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(clean.string())), 0);

  // Kill the run right after the 3rd durable checkpoint (simulated SIGKILL:
  // no unwinding, no flushes).
  const fs::path partial = dir / "partial.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(partial.string()) +
                       " --failpoints=suite.checkpoint@3:kill"),
            137);
  expect_no_tmp_files(dir);
  // The partial report is well-formed and holds exactly 3 cells.
  const JsonValue pdoc = parse_json(read_file(partial), "partial");
  ASSERT_EQ(pdoc.find("cells")->items.size(), 3u);

  // Resume: skips the 3 recorded cells, runs the rest, and the final report
  // is byte-identical to the uninterrupted run's.
  const fs::path resumed = dir / "resumed.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(resumed.string()) +
                       " --resume=" + shq(partial.string())),
            0);
  EXPECT_EQ(read_file(resumed), read_file(clean));
  expect_no_tmp_files(dir);
}

TEST(FaultInjection, SuiteResumeAfterEnospcCheckpoint) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  write_file(spec, matrix_spec());
  const std::string base = "suite --spec=" + shq(spec.string()) + " --quiet ";

  const fs::path clean = dir / "clean.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(clean.string())), 0);

  // Disk fills during the 4th checkpoint write: the run aborts with an I/O
  // error, but the 3rd checkpoint survives untorn.
  const fs::path report = dir / "r.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(report.string()) +
                       " --failpoints=atomic.write.body@4"),
            1);
  expect_no_tmp_files(dir);
  const JsonValue pdoc = parse_json(read_file(report), "partial");
  ASSERT_EQ(pdoc.find("cells")->items.size(), 3u);

  // Resuming over the same output path completes the matrix.
  ASSERT_EQ(run_detcol(base + "--out=" + shq(report.string()) +
                       " --resume=" + shq(report.string())),
            0);
  EXPECT_EQ(read_file(report), read_file(clean));
}

TEST(FaultInjection, AcceptanceMatrixWithInjectedTimeoutAndCheck) {
  // The ISSUE's acceptance scenario: one corrupt graph, one injected
  // timeout, one injected CheckError — exit 1, well-formed report,
  // error/timeout entries for exactly those cells, and every other cell
  // byte-identical to the clean run's.
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  const fs::path corrupt = dir / "corrupt.dcg";
  write_file(corrupt, "DCG1 garbage");
  write_file(spec, matrix_spec() +
                       "graph corrupt --input=" + corrupt.string() + "\n");
  const std::string base = "suite --spec=" + shq(spec.string()) + " --quiet ";

  const fs::path clean = dir / "clean.json";
  // Clean run: the corrupt graph still fails (exit 1) but everything else
  // verifies.
  ASSERT_EQ(run_detcol(base + "--out=" + shq(clean.string())), 1);
  const fs::path faulty = dir / "faulty.json";
  ASSERT_EQ(run_detcol(base + "--out=" + shq(faulty.string()) +
                       " --failpoints=suite.cell@2:timeout,suite.cell@4:check"),
            1);

  const JsonValue cdoc = parse_json(read_file(clean), "clean");
  const std::string ftext = read_file(faulty);
  const JsonValue fdoc = parse_json(ftext, "faulty");
  const auto& ccells = cdoc.find("cells")->items;
  const auto& fcells = fdoc.find("cells")->items;
  ASSERT_EQ(ccells.size(), fcells.size());
  ASSERT_EQ(fcells.size(), 15u);  // 10 matrix + 5 corrupt-graph cells
  const std::string cleantext = read_file(clean);
  for (std::size_t i = 0; i < fcells.size(); ++i) {
    const std::string fstatus = fcells[i].find("status")->string_value;
    if (i == 1) {
      EXPECT_EQ(fstatus, "timeout");
    } else if (i == 3) {
      EXPECT_EQ(fstatus, "error");
      EXPECT_EQ(fcells[i].find("error_class")->string_value, "check");
    } else {
      // Identical raw bytes to the clean run's cell.
      const auto raw = [](const std::string& t, const JsonValue& v) {
        return t.substr(v.raw_begin, v.raw_end - v.raw_begin);
      };
      EXPECT_EQ(raw(ftext, fcells[i]), raw(cleantext, ccells[i]))
          << "cell " << i;
    }
  }
}

TEST(FaultInjection, SuiteResumeRejectsNonReportJson) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "m.spec";
  const fs::path bogus = dir / "bogus.json";
  write_file(spec, matrix_spec());
  write_file(bogus, "{\"not_a_report\":true}");
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=/dev/null --resume=" + shq(bogus.string())),
            1);
  write_file(bogus, "{torn");
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet "
                       "--out=/dev/null --resume=" + shq(bogus.string())),
            1);
}

}  // namespace
}  // namespace detcol
