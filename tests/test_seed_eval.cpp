// Equivalence suite for the batched seed-evaluation engine (PR: incremental
// batched seed evaluation). Three layers of guarantees:
//
//  1. BatchKWiseEval computes the exact field elements / range values of
//     KWiseHash for arbitrary (including incremental) coefficient loads.
//  2. SeedEvalEngine::evaluate() reproduces classify() bit for bit — every
//     Classification field — on uniform and non-uniform palette instances.
//  3. select_seed() picks bit-identical SeedBits whichever cost backend
//     drives it (naive classify vs engine), for all three strategies; and
//     the engine-backed pipeline reproduces golden fingerprints captured
//     from the pre-engine implementation (seed hashes, end-to-end coloring
//     hashes and round counts).
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <optional>

#include "core/color_reduce.hpp"
#include "core/partition.hpp"
#include "core/seed_eval.hpp"
#include "core/stats_export.hpp"
#include "exec/exec.hpp"
#include "graph/generators.hpp"
#include "hashing/batch_eval.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
  return h;
}

std::uint64_t seed_hash(const SeedBits& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto w : s.words()) h = fnv(h, w);
  return h;
}

Instance root_instance(const Graph& g) {
  Instance inst;
  inst.orig.resize(g.num_nodes());
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = g;
  inst.ell = std::max(1.0, static_cast<double>(g.max_degree()));
  return inst;
}

void expect_classifications_equal(const Classification& a,
                                  const Classification& b) {
  EXPECT_EQ(a.num_bins, b.num_bins);
  EXPECT_EQ(a.bin_of, b.bin_of);
  EXPECT_EQ(a.deg_in_bin, b.deg_in_bin);
  EXPECT_EQ(a.pal_in_bin, b.pal_in_bin);
  EXPECT_EQ(a.num_bad_nodes, b.num_bad_nodes);
  EXPECT_EQ(a.num_bad_bins, b.num_bad_bins);
  EXPECT_EQ(a.reclassified, b.reclassified);
  EXPECT_EQ(a.bad_graph_words, b.bad_graph_words);
  EXPECT_EQ(a.bin_sizes, b.bin_sizes);
  EXPECT_EQ(a.cost_q, b.cost_q);        // bit-identical doubles, not approx
  EXPECT_EQ(a.cost_size, b.cost_size);
}

// --- Layer 1: BatchKWiseEval vs KWiseHash -------------------------------

TEST(BatchEval, MatchesNaiveOnRandomLoads) {
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> points(257);
  for (auto& p : points) p = rng.next();     // arbitrary 64-bit, incl. >= p
  points[0] = 0;
  points[1] = kMersenne61;                   // reduces to 0
  points[2] = kMersenne61 - 1;
  const unsigned c = 4;
  const std::uint64_t range = 7;
  BatchKWiseEval batch(points, c, range);
  std::vector<std::uint64_t> words(c, 0);
  for (int round = 0; round < 20; ++round) {
    for (auto& w : words) w = rng.next();
    batch.load(words);
    const KWiseHash naive(words, range);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(batch.field_value(i), naive.field_eval(points[i]))
          << "round " << round << " point " << i;
      ASSERT_EQ(batch.bin(i), naive(points[i]));
    }
  }
}

TEST(BatchEval, IncrementalSingleCoefficientChanges) {
  // The MCE access pattern: consecutive loads differ in one word.
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> points(100);
  for (std::size_t i = 0; i < points.size(); ++i) points[i] = i * 31 + 5;
  const unsigned c = 4;
  BatchKWiseEval batch(points, c, 11);
  std::vector<std::uint64_t> words(c, 0);
  for (int step = 0; step < 64; ++step) {
    words[step % c] = rng.next();
    batch.load(words);
    const KWiseHash naive(words, 11);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(batch.field_value(i), naive.field_eval(points[i]));
    }
  }
}

TEST(BatchEval, DistinctWordsSameResidue) {
  // w and w + p are distinct 64-bit words with equal residues; the diff must
  // recognize the no-op (delta 0) and keep values exact.
  std::vector<std::uint64_t> points = {3, 5, 1000000007ULL};
  BatchKWiseEval batch(points, 2, 5);
  std::vector<std::uint64_t> words = {17, 99};
  batch.load(words);
  const std::vector<std::uint64_t> before = {
      batch.field_value(0), batch.field_value(1), batch.field_value(2)};
  words[0] = 17 + kMersenne61;  // same residue, different word
  batch.load(words);
  EXPECT_EQ(batch.field_value(0), before[0]);
  EXPECT_EQ(batch.field_value(1), before[1]);
  EXPECT_EQ(batch.field_value(2), before[2]);
  const KWiseHash naive(words, 5);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batch.field_value(i), naive.field_eval(points[i]));
  }
}

// --- Layer 2: SeedEvalEngine vs classify() ------------------------------

void check_engine_matches_classify(const Instance& inst, const PaletteSet& pal,
                                   std::uint64_t n_orig,
                                   const PartitionParams& params,
                                   unsigned num_seeds) {
  const unsigned c = params.independence;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const std::uint64_t b = num_bins(inst.ell, params);
  SeedEvalEngine engine(inst, pal, n_orig, params);
  ClassifyScratch scratch;
  for (unsigned i = 0; i < num_seeds; ++i) {
    const SeedBits s = SeedBits::expand(bits, 0xE0A1, i);
    auto [h1, h2] = seed_hash_pair(s, c, b);
    const Classification naive = classify(inst, pal, h1, h2, n_orig, params);
    // The workspace overload must agree with the allocating one...
    const Classification& scratched =
        classify(inst, pal, h1, h2, n_orig, params, scratch);
    expect_classifications_equal(naive, scratched);
    // ...and so must the batched engine.
    expect_classifications_equal(naive, engine.evaluate(s));
  }
}

TEST(SeedEvalEngine, MatchesClassifyUniformPalettes) {
  const Graph g = gen_random_regular(512, 24, 3);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  check_engine_matches_classify(inst, pal, g.num_nodes(), PartitionParams{},
                                24);
}

TEST(SeedEvalEngine, MatchesClassifyListPalettes) {
  // deg+1 lists: palettes differ per node, so the engine's partial-palette
  // index path (not the full-universe fast path) is exercised.
  const Graph g = gen_gnp(300, 0.06, 9);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 4000, 17);
  check_engine_matches_classify(inst, pal, g.num_nodes(), PartitionParams{},
                                24);
}

TEST(SeedEvalEngine, MatchesClassifyOnSubinstance) {
  // Non-identity orig mapping, as in recursive partition calls: local ids
  // differ from original ids and only a subset of nodes is present.
  const Graph g = gen_gnp(400, 0.05, 21);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 400; v += 3) nodes.push_back(v);
  Instance inst;
  inst.graph = induced_subgraph(g, nodes);
  inst.orig = nodes;
  inst.ell = 16.0;
  const PaletteSet pal = PaletteSet::random_lists(g, 5000, 23);
  check_engine_matches_classify(inst, pal, g.num_nodes(), PartitionParams{},
                                16);
}

TEST(SeedEvalEngine, MceCandidateStreamStaysExact) {
  // Drive the engine through the exact evaluation order of the sampled-MCE
  // strategy (chunk flips + suffix refills) and spot-check against naive.
  const Graph g = gen_random_regular(256, 16, 5);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const unsigned c = params.independence;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const std::uint64_t b = num_bins(inst.ell, params);
  SeedEvalEngine engine(inst, pal, g.num_nodes(), params);
  SeedBits prefix(bits);
  SeedBits completion(bits);
  unsigned checked = 0;
  for (unsigned fixed = 0; fixed < 24; fixed += 8) {
    for (std::uint64_t v = 0; v < 16; ++v) {
      prefix.set_bits(fixed, 8, v);
      for (unsigned s = 0; s < 2; ++s) {
        completion = prefix;
        completion.fill_suffix(fixed + 8, 0xABCD ^ fixed, s);
        const double got = engine.cost_size(completion);
        auto [h1, h2] = seed_hash_pair(completion, c, b);
        const double want =
            classify(inst, pal, h1, h2, g.num_nodes(), params).cost_size;
        ASSERT_EQ(got, want) << "fixed=" << fixed << " v=" << v << " s=" << s;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 96u);
}

// --- Layer 3: select_seed backend equivalence + golden fingerprints ------

// Owning storage (SeedCostFn itself is a non-owning FunctionRef, so a
// stored backend must keep its callable alive; the std::function lvalues
// convert to SeedCostFn at each select_seed call).
using StoredCostFn = std::function<double(const SeedBits&)>;

struct CostBackends {
  StoredCostFn naive;
  StoredCostFn engine;
};

CostBackends make_backends(const Instance& inst, const PaletteSet& pal,
                           std::uint64_t n_orig, const PartitionParams& params,
                           SeedEvalEngine& engine) {
  const unsigned c = params.independence;
  const std::uint64_t b = num_bins(inst.ell, params);
  CostBackends out;
  out.naive = [&inst, &pal, n_orig, &params, c, b](const SeedBits& s) {
    auto [h1, h2] = seed_hash_pair(s, c, b);
    return classify(inst, pal, h1, h2, n_orig, params).cost_size;
  };
  out.engine = [&engine](const SeedBits& s) { return engine.cost_size(s); };
  return out;
}

TEST(SelectSeedEquivalence, ScanAndSampledMcePickIdenticalSeeds) {
  const Graph g = gen_random_regular(256, 16, 5);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const unsigned bits = 2 * KWiseHash::seed_bits(params.independence);
  const double threshold =
      params.g0_budget * static_cast<double>(g.num_nodes());
  SeedEvalEngine engine(inst, pal, g.num_nodes(), params);
  const auto backends =
      make_backends(inst, pal, g.num_nodes(), params, engine);
  for (const auto strat :
       {SeedStrategy::kThresholdScan, SeedStrategy::kMceSampled}) {
    SeedSelectConfig cfg;
    cfg.strategy = strat;
    const auto a = select_seed(bits, backends.naive, threshold, cfg, 0x51);
    const auto b = select_seed(bits, backends.engine, threshold, cfg, 0x51);
    EXPECT_EQ(a.seed, b.seed) << "strategy " << static_cast<int>(strat);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.met_threshold, b.met_threshold);
  }
}

TEST(SelectSeedEquivalence, ExactMcePicksIdenticalSeeds) {
  // kMceExact enumerates the full completion space, so it only runs on short
  // seeds; expand a 12-bit meta-seed into the full 2c-word hash seed, which
  // drives both backends through real classifications.
  const Graph g = gen_random_regular(128, 12, 13);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const unsigned bits = 2 * KWiseHash::seed_bits(params.independence);
  SeedEvalEngine engine(inst, pal, g.num_nodes(), params);
  const auto backends =
      make_backends(inst, pal, g.num_nodes(), params, engine);
  const auto wrap = [bits](const StoredCostFn& inner) {
    return [bits, &inner](const SeedBits& meta) {
      return inner(SeedBits::expand(bits, 0x5EED, meta.get_bits(0, 12)));
    };
  };
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceExact;
  cfg.chunk_bits = 6;
  const auto naive_meta = wrap(backends.naive);
  const auto engine_meta = wrap(backends.engine);
  const auto a = select_seed(12, naive_meta, 0.0, cfg, 0);
  const auto b = select_seed(12, engine_meta, 0.0, cfg, 0);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.trajectory, b.trajectory);
}

// Golden fingerprints captured from the pre-engine implementation (naive
// classify-driven seed search) at the seed commit of this PR. The engine
// swap must reproduce them bit for bit.
TEST(GoldenSeeds, ThresholdScanReproducesPreEngineSeeds) {
  struct Case {
    Graph g;
    std::uint64_t want_hash;
  };
  // All three scanned instances accepted a seed from the same deterministic
  // enumeration (salt 0xBEEF), hence equal hashes with different costs.
  std::vector<Case> cases;
  cases.push_back({gen_random_regular(1024, 32, 7), 15904728131483325468ULL});
  cases.push_back({gen_gnp(512, 0.08, 3), 15904728131483325468ULL});
  cases.push_back({gen_power_law(800, 2.5, 24.0, 5), 15904728131483325468ULL});
  for (const auto& cs : cases) {
    const Instance inst = root_instance(cs.g);
    const PaletteSet pal = PaletteSet::delta_plus_one(cs.g);
    PartitionParams params;
    const unsigned bits = 2 * KWiseHash::seed_bits(params.independence);
    const double threshold =
        params.g0_budget * static_cast<double>(cs.g.num_nodes());
    SeedEvalEngine engine(inst, pal, cs.g.num_nodes(), params);
    SeedSelectConfig cfg;  // kThresholdScan
    const auto sel = select_seed(
        bits, [&engine](const SeedBits& s) { return engine.cost_size(s); },
        threshold, cfg, 0xBEEF);
    EXPECT_EQ(seed_hash(sel.seed), cs.want_hash);
  }
}

TEST(GoldenSeeds, SampledMceReproducesPreEngineSeed) {
  const Graph g = gen_random_regular(1024, 32, 7);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const unsigned bits = 2 * KWiseHash::seed_bits(params.independence);
  const double threshold =
      params.g0_budget * static_cast<double>(g.num_nodes());
  SeedEvalEngine engine(inst, pal, g.num_nodes(), params);
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceSampled;
  const auto sel = select_seed(
      bits, [&engine](const SeedBits& s) { return engine.cost_size(s); },
      threshold, cfg, 0xBEEF);
  EXPECT_EQ(seed_hash(sel.seed), 10795400587065833925ULL);
  EXPECT_EQ(sel.cost, 33.0);
  EXPECT_EQ(sel.evaluations, 64769u);
}

TEST(GoldenSeeds, EndToEndColoringsUnchanged) {
  struct Case {
    Graph g;
    std::uint64_t want_colorhash;
    std::uint64_t want_rounds;
    std::uint64_t want_evals;
    std::uint64_t want_partitions;
  };
  std::vector<Case> cases;
  cases.push_back(
      {gen_random_regular(1024, 32, 7), 5179980065975731409ULL, 856, 6, 6});
  cases.push_back({gen_gnp(512, 0.08, 3), 7636738355350604075ULL, 844, 6, 6});
  cases.push_back(
      {gen_power_law(800, 2.5, 24.0, 5), 12403744315688176387ULL, 556, 4, 4});
  for (const auto& cs : cases) {
    const PaletteSet pal = PaletteSet::delta_plus_one(cs.g);
    const auto res = color_reduce(cs.g, pal, ColorReduceConfig{});
    std::uint64_t ch = 0xcbf29ce484222325ULL;
    for (NodeId v = 0; v < cs.g.num_nodes(); ++v) {
      ch = fnv(ch, res.coloring.color[v]);
    }
    EXPECT_EQ(ch, cs.want_colorhash);
    EXPECT_EQ(res.ledger.total_rounds(), cs.want_rounds);
    EXPECT_EQ(res.total_seed_evaluations, cs.want_evals);
    EXPECT_EQ(res.num_partitions, cs.want_partitions);
  }
}

// --- Layer 4: thread-count invariance (PR: parallel execution layer) -----
//
// The exec layer's contract: static shard boundaries + shard-ordered
// reduction + disjoint-palette sibling recursion make every observable —
// colorings, round ledgers, stats trees, seed-selection trajectories, and
// the PR 2 golden fingerprints above — bit-identical for any thread count.
// The matrix below runs the full pipeline at 1/2/4/7 pool threads and
// compares everything against the sequential (no-pool) baseline.

constexpr unsigned kThreadMatrix[] = {1, 2, 4, 7};

std::uint64_t coloring_hash(const Coloring& coloring) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Color c : coloring.color) h = fnv(h, c);
  return h;
}

TEST(ParallelInvariance, ColorReduceBitIdenticalAcrossThreadCounts) {
  struct Case {
    Graph g;
    std::uint64_t want_colorhash;  // the PR 2 golden fingerprints
    std::uint64_t want_rounds;
  };
  std::vector<Case> cases;
  cases.push_back(
      {gen_random_regular(1024, 32, 7), 5179980065975731409ULL, 856});
  cases.push_back({gen_gnp(512, 0.08, 3), 7636738355350604075ULL, 844});
  cases.push_back(
      {gen_power_law(800, 2.5, 24.0, 5), 12403744315688176387ULL, 556});
  for (const auto& cs : cases) {
    const PaletteSet pal = PaletteSet::delta_plus_one(cs.g);
    const auto base = color_reduce(cs.g, pal, ColorReduceConfig{});
    EXPECT_EQ(coloring_hash(base.coloring), cs.want_colorhash);
    EXPECT_EQ(base.ledger.total_rounds(), cs.want_rounds);
    const std::string base_ledger = ledger_to_json(base.ledger);
    const std::string base_stats = call_stats_to_json(base.root);
    const std::string base_mpc = mpc_costs_to_json(base.mpc);
    for (const unsigned t : kThreadMatrix) {
      ThreadPool pool(t);
      ColorReduceConfig cfg;
      cfg.exec = ExecContext(pool);
      const auto r = color_reduce(cs.g, pal, cfg);
      EXPECT_EQ(r.coloring.color, base.coloring.color) << t << " threads";
      EXPECT_EQ(ledger_to_json(r.ledger), base_ledger) << t << " threads";
      EXPECT_EQ(call_stats_to_json(r.root), base_stats) << t << " threads";
      EXPECT_EQ(mpc_costs_to_json(r.mpc), base_mpc) << t << " threads";
      EXPECT_EQ(r.num_partitions, base.num_partitions);
      EXPECT_EQ(r.num_collects, base.num_collects);
      EXPECT_EQ(r.max_depth_reached, base.max_depth_reached);
      EXPECT_EQ(r.peak_collect_words, base.peak_collect_words);
      EXPECT_EQ(r.total_seed_evaluations, base.total_seed_evaluations);
      EXPECT_EQ(r.threads_used, t);
    }
  }
}

TEST(ParallelInvariance, ForcedRecursionLedgersIdenticalAcrossThreadCounts) {
  // collect_factor=2 forces deep recursion (many sibling groups in flight);
  // deg+1 lists exercise the engine's partial-palette path concurrently.
  const Graph g = gen_power_law(1500, 2.5, 8.0, 31);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 20, 7);
  ColorReduceConfig base_cfg;
  base_cfg.part.collect_factor = 2.0;
  const auto base = color_reduce(g, pal, base_cfg);
  for (const unsigned t : kThreadMatrix) {
    ThreadPool pool(t);
    ColorReduceConfig cfg = base_cfg;
    cfg.exec = ExecContext(pool);
    const auto r = color_reduce(g, pal, cfg);
    EXPECT_EQ(r.coloring.color, base.coloring.color) << t << " threads";
    EXPECT_EQ(ledger_to_json(r.ledger), ledger_to_json(base.ledger))
        << t << " threads";
    EXPECT_EQ(call_stats_to_json(r.root), call_stats_to_json(base.root))
        << t << " threads";
    EXPECT_EQ(mpc_costs_to_json(r.mpc), mpc_costs_to_json(base.mpc))
        << t << " threads";
  }
}

TEST(ParallelInvariance, SelectSeedTrajectoryIdenticalAcrossThreadCounts) {
  // The sampled-MCE golden fingerprint of PR 2, reproduced with the engine
  // sharding its evaluations over every thread count, trajectory included.
  const Graph g = gen_random_regular(1024, 32, 7);
  const Instance inst = root_instance(g);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const unsigned bits = 2 * KWiseHash::seed_bits(params.independence);
  const double threshold =
      params.g0_budget * static_cast<double>(g.num_nodes());
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceSampled;
  std::optional<std::vector<double>> base_trajectory;
  for (const unsigned t : kThreadMatrix) {
    ThreadPool pool(t);
    SeedEvalEngine engine(inst, pal, g.num_nodes(), params,
                          ExecContext(pool));
    const auto sel = select_seed(
        bits, [&engine](const SeedBits& s) { return engine.cost_size(s); },
        threshold, cfg, 0xBEEF);
    EXPECT_EQ(seed_hash(sel.seed), 10795400587065833925ULL) << t;
    EXPECT_EQ(sel.cost, 33.0) << t;
    EXPECT_EQ(sel.evaluations, 64769u) << t;
    if (!base_trajectory) {
      base_trajectory = sel.trajectory;
    } else {
      EXPECT_EQ(sel.trajectory, *base_trajectory) << t << " threads";
    }
  }
}

TEST(ParallelInvariance, MirrorImplicitStoreDeterministicUnderThreads) {
  // Internal hash-registration order may vary with the schedule; every
  // observable of the implicit store (footprint, materialized palettes)
  // must not.
  const Graph g = gen_gnp(500, 0.08, 53);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig base_cfg;
  base_cfg.mirror_implicit = true;
  base_cfg.part.collect_factor = 2.0;
  const auto base = color_reduce(g, pal, base_cfg);
  ASSERT_NE(base.implicit_store, nullptr);
  for (const unsigned t : {4u, 7u}) {
    ThreadPool pool(t);
    ColorReduceConfig cfg = base_cfg;
    cfg.exec = ExecContext(pool);
    const auto r = color_reduce(g, pal, cfg);
    ASSERT_NE(r.implicit_store, nullptr);
    EXPECT_EQ(r.implicit_store->space_words(),
              base.implicit_store->space_words());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(r.implicit_store->materialize(v),
                base.implicit_store->materialize(v))
          << "node " << v << " at " << t << " threads";
    }
  }
}

}  // namespace
}  // namespace detcol
