// Equivalence + invariance suite for the low-space seed engines (PR: batched
// + parallel seed search for the low-space MPC layer and distributed MCE).
// Mirrors tests/test_seed_eval.cpp's layering:
//
//  1. LowSpaceSeedEngine::violations() reproduces the naive per-candidate
//     recomputation (bins, verdicts, counts) bit for bit, including on the
//     incremental MCE candidate stream; MisPhaseEngine priorities equal
//     KWiseHash::field_eval.
//  2. select_seed() picks bit-identical seeds whichever backend drives the
//     cost, and reproduces golden fingerprints captured from the pre-engine
//     implementation.
//  3. End-to-end goldens: low_space_color, mis_list_color and
//     distributed_mce reproduce the pre-engine colorings, ledgers, counters
//     and agreed seeds.
//  4. ParallelInvariance: all three pipelines are bit-identical at 1/2/4/7
//     pool threads vs the sequential baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numeric>

#include "baselines/random_trial.hpp"
#include "core/stats_export.hpp"
#include "derand/distributed_mce.hpp"
#include "derand/strategies.hpp"
#include "exec/exec.hpp"
#include "graph/generators.hpp"
#include "hashing/kwise.hpp"
#include "lowspace/low_space.hpp"
#include "lowspace/mis.hpp"
#include "lowspace/seed_engine.hpp"
#include "sim/network.hpp"
#include "util/math.hpp"

namespace detcol {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
  return h;
}

std::uint64_t hash_colors(const std::vector<Color>& colors) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto c : colors) h = fnv(h, c);
  return h;
}

std::uint64_t seed_hash(const SeedBits& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto w : s.words()) h = fnv(h, w);
  return h;
}

constexpr unsigned kThreadMatrix[] = {1, 2, 4, 7};

// The naive per-candidate violator count exactly as the pre-engine
// low_space.cpp computed it — the lowspace_naive_violations reference
// oracle that seed_engine.hpp ships for tests and benches.
struct NaiveViolations {
  const Graph& g;
  std::span<const NodeId> orig;
  const PaletteSet& pal;
  std::uint64_t b;
  double slack_exp;

  std::uint64_t count(const KWiseHash& h1, const KWiseHash& h2,
                      std::vector<std::uint32_t>* bins_out,
                      std::vector<char>* good_out) const {
    return lowspace_naive_violations(g, orig, pal, b, slack_exp, h1, h2,
                                     bins_out, good_out);
  }

  double cost(const SeedBits& s, unsigned c) const {
    const KWiseHash h1(s.word_range(0, c), b);
    const KWiseHash h2(s.word_range(c, c), b - 1);
    return static_cast<double>(count(h1, h2, nullptr, nullptr));
  }
};

// --- Layer 1: engine vs naive ------------------------------------------

TEST(LowSpaceSeedEngine, MatchesNaiveOnUniformPalettes) {
  const Graph g = gen_random_regular(512, 24, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::vector<NodeId> orig(g.num_nodes());
  std::iota(orig.begin(), orig.end(), NodeId{0});
  const std::uint64_t b = 8;
  const unsigned c = 4;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const NaiveViolations naive{g, orig, pal, b, 0.6};
  LowSpaceSeedEngine engine(g, orig, pal, b, c, 0.6);
  for (unsigned i = 0; i < 24; ++i) {
    const SeedBits s = SeedBits::expand(bits, 0xE0A1, i);
    const KWiseHash h1(s.word_range(0, c), b);
    const KWiseHash h2(s.word_range(c, c), b - 1);
    std::vector<std::uint32_t> bins;
    std::vector<char> good;
    const std::uint64_t want = naive.count(h1, h2, &bins, &good);
    ASSERT_EQ(engine.violations(s), want) << "seed " << i;
    ASSERT_EQ(std::vector<std::uint32_t>(engine.bins().begin(),
                                         engine.bins().end()),
              bins);
    ASSERT_EQ(std::vector<char>(engine.good().begin(), engine.good().end()),
              good);
  }
}

TEST(LowSpaceSeedEngine, MatchesNaiveOnListPalettesAndSubinstance) {
  // Non-identity orig mapping with per-node lists: exercises the
  // partial-palette index path (not the full-universe fast path).
  const Graph full = gen_gnp(400, 0.05, 9);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 400; v += 3) nodes.push_back(v);
  const Graph g = induced_subgraph(full, nodes);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(full, 4000, 17);
  const std::uint64_t b = 5;
  const unsigned c = 4;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const NaiveViolations naive{g, nodes, pal, b, 0.6};
  LowSpaceSeedEngine engine(g, nodes, pal, b, c, 0.6);
  for (unsigned i = 0; i < 16; ++i) {
    const SeedBits s = SeedBits::expand(bits, 0x5AB, i);
    ASSERT_EQ(engine.cost(s), naive.cost(s, c)) << "seed " << i;
  }
}

TEST(LowSpaceSeedEngine, MceCandidateStreamStaysExact) {
  // The exact evaluation order of the sampled-MCE strategy: chunk flips plus
  // deterministic suffix refills, where consecutive candidates share most
  // words — the incremental path the engine optimizes.
  const Graph g = gen_random_regular(256, 16, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::vector<NodeId> orig(g.num_nodes());
  std::iota(orig.begin(), orig.end(), NodeId{0});
  const std::uint64_t b = 6;
  const unsigned c = 4;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const NaiveViolations naive{g, orig, pal, b, 0.6};
  LowSpaceSeedEngine engine(g, orig, pal, b, c, 0.6);
  SeedBits prefix(bits);
  SeedBits completion(bits);
  unsigned checked = 0;
  for (unsigned fixed = 0; fixed < bits; fixed += 64) {
    for (std::uint64_t v = 0; v < 4; ++v) {
      prefix.set_bits(fixed, 64, 0x1234567ULL * (v + 1));
      for (unsigned s = 0; s < 2; ++s) {
        completion = prefix;
        completion.fill_suffix(fixed + 64 > bits ? bits : fixed + 64,
                               0xABCD ^ fixed, s);
        ASSERT_EQ(engine.cost(completion), naive.cost(completion, c))
            << "fixed=" << fixed << " v=" << v << " s=" << s;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 64u);
}

TEST(MisPhaseEngine, PrioritiesMatchKWiseFieldEval) {
  const unsigned c = 4;
  const unsigned bits = KWiseHash::seed_bits(c);
  MisPhaseEngine engine(257, c);
  for (unsigned i = 0; i < 12; ++i) {
    const SeedBits s = SeedBits::expand(bits, 0x415, i);
    engine.load(s);
    const KWiseHash naive(s.word_range(0, c), 1);
    for (std::uint64_t x = 0; x < 257; ++x) {
      ASSERT_EQ(engine.priority(x), naive.field_eval(x)) << "seed " << i;
    }
  }
}

// --- Layer 2: select_seed backend equivalence + golden seeds -------------

TEST(LowSpaceSelectSeedEquivalence, BackendsPickIdenticalSeeds) {
  // Both strategies, naive vs engine backend, on an instance small enough
  // that the naive sampled-MCE sweep stays in the fast budget.
  const Graph g = gen_random_regular(256, 12, 29);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::vector<NodeId> orig(g.num_nodes());
  std::iota(orig.begin(), orig.end(), NodeId{0});
  const std::uint64_t b = 6;
  const unsigned c = 4;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const NaiveViolations naive{g, orig, pal, b, 0.6};
  LowSpaceSeedEngine engine(g, orig, pal, b, c, 0.6);
  for (const auto strat :
       {SeedStrategy::kThresholdScan, SeedStrategy::kMceSampled}) {
    SeedSelectConfig cfg;
    cfg.strategy = strat;
    const std::function<double(const SeedBits&)> naive_cost =
        [&](const SeedBits& s) { return naive.cost(s, c); };
    const auto a = select_seed(bits, naive_cost, 0.0, cfg, 0x51);
    const auto e = select_seed(
        bits, [&engine](const SeedBits& s) { return engine.cost(s); }, 0.0,
        cfg, 0x51);
    EXPECT_EQ(a.seed, e.seed) << "strategy " << static_cast<int>(strat);
    EXPECT_EQ(a.cost, e.cost);
    EXPECT_EQ(a.evaluations, e.evaluations);
    EXPECT_EQ(a.met_threshold, e.met_threshold);
  }
}

// Golden fingerprints captured from the pre-engine implementation (naive
// violations cost, threshold scan and sampled MCE) at the seed commit of
// this PR. The engine-backed search must reproduce them bit for bit. The
// scan case also re-runs the naive backend (64 evals — cheap) as an inline
// cross-check of the goldens themselves.
TEST(LowSpaceGoldenSeeds, EngineReproducesPreEngineSeeds) {
  const Graph g = gen_random_regular(1024, 48, 21);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::vector<NodeId> orig(g.num_nodes());
  std::iota(orig.begin(), orig.end(), NodeId{0});
  const double n = static_cast<double>(g.num_nodes());
  const std::uint64_t b = std::max<std::uint64_t>(2, ipow_floor(n, 0.3));
  ASSERT_EQ(b, 7u);
  const unsigned c = 4;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  const NaiveViolations naive{g, orig, pal, b, 0.6};
  LowSpaceSeedEngine engine(g, orig, pal, b, c, 0.6);

  struct Golden {
    SeedStrategy strategy;
    std::uint64_t want_hash;
    double want_cost;
    std::uint64_t want_evals;
  };
  const Golden goldens[] = {
      {SeedStrategy::kThresholdScan, 5824748792414655866ULL, 256.0, 64},
      {SeedStrategy::kMceSampled, 14608188979202963909ULL, 249.0, 64833},
  };
  for (const auto& gold : goldens) {
    SeedSelectConfig cfg;
    cfg.strategy = gold.strategy;
    const auto e = select_seed(
        bits, [&engine](const SeedBits& s) { return engine.cost(s); }, 0.0,
        cfg, 0x10A75EEDULL);
    EXPECT_EQ(seed_hash(e.seed), gold.want_hash);
    EXPECT_EQ(e.cost, gold.want_cost);
    EXPECT_EQ(e.evaluations, gold.want_evals);
    if (gold.strategy == SeedStrategy::kThresholdScan) {
      const std::function<double(const SeedBits&)> naive_cost =
          [&](const SeedBits& s) { return naive.cost(s, c); };
      const auto a = select_seed(bits, naive_cost, 0.0, cfg, 0x10A75EEDULL);
      EXPECT_EQ(a.seed, e.seed);
      EXPECT_EQ(a.cost, e.cost);
      EXPECT_EQ(a.evaluations, e.evaluations);
    }
  }
}

// --- Layer 3: end-to-end goldens ----------------------------------------

struct LsGolden {
  const char* name;
  Graph g;
  int pal_mode;  // 0 = delta+1 uniform, 1 = deg+1 lists
  double delta;
  std::uint64_t want_colorhash;
  std::uint64_t want_rounds;
  std::uint64_t want_words;
  std::uint64_t want_evals;
  std::uint64_t want_partitions;
  std::uint64_t want_mis_calls;
  std::uint64_t want_mis_phases;
  std::uint64_t want_violators;
  unsigned want_depth;
  std::uint64_t want_peak_local;
  std::uint64_t want_peak_total;
};

std::vector<LsGolden> lowspace_goldens() {
  std::vector<LsGolden> cases;
  cases.push_back({"regular", gen_random_regular(900, 64, 9), 0, 0.04,
                   6476234434080133322ULL, 8055, 990060, 136, 25, 40, 70, 0,
                   5, 544, 544});
  cases.push_back({"gnp", gen_gnp(800, 0.02, 3), 0, 0.08,
                   18377085292517401663ULL, 276, 86472, 4, 0, 1, 4, 0, 0,
                   210568, 210568});
  cases.push_back({"powerlaw", gen_power_law(1000, 2.5, 6.0, 5), 1, 0.08,
                   10418201203587392594ULL, 336, 46280, 4, 1, 3, 3, 0, 1,
                   5281, 5281});
  return cases;
}

PaletteSet golden_palettes(const LsGolden& cs) {
  return cs.pal_mode == 0
             ? PaletteSet::delta_plus_one(cs.g)
             : PaletteSet::deg_plus_one_lists(cs.g, 1u << 20, 7);
}

void expect_matches_golden(const LsGolden& cs, const LowSpaceResult& r) {
  EXPECT_EQ(hash_colors(r.coloring.color), cs.want_colorhash) << cs.name;
  EXPECT_EQ(r.ledger.total_rounds(), cs.want_rounds) << cs.name;
  EXPECT_EQ(r.ledger.total_words(), cs.want_words) << cs.name;
  EXPECT_EQ(r.seed_evaluations, cs.want_evals) << cs.name;
  EXPECT_EQ(r.num_partitions, cs.want_partitions) << cs.name;
  EXPECT_EQ(r.num_mis_calls, cs.want_mis_calls) << cs.name;
  EXPECT_EQ(r.total_mis_phases, cs.want_mis_phases) << cs.name;
  EXPECT_EQ(r.diverted_violators, cs.want_violators) << cs.name;
  EXPECT_EQ(r.depth_reached, cs.want_depth) << cs.name;
  EXPECT_EQ(r.peak_local_words, cs.want_peak_local) << cs.name;
  EXPECT_EQ(r.peak_total_words, cs.want_peak_total) << cs.name;
}

TEST(LowSpaceGolden, EndToEndResultsUnchangedFromPreEngine) {
  for (const auto& cs : lowspace_goldens()) {
    const PaletteSet pal = golden_palettes(cs);
    LowSpaceParams params;
    params.delta = cs.delta;
    expect_matches_golden(cs, low_space_color(cs.g, pal, params));
  }
}

TEST(MisGolden, ResultsUnchangedFromPreEngine) {
  struct MisCase {
    const char* name;
    Graph g;
    int mode;
    std::uint64_t salt;
    std::uint64_t want_colorhash;
    unsigned want_phases;
    std::uint64_t want_evals;
    std::uint64_t want_rounds;
    std::uint64_t want_words;
    std::uint64_t want_seed_rounds;
  };
  std::vector<MisCase> cases;
  cases.push_back({"gnp", gen_gnp(300, 0.04, 5), 0, 2,
                   1706959779285171007ULL, 4, 4, 276, 48456, 260});
  cases.push_back({"reg-lists", gen_random_regular(200, 8, 7), 1, 3,
                   7174990235811177752ULL, 1, 1, 69, 9964, 65});
  for (const auto& cs : cases) {
    const PaletteSet pal = cs.mode == 0
                               ? PaletteSet::delta_plus_one(cs.g)
                               : PaletteSet::random_lists(cs.g, 1u << 16, 9);
    std::vector<std::vector<Color>> pals(cs.g.num_nodes());
    for (NodeId v = 0; v < cs.g.num_nodes(); ++v) {
      const auto s = pal.palette(v);
      pals[v].assign(s.begin(), s.end());
    }
    const auto r = mis_list_color(cs.g, pals, {}, cs.salt);
    EXPECT_EQ(hash_colors(r.color), cs.want_colorhash) << cs.name;
    EXPECT_EQ(r.phases, cs.want_phases) << cs.name;
    EXPECT_EQ(r.seed_evaluations, cs.want_evals) << cs.name;
    EXPECT_EQ(r.ledger.total_rounds(), cs.want_rounds) << cs.name;
    EXPECT_EQ(r.ledger.total_words(), cs.want_words) << cs.name;
    EXPECT_EQ(r.seed_rounds, cs.want_seed_rounds) << cs.name;
  }
}

double dmce_graph_cost(const Graph& g, std::uint32_t v, const SeedBits& s) {
  const KWiseHash h(s.word_range(0, 2), 8);
  std::uint64_t clashes = 0;
  for (const NodeId u : g.neighbors(v)) {
    if (h(u) == h(v)) ++clashes;
  }
  return static_cast<double>(clashes);
}

TEST(DistributedMceGolden, AgreedSeedUnchangedFromPreEngine) {
  cc::Network net(32);
  const Graph g = gen_gnp(32, 0.3, 13);
  const auto cost = [&](std::uint32_t v, const SeedBits& s) {
    return dmce_graph_cost(g, v, s);
  };
  const auto r = distributed_mce(net, 128, 5, cost, 2, 0xD157ULL);
  EXPECT_EQ(seed_hash(r.seed), 12996693666342596589ULL);
  EXPECT_EQ(r.network_rounds, 52u);
  EXPECT_EQ(r.chunks, 26u);
  EXPECT_DOUBLE_EQ(r.final_estimate, 20.0);
}

// --- Layer 4: thread-count invariance -----------------------------------

TEST(ParallelInvariance, LowSpaceBitIdenticalAcrossThreadCounts) {
  for (const auto& cs : lowspace_goldens()) {
    const PaletteSet pal = golden_palettes(cs);
    LowSpaceParams base_params;
    base_params.delta = cs.delta;
    const auto base = low_space_color(cs.g, pal, base_params);
    expect_matches_golden(cs, base);
    const std::string base_ledger = ledger_to_json(base.ledger);
    const std::string base_mpc = mpc_costs_to_json(base.mpc);
    for (const unsigned t : kThreadMatrix) {
      ThreadPool pool(t);
      LowSpaceParams params = base_params;
      params.exec = ExecContext(pool);
      const auto r = low_space_color(cs.g, pal, params);
      EXPECT_EQ(r.coloring.color, base.coloring.color)
          << cs.name << " @ " << t << " threads";
      EXPECT_EQ(ledger_to_json(r.ledger), base_ledger)
          << cs.name << " @ " << t << " threads";
      EXPECT_EQ(mpc_costs_to_json(r.mpc), base_mpc)
          << cs.name << " @ " << t << " threads";
      EXPECT_EQ(r.seed_evaluations, base.seed_evaluations);
      EXPECT_EQ(r.num_partitions, base.num_partitions);
      EXPECT_EQ(r.num_mis_calls, base.num_mis_calls);
      EXPECT_EQ(r.total_mis_phases, base.total_mis_phases);
      EXPECT_EQ(r.diverted_violators, base.diverted_violators);
      EXPECT_EQ(r.depth_reached, base.depth_reached);
      EXPECT_EQ(r.peak_local_words, base.peak_local_words);
      EXPECT_EQ(r.peak_total_words, base.peak_total_words);
    }
  }
}

TEST(ParallelInvariance, MisBitIdenticalAcrossThreadCounts) {
  const Graph g = gen_power_law(400, 2.6, 6.0, 11);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 16, 13);
  std::vector<std::vector<Color>> pals(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto s = pal.palette(v);
    pals[v].assign(s.begin(), s.end());
  }
  const auto base = mis_list_color(g, pals, {}, 4);
  const std::string base_ledger = ledger_to_json(base.ledger);
  const std::string base_mpc = mpc_costs_to_json(base.mpc);
  for (const unsigned t : kThreadMatrix) {
    ThreadPool pool(t);
    MisParams params;
    params.exec = ExecContext(pool);
    const auto r = mis_list_color(g, pals, params, 4);
    EXPECT_EQ(r.color, base.color) << t << " threads";
    EXPECT_EQ(r.phases, base.phases) << t << " threads";
    EXPECT_EQ(r.seed_evaluations, base.seed_evaluations) << t << " threads";
    EXPECT_EQ(ledger_to_json(r.ledger), base_ledger) << t << " threads";
    EXPECT_EQ(mpc_costs_to_json(r.mpc), base_mpc) << t << " threads";
  }
}

TEST(ParallelInvariance, DistributedMceBitIdenticalAcrossThreadCounts) {
  const Graph g = gen_gnp(32, 0.3, 13);
  const auto cost = [&](std::uint32_t v, const SeedBits& s) {
    return dmce_graph_cost(g, v, s);
  };
  cc::Network base_net(32);
  const auto base = distributed_mce(base_net, 128, 5, cost, 2, 0xD157ULL);
  const std::string base_mpc = mpc_costs_to_json(base.mpc);
  for (const unsigned t : kThreadMatrix) {
    ThreadPool pool(t);
    cc::Network net(32);
    const auto r = distributed_mce(net, 128, 5, cost, 2, 0xD157ULL,
                                   ExecContext(pool));
    EXPECT_EQ(r.seed, base.seed) << t << " threads";
    EXPECT_EQ(r.network_rounds, base.network_rounds) << t << " threads";
    EXPECT_EQ(r.chunks, base.chunks) << t << " threads";
    EXPECT_EQ(r.final_estimate, base.final_estimate) << t << " threads";
    EXPECT_EQ(mpc_costs_to_json(r.mpc), base_mpc) << t << " threads";
  }
}

TEST(ParallelInvariance, RandomTrialBitIdenticalAcrossThreadCounts) {
  const Graph g = gen_random_regular(600, 16, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto base = random_trial_color(g, pal, 42);
  for (const unsigned t : kThreadMatrix) {
    ThreadPool pool(t);
    const auto r = random_trial_color(g, pal, 42, kRandomTrialMaxRounds,
                                     ExecContext(pool));
    EXPECT_EQ(r.coloring.color, base.coloring.color) << t << " threads";
    EXPECT_EQ(r.trial_rounds, base.trial_rounds) << t << " threads";
    EXPECT_EQ(r.words_sent, base.words_sent) << t << " threads";
  }
}

}  // namespace
}  // namespace detcol
