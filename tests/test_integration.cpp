// Cross-algorithm integration: every algorithm in the suite colors the same
// instances; pathological shapes are exercised end-to-end.
#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "baselines/randomized_reduce.hpp"
#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"

namespace detcol {
namespace {

void run_all_and_verify(const Graph& g, const PaletteSet& pal) {
  {
    const auto r = color_reduce(g, pal);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "color_reduce: " << v.issue;
  }
  {
    const auto r = low_space_color(g, pal);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "low_space: " << v.issue;
  }
  {
    const auto r = greedy_baseline(g, pal);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  }
  {
    const auto r = random_trial_color(g, pal, 99);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  }
  {
    const auto r = randomized_reduce(g, pal, 0);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  }
  {
    const auto r = mis_baseline_color(g, pal);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  }
}

TEST(Integration, AllAlgorithmsOnGnp) {
  const Graph g = gen_gnp(400, 0.03, 1);
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, AllAlgorithmsOnLists) {
  const Graph g = gen_random_regular(300, 10, 3);
  run_all_and_verify(g, PaletteSet::random_lists(g, 1u << 18, 5));
}

TEST(Integration, Star) {
  // One hub of degree n-1: stresses the degree-skew paths.
  std::vector<Edge> edges;
  for (NodeId v = 1; v < 200; ++v) edges.emplace_back(0, v);
  const Graph g = Graph::from_edges(200, edges);
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, CompleteGraph) {
  const Graph g = gen_complete(40);
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, DisjointCliquesAndIsolatedNodes) {
  std::vector<Edge> edges;
  for (NodeId base = 0; base < 60; base += 20) {
    for (NodeId u = base; u < base + 15; ++u) {
      for (NodeId v = u + 1; v < base + 15; ++v) edges.emplace_back(u, v);
    }
  }
  const Graph g = Graph::from_edges(80, edges);  // nodes 60..79 isolated
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, BipartiteHeavy) {
  const Graph g = gen_bipartite(150, 150, 0.15, 7);
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, PathAndTree) {
  {
    std::vector<Edge> edges;
    for (NodeId v = 0; v + 1 < 300; ++v) edges.emplace_back(v, v + 1);
    const Graph g = Graph::from_edges(300, edges);
    run_all_and_verify(g, PaletteSet::delta_plus_one(g));
  }
  {
    const Graph g = gen_random_tree(300, 9);
    run_all_and_verify(g, PaletteSet::delta_plus_one(g));
  }
}

TEST(Integration, PlantedInstanceUsesFewColorsForGreedy) {
  // Sanity link between generator and verifier: a planted 4-colorable
  // graph greedy-colors within Delta+1 trivially; all algorithms agree on
  // validity.
  const Graph g = gen_planted_kcolorable(300, 4, 0.1, 11);
  run_all_and_verify(g, PaletteSet::delta_plus_one(g));
}

TEST(Integration, AdversarialListsMinimalOverlap) {
  // Palettes engineered so neighbors share few colors — easy instances for
  // MIS, hard-ish for trials; everyone must still succeed.
  const Graph g = gen_random_regular(200, 6, 13);
  std::vector<std::vector<Color>> lists(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (Color i = 0; i <= g.degree(v); ++i) {
      lists[v].push_back((static_cast<Color>(v) << 8) + i);  // disjoint
    }
  }
  const PaletteSet pal{std::move(lists)};
  run_all_and_verify(g, pal);
}

}  // namespace
}  // namespace detcol
