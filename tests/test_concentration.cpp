#include <gtest/gtest.h>

#include "hashing/concentration.hpp"
#include "hashing/kwise.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Concentration, TailFormulaValues) {
  // 2*(c*t/l^2)^(c/2) with c=4, t=100, lambda=100: 2*(400/10000)^2 = 0.0032.
  EXPECT_NEAR(bellare_rompel_tail(4, 100, 100), 0.0032, 1e-9);
}

TEST(Concentration, ClampedToOne) {
  EXPECT_DOUBLE_EQ(bellare_rompel_tail(4, 1e6, 1.0), 1.0);
}

TEST(Concentration, MonotoneInLambda) {
  double prev = 1.0;
  for (double lambda = 50; lambda <= 5000; lambda *= 2) {
    const double t = bellare_rompel_tail(4, 1000, lambda);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(Concentration, HigherIndependenceHelpsForSmallBase) {
  // When c*t/lambda^2 < 1 the bound improves with c.
  const double t4 = bellare_rompel_tail(4, 100, 200);
  const double t8 = bellare_rompel_tail(8, 100, 200);
  EXPECT_LT(t8, t4);
}

TEST(Concentration, RejectsOddOrSmallC) {
  EXPECT_THROW(bellare_rompel_tail(3, 10, 1), CheckError);
  EXPECT_THROW(bellare_rompel_tail(2, 10, 1), CheckError);
  EXPECT_THROW(bellare_rompel_tail(5, 10, 1), CheckError);
}

TEST(Concentration, RequiredIndependence) {
  // Some achievable target.
  const unsigned c = required_independence(1000, 500, 1e-3);
  ASSERT_GT(c, 0u);
  EXPECT_LE(bellare_rompel_tail(c, 1000, 500), 1e-3);
  // Unachievable target (base > 1 forever).
  EXPECT_EQ(required_independence(1e9, 1.0, 1e-3, 16), 0u);
}

TEST(Concentration, EmpiricalDeviationWithinLemma22) {
  // Empirical check of the bound's *direction*: sum of t 4-wise independent
  // indicator variables (does h map x to bucket 0 of ell buckets) deviates
  // by >= lambda no more often than the analytic tail (which is loose).
  const std::uint64_t ell = 8;
  const unsigned t = 512;
  const double mu = static_cast<double>(t) / static_cast<double>(ell);
  const double lambda = 48.0;  // ~6x sigma, analytic tail ~2*(4*512/2304)^2
  const double tail = bellare_rompel_tail(4, t, lambda);
  int bad = 0;
  const int seeds = 2000;
  for (int s = 0; s < seeds; ++s) {
    const auto h = KWiseHash::from_u64_seed(s * 1337 + 11, 4, ell);
    int z = 0;
    for (unsigned x = 0; x < t; ++x) {
      if (h(x) == 0) ++z;
    }
    if (std::abs(z - mu) >= lambda) ++bad;
  }
  EXPECT_LE(static_cast<double>(bad) / seeds, tail + 0.01);
}

}  // namespace
}  // namespace detcol
