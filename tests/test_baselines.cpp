#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "baselines/randomized_reduce.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(GreedyBaseline, ColorsAndTimes) {
  const Graph g = gen_gnp(1000, 0.02, 1);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = greedy_baseline(g, pal);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(RandomTrial, ColorsGnp) {
  const Graph g = gen_gnp(800, 0.03, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = random_trial_color(g, pal, 42);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  EXPECT_GT(r.trial_rounds, 0u);
  EXPECT_EQ(r.model_rounds, 2 * r.trial_rounds);
}

TEST(RandomTrial, RoundsLogarithmicInPractice) {
  const Graph g = gen_random_regular(2000, 16, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = random_trial_color(g, pal, 7);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  EXPECT_LE(r.trial_rounds, 60u);  // ~O(log n), generous cap
}

TEST(RandomTrial, DeterministicGivenSeed) {
  const Graph g = gen_gnp(300, 0.05, 9);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto a = random_trial_color(g, pal, 11);
  const auto b = random_trial_color(g, pal, 11);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  const auto c = random_trial_color(g, pal, 12);
  EXPECT_TRUE(verify_coloring(g, pal, c.coloring).ok);
}

TEST(RandomTrial, ListColoring) {
  const Graph g = gen_random_regular(400, 10, 13);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 16, 15);
  const auto r = random_trial_color(g, pal, 17);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
}

TEST(RandomTrial, RejectsDeficientPalettes) {
  const Graph g = gen_complete(5);
  const PaletteSet pal = PaletteSet::uniform(5, 2);
  EXPECT_THROW(random_trial_color(g, pal, 1), CheckError);
}

TEST(RandomizedReduce, StillColorsButWithoutGuarantee) {
  const Graph g = gen_gnp(700, 0.04, 19);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = randomized_reduce(g, pal, 0);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  // Exactly one seed evaluation per partition (no search).
  EXPECT_EQ(r.total_seed_evaluations, r.num_partitions);
}

TEST(RandomizedReduce, DifferentDrawsDifferentOutcomes) {
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const Graph g = gen_random_regular(600, 32, 21);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto a = randomized_reduce(g, pal, 0, cfg);
  const auto b = randomized_reduce(g, pal, 1, cfg);
  EXPECT_TRUE(verify_coloring(g, pal, a.coloring).ok);
  EXPECT_TRUE(verify_coloring(g, pal, b.coloring).ok);
}

TEST(MisBaseline, ColorsAndReportsPhases) {
  const Graph g = gen_gnp(300, 0.05, 23);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = mis_baseline_color(g, pal);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  EXPECT_GE(r.phases, 1u);
  EXPECT_GT(r.rounds, 0u);
}

}  // namespace
}  // namespace detcol
