#include <gtest/gtest.h>

#include <stdexcept>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace detcol {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    DC_CHECK(1 == 2, "one is not ", 2);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { DC_CHECK(true, "never shown"); }

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(7, 1), 7u);
}

TEST(Math, Log2Family) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_EQ(next_pow2(63), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(Math, FractionalPowers) {
  EXPECT_DOUBLE_EQ(fpow(100.0, 0.5), 10.0);
  EXPECT_EQ(ipow_floor(100.0, 0.5), 10u);
  EXPECT_EQ(ipow_floor(2.0, 0.1, 2), 2u);  // lower clamp
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_THROW(fpow(-1.0, 0.5), CheckError);
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(sub_seed(1, 0), sub_seed(1, 1));
  EXPECT_EQ(sub_seed(7, 3), sub_seed(7, 3));
}

TEST(Rng, XoshiroBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, XoshiroRoughlyUniform) {
  Xoshiro256 rng(3);
  int counts[10] = {};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);
  }
}

TEST(Table, RendersAlignedCells) {
  Table t({"a", "bb"});
  t.row().cell(std::uint64_t{1}).cell("x");
  t.row().cell(std::uint64_t{22}).cell("yy");
  const std::string s = t.str();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a |"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), CheckError);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_ratio(2.0, 1.0), "2.00x");
  EXPECT_EQ(format_ratio(1.0, 0.0), "n/a");
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--n=100",   "--p=0.5", "--name=abc",
                        "pos",  "--verbose", "--list=1,2,3"};
  ArgParser args(7, argv);
  EXPECT_EQ(args.get_uint("n", 0), 100u);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "abc");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  EXPECT_EQ(args.get_int("missing", -3), -3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
  const auto list = args.get_uint_list("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 3u);
}

TEST(Cli, BareFlagTrackingLastOneWins) {
  const char* argv[] = {"prog", "--out", "--out=file.txt", "--quiet"};
  ArgParser args(4, argv);
  // A later --name=value overrides an earlier bare --name, bare-ness
  // included; a flag that stays bare reads as "true" and reports was_bare.
  EXPECT_FALSE(args.was_bare("out"));
  EXPECT_EQ(args.get_string("out", ""), "file.txt");
  EXPECT_TRUE(args.was_bare("quiet"));
  EXPECT_EQ(args.get_string("quiet", ""), "true");
  EXPECT_FALSE(args.was_bare("missing"));

  const char* argv2[] = {"prog", "--out=file.txt", "--out"};
  ArgParser args2(3, argv2);
  EXPECT_TRUE(args2.was_bare("out"));
  EXPECT_EQ(args2.get_string("out", ""), "true");

  const auto names = args.flag_names();
  EXPECT_EQ(names.size(), 2u);  // out, quiet (map-deduplicated)
}

}  // namespace
}  // namespace detcol
