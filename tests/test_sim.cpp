#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/stats_export.hpp"
#include "sim/clique_sim.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_costs.hpp"
#include "sim/mpc_sim.hpp"
#include "sim/network.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Ledger, ChargesAccumulate) {
  RoundLedger l;
  l.charge("a", 2, 10);
  l.charge("a", 3, 5);
  l.charge("b", 1);
  EXPECT_EQ(l.total_rounds(), 6u);
  EXPECT_EQ(l.total_words(), 15u);
  EXPECT_EQ(l.by_phase().at("a").rounds, 5u);
  EXPECT_EQ(l.by_phase().at("b").words, 0u);
}

TEST(Ledger, SequentialMerge) {
  RoundLedger a, b;
  a.charge("x", 2);
  b.charge("x", 3, 7);
  b.charge("y", 1);
  a.merge_sequential(b);
  EXPECT_EQ(a.total_rounds(), 6u);
  EXPECT_EQ(a.by_phase().at("x").rounds, 5u);
  EXPECT_EQ(a.total_words(), 7u);
}

TEST(Ledger, ParallelMergeTakesCriticalPath) {
  RoundLedger parent;
  parent.charge("setup", 1);
  RoundLedger c1, c2, c3;
  c1.charge("work", 10, 100);
  c2.charge("work", 4, 200);
  c3.charge("work", 7, 50);
  std::vector<RoundLedger> group = {c1, c2, c3};
  parent.merge_parallel(group);
  EXPECT_EQ(parent.total_rounds(), 11u);   // 1 + max(10,4,7)
  EXPECT_EQ(parent.total_words(), 350u);   // words always sum
  EXPECT_EQ(parent.by_phase().at("work").rounds, 10u);
}

TEST(Ledger, ParallelMergeEmptyGroupIsNoop) {
  RoundLedger l;
  l.charge("a", 1);
  l.merge_parallel(std::vector<RoundLedger>{});
  EXPECT_EQ(l.total_rounds(), 1u);
}

TEST(CliqueModel, ChargesAndTracksPeaks) {
  const CliqueModel model(100);
  MpcCosts acc;
  model.lenzen_route(500, 50, "route", acc);
  model.broadcast(10, "bcast", acc);
  model.aggregate(64, "agg", acc);
  model.collect(200, "collect", acc);
  EXPECT_GT(acc.ledger.total_rounds(), 0u);
  EXPECT_EQ(acc.peak_local_words, 200u);
  EXPECT_EQ(acc.num_routes, 1u);
  EXPECT_EQ(acc.num_broadcasts, 1u);
  EXPECT_EQ(acc.num_aggregates, 1u);
  EXPECT_EQ(acc.num_collects, 1u);
}

TEST(CliqueModel, EnforcesLenzenPrecondition) {
  const CliqueModel model(10, {}, /*route_slack=*/2.0);
  MpcCosts acc;
  EXPECT_THROW(model.lenzen_route(100, 1000, "route", acc), CheckError);
}

TEST(CliqueModel, EnforcesCollectCapacity) {
  const CliqueModel model(10, {}, 2.0, /*collect_slack=*/2.0);
  MpcCosts acc;
  EXPECT_THROW(model.collect(100, "collect", acc), CheckError);
  model.collect(20, "collect", acc);  // exactly at capacity is fine
}

TEST(CliqueModel, BigBroadcastChargesMore) {
  const CliqueModel model(10);
  MpcCosts a, b;
  model.broadcast(5, "x", a);
  model.broadcast(100, "x", b);  // 10 reps of the 2-round pattern
  EXPECT_GT(b.ledger.total_rounds(), a.ledger.total_rounds());
}

TEST(MpcModel, SpaceEnforcement) {
  const MpcModel model(100, 10000);
  MpcCosts acc;
  model.sort(5000, "sort", acc);
  model.prefix_sum(100, "ps", acc, 10);
  model.gather(99, "gather", acc);
  EXPECT_EQ(acc.num_sorts, 1u);
  EXPECT_EQ(acc.num_prefix_sums, 1u);
  EXPECT_EQ(acc.num_gathers, 1u);
  EXPECT_THROW(model.gather(101, "gather", acc), CheckError);
  EXPECT_THROW(model.sort(20000, "sort", acc), CheckError);
  EXPECT_THROW(model.route(50, 101, "route", acc), CheckError);
}

TEST(MpcModel, ResidentPeaksTracked) {
  const MpcModel model(100, 10000);
  MpcCosts acc;
  model.note_resident(50, 4000, acc);
  model.note_resident(80, 2000, acc);
  EXPECT_EQ(acc.peak_local_words, 80u);
  EXPECT_EQ(acc.peak_total_words, 4000u);
  EXPECT_THROW(model.note_resident(101, 200, acc), CheckError);
  EXPECT_THROW(model.note_resident(10, 20000, acc), CheckError);
}

/// Deterministically distinct accumulators for the merge-law tests.
MpcCosts sample_costs(std::uint64_t salt) {
  MpcCosts c;
  c.ledger.charge("alpha", 1 + salt % 3, 10 * (salt + 1));
  c.ledger.charge("beta", salt % 2, salt);
  if (salt % 2 == 0) c.ledger.charge("gamma", 2 + salt, 3);
  c.peak_local_words = 10 + 7 * salt;
  c.peak_total_words = 100 + 13 * salt;
  c.num_sorts = salt % 5;
  c.num_prefix_sums = salt % 3;
  c.num_routes = 1 + salt % 4;
  c.num_gathers = salt % 2;
  c.num_broadcasts = salt % 6;
  c.num_aggregates = salt % 7;
  c.num_collects = salt % 3;
  return c;
}

TEST(MpcCosts, SequentialMergeIsAssociative) {
  for (std::uint64_t s = 0; s < 4; ++s) {
    // (a · b) · c
    MpcCosts left = sample_costs(s);
    left.merge(sample_costs(s + 1));
    left.merge(sample_costs(s + 2));
    // a · (b · c)
    MpcCosts bc = sample_costs(s + 1);
    bc.merge(sample_costs(s + 2));
    MpcCosts right = sample_costs(s);
    right.merge(bc);
    EXPECT_EQ(mpc_costs_to_json(left), mpc_costs_to_json(right));
  }
}

TEST(MpcCosts, DefaultConstructedIsMergeIdentity) {
  const MpcCosts a = sample_costs(3);
  MpcCosts left;  // e · a
  left.merge(a);
  MpcCosts right = sample_costs(3);  // a · e
  right.merge(MpcCosts{});
  EXPECT_EQ(mpc_costs_to_json(left), mpc_costs_to_json(a));
  EXPECT_EQ(mpc_costs_to_json(right), mpc_costs_to_json(a));
}

TEST(MpcCosts, ParallelMergeCriticalPathAndScalarFolds) {
  MpcCosts parent = sample_costs(0);
  const MpcCosts c1 = sample_costs(1);
  const MpcCosts c2 = sample_costs(2);
  std::vector<MpcCosts> group = {c1, c2};
  parent.merge_parallel(group);
  const MpcCosts base = sample_costs(0);
  // Rounds: critical-path child only; words always sum.
  const MpcCosts& crit = c1.ledger.total_rounds() >= c2.ledger.total_rounds()
                             ? c1
                             : c2;
  EXPECT_EQ(parent.ledger.total_rounds(),
            base.ledger.total_rounds() + crit.ledger.total_rounds());
  EXPECT_EQ(parent.ledger.total_words(),
            base.ledger.total_words() + c1.ledger.total_words() +
                c2.ledger.total_words());
  // Peaks fold by max, counters by sum.
  EXPECT_EQ(parent.peak_local_words,
            std::max({base.peak_local_words, c1.peak_local_words,
                      c2.peak_local_words}));
  EXPECT_EQ(parent.peak_total_words,
            std::max({base.peak_total_words, c1.peak_total_words,
                      c2.peak_total_words}));
  EXPECT_EQ(parent.num_routes,
            base.num_routes + c1.num_routes + c2.num_routes);
  EXPECT_EQ(parent.num_sorts, base.num_sorts + c1.num_sorts + c2.num_sorts);
}

TEST(MpcCosts, ParallelMergeEmptyGroupIsNoop) {
  MpcCosts c = sample_costs(2);
  c.merge_parallel(std::vector<MpcCosts>{});
  EXPECT_EQ(mpc_costs_to_json(c), mpc_costs_to_json(sample_costs(2)));
}

TEST(Network, DeliversMessages) {
  cc::Network net(4);
  net.send(0, 1, 42);
  net.send(2, 1, 43);
  net.deliver();
  const auto inbox = net.inbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(net.round(), 1u);
  EXPECT_EQ(net.total_words_sent(), 2u);
}

TEST(Network, EnforcesPerLinkBandwidth) {
  cc::Network net(3, 1);
  net.send(0, 1, 1);
  EXPECT_THROW(net.send(0, 1, 2), CheckError);  // same link, same round
  net.deliver();
  net.send(0, 1, 2);  // fresh round OK
}

TEST(Network, RejectsSelfSend) {
  cc::Network net(3);
  EXPECT_THROW(net.send(1, 1, 0), CheckError);
}

TEST(Network, BroadcastReachesEveryone) {
  cc::Network net(5);
  net.broadcast_one(2, 99);
  for (std::uint32_t v = 0; v < 5; ++v) {
    if (v == 2) continue;
    ASSERT_EQ(net.inbox(v).size(), 1u);
    EXPECT_EQ(net.inbox(v)[0].payload, 99u);
    EXPECT_EQ(net.inbox(v)[0].src, 2u);
  }
}

TEST(Network, AllSumAndMinUseTwoRoundsEach) {
  cc::Network net(6);
  const std::vector<std::uint64_t> vals = {3, 1, 4, 1, 5, 9};
  EXPECT_EQ(net.all_sum(vals), 23u);
  EXPECT_EQ(net.round(), 2u);
  EXPECT_EQ(net.all_min(vals), 1u);
  EXPECT_EQ(net.round(), 4u);
}

}  // namespace
}  // namespace detcol
