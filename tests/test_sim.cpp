#include <gtest/gtest.h>

#include <vector>

#include "sim/clique_sim.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_sim.hpp"
#include "sim/network.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Ledger, ChargesAccumulate) {
  RoundLedger l;
  l.charge("a", 2, 10);
  l.charge("a", 3, 5);
  l.charge("b", 1);
  EXPECT_EQ(l.total_rounds(), 6u);
  EXPECT_EQ(l.total_words(), 15u);
  EXPECT_EQ(l.by_phase().at("a").rounds, 5u);
  EXPECT_EQ(l.by_phase().at("b").words, 0u);
}

TEST(Ledger, SequentialMerge) {
  RoundLedger a, b;
  a.charge("x", 2);
  b.charge("x", 3, 7);
  b.charge("y", 1);
  a.merge_sequential(b);
  EXPECT_EQ(a.total_rounds(), 6u);
  EXPECT_EQ(a.by_phase().at("x").rounds, 5u);
  EXPECT_EQ(a.total_words(), 7u);
}

TEST(Ledger, ParallelMergeTakesCriticalPath) {
  RoundLedger parent;
  parent.charge("setup", 1);
  RoundLedger c1, c2, c3;
  c1.charge("work", 10, 100);
  c2.charge("work", 4, 200);
  c3.charge("work", 7, 50);
  std::vector<RoundLedger> group = {c1, c2, c3};
  parent.merge_parallel(group);
  EXPECT_EQ(parent.total_rounds(), 11u);   // 1 + max(10,4,7)
  EXPECT_EQ(parent.total_words(), 350u);   // words always sum
  EXPECT_EQ(parent.by_phase().at("work").rounds, 10u);
}

TEST(Ledger, ParallelMergeEmptyGroupIsNoop) {
  RoundLedger l;
  l.charge("a", 1);
  l.merge_parallel(std::vector<RoundLedger>{});
  EXPECT_EQ(l.total_rounds(), 1u);
}

TEST(CliqueSim, ChargesAndTracksPeaks) {
  CliqueSim sim(100);
  sim.lenzen_route(500, 50, "route");
  sim.broadcast(10, "bcast");
  sim.aggregate(64, "agg");
  sim.collect(200, "collect");
  EXPECT_GT(sim.ledger().total_rounds(), 0u);
  EXPECT_EQ(sim.peak_collect_words(), 200u);
}

TEST(CliqueSim, EnforcesLenzenPrecondition) {
  CliqueSim sim(10, {}, /*route_slack=*/2.0);
  EXPECT_THROW(sim.lenzen_route(100, 1000, "route"), CheckError);
}

TEST(CliqueSim, EnforcesCollectCapacity) {
  CliqueSim sim(10, {}, 2.0, /*collect_slack=*/2.0);
  EXPECT_THROW(sim.collect(100, "collect"), CheckError);
  sim.collect(20, "collect");  // exactly at capacity is fine
}

TEST(CliqueSim, BigBroadcastChargesMore) {
  CliqueSim a(10), b(10);
  a.broadcast(5, "x");
  b.broadcast(100, "x");  // 10 reps of the 2-round pattern
  EXPECT_GT(b.ledger().total_rounds(), a.ledger().total_rounds());
}

TEST(MpcSim, SpaceEnforcement) {
  MpcSim sim(100, 10000);
  sim.sort(5000, "sort");
  sim.prefix_sum(100, "ps", 10);
  sim.gather(99, "gather");
  EXPECT_THROW(sim.gather(101, "gather"), CheckError);
  EXPECT_THROW(sim.sort(20000, "sort"), CheckError);
  EXPECT_THROW(sim.route(50, 101, "route"), CheckError);
}

TEST(MpcSim, ResidentPeaksTracked) {
  MpcSim sim(100, 10000);
  sim.note_resident(50, 4000);
  sim.note_resident(80, 2000);
  EXPECT_EQ(sim.peak_local_words(), 80u);
  EXPECT_EQ(sim.peak_total_words(), 4000u);
  EXPECT_THROW(sim.note_resident(101, 200), CheckError);
  EXPECT_THROW(sim.note_resident(10, 20000), CheckError);
}

TEST(Network, DeliversMessages) {
  cc::Network net(4);
  net.send(0, 1, 42);
  net.send(2, 1, 43);
  net.deliver();
  const auto inbox = net.inbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(net.round(), 1u);
  EXPECT_EQ(net.total_words_sent(), 2u);
}

TEST(Network, EnforcesPerLinkBandwidth) {
  cc::Network net(3, 1);
  net.send(0, 1, 1);
  EXPECT_THROW(net.send(0, 1, 2), CheckError);  // same link, same round
  net.deliver();
  net.send(0, 1, 2);  // fresh round OK
}

TEST(Network, RejectsSelfSend) {
  cc::Network net(3);
  EXPECT_THROW(net.send(1, 1, 0), CheckError);
}

TEST(Network, BroadcastReachesEveryone) {
  cc::Network net(5);
  net.broadcast_one(2, 99);
  for (std::uint32_t v = 0; v < 5; ++v) {
    if (v == 2) continue;
    ASSERT_EQ(net.inbox(v).size(), 1u);
    EXPECT_EQ(net.inbox(v)[0].payload, 99u);
    EXPECT_EQ(net.inbox(v)[0].src, 2u);
  }
}

TEST(Network, AllSumAndMinUseTwoRoundsEach) {
  cc::Network net(6);
  const std::vector<std::uint64_t> vals = {3, 1, 4, 1, 5, 9};
  EXPECT_EQ(net.all_sum(vals), 23u);
  EXPECT_EQ(net.round(), 2u);
  EXPECT_EQ(net.all_min(vals), 1u);
  EXPECT_EQ(net.round(), 4u);
}

}  // namespace
}  // namespace detcol
