#include <gtest/gtest.h>

#include "core/implicit_palette.hpp"
#include "graph/palette.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(ImplicitPalette, StartsFull) {
  ImplicitPaletteStore s(3, 10);
  EXPECT_EQ(s.palette_size(0), 10u);
  EXPECT_TRUE(s.contains(2, 9));
  EXPECT_FALSE(s.contains(2, 10));
  const auto m = s.materialize(1);
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(m.front(), 0u);
  EXPECT_EQ(m.back(), 9u);
}

TEST(ImplicitPalette, RemoveColor) {
  ImplicitPaletteStore s(1, 5);
  s.remove_color(0, 2);
  EXPECT_FALSE(s.contains(0, 2));
  EXPECT_EQ(s.palette_size(0), 4u);
  s.remove_color(0, 2);  // idempotent
  EXPECT_EQ(s.palette_size(0), 4u);
}

TEST(ImplicitPalette, RestrictionMatchesExplicit) {
  const Color k = 64;
  ImplicitPaletteStore s(2, k);
  PaletteSet explicit_pal = PaletteSet::uniform(2, k);
  const auto h2 = KWiseHash::from_u64_seed(77, 4, 3);
  const auto id = s.add_hash(h2);
  // Node 0 restricted to bin 2, node 1 to bin 1.
  s.push_restriction(0, id, 2);
  s.push_restriction(1, id, 1);
  explicit_pal.restrict(0, [&](Color c) { return h2(c) + 1 == 2; });
  explicit_pal.restrict(1, [&](Color c) { return h2(c) + 1 == 1; });
  for (NodeId v = 0; v < 2; ++v) {
    const auto got = s.materialize(v);
    const auto want = explicit_pal.palette(v);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(ImplicitPalette, ChainedRestrictionsCompose) {
  const Color k = 128;
  ImplicitPaletteStore s(1, k);
  PaletteSet explicit_pal = PaletteSet::uniform(1, k);
  const auto h_a = KWiseHash::from_u64_seed(1, 4, 4);
  const auto h_b = KWiseHash::from_u64_seed(2, 4, 2);
  const auto ia = s.add_hash(h_a);
  const auto ib = s.add_hash(h_b);
  s.push_restriction(0, ia, 3);
  s.push_restriction(0, ib, 1);
  s.remove_color(0, 5);
  explicit_pal.restrict(0, [&](Color c) { return h_a(c) + 1 == 3; });
  explicit_pal.restrict(0, [&](Color c) { return h_b(c) + 1 == 1; });
  explicit_pal.remove_color(0, 5);
  const auto got = s.materialize(0);
  const auto want = explicit_pal.palette(0);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
}

TEST(ImplicitPalette, SpaceGrowsWithOperationsNotColors) {
  const Color k = 1000;
  ImplicitPaletteStore s(100, k);
  const std::uint64_t base = s.space_words();
  EXPECT_LE(base, 200u);  // ~n words of chain heads, no palette storage
  const auto h = KWiseHash::from_u64_seed(3, 4, 5);
  const auto id = s.add_hash(h);
  for (NodeId v = 0; v < 100; ++v) s.push_restriction(v, id, 1);
  // One hash (c+1 words) + 100 chain entries.
  EXPECT_LE(s.space_words(), base + 5 + 100);
  // Explicit storage would be 100 * 1000 words.
  EXPECT_LT(s.space_words() * 100, std::uint64_t{100} * k);
}

TEST(ImplicitPalette, UnknownHashRejected) {
  ImplicitPaletteStore s(1, 4);
  EXPECT_THROW(s.push_restriction(0, 3, 1), CheckError);
}

}  // namespace
}  // namespace detcol
