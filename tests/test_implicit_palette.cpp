#include <gtest/gtest.h>

#include "core/implicit_palette.hpp"
#include "graph/palette.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(ImplicitPalette, StartsFull) {
  ImplicitPaletteStore s(3, 10);
  EXPECT_EQ(s.palette_size(0), 10u);
  EXPECT_TRUE(s.contains(2, 9));
  EXPECT_FALSE(s.contains(2, 10));
  const auto m = s.materialize(1);
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(m.front(), 0u);
  EXPECT_EQ(m.back(), 9u);
}

TEST(ImplicitPalette, RemoveColor) {
  ImplicitPaletteStore s(1, 5);
  s.remove_color(0, 2);
  EXPECT_FALSE(s.contains(0, 2));
  EXPECT_EQ(s.palette_size(0), 4u);
  s.remove_color(0, 2);  // idempotent
  EXPECT_EQ(s.palette_size(0), 4u);
}

TEST(ImplicitPalette, RestrictionMatchesExplicit) {
  const Color k = 64;
  ImplicitPaletteStore s(2, k);
  PaletteSet explicit_pal = PaletteSet::uniform(2, k);
  const auto h2 = KWiseHash::from_u64_seed(77, 4, 3);
  ImplicitPaletteStore::LocalBatch batch;
  const auto id = batch.add_hash(h2);
  // Node 0 restricted to bin 2, node 1 to bin 1.
  batch.push_restriction(0, id, 2);
  batch.push_restriction(1, id, 1);
  s.apply(std::move(batch));
  explicit_pal.restrict(0, [&](Color c) { return h2(c) + 1 == 2; });
  explicit_pal.restrict(1, [&](Color c) { return h2(c) + 1 == 1; });
  for (NodeId v = 0; v < 2; ++v) {
    const auto got = s.materialize(v);
    const auto want = explicit_pal.palette(v);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(ImplicitPalette, ChainedRestrictionsCompose) {
  const Color k = 128;
  ImplicitPaletteStore s(1, k);
  PaletteSet explicit_pal = PaletteSet::uniform(1, k);
  const auto h_a = KWiseHash::from_u64_seed(1, 4, 4);
  const auto h_b = KWiseHash::from_u64_seed(2, 4, 2);
  ImplicitPaletteStore::LocalBatch batch;
  const auto ia = batch.add_hash(h_a);
  const auto ib = batch.add_hash(h_b);
  batch.push_restriction(0, ia, 3);
  batch.push_restriction(0, ib, 1);
  s.apply(std::move(batch));
  s.remove_color(0, 5);
  explicit_pal.restrict(0, [&](Color c) { return h_a(c) + 1 == 3; });
  explicit_pal.restrict(0, [&](Color c) { return h_b(c) + 1 == 1; });
  explicit_pal.remove_color(0, 5);
  const auto got = s.materialize(0);
  const auto want = explicit_pal.palette(0);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
}

TEST(ImplicitPalette, SpaceGrowsWithOperationsNotColors) {
  const Color k = 1000;
  ImplicitPaletteStore s(100, k);
  const std::uint64_t base = s.space_words();
  EXPECT_LE(base, 200u);  // ~n words of chain heads, no palette storage
  const auto h = KWiseHash::from_u64_seed(3, 4, 5);
  ImplicitPaletteStore::LocalBatch batch;
  const auto id = batch.add_hash(h);
  for (NodeId v = 0; v < 100; ++v) batch.push_restriction(v, id, 1);
  s.apply(std::move(batch));
  // One hash (c+1 words) + 100 chain entries.
  EXPECT_LE(s.space_words(), base + 5 + 100);
  // Explicit storage would be 100 * 1000 words.
  EXPECT_LT(s.space_words() * 100, std::uint64_t{100} * k);
}

TEST(ImplicitPalette, UnknownHashRejected) {
  ImplicitPaletteStore::LocalBatch batch;
  EXPECT_THROW(batch.push_restriction(0, 3, 1), CheckError);
}

TEST(ImplicitPalette, BatchMergeRebasesHashIds) {
  // Parent registers hash A; a child branch, blind to the parent's ids,
  // registers hash B under its own local id 0. After the merge the child's
  // restriction must resolve against B, not A.
  const Color k = 64;
  ImplicitPaletteStore s(2, k);
  const auto h_a = KWiseHash::from_u64_seed(10, 4, 4);
  const auto h_b = KWiseHash::from_u64_seed(20, 4, 2);
  ImplicitPaletteStore::LocalBatch parent, child;
  const auto ia = parent.add_hash(h_a);
  parent.push_restriction(0, ia, 2);
  const auto ib = child.add_hash(h_b);
  EXPECT_EQ(ib, 0u);  // child ids are batch-local
  child.push_restriction(1, ib, 1);
  parent.merge(std::move(child));
  s.apply(std::move(parent));
  PaletteSet explicit_pal = PaletteSet::uniform(2, k);
  explicit_pal.restrict(0, [&](Color c) { return h_a(c) + 1 == 2; });
  explicit_pal.restrict(1, [&](Color c) { return h_b(c) + 1 == 1; });
  for (NodeId v = 0; v < 2; ++v) {
    const auto got = s.materialize(v);
    const auto want = explicit_pal.palette(v);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(ImplicitPalette, BatchMergeAssociativeWithEmptyIdentity) {
  const auto h_a = KWiseHash::from_u64_seed(1, 4, 4);
  const auto h_b = KWiseHash::from_u64_seed(2, 4, 4);
  const auto h_c = KWiseHash::from_u64_seed(3, 4, 4);
  const auto make = [&](const KWiseHash& h, NodeId v) {
    ImplicitPaletteStore::LocalBatch b;
    b.push_restriction(v, b.add_hash(h), 1);
    return b;
  };
  // (a · b) · c and a · (b · c) must install identical stores.
  ImplicitPaletteStore left_store(3, 16), right_store(3, 16);
  {
    auto a = make(h_a, 0);
    a.merge(make(h_b, 1));
    a.merge(make(h_c, 2));
    left_store.apply(std::move(a));
  }
  {
    auto bc = make(h_b, 1);
    bc.merge(make(h_c, 2));
    auto a = make(h_a, 0);
    a.merge(std::move(bc));
    right_store.apply(std::move(a));
  }
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(left_store.materialize(v), right_store.materialize(v));
  }
  EXPECT_EQ(left_store.space_words(), right_store.space_words());
  // Empty batch is the identity.
  ImplicitPaletteStore::LocalBatch e;
  auto a = make(h_a, 0);
  a.merge(std::move(e));
  EXPECT_FALSE(a.empty());
  ImplicitPaletteStore id_store(3, 16);
  id_store.apply(std::move(a));
  EXPECT_EQ(id_store.materialize(0), left_store.materialize(0));
}

}  // namespace
}  // namespace detcol
