#include <gtest/gtest.h>

#include "derand/seedbits.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(SeedBits, SetGetRoundTrip) {
  SeedBits s(100);
  s.set_bits(0, 8, 0xAB);
  s.set_bits(60, 10, 0x3FF);  // straddles a word boundary
  s.set_bits(92, 8, 0x5C);
  EXPECT_EQ(s.get_bits(0, 8), 0xABu);
  EXPECT_EQ(s.get_bits(60, 10), 0x3FFu);
  EXPECT_EQ(s.get_bits(92, 8), 0x5Cu);
  EXPECT_EQ(s.get_bits(8, 8), 0u);  // untouched bits are zero
}

TEST(SeedBits, OverwriteClearsOldBits) {
  SeedBits s(16);
  s.set_bits(0, 8, 0xFF);
  s.set_bits(0, 8, 0x0F);
  EXPECT_EQ(s.get_bits(0, 8), 0x0Fu);
}

TEST(SeedBits, BoundsChecked) {
  SeedBits s(10);
  EXPECT_THROW(s.set_bits(5, 6, 0), CheckError);
  EXPECT_THROW(s.get_bits(0, 11), CheckError);
  EXPECT_THROW(SeedBits(0), CheckError);
}

TEST(SeedBits, ExpandDeterministicAndDistinct) {
  const SeedBits a = SeedBits::expand(128, 7, 0);
  const SeedBits b = SeedBits::expand(128, 7, 0);
  const SeedBits c = SeedBits::expand(128, 7, 1);
  const SeedBits d = SeedBits::expand(128, 8, 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(SeedBits, ExpandClearsTailBits) {
  const SeedBits s = SeedBits::expand(70, 1, 2);
  // Bits beyond 70 in the second word must be zero: get high chunk.
  EXPECT_EQ(s.get_bits(64, 6), s.words()[1] & 0x3F);
  EXPECT_EQ(s.words()[1] >> 6, 0u);
}

TEST(SeedBits, FillSuffixPreservesPrefix) {
  SeedBits s(96);
  s.set_bits(0, 16, 0xBEEF);
  const auto before = s.get_bits(0, 16);
  s.fill_suffix(16, 5, 0);
  EXPECT_EQ(s.get_bits(0, 16), before);
  // Suffix is actually filled (some bit set with overwhelming probability).
  bool any = false;
  for (unsigned pos = 16; pos < 96; pos += 8) {
    if (s.get_bits(pos, 8) != 0) any = true;
  }
  EXPECT_TRUE(any);
  // Deterministic.
  SeedBits t(96);
  t.set_bits(0, 16, 0xBEEF);
  t.fill_suffix(16, 5, 0);
  EXPECT_EQ(s, t);
}

TEST(SeedBits, WordRange) {
  SeedBits s(256);
  s.set_bits(64, 16, 0x1234);
  const auto words = s.word_range(1, 1);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0] & 0xFFFF, 0x1234u);
  EXPECT_THROW(s.word_range(3, 2), CheckError);
}

}  // namespace
}  // namespace detcol
