#include <gtest/gtest.h>

#include <numeric>

#include "core/invariants.hpp"
#include "graph/generators.hpp"

namespace detcol {
namespace {

Instance make_instance(Graph g, double ell) {
  Instance inst;
  inst.orig.resize(g.num_nodes());
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = std::move(g);
  inst.ell = ell;
  return inst;
}

TEST(Invariants, CleanReportOnValidRoot) {
  const Graph g = gen_gnp(200, 0.1, 1);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto rep = check_corollary_33(inst, pal, params);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.checked, 200u);
}

TEST(Invariants, DetectsSmallPalette) {
  // ell = 10 but palettes have size 5 < ell: condition (i) violated; nodes
  // with degree >= 5 also violate (iii).
  const Graph g = gen_complete(8);  // degree 7
  const Instance inst = make_instance(g, 10.0);
  const PaletteSet pal = PaletteSet::uniform(8, 5);
  PartitionParams params;
  const auto rep = check_corollary_33(inst, pal, params);
  EXPECT_EQ(rep.viol_ell_lt_p, 8u);
  EXPECT_EQ(rep.viol_deg_lt_p, 8u);
  EXPECT_FALSE(rep.clean());
}

TEST(Invariants, DetectsDegreeOverflow) {
  // ell = 4: bound is 4 + 4^0.7 ~ 6.6; complete graph K8 has degree 7.
  const Graph g = gen_complete(8);
  const Instance inst = make_instance(g, 4.0);
  const PaletteSet pal = PaletteSet::uniform(8, 100);
  PartitionParams params;
  const auto rep = check_corollary_33(inst, pal, params);
  EXPECT_EQ(rep.viol_deg_le_ell, 8u);
}

TEST(Invariants, ToStringMentionsCounts) {
  InvariantReport r;
  r.checked = 5;
  r.viol_deg_lt_p = 2;
  const auto s = r.to_string();
  EXPECT_NE(s.find("checked=5"), std::string::npos);
  EXPECT_NE(s.find("viol(iii)=2"), std::string::npos);
}

}  // namespace
}  // namespace detcol
