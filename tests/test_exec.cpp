// Unit tests for the deterministic execution layer (src/exec/): pool
// lifecycle, nested fork/join without deadlock, exception propagation
// through TaskGroup::wait(), and the static-shard / shard-ordered-reduction
// contracts of parallel_for_shards / parallel_reduce_shards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(ThreadPool, RunsSpawnedTasksAtEveryPoolSize) {
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
      group.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(ran.load(), 64) << threads << " threads";
  }
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // Each outer task spawns and joins an inner group — the recursion shape
  // of the ColorReduce driver. With 2 threads a blocking (non-helping) join
  // would strand every worker; helping must drain the inner tasks.
  ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.spawn([&pool, &inner_ran] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) {
        inner.spawn(
            [&inner_ran] { inner_ran.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_ran.load(), 64);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> survivors{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.spawn([&survivors, i] {
      if (i == 5) throw std::runtime_error("task 5 failed");
      survivors.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(survivors.load(), 15);  // wait() joins everything before throwing
  // The group is reusable after the error was consumed.
  group.spawn([&survivors] { survivors.fetch_add(1); });
  group.wait();
  EXPECT_EQ(survivors.load(), 16);
}

TEST(ThreadPool, CheckErrorPropagatesLikeDriverFailures) {
  // DC_CHECK failures inside parallel bins must surface to the caller.
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.spawn([] { DC_CHECK(false, "bin invariant violated"); });
  EXPECT_THROW(group.wait(), CheckError);
}

TEST(ThreadPool, DestructorJoinsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      group.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): ~TaskGroup must join (and ~ThreadPool must not tear down
    // workers underneath running tasks).
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelForShards, StaticBoundariesCoverExactlyOnce) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const ExecContext exec(pool);
    const std::size_t n = 10000;
    std::vector<int> hits(n, 0);
    const std::size_t shards = shard_count(n, 512);
    std::vector<std::pair<std::size_t, std::size_t>> bounds(shards);
    parallel_for_shards(
        exec, n,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          bounds[shard] = {begin, end};  // gtest asserts are not thread-safe
          for (std::size_t i = begin; i < end; ++i) ++hits[i];
        },
        /*grain=*/512);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(bounds[s].first, s * 512);
      EXPECT_EQ(bounds[s].second, std::min(n, (s + 1) * 512));
    }
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
  }
}

TEST(ParallelForShards, SequentialContextNeedsNoPool) {
  const ExecContext seq;  // default: sequential
  EXPECT_FALSE(seq.parallel());
  EXPECT_EQ(seq.num_threads(), 1u);
  std::size_t covered = 0;
  parallel_for_shards(seq, 100, [&](std::size_t, std::size_t b,
                                    std::size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 100u);
  parallel_for_shards(seq, 0, [&](std::size_t, std::size_t, std::size_t) {
    FAIL() << "no shards expected for n=0";
  });
}

TEST(ParallelReduceShards, FoldsInShardOrderAtEveryThreadCount) {
  // Floating-point sum whose value depends on association order: equal
  // results across thread counts prove the fold is shard-ordered, not
  // completion-ordered.
  const std::size_t n = 40000;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = (i % 7 == 0) ? 1e16 : 1.0;  // poison associativity
  }
  const auto run = [&](ExecContext exec) {
    return parallel_reduce_shards(
        exec, n, 0.0,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += xs[i];
          return s;
        },
        [](double acc, double part) { return acc + part; },
        /*grain=*/1024);
  };
  const double base = run(ExecContext{});
  for (const unsigned threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (int rep = 0; rep < 3; ++rep) {
      const double got = run(ExecContext(pool));
      EXPECT_EQ(got, base) << threads << " threads, rep " << rep;
    }
  }
}

}  // namespace
}  // namespace detcol
