// End-to-end serving-layer tests: fork a real `detcol serve` subprocess
// (binary path injected by CMake as DETCOL_BIN), drive it over its
// Unix-domain socket, and assert the serving contract — responses
// byte-identical to one-shot CLI runs under concurrency and at any server
// worker count, cache eviction without determinism loss, injected faults
// confined to one request, and a graceful SIGTERM drain with a final
// request-log line. In-process unit tests live in test_serve.cpp.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/scalable_gen.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

std::string shq(const std::string& s) { return "'" + s + "'"; }

int run_detcol(const std::string& args) {
  const std::string cmd = shq(DETCOL_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "system() failed for: " << cmd;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::path(::testing::TempDir()) / "detcol_serve" / info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  ASSERT_TRUE(os.good()) << path;
}

/// A `detcol serve` subprocess. Started via fork/exec (keeps the pid for
/// signalling); the constructor blocks until the socket is accepting.
class ServerGuard {
 public:
  ServerGuard(const fs::path& socket, std::vector<std::string> extra_flags,
              const std::string& failpoints = "") {
    start(socket, std::move(extra_flags), failpoints);
  }

  ~ServerGuard() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// SIGTERM + waitpid; returns the exit code (or 128+signal).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    const pid_t pid = pid_;
    pid_ = -1;
    (void)pid;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

 private:
  void start(const fs::path& socket, std::vector<std::string> extra_flags,
             const std::string& failpoints) {
    std::vector<std::string> args = {DETCOL_BIN, "serve",
                                     "--listen=" + socket.string(),
                                     "--quiet"};
    for (std::string& flag : extra_flags) args.push_back(std::move(flag));
    pid_ = ::fork();
    if (pid_ == 0) {
      if (!failpoints.empty()) {
        ::setenv("DETCOL_FAILPOINTS", failpoints.c_str(), 1);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(DETCOL_BIN, argv.data());
      ::_exit(127);
    }
    ASSERT_GT(pid_, 0) << "fork failed";
    // Wait for the listener: the socket file appears once bind() succeeds.
    for (int i = 0; i < 500; ++i) {
      struct stat st{};
      if (::stat(socket.c_str(), &st) == 0) return;
      ::usleep(10 * 1000);
    }
    FAIL() << "server did not create " << socket << " within 5s";
  }

  pid_t pid_ = -1;
};

/// Raw bytes of one response sub-value.
std::string raw_span(const std::string& raw, const JsonValue& v) {
  return raw.substr(v.raw_begin, v.raw_end - v.raw_begin);
}

/// Roundtrip a request and return the raw bytes of the deterministic
/// "result" object (asserting ok:true).
std::string result_span(const std::string& endpoint,
                        const serve::Request& req) {
  serve::ServeClient client(endpoint);
  std::string raw;
  const JsonValue resp = client.roundtrip(req, &raw);
  const JsonValue* ok = resp.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->bool_value) << raw;
  const JsonValue* result = resp.find("result");
  if (result == nullptr) return "";
  return raw_span(raw, *result);
}

serve::Request color_request(const std::string& graph, unsigned threads = 1) {
  serve::Request req;
  req.op = "color";
  req.graph_spec = graph;
  req.threads = threads;
  return req;
}

constexpr char kGraph[] = "--gen=gnp --n=600 --p=0.03 --seed=5";

// ---------------------------------------------------------------------------
// Determinism under concurrency and across server worker counts.
// ---------------------------------------------------------------------------

TEST(ServeE2E, ConcurrentClientsGetByteIdenticalResponses) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  // The coloring the one-shot CLI produces for the same instance.
  const fs::path oneshot = dir / "oneshot.colors";
  ASSERT_EQ(run_detcol(std::string("color ") + kGraph + " --quiet --out=" +
                       shq(oneshot.string())),
            0);
  const std::string golden_file = read_file(oneshot);

  std::vector<std::string> results[2];
  std::vector<std::string> coloring_files[2];
  const unsigned worker_counts[2] = {2, 7};
  for (int round = 0; round < 2; ++round) {
    ServerGuard server(
        sock, {"--threads=" + std::to_string(worker_counts[round]),
               "--executors=4"});
    constexpr int kClients = 6;
    results[round].resize(kClients);
    coloring_files[round].resize(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        serve::ServeClient client(sock.string());
        std::string raw;
        const JsonValue resp =
            client.roundtrip(color_request(kGraph, /*threads=*/2), &raw);
        const JsonValue* ok = resp.find("ok");
        ASSERT_TRUE(ok != nullptr && ok->bool_value) << raw;
        const JsonValue* result = resp.find("result");
        ASSERT_NE(result, nullptr);
        results[round][i] = raw_span(raw, *result);
        const JsonValue* file = result->find("coloring_file");
        ASSERT_NE(file, nullptr);
        coloring_files[round][i] = file->string_value;
      });
    }
    for (auto& t : clients) t.join();
    ASSERT_EQ(server.terminate(), 0);
    fs::remove(sock);
  }
  // Every client, both rounds: identical "result" bytes; and the coloring
  // file matches the one-shot CLI byte-for-byte.
  for (int round = 0; round < 2; ++round) {
    for (const std::string& r : results[round]) {
      EXPECT_EQ(r, results[0][0]) << "worker_count round " << round;
    }
    for (const std::string& f : coloring_files[round]) {
      EXPECT_EQ(f, golden_file);
    }
  }
}

TEST(ServeE2E, RequestThreadBudgetDoesNotChangeTheColoring) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {"--threads=2"});
  // Different per-request budgets: the "result" object differs only in its
  // recorded "threads" field; the coloring file bytes are identical.
  std::string files[3];
  const unsigned budgets[3] = {1, 2, 7};
  for (int i = 0; i < 3; ++i) {
    serve::ServeClient client(sock.string());
    std::string raw;
    const JsonValue resp =
        client.roundtrip(color_request(kGraph, budgets[i]), &raw);
    const JsonValue* result = resp.find("result");
    ASSERT_NE(result, nullptr) << raw;
    const JsonValue* threads = result->find("threads");
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(static_cast<unsigned>(threads->number), budgets[i]);
    files[i] = result->find("coloring_file")->string_value;
  }
  EXPECT_EQ(files[0], files[1]);
  EXPECT_EQ(files[0], files[2]);
}

TEST(ServeE2E, EvictionThenReloadReproducesTheBytes) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  // One residency slot and no result cache: the second graph evicts the
  // first, so the third request rebuilds it from scratch — and must produce
  // the identical bytes.
  ServerGuard server(sock, {"--cache-instances=1", "--result-cache=0"});
  const std::string first = result_span(sock.string(), color_request(kGraph));
  result_span(sock.string(),
              color_request("--gen=gnp --n=500 --p=0.05 --seed=9"));
  const std::string again = result_span(sock.string(), color_request(kGraph));
  EXPECT_EQ(first, again);

  serve::ServeClient client(sock.string());
  serve::Request info;
  info.op = "info";
  std::string raw;
  const JsonValue resp = client.roundtrip(info, &raw);
  const JsonValue* result = resp.find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* instances = result->find("instances");
  ASSERT_NE(instances, nullptr);
  EXPECT_GE(instances->find("evictions")->number, 2.0) << raw;
  EXPECT_EQ(instances->find("resident")->number, 1.0);
}

TEST(ServeE2E, MmapInstancesEvictReloadAndDedupeAgainstInRam) {
  const fs::path dir = test_dir();
  const fs::path a = dir / "a.dcg";
  const fs::path b = dir / "b.dcg";
  {
    ScalableGenSpec spec;
    spec.family = ScalableFamily::kBarabasiAlbert;
    spec.n = 4000;
    spec.d = 3;
    spec.seed = 1;
    generate_scalable_dcg(spec, a.string());
    spec.seed = 2;
    generate_scalable_dcg(spec, b.string());
  }
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {"--cache-instances=1", "--result-cache=0"});
  const std::string spec_a = "--input=" + a.string() + " --mmap=1";
  const std::string spec_b = "--input=" + b.string() + " --mmap=1";
  // B evicts A's instance (one residency slot): the mapping must come down
  // cleanly and come back byte-identical when A is requested again.
  const std::string first = result_span(sock.string(), color_request(spec_a));
  ASSERT_NE(first, "");
  const std::string other = result_span(sock.string(), color_request(spec_b));
  ASSERT_NE(other, "");
  EXPECT_NE(first, other) << "different seeds must color differently";
  EXPECT_EQ(result_span(sock.string(), color_request(spec_a)), first);
  // The in-RAM spelling of the same file dedupes onto the mapped instance:
  // the .dcg encoding is canonical, so the content checksum of the mapping
  // equals the checksum of the re-serialized heap graph.
  EXPECT_EQ(result_span(sock.string(),
                        color_request("--input=" + a.string())),
            first);
}

TEST(ServeE2E, ResultCacheHitsReplayIdenticalBytes) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  serve::ServeClient cold(sock.string());
  std::string cold_raw;
  const JsonValue cold_resp =
      cold.roundtrip(color_request(kGraph), &cold_raw);
  ASSERT_NE(cold_resp.find("result"), nullptr);
  EXPECT_FALSE(
      cold_resp.find("transient")->find("result_hit")->bool_value);
  serve::ServeClient warm(sock.string());
  std::string warm_raw;
  const JsonValue warm_resp =
      warm.roundtrip(color_request(kGraph), &warm_raw);
  EXPECT_TRUE(
      warm_resp.find("transient")->find("result_hit")->bool_value);
  EXPECT_EQ(raw_span(cold_raw, *cold_resp.find("result")),
            raw_span(warm_raw, *warm_resp.find("result")));
}

// ---------------------------------------------------------------------------
// CLI client routing (`--server=`) through the real binary.
// ---------------------------------------------------------------------------

TEST(ServeE2E, CliColorThroughServerMatchesLocalRun) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  const fs::path local = dir / "local.colors";
  const fs::path served = dir / "served.colors";
  ASSERT_EQ(run_detcol(std::string("color ") + kGraph + " --quiet --out=" +
                       shq(local.string())),
            0);
  ASSERT_EQ(run_detcol(std::string("color ") + kGraph + " --quiet --server=" +
                       shq(sock.string()) + " --out=" + shq(served.string())),
            0);
  EXPECT_EQ(read_file(local), read_file(served));

  // verify through the server accepts what color produced.
  EXPECT_EQ(run_detcol("verify " + shq(served.string()) + " --server=" +
                       shq(sock.string())),
            0);

  // A tampered coloring is INVALID through the server too (exit 1).
  std::string text = read_file(served);
  const auto nl = text.rfind("\n", text.size() - 2);
  ASSERT_NE(nl, std::string::npos);
  text.resize(nl + 1);
  text += "999999\n";  // out-of-palette color on the last node
  const fs::path bad = dir / "bad.colors";
  write_file(bad, text);
  EXPECT_EQ(run_detcol("verify " + shq(bad.string()) + " --server=" +
                       shq(sock.string()) + " 2>/dev/null"),
            1);
}

TEST(ServeE2E, CliStatsThroughServerRecordsRequestThreads) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {"--threads=2"});
  const fs::path out = dir / "stats.json";
  ASSERT_EQ(run_detcol(std::string("stats ") + kGraph + " --threads=4" +
                       " --server=" + shq(sock.string()) + " --out=" +
                       shq(out.string())),
            0);
  const std::string text = read_file(out);
  const JsonValue doc = parse_json(text, "stats");
  const JsonValue* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr) << text;
  // The request's budget, not the server's worker count.
  EXPECT_EQ(threads->number, 4.0);
}

TEST(ServeE2E, CliUsageErrorsSurfaceAsExitTwo) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  EXPECT_EQ(run_detcol(std::string("color ") + kGraph +
                       " --algo=nosuch --server=" + shq(sock.string()) +
                       " 2>/dev/null"),
            2);
  // Unreachable server is a data/environment failure (exit 1), not usage.
  EXPECT_EQ(run_detcol(std::string("color ") + kGraph + " --server=" +
                       shq((dir / "nope.sock").string()) + " 2>/dev/null"),
            1);
}

TEST(ServeE2E, SuiteServerDirectiveRunsCellsRemotely) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  const fs::path spec = dir / "suite.spec";
  const fs::path local_out = dir / "local.json";
  const fs::path served_out = dir / "served.json";
  const std::string base =
      "graph g1 --gen=gnp --n=120 --p=0.05 --seed=2\n"
      "pipelines reduce greedy\n"
      "threads 1 2\n"
      "timing off\n";
  write_file(spec, base);
  ASSERT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet" +
                       " --out=" + shq(local_out.string())),
            0);
  write_file(spec, base + "server " + sock.string() + "\n");
  ASSERT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet" +
                       " --out=" + shq(served_out.string())),
            0);
  const JsonValue local_doc = parse_json(read_file(local_out), "local");
  const JsonValue served_doc = parse_json(read_file(served_out), "served");
  const JsonValue* local_cells = local_doc.find("cells");
  const JsonValue* served_cells = served_doc.find("cells");
  ASSERT_NE(local_cells, nullptr);
  ASSERT_NE(served_cells, nullptr);
  ASSERT_EQ(local_cells->items.size(), served_cells->items.size());
  for (std::size_t i = 0; i < local_cells->items.size(); ++i) {
    const JsonValue& lc = local_cells->items[i];
    const JsonValue& sc = served_cells->items[i];
    EXPECT_EQ(sc.find("status")->string_value, "ok");
    EXPECT_EQ(sc.find("kernel")->string_value, "server");
    // The deterministic numbers agree with the locally computed cells.
    EXPECT_EQ(sc.find("rounds")->number, lc.find("rounds")->number);
    EXPECT_EQ(sc.find("colors_used")->number, lc.find("colors_used")->number);
  }
  // The server directive refuses to combine with a kernels axis.
  write_file(spec, base + "server " + sock.string() + "\nkernels scalar\n");
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) +
                       " --quiet --out=" + shq((dir / "x.json").string()) +
                       " 2>/dev/null"),
            1);
}

// ---------------------------------------------------------------------------
// Fault injection: a failing request never takes the server down.
// ---------------------------------------------------------------------------

TEST(ServeE2E, InjectedReadFaultFailsOnlyThatRequest) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {}, "serve.request.read@1:io");
  {
    serve::ServeClient client(sock.string());
    std::string raw;
    const JsonValue resp = client.roundtrip(color_request(kGraph), &raw);
    const JsonValue* ok = resp.find("ok");
    ASSERT_NE(ok, nullptr) << raw;
    EXPECT_FALSE(ok->bool_value);
    EXPECT_EQ(resp.find("error_class")->string_value, "io");
  }
  // The server survives and the next request succeeds.
  EXPECT_NE(result_span(sock.string(), color_request(kGraph)), "");
}

TEST(ServeE2E, InjectedWriteFaultYieldsCleanErrorFrameNotTornResponse) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {}, "serve.response.write@1:oom");
  {
    serve::ServeClient client(sock.string());
    std::string raw;
    const JsonValue resp = client.roundtrip(color_request(kGraph), &raw);
    // The frame parses cleanly (not torn) and names the injected class.
    const JsonValue* ok = resp.find("ok");
    ASSERT_NE(ok, nullptr) << raw;
    EXPECT_FALSE(ok->bool_value);
    EXPECT_EQ(resp.find("error_class")->string_value, "oom");
  }
  EXPECT_NE(result_span(sock.string(), color_request(kGraph)), "");
}

TEST(ServeE2E, InjectedEvictionFaultLeavesTheStoreIntact) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {"--cache-instances=1", "--result-cache=0"},
                     "serve.instance.evict@1:io");
  const std::string first = result_span(sock.string(), color_request(kGraph));
  {
    // This request needs an eviction; the injected fault fails it cleanly.
    serve::ServeClient client(sock.string());
    std::string raw;
    const JsonValue resp = client.roundtrip(
        color_request("--gen=gnp --n=500 --p=0.05 --seed=9"), &raw);
    const JsonValue* ok = resp.find("ok");
    ASSERT_NE(ok, nullptr) << raw;
    EXPECT_FALSE(ok->bool_value);
    EXPECT_EQ(resp.find("error_class")->string_value, "io");
  }
  // The failpoint fired before any mutation: the original instance is still
  // resident and still serves byte-identical results; the evicting request
  // now succeeds (failpoint consumed).
  EXPECT_EQ(result_span(sock.string(), color_request(kGraph)), first);
  EXPECT_NE(result_span(sock.string(),
                        color_request("--gen=gnp --n=500 --p=0.05 --seed=9")),
            "");
}

TEST(ServeE2E, PerRequestDeadlineMapsToTimeoutClass) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {"--result-cache=0"});
  serve::ServeClient client(sock.string());
  serve::Request req = color_request(kGraph);
  req.timeout_seconds = 1e-9;
  std::string raw;
  const JsonValue resp = client.roundtrip(req, &raw);
  const JsonValue* ok = resp.find("ok");
  ASSERT_NE(ok, nullptr) << raw;
  EXPECT_FALSE(ok->bool_value);
  EXPECT_EQ(resp.find("error_class")->string_value, "timeout");
  // And without the deadline the same connection still works.
  const JsonValue retry = client.roundtrip(color_request(kGraph), &raw);
  EXPECT_TRUE(retry.find("ok")->bool_value);
}

TEST(ServeE2E, MalformedRequestsGetUsageFramesAndTheConnectionLives) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  serve::ServeClient client(sock.string());
  serve::Request bad;
  bad.op = "color";  // no graph spec
  std::string raw;
  const JsonValue resp = client.roundtrip(bad, &raw);
  EXPECT_FALSE(resp.find("ok")->bool_value);
  EXPECT_EQ(resp.find("error_class")->string_value, "usage");
  serve::Request unknown;
  unknown.op = "frobnicate";
  const JsonValue resp2 = client.roundtrip(unknown, &raw);
  EXPECT_EQ(resp2.find("error_class")->string_value, "usage");
  // Same connection, a good request still answers.
  const JsonValue resp3 = client.roundtrip(color_request(kGraph), &raw);
  EXPECT_TRUE(resp3.find("ok")->bool_value);
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

TEST(ServeE2E, SigtermDrainsAndWritesFinalLogLine) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  const fs::path log = dir / "requests.log";
  ServerGuard server(sock, {"--log=" + log.string()});
  result_span(sock.string(), color_request(kGraph));
  result_span(sock.string(), color_request(kGraph));
  ASSERT_EQ(server.terminate(), 0);
  EXPECT_FALSE(fs::exists(sock)) << "socket not unlinked on shutdown";
  const std::string text = read_file(log);
  // One JSON line per request, then the shutdown marker.
  std::istringstream is(text);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << text;
  for (int i = 0; i < 2; ++i) {
    const JsonValue row = parse_json(lines[i], "log line");
    EXPECT_EQ(row.find("op")->string_value, "color");
    EXPECT_EQ(row.find("status")->string_value, "ok");
  }
  const JsonValue last = parse_json(lines.back(), "shutdown line");
  EXPECT_EQ(last.find("event")->string_value, "shutdown");
  EXPECT_TRUE(last.find("drained")->bool_value);
  EXPECT_EQ(last.find("requests")->number, 2.0);
}

TEST(ServeE2E, ShutdownOpStopsTheServerGracefully) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  const fs::path log = dir / "requests.log";
  ServerGuard server(sock, {"--log=" + log.string()});
  {
    serve::ServeClient client(sock.string());
    serve::Request req;
    req.op = "shutdown";
    std::string raw;
    const JsonValue resp = client.roundtrip(req, &raw);
    EXPECT_TRUE(resp.find("ok")->bool_value);
  }
  // The server exits on its own; terminate() just reaps it.
  for (int i = 0; i < 500 && fs::exists(sock); ++i) ::usleep(10 * 1000);
  EXPECT_EQ(server.terminate(), 0);
  const std::string text = read_file(log);
  EXPECT_NE(text.find("\"event\":\"shutdown\""), std::string::npos) << text;
}

TEST(ServeE2E, BindFailureOnOccupiedPathIsAStartupError) {
  const fs::path dir = test_dir();
  const fs::path sock = dir / "s.sock";
  ServerGuard server(sock, {});
  // Second server on the same path must fail fast with exit 1.
  EXPECT_EQ(run_detcol("serve --listen=" + shq(sock.string()) +
                       " --quiet 2>/dev/null"),
            1);
  // The incumbent is unaffected.
  EXPECT_NE(result_span(sock.string(), color_request(kGraph)), "");
}

}  // namespace
}  // namespace detcol
