#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Graph, BasicConstruction) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.size_words(), 4u + 6u);
}

TEST(Graph, DeduplicatesAndNormalizes) {
  const std::vector<Edge> edges = {{1, 0}, {0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  const std::vector<Edge> loop = {{2, 2}};
  EXPECT_THROW(Graph::from_edges(3, loop), CheckError);
  const std::vector<Edge> oob = {{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, oob), CheckError);
}

TEST(Graph, NeighborsSorted) {
  const std::vector<Edge> edges = {{3, 0}, {1, 0}, {2, 0}};
  const Graph g = Graph::from_edges(4, edges);
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, EdgeListRoundTrip) {
  const std::vector<Edge> edges = {{0, 1}, {2, 3}, {1, 3}};
  const Graph g = Graph::from_edges(5, edges);
  const auto out = g.edge_list();
  ASSERT_EQ(out.size(), 3u);
  for (const auto& [u, v] : out) EXPECT_LT(u, v);
  const Graph g2 = Graph::from_edges(5, out);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, std::vector<Edge>{});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, HasEdge) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(InducedSubgraph, PreservesInternalEdges) {
  // Path 0-1-2-3-4; induce on {1,2,3}.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<NodeId> nodes = {1, 2, 3};
  const Graph sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 1-2 and 2-3 survive
  EXPECT_TRUE(sub.has_edge(0, 1));  // local ids
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(InducedSubgraph, RespectsGivenOrder) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<NodeId> nodes = {2, 0};  // unsorted on purpose
  const Graph sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 0u);  // 2 and 0 are not adjacent
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  const Graph sub = induced_subgraph(g, std::vector<NodeId>{});
  EXPECT_EQ(sub.num_nodes(), 0u);
}

TEST(InducedSubgraph, DuplicateRejected) {
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  const std::vector<NodeId> dup = {1, 1};
  EXPECT_THROW(induced_subgraph(g, dup), CheckError);
}

TEST(InducedSubgraph, FullSelectionIsIsomorphic) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const std::vector<NodeId> all = {0, 1, 2, 3};
  const Graph sub = induced_subgraph(g, all);
  EXPECT_EQ(sub.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(sub.degree(v), g.degree(v));
}

}  // namespace
}  // namespace detcol
