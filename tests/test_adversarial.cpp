// Adversarial and structural stress cases: inputs designed to push the
// partition machinery into its uncomfortable corners — extreme degree skew,
// maximal palette overlap, bridge-heavy topologies, near-threshold
// palettes — while the coloring must stay verified.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "baselines/random_trial.hpp"
#include "cli/pipeline.hpp"
#include "cli/spec.hpp"
#include "core/color_reduce.hpp"
#include "exec/exec.hpp"
#include "graph/corpus.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "lowspace/low_space.hpp"

namespace detcol {
namespace {

void expect_all_valid(const Graph& g, const PaletteSet& pal) {
  {
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 1.0;  // hardest: recursion forced early
    const auto r = color_reduce(g, pal, cfg);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "color_reduce: " << v.issue;
  }
  {
    const auto r = low_space_color(g, pal);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "low_space: " << v.issue;
  }
}

TEST(Adversarial, BarbellTwoCliquesOneBridge) {
  // Dense ends, a single bridge: the partition sees wildly non-uniform
  // structure; the bridge nodes' goodness flips easily.
  std::vector<Edge> edges;
  const NodeId k = 40;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = k; u < 2 * k; ++u) {
    for (NodeId v = u + 1; v < 2 * k; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(k - 1, k);  // bridge
  const Graph g = Graph::from_edges(2 * k, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, LollipopCliquePlusLongTail) {
  std::vector<Edge> edges;
  const NodeId k = 30, tail = 200;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
  }
  for (NodeId v = k; v < k + tail; ++v) edges.emplace_back(v - 1, v);
  const Graph g = Graph::from_edges(k + tail, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, IdenticalListsMaximalOverlap) {
  // Every node has the *same* list of exactly Delta+1 colors drawn from a
  // huge space: h2 must split one shared palette across bins for everyone.
  const Graph g = gen_random_regular(500, 16, 3);
  std::vector<Color> shared;
  for (Color i = 0; i <= g.max_degree(); ++i) {
    shared.push_back(1'000'000'007ull * (i + 1));
  }
  std::vector<std::vector<Color>> lists(g.num_nodes(), shared);
  const PaletteSet pal{std::move(lists)};
  expect_all_valid(g, pal);
}

TEST(Adversarial, TwoHubsSharedLeaves) {
  // Double star: two hubs adjacent to all leaves and to each other —
  // maximum degree n-1 with minimum edge count.
  const NodeId n = 300;
  std::vector<Edge> edges;
  for (NodeId v = 2; v < n; ++v) {
    edges.emplace_back(0, v);
    edges.emplace_back(1, v);
  }
  edges.emplace_back(0, 1);
  const Graph g = Graph::from_edges(n, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, PalettesExactlyDegPlusOne) {
  // The tightest legal palettes everywhere: zero slack for the invariant.
  const Graph g = gen_power_law(800, 2.4, 10.0, 7);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 24, 9);
  expect_all_valid(g, pal);
}

TEST(Adversarial, CliqueWithPendantPerNode) {
  // K_k where each clique node also has a pendant leaf: leaves have degree
  // 1 and palettes of size 2 under deg+1 lists.
  const NodeId k = 48;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
    edges.emplace_back(u, static_cast<NodeId>(k + u));
  }
  const Graph g = Graph::from_edges(2 * k, edges);
  expect_all_valid(g, PaletteSet::deg_plus_one_lists(g, 1u << 16, 1));
}

TEST(Adversarial, ColorIdsAtDomainExtremes) {
  // Palette colors near 0 and near 2^61: the hash range mapping must not
  // bias or overflow.
  const Graph g = gen_ring(100);
  std::vector<std::vector<Color>> lists(100);
  for (NodeId v = 0; v < 100; ++v) {
    lists[v] = {0, (std::uint64_t{1} << 61) - 2 - v, 1 + v};
  }
  const PaletteSet pal{std::move(lists)};
  expect_all_valid(g, pal);
}

TEST(Adversarial, RandomTrialWorstSeedStillTerminates) {
  // Pathological-ish seed choices must not stall the randomized baseline
  // (its per-round success probability is constant regardless).
  const Graph g = gen_complete(32);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto r = random_trial_color(g, pal, seed);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
    EXPECT_LE(r.trial_rounds, 300u);
  }
}

TEST(Adversarial, DeterminismAcrossConfigurations) {
  // Any config permutation must be internally deterministic (same config
  // twice -> identical coloring), even where configs differ among each
  // other.
  const Graph g = gen_gnp(400, 0.06, 21);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (const double cf : {1.0, 4.0}) {
    for (const unsigned c : {2u, 4u}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = cf;
      cfg.part.independence = c;
      const auto a = color_reduce(g, pal, cfg);
      const auto b = color_reduce(g, pal, cfg);
      ASSERT_EQ(a.coloring.color, b.coloring.color);
      ASSERT_TRUE(verify_coloring(g, pal, a.coloring).ok);
    }
  }
}

// ---------------------------------------------------------------------------
// The committed regression corpus (src/graph/corpus.hpp, corpus/*.dcg).
// ---------------------------------------------------------------------------

std::string corpus_path(const CorpusGraph& cg) {
  return std::string(DETCOL_CORPUS_DIR) + "/" + cg.file;
}

TEST(Corpus, ConstructionsHaveDocumentedShape) {
  const Graph queens = corpus_queens(8);
  EXPECT_EQ(queens.num_nodes(), 64u);
  EXPECT_EQ(queens.num_edges(), 728u);  // DIMACS queen8_8

  const Graph myciel = corpus_mycielski(6);
  EXPECT_EQ(myciel.num_nodes(), 191u);
  EXPECT_EQ(myciel.num_edges(), 2360u);  // DIMACS myciel7

  const Graph karate = corpus_karate();
  EXPECT_EQ(karate.num_nodes(), 34u);
  EXPECT_EQ(karate.num_edges(), 78u);
  EXPECT_EQ(karate.max_degree(), 17u);  // node 33, the instructor's rival

  const Graph thr = corpus_threshold_blocks(32, 48);
  EXPECT_EQ(thr.num_nodes(), 48u * 64u);
  EXPECT_EQ(thr.num_edges(), 48u * 32u * 32u);
  EXPECT_EQ(thr.max_degree(), 32u);
  for (NodeId v = 0; v < thr.num_nodes(); ++v) {
    ASSERT_EQ(thr.degree(v), 32u) << "threshold adversary must be regular";
  }
}

// The committed .dcg files ARE the constructions: the encoding is canonical,
// so intactness and currency collapse to one byte comparison. Regenerate
// after an intentional corpus change with
//   DETCOL_CORPUS_REGEN=1 ./build/test_adversarial
// (the other corpus tests skip or pass trivially under the regen flag).
TEST(Corpus, CommittedFilesMatchConstructions) {
  for (const CorpusGraph& cg : corpus_graphs()) {
    const Graph g = cg.build();
    if (std::getenv("DETCOL_CORPUS_REGEN") != nullptr) {
      write_dcg_file(corpus_path(cg), g);
      continue;
    }
    std::string committed;
    ASSERT_NO_THROW(committed = slurp_file(corpus_path(cg)))
        << cg.name << ": missing " << corpus_path(cg)
        << " (regenerate with DETCOL_CORPUS_REGEN=1)";
    EXPECT_TRUE(committed == dcg_bytes(g))
        << cg.name << ": " << cg.file << " does not match the construction "
        << "(stale file or changed construction — see DETCOL_CORPUS_REGEN)";
  }
}

TEST(Corpus, MmapColoringsMatchInRam) {
  if (std::getenv("DETCOL_CORPUS_REGEN") != nullptr) GTEST_SKIP();
  for (const CorpusGraph& cg : corpus_graphs()) {
    const Graph owned = cg.build();
    const Graph mapped = map_dcg_file(corpus_path(cg));
    const PaletteSet pal = PaletteSet::delta_plus_one(owned);
    const auto a = color_reduce(owned, pal);
    const auto b = color_reduce(mapped, pal);
    ASSERT_EQ(a.coloring.color, b.coloring.color) << cg.name;
    ASSERT_TRUE(verify_coloring(mapped, pal, b.coloring).ok) << cg.name;
  }
}

/// Tracked baselines: rounds and distinct colors per (graph, pipeline) on
/// delta1 palettes. These pin behavior, not quality: any intentional change
/// to partition/seed-search logic that moves them must update this table
/// (and the committed corpus/corpus_report.json) in the same commit.
struct CorpusBaseline {
  const char* graph;
  const char* pipeline;
  std::uint64_t rounds;
  std::size_t colors;
};

constexpr CorpusBaseline kCorpusBaselines[] = {
    {"queens8", "reduce", 2614, 12},
    {"queens8", "lowspace", 1215, 17},
    {"myciel7", "reduce", 1334, 9},
    {"myciel7", "lowspace", 741, 23},
    {"karate", "reduce", 2072, 6},
    {"karate", "lowspace", 474, 7},
    // The K_{32,32} blocks are bipartite: reduce's recursion collapses them
    // to a 2-coloring, while lowspace's bin-greedy keeps the full Delta+1
    // spread — a useful spot check that the table pins behavior per pipeline.
    {"threshold32", "reduce", 856, 2},
    {"threshold32", "lowspace", 276, 33},
};

TEST(Corpus, RoundsAndColorsPinnedAcrossThreads) {
  for (const CorpusGraph& cg : corpus_graphs()) {
    const Graph g = cg.build();
    const PaletteSet pal = PaletteSet::delta_plus_one(g);
    for (const char* pipeline : {"reduce", "lowspace"}) {
      std::optional<cli::PipelineRun> first;
      for (const unsigned threads : {1u, 2u, 4u, 7u}) {
        ExecHolder holder = make_exec_holder(threads);
        cli::PipelineRun run = cli::run_pipeline(
            pipeline, g, pal, holder.exec, /*seed=*/1, /*want_stats=*/false);
        ASSERT_TRUE(verify_coloring(g, pal, run.coloring).ok)
            << cg.name << "/" << pipeline << " at " << threads << " threads";
        if (!first) {
          first = std::move(run);
        } else {
          ASSERT_EQ(first->coloring.color, run.coloring.color)
              << cg.name << "/" << pipeline << ": coloring changed at "
              << threads << " threads";
          ASSERT_EQ(first->rounds, run.rounds)
              << cg.name << "/" << pipeline << ": rounds changed at "
              << threads << " threads";
        }
      }
      const CorpusBaseline* base = nullptr;
      for (const CorpusBaseline& b : kCorpusBaselines) {
        if (std::string(b.graph) == cg.name &&
            std::string(b.pipeline) == pipeline) {
          base = &b;
        }
      }
      ASSERT_NE(base, nullptr) << cg.name << "/" << pipeline
                               << ": no tracked baseline";
      EXPECT_EQ(first->rounds, base->rounds) << cg.name << "/" << pipeline;
      EXPECT_EQ(cli::count_distinct_colors(first->coloring), base->colors)
          << cg.name << "/" << pipeline;
    }
  }
}

}  // namespace
}  // namespace detcol
