// Adversarial and structural stress cases: inputs designed to push the
// partition machinery into its uncomfortable corners — extreme degree skew,
// maximal palette overlap, bridge-heavy topologies, near-threshold
// palettes — while the coloring must stay verified.
#include <gtest/gtest.h>

#include "baselines/random_trial.hpp"
#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"

namespace detcol {
namespace {

void expect_all_valid(const Graph& g, const PaletteSet& pal) {
  {
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 1.0;  // hardest: recursion forced early
    const auto r = color_reduce(g, pal, cfg);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "color_reduce: " << v.issue;
  }
  {
    const auto r = low_space_color(g, pal);
    const auto v = verify_coloring(g, pal, r.coloring);
    ASSERT_TRUE(v.ok) << "low_space: " << v.issue;
  }
}

TEST(Adversarial, BarbellTwoCliquesOneBridge) {
  // Dense ends, a single bridge: the partition sees wildly non-uniform
  // structure; the bridge nodes' goodness flips easily.
  std::vector<Edge> edges;
  const NodeId k = 40;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = k; u < 2 * k; ++u) {
    for (NodeId v = u + 1; v < 2 * k; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(k - 1, k);  // bridge
  const Graph g = Graph::from_edges(2 * k, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, LollipopCliquePlusLongTail) {
  std::vector<Edge> edges;
  const NodeId k = 30, tail = 200;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
  }
  for (NodeId v = k; v < k + tail; ++v) edges.emplace_back(v - 1, v);
  const Graph g = Graph::from_edges(k + tail, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, IdenticalListsMaximalOverlap) {
  // Every node has the *same* list of exactly Delta+1 colors drawn from a
  // huge space: h2 must split one shared palette across bins for everyone.
  const Graph g = gen_random_regular(500, 16, 3);
  std::vector<Color> shared;
  for (Color i = 0; i <= g.max_degree(); ++i) {
    shared.push_back(1'000'000'007ull * (i + 1));
  }
  std::vector<std::vector<Color>> lists(g.num_nodes(), shared);
  const PaletteSet pal{std::move(lists)};
  expect_all_valid(g, pal);
}

TEST(Adversarial, TwoHubsSharedLeaves) {
  // Double star: two hubs adjacent to all leaves and to each other —
  // maximum degree n-1 with minimum edge count.
  const NodeId n = 300;
  std::vector<Edge> edges;
  for (NodeId v = 2; v < n; ++v) {
    edges.emplace_back(0, v);
    edges.emplace_back(1, v);
  }
  edges.emplace_back(0, 1);
  const Graph g = Graph::from_edges(n, edges);
  expect_all_valid(g, PaletteSet::delta_plus_one(g));
}

TEST(Adversarial, PalettesExactlyDegPlusOne) {
  // The tightest legal palettes everywhere: zero slack for the invariant.
  const Graph g = gen_power_law(800, 2.4, 10.0, 7);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 24, 9);
  expect_all_valid(g, pal);
}

TEST(Adversarial, CliqueWithPendantPerNode) {
  // K_k where each clique node also has a pendant leaf: leaves have degree
  // 1 and palettes of size 2 under deg+1 lists.
  const NodeId k = 48;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) edges.emplace_back(u, v);
    edges.emplace_back(u, static_cast<NodeId>(k + u));
  }
  const Graph g = Graph::from_edges(2 * k, edges);
  expect_all_valid(g, PaletteSet::deg_plus_one_lists(g, 1u << 16, 1));
}

TEST(Adversarial, ColorIdsAtDomainExtremes) {
  // Palette colors near 0 and near 2^61: the hash range mapping must not
  // bias or overflow.
  const Graph g = gen_ring(100);
  std::vector<std::vector<Color>> lists(100);
  for (NodeId v = 0; v < 100; ++v) {
    lists[v] = {0, (std::uint64_t{1} << 61) - 2 - v, 1 + v};
  }
  const PaletteSet pal{std::move(lists)};
  expect_all_valid(g, pal);
}

TEST(Adversarial, RandomTrialWorstSeedStillTerminates) {
  // Pathological-ish seed choices must not stall the randomized baseline
  // (its per-round success probability is constant regardless).
  const Graph g = gen_complete(32);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto r = random_trial_color(g, pal, seed);
    ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
    EXPECT_LE(r.trial_rounds, 300u);
  }
}

TEST(Adversarial, DeterminismAcrossConfigurations) {
  // Any config permutation must be internally deterministic (same config
  // twice -> identical coloring), even where configs differ among each
  // other.
  const Graph g = gen_gnp(400, 0.06, 21);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (const double cf : {1.0, 4.0}) {
    for (const unsigned c : {2u, 4u}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = cf;
      cfg.part.independence = c;
      const auto a = color_reduce(g, pal, cfg);
      const auto b = color_reduce(g, pal, cfg);
      ASSERT_EQ(a.coloring.color, b.coloring.color);
      ASSERT_TRUE(verify_coloring(g, pal, a.coloring).ok);
    }
  }
}

}  // namespace
}  // namespace detcol
