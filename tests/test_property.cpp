// Parameterized property sweeps: every (family, size, palette-mode)
// combination must yield a verified coloring, respect the model's space
// limits, and keep round counts in the constant-in-n regime of Theorem 1.1.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"

namespace detcol {
namespace {

enum class Family { kGnp, kRegular, kPowerLaw, kGrid, kPlanted };
enum class PaletteMode { kDeltaPlusOne, kLists, kDegPlusOne };

std::string family_name(Family f) {
  switch (f) {
    case Family::kGnp: return "gnp";
    case Family::kRegular: return "regular";
    case Family::kPowerLaw: return "powerlaw";
    case Family::kGrid: return "grid";
    case Family::kPlanted: return "planted";
  }
  return "?";
}

std::string palette_name(PaletteMode p) {
  switch (p) {
    case PaletteMode::kDeltaPlusOne: return "delta1";
    case PaletteMode::kLists: return "lists";
    case PaletteMode::kDegPlusOne: return "deg1";
  }
  return "?";
}

Graph make_graph(Family f, NodeId n, std::uint64_t seed) {
  switch (f) {
    case Family::kGnp:
      return gen_gnp(n, 12.0 / n, seed);
    case Family::kRegular:
      return gen_random_regular(n, 12, seed);
    case Family::kPowerLaw:
      return gen_power_law(n, 2.5, 8.0, seed);
    case Family::kGrid: {
      const NodeId side = static_cast<NodeId>(std::sqrt(double(n)));
      return gen_grid(side, side);
    }
    case Family::kPlanted:
      return gen_planted_kcolorable(n, 6, 24.0 / n, seed);
  }
  return Graph();
}

PaletteSet make_palettes(PaletteMode p, const Graph& g, std::uint64_t seed) {
  switch (p) {
    case PaletteMode::kDeltaPlusOne:
      return PaletteSet::delta_plus_one(g);
    case PaletteMode::kLists:
      return PaletteSet::random_lists(g, 1u << 20, seed);
    case PaletteMode::kDegPlusOne:
      return PaletteSet::deg_plus_one_lists(g, 1u << 20, seed);
  }
  return PaletteSet();
}

using Param = std::tuple<Family, NodeId, PaletteMode>;

class ColorReduceProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ColorReduceProperty, ProducesVerifiedColoringWithinModelLimits) {
  const auto [family, n, pmode] = GetParam();
  const Graph g = make_graph(family, n, 1000 + n);
  const PaletteSet pal = make_palettes(pmode, g, 77);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;  // force recursion on most sizes
  const auto r = color_reduce(g, pal, cfg);
  const auto v = verify_coloring(g, pal, r.coloring);
  ASSERT_TRUE(v.ok) << family_name(family) << "/" << palette_name(pmode)
                    << " n=" << n << ": " << v.issue;
  // Space: collected instances always fit a machine.
  EXPECT_LE(r.peak_collect_words,
            static_cast<std::uint64_t>(cfg.collect_slack * g.num_nodes()));
  // Depth safety: the paper proves <= 9 at asymptotic scale; practical runs
  // must stay within the same ballpark, far below the hard cap.
  EXPECT_LE(r.max_depth_reached, 16u);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const Family f = std::get<0>(info.param);
  const NodeId n = std::get<1>(info.param);
  const PaletteMode p = std::get<2>(info.param);
  return family_name(f) + "_" + std::to_string(n) + "_" + palette_name(p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColorReduceProperty,
    ::testing::Combine(
        ::testing::Values(Family::kGnp, Family::kRegular, Family::kPowerLaw,
                          Family::kGrid, Family::kPlanted),
        ::testing::Values(NodeId{256}, NodeId{1024}, NodeId{4096}),
        ::testing::Values(PaletteMode::kDeltaPlusOne, PaletteMode::kLists,
                          PaletteMode::kDegPlusOne)),
    param_name);

class RoundConstancy : public ::testing::TestWithParam<NodeId> {};

TEST_P(RoundConstancy, RoundsDoNotGrowWithN) {
  // Theorem 1.1's empirical shape: at fixed degree, rounds are flat in n.
  const NodeId n = GetParam();
  const Graph g = gen_random_regular(n, 16, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const auto r = color_reduce(g, pal, cfg);
  ASSERT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  // One absolute cap for every n in the sweep = constancy in n.
  EXPECT_LE(r.ledger.total_rounds(), 2000u);
  EXPECT_LE(r.max_depth_reached, 12u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundConstancy,
                         ::testing::Values(NodeId{512}, NodeId{1024},
                                           NodeId{2048}, NodeId{4096},
                                           NodeId{8192}));

// Every seed-selection strategy must drive the full pipeline to a verified
// coloring with the same charged round schedule (the strategies differ only
// in host-side search effort, never in model cost or correctness).
using StratParam = std::tuple<SeedStrategy, Family>;

class StrategySweep : public ::testing::TestWithParam<StratParam> {};

TEST_P(StrategySweep, AllStrategiesColorAllFamilies) {
  const auto [strategy, family] = GetParam();
  const Graph g = make_graph(family, 512, 99);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  cfg.part.seed.strategy = strategy;
  cfg.part.seed.chunk_bits = 6;
  cfg.part.seed.mce_samples = 2;
  const auto r = color_reduce(g, pal, cfg);
  const auto v = verify_coloring(g, pal, r.coloring);
  ASSERT_TRUE(v.ok) << family_name(family) << ": " << v.issue;

  // The per-partition model schedule depends only on seed length and
  // chunking, not the search strategy; different strategies may pick
  // different (equally valid) seeds and thus slightly different recursion
  // shapes, so totals agree within a tight envelope rather than exactly.
  ColorReduceConfig base = cfg;
  base.part.seed.strategy = SeedStrategy::kThresholdScan;
  const auto rb = color_reduce(g, pal, base);
  const double a = static_cast<double>(r.ledger.total_rounds());
  const double b = static_cast<double>(rb.ledger.total_rounds());
  EXPECT_NEAR(a, b, 0.15 * std::max(a, b));
}

std::string strat_name(const ::testing::TestParamInfo<StratParam>& info) {
  const auto s = std::get<0>(info.param);
  const std::string base =
      s == SeedStrategy::kThresholdScan ? "scan" : "mcesampled";
  return base + "_" + family_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StrategySweep,
    ::testing::Combine(::testing::Values(SeedStrategy::kThresholdScan,
                                         SeedStrategy::kMceSampled),
                       ::testing::Values(Family::kGnp, Family::kRegular,
                                         Family::kPowerLaw)),
    strat_name);

}  // namespace
}  // namespace detcol
