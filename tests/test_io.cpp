#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Io, RoundTripThroughStream) {
  const Graph g = gen_gnp(120, 0.05, 7);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
  }
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header comment\n3 2\n0 1 # inline\n\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MissingHeaderRejected) {
  std::stringstream ss("# only comments\n");
  EXPECT_THROW(read_edge_list(ss), CheckError);
}

TEST(Io, EdgeCountMismatchRejected) {
  std::stringstream ss("3 5\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), CheckError);
}

TEST(Io, FileRoundTrip) {
  const Graph g = gen_ring(12);
  const std::string path = "/tmp/detcolor_io_test.edges";
  write_edge_list_file(path, g);
  const Graph h = read_edge_list_file(path);
  EXPECT_EQ(h.num_edges(), 12u);
}

TEST(Io, MissingFileRejected) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/nope.edges"), CheckError);
}

}  // namespace
}  // namespace detcol
