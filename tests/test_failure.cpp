// Failure injection: every documented precondition violation must surface as
// a CheckError (never UB, never a silent wrong answer).
#include <gtest/gtest.h>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "sim/clique_sim.hpp"
#include "sim/mpc_sim.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Failure, PaletteEqualToDegreeRejected) {
  // p(v) == d(v) (not strictly larger) must be rejected up front.
  const Graph g = gen_complete(5);
  const PaletteSet pal = PaletteSet::uniform(5, 4);
  EXPECT_THROW(color_reduce(g, pal), CheckError);
  EXPECT_THROW(low_space_color(g, pal), CheckError);
}

TEST(Failure, OneDeficientNodeIsEnough) {
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  std::vector<std::vector<Color>> lists = {{1, 2}, {3}, {4, 5}};  // node 1: p=1=deg-1? deg(1)=2
  const PaletteSet pal{std::move(lists)};
  EXPECT_THROW(color_reduce(g, pal), CheckError);
}

TEST(Failure, CollectBeyondCapacityThrows) {
  const CliqueModel model(100, {}, 2.0, 2.0);
  MpcCosts acc;
  EXPECT_THROW(model.collect(201, "x", acc), CheckError);
}

TEST(Failure, RouteBeyondLenzenBoundThrows) {
  const CliqueModel model(100, {}, 1.0);
  MpcCosts acc;
  EXPECT_THROW(model.lenzen_route(1000, 101, "x", acc), CheckError);
}

TEST(Failure, MpcSpaceViolationsThrow) {
  const MpcModel model(64, 1024);
  MpcCosts acc;
  EXPECT_THROW(model.gather(65, "x", acc), CheckError);
  EXPECT_THROW(model.sort(2048, "x", acc), CheckError);
  EXPECT_THROW(model.note_resident(10, 2048, acc), CheckError);
}

TEST(Failure, TinyCollectSlackSurfacesModelViolation) {
  // With an absurdly small machine, Algorithm 1's collect step must fail
  // loudly instead of silently overflowing "machine memory".
  const Graph g = gen_complete(64);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.collect_slack = 1.0;   // capacity = n words, K_64 needs ~4x more
  cfg.route_slack = 64.0;    // keep routing out of the way
  cfg.part.min_ell = 1e9;    // force immediate collect
  EXPECT_THROW(color_reduce(g, pal, cfg), CheckError);
}

TEST(Failure, MalformedConfigRejected) {
  // Graph dense enough that a partition (and thus seed selection) happens.
  const Graph g = gen_gnp(300, 0.1, 1);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 0.5;
  cfg.part.seed.chunk_bits = 0;  // invalid
  EXPECT_THROW(color_reduce(g, pal, cfg), CheckError);
}

TEST(Failure, ModelsRejectDegenerateConstruction) {
  EXPECT_THROW(CliqueModel(0), CheckError);
  EXPECT_THROW(CliqueModel(4, {}, 0.5), CheckError);
  EXPECT_THROW(MpcModel(0, 10), CheckError);
  EXPECT_THROW(MpcModel(100, 10), CheckError);
}

TEST(Failure, GraphPreconditionsEnforcedThroughPipeline) {
  // Self-loop rejection happens at construction, before any algorithm.
  const std::vector<Edge> loop = {{1, 1}};
  EXPECT_THROW(Graph::from_edges(3, loop), CheckError);
}

}  // namespace
}  // namespace detcol
