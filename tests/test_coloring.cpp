#include <gtest/gtest.h>

#include <numeric>

#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Coloring, StateTracking) {
  Coloring c(3);
  EXPECT_EQ(c.num_colored(), 0u);
  EXPECT_FALSE(c.complete());
  c.color[1] = 7;
  EXPECT_TRUE(c.is_colored(1));
  EXPECT_FALSE(c.is_colored(0));
  EXPECT_EQ(c.num_colored(), 1u);
}

TEST(Verify, DetectsUncolored) {
  const Graph g = gen_ring(4);
  const PaletteSet p = PaletteSet::delta_plus_one(g);
  Coloring c(4);
  const auto r = verify_coloring(g, p, c);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.issue.find("uncolored"), std::string::npos);
}

TEST(Verify, DetectsMonochromaticEdge) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const PaletteSet p = PaletteSet::uniform(2, 3);
  Coloring c(2);
  c.color[0] = 1;
  c.color[1] = 1;
  const auto r = verify_coloring(g, p, c);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.issue.find("monochromatic"), std::string::npos);
}

TEST(Verify, DetectsOutOfPalette) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const PaletteSet p = PaletteSet::uniform(2, 3);
  Coloring c(2);
  c.color[0] = 0;
  c.color[1] = 7;  // outside [0,3)
  const auto r = verify_coloring(g, p, c);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.issue.find("palette"), std::string::npos);
}

TEST(Verify, AcceptsProperColoring) {
  const Graph g = gen_ring(4);
  const PaletteSet p = PaletteSet::uniform(4, 2);
  Coloring c(4);
  c.color = {0, 1, 0, 1};
  EXPECT_TRUE(verify_coloring(g, p, c).ok);
}

TEST(Verify, PartialIgnoresUncolored) {
  const Graph g = gen_ring(4);
  Coloring c(4);
  c.color[0] = 5;
  EXPECT_TRUE(verify_proper_partial(g, c).ok);
  c.color[1] = 5;
  EXPECT_FALSE(verify_proper_partial(g, c).ok);
}

TEST(Greedy, ColorsWholeGraphWhenPalettesSuffice) {
  const Graph g = gen_gnp(200, 0.05, 3);
  const PaletteSet p = PaletteSet::delta_plus_one(g);
  Coloring c(g.num_nodes());
  EXPECT_TRUE(greedy_color_all(g, p, c));
  EXPECT_TRUE(verify_coloring(g, p, c).ok);
}

TEST(Greedy, FailsGracefullyWithTinyPalettes) {
  const Graph g = gen_complete(4);
  const PaletteSet p = PaletteSet::uniform(4, 2);  // needs 4 colors
  Coloring c(4);
  std::vector<NodeId> order(4);
  std::iota(order.begin(), order.end(), 0);
  EXPECT_FALSE(greedy_color(g, p, order, c));
}

TEST(Greedy, RespectsPreexistingColors) {
  // Path 0-1-2; color node 1 first, then greedily extend.
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const PaletteSet p = PaletteSet::uniform(3, 2);
  Coloring c(3);
  c.color[1] = 0;
  const std::vector<NodeId> order = {0, 2};
  EXPECT_TRUE(greedy_color(g, p, order, c));
  EXPECT_EQ(c.color[0], 1u);
  EXPECT_EQ(c.color[2], 1u);
  EXPECT_TRUE(verify_coloring(g, p, c).ok);
}

TEST(Greedy, RecoloringRejected) {
  const Graph g = gen_ring(3);
  const PaletteSet p = PaletteSet::uniform(3, 3);
  Coloring c(3);
  c.color[0] = 0;
  const std::vector<NodeId> order = {0};
  EXPECT_THROW(greedy_color(g, p, order, c), CheckError);
}

TEST(Greedy, ListPalettesRespected) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  std::vector<std::vector<Color>> lists = {{10, 20}, {10, 30}};
  const PaletteSet p{std::move(lists)};
  Coloring c(2);
  EXPECT_TRUE(greedy_color_all(g, p, c));
  EXPECT_TRUE(verify_coloring(g, p, c).ok);
  EXPECT_NE(c.color[0], c.color[1]);
}

}  // namespace
}  // namespace detcol
