// Lane-width property tests for the vectorized M61 field kernels
// (hashing/simd_kernels.hpp): every available kernel must be byte-identical
// to the scalar reference on every pass, at every point count straddling the
// vector width (0..4 lanes plus tails), on edge coefficients (0, p-1) and
// duplicate points — plus end-to-end CLI checks of the --simd / DETCOL_SIMD
// contract and the "kernel" stats field (binary path injected by CMake as
// DETCOL_BIN).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "derand/seedbits.hpp"
#include "hashing/batch_eval.hpp"
#include "hashing/field.hpp"
#include "hashing/kwise.hpp"
#include "hashing/simd_kernels.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

/// Forces a kernel for the lifetime of one scope and restores the previous
/// selection on exit (tests must not leak a forced kernel into each other).
class KernelGuard {
 public:
  explicit KernelGuard(const std::string& name) : prev_(active_simd_name()) {
    std::string error;
    const bool ok = select_simd(name, &error);
    EXPECT_TRUE(ok) << error;
  }
  ~KernelGuard() {
    std::string error;
    select_simd(prev_, &error);
  }

 private:
  std::string prev_;
};

/// Kernel names available on this host, scalar first (the reference).
std::vector<std::string> available_kernels() {
  std::vector<std::string> names{"scalar"};
  if (simd_available(SimdKind::kAvx2)) names.push_back("avx2");
  if (simd_available(SimdKind::kNeon)) names.push_back("neon");
  return names;
}

// Point counts straddling 0..4 vector blocks at both lane widths (AVX2: 4,
// NEON: 2), each with and without a scalar tail.
const std::size_t kCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33};

TEST(SimdKernels, ScalarAlwaysAvailableAndAutoResolves) {
  EXPECT_TRUE(simd_available(SimdKind::kScalar));
  EXPECT_TRUE(simd_available(simd_auto_kind()));
  std::string error;
  EXPECT_TRUE(select_simd("auto", &error)) << error;
  EXPECT_STREQ(active_simd_name(), simd_kind_name(simd_auto_kind()));
}

TEST(SimdKernels, SelectRejectsMalformedAndUnavailable) {
  const std::string before = active_simd_name();
  std::string error;
  EXPECT_FALSE(select_simd("bogus", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_EQ(before, active_simd_name());  // failed select leaves selection
  for (const SimdKind kind :
       {SimdKind::kScalar, SimdKind::kAvx2, SimdKind::kNeon}) {
    if (simd_available(kind)) continue;
    error.clear();
    EXPECT_FALSE(select_simd(simd_kind_name(kind), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(before, active_simd_name());
  }
}

/// One evaluation scenario: points (with duplicates and raw un-reduced
/// values), a seed word vector (with 0 and p-1 coefficients mixed in), and a
/// range; returns {field values, bins} of a BatchKWiseEval built and loaded
/// entirely under the currently active kernel.
struct BatchOut {
  std::vector<std::uint64_t> vals;
  std::vector<std::uint32_t> bins;
};

BatchOut run_batch(const std::vector<std::uint64_t>& points,
                   const std::vector<std::uint64_t>& words,
                   std::uint64_t range) {
  BatchKWiseEval eval(points, static_cast<unsigned>(words.size()), range);
  eval.load(words);
  BatchOut out;
  out.vals.resize(points.size());
  out.bins.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.vals[i] = eval.field_value(i);
  }
  eval.bins_into(out.bins, /*offset=*/1);
  return out;
}

TEST(SimdKernels, BatchEvalByteIdenticalAcrossKernels) {
  const auto kernels = available_kernels();
  Xoshiro256 rng(99);
  for (const std::size_t n : kCounts) {
    for (unsigned c : {1u, 2u, 4u, 8u}) {
      std::vector<std::uint64_t> points(n);
      for (std::size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0: points[i] = rng.next(); break;       // raw, un-reduced
          case 1: points[i] = i; break;                // small ids
          case 2: points[i] = kMersenne61 - 1; break;  // duplicates at p-1
          default: points[i] = n > 1 ? points[i / 2] : 0;  // duplicate point
        }
      }
      std::vector<std::uint64_t> words(c);
      for (unsigned j = 0; j < c; ++j) {
        words[j] = j % 3 == 0   ? 0
                   : j % 3 == 1 ? kMersenne61 - 1
                                : rng.next();
      }
      const std::uint64_t range = 1 + rng.next() % 97;

      KernelGuard base(kernels.front());
      const BatchOut expect = run_batch(points, words, range);
      for (const std::string& name : kernels) {
        KernelGuard guard(name);
        const BatchOut got = run_batch(points, words, range);
        EXPECT_EQ(expect.vals, got.vals)
            << "kernel=" << name << " n=" << n << " c=" << c;
        EXPECT_EQ(expect.bins, got.bins)
            << "kernel=" << name << " n=" << n << " c=" << c;
      }
    }
  }
}

TEST(SimdKernels, BatchEvalMatchesKWiseHashUnderEveryKernel) {
  // Cross-check against the Horner path (itself routed through the kernel
  // table): the two independent computations must agree bit for bit under
  // every kernel, including the huge range that takes the scalar bin path.
  Xoshiro256 rng(7);
  const std::size_t n = 33;
  std::vector<std::uint64_t> points(n);
  for (auto& p : points) p = rng.next();
  for (const std::string& name : available_kernels()) {
    KernelGuard guard(name);
    for (const std::uint64_t range : {std::uint64_t{5}, kMersenne61 - 1}) {
      std::vector<std::uint64_t> words(4);
      for (auto& w : words) w = rng.next();
      const KWiseHash h(words, range);
      BatchKWiseEval eval(points, 4, range);
      eval.load(words);
      std::vector<std::uint64_t> bulk_vals(n);
      std::vector<std::uint32_t> bulk_bins(n);
      h.field_eval_many(points, bulk_vals);
      h.eval_bins_many(points, bulk_bins, /*offset=*/1);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(eval.field_value(i), h.field_eval(points[i]))
            << "kernel=" << name << " i=" << i;
        EXPECT_EQ(bulk_vals[i], h.field_eval(points[i]))
            << "kernel=" << name << " i=" << i;
        EXPECT_EQ(eval.bin(i), h(points[i])) << "kernel=" << name;
        EXPECT_EQ(bulk_bins[i],
                  static_cast<std::uint32_t>(h(points[i])) + 1)
            << "kernel=" << name << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, IncrementalLoadsStayIdenticalAcrossKernels) {
  // The MCE walk's signature access pattern: many load() calls differing in
  // one word. Every kernel must track the scalar engine through the whole
  // walk, not just on a fresh load.
  const auto kernels = available_kernels();
  Xoshiro256 rng(31);
  const std::size_t n = 21;
  const unsigned c = 4;
  std::vector<std::uint64_t> points(n);
  for (auto& p : points) p = rng.next();
  std::vector<std::vector<std::uint64_t>> word_seq;
  std::vector<std::uint64_t> words(c, 0);
  for (int step = 0; step < 20; ++step) {
    words[step % c] = step % 5 == 0 ? 0 : rng.next();
    word_seq.push_back(words);
  }

  KernelGuard base(kernels.front());
  BatchKWiseEval ref(points, c, 13);
  for (const std::string& name : kernels) {
    KernelGuard guard(name);
    BatchKWiseEval eval(points, c, 13);
    // Walk ref and eval in lockstep; compare after every load.
    BatchKWiseEval ref_local(points, c, 13);
    for (const auto& w : word_seq) {
      {
        KernelGuard scalar_guard(kernels.front());
        ref_local.load(w);
      }
      eval.load(w);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ref_local.field_value(i), eval.field_value(i))
            << "kernel=" << name << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CLI: the --simd / DETCOL_SIMD contract (exit 0/2) and the "kernel" field.
// ---------------------------------------------------------------------------

std::string shq(const std::string& s) { return "'" + s + "'"; }

int run_detcol(const std::string& args) {
  const std::string cmd = shq(DETCOL_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "system() failed for: " << cmd;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::path(::testing::TempDir()) / "detcol_simd" / info->name();
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(SimdCli, MalformedAndUnavailableAreUsageErrors) {
  const fs::path dir = test_dir();
  const std::string out = " --quiet --out=" + shq((dir / "c.txt").string());
  EXPECT_EQ(run_detcol("color --gen=ring --n=32 --simd=bogus" + out), 2);
  EXPECT_EQ(run_detcol("color --gen=ring --n=32 --simd=" + out), 2);
  // Exactly one of avx2/neon can be available per build; the other must be
  // rejected with exit 2 rather than silently falling back.
  if (!simd_available(SimdKind::kAvx2)) {
    EXPECT_EQ(run_detcol("color --gen=ring --n=32 --simd=avx2" + out), 2);
  }
  if (!simd_available(SimdKind::kNeon)) {
    EXPECT_EQ(run_detcol("color --gen=ring --n=32 --simd=neon" + out), 2);
  }
}

TEST(SimdCli, EnvSelectsAndFlagWins) {
  const fs::path dir = test_dir();
  const fs::path stats = dir / "s.json";
  const std::string base = "color --gen=gnp --n=300 --p=0.03 --seed=1 --quiet "
                           "--out=" +
                           shq((dir / "c.txt").string()) +
                           " --stats=" + shq(stats.string());
  // Env selects the kernel...
  const std::string cmd = "env DETCOL_SIMD=scalar " + shq(DETCOL_BIN) + " " +
                          base;
  ASSERT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0);
  EXPECT_NE(read_file(stats).find("\"kernel\":\"scalar\""),
            std::string::npos);
  // ...a malformed env value is a usage error...
  const std::string bad = "env DETCOL_SIMD=bogus " + shq(DETCOL_BIN) + " " +
                          base;
  EXPECT_EQ(WEXITSTATUS(std::system(bad.c_str())), 2);
  // ...and the flag beats a malformed env value.
  const std::string wins = "env DETCOL_SIMD=bogus " + shq(DETCOL_BIN) + " " +
                           base + " --simd=scalar";
  EXPECT_EQ(WEXITSTATUS(std::system(wins.c_str())), 0);
}

TEST(SimdCli, StatsRecordKernelAndForcedRunsAreByteIdentical) {
  const fs::path dir = test_dir();
  std::vector<std::string> colorings;
  for (const std::string& name : available_kernels()) {
    const fs::path colors = dir / ("c_" + name + ".txt");
    const fs::path stats = dir / ("s_" + name + ".json");
    ASSERT_EQ(run_detcol("color --gen=gnp --n=400 --p=0.03 --seed=3 --quiet "
                         "--simd=" +
                         name + " --out=" + shq(colors.string()) +
                         " --stats=" + shq(stats.string())),
              0);
    EXPECT_NE(read_file(stats).find("\"kernel\":\"" + name + "\""),
              std::string::npos)
        << name;
    colorings.push_back(read_file(colors));
  }
  for (std::size_t i = 1; i < colorings.size(); ++i) {
    EXPECT_EQ(colorings[0], colorings[i])
        << "coloring differs under kernel " << available_kernels()[i];
  }
}

TEST(SimdCli, SuiteKernelAxisRecordsKernelPerCell) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "k.spec";
  const fs::path report = dir / "report.json";
  {
    std::ofstream os(spec);
    os << "graph smoke --gen=gnp --n=200 --p=0.03 --seed=1\n"
       << "pipelines reduce\n"
       << "threads 1\n"
       << "kernels auto scalar\n"
       << "timing off\n";
  }
  ASSERT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " --quiet " +
                       "--out=" + shq(report.string())),
            0);
  const std::string text = read_file(report);
  EXPECT_NE(text.find("\"kernel\":\"scalar\""), std::string::npos);
  const std::string auto_name = simd_kind_name(simd_auto_kind());
  EXPECT_NE(text.find("\"kernel\":\"" + auto_name + "\""), std::string::npos);
  // A spec forcing an unavailable kernel is a data error (exit 1).
  if (!simd_available(SimdKind::kNeon)) {
    const fs::path bad = dir / "bad.spec";
    {
      std::ofstream os(bad);
      os << "graph g --gen=ring --n=32\npipelines greedy\nkernels neon\n";
    }
    EXPECT_EQ(run_detcol("suite --spec=" + shq(bad.string()) + " --quiet " +
                         "--out=" + shq((dir / "bad.json").string())),
              1);
  }
}

}  // namespace
}  // namespace detcol
