#include <gtest/gtest.h>

#include <numeric>

#include "core/classify.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

Instance make_instance(Graph g, double ell) {
  Instance inst;
  inst.orig.resize(g.num_nodes());
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = std::move(g);
  inst.ell = ell;
  return inst;
}

/// Constant hash: degree-0 polynomial, so all inputs map to the same value.
KWiseHash constant_hash(std::uint64_t value_word, std::uint64_t range) {
  std::vector<std::uint64_t> coeffs = {value_word};
  return KWiseHash(coeffs, range);
}

TEST(Classify, BinAssignmentFollowsH1) {
  const Graph g = gen_gnp(64, 0.2, 1);
  const Instance inst = make_instance(g, 16.0);
  const PaletteSet pal = PaletteSet::uniform(64, 20);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);
  const auto h1 = KWiseHash::from_u64_seed(3, 4, b);
  const auto h2 = KWiseHash::from_u64_seed(4, 4, b - 1);
  const auto cls = classify(inst, pal, h1, h2, 64, params);
  EXPECT_EQ(cls.num_bins, b);
  for (NodeId v = 0; v < 64; ++v) {
    if (cls.bin_of[v] != 0) {
      EXPECT_EQ(cls.bin_of[v], h1(v) + 1);
    }
  }
}

TEST(Classify, DegreesInBinComputedCorrectly) {
  // Triangle 0-1-2 plus isolated 3. Constant h1 puts everyone in one bin.
  const Graph g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const Instance inst = make_instance(g, 16.0);
  const PaletteSet pal = PaletteSet::uniform(4, 20);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);
  const auto h1 = constant_hash(0, b);  // everyone in bin h(x)=0 -> bin 1
  const auto h2 = KWiseHash::from_u64_seed(4, 4, b - 1);
  const auto cls = classify(inst, pal, h1, h2, 4, params);
  EXPECT_EQ(cls.deg_in_bin[0], 2u);
  EXPECT_EQ(cls.deg_in_bin[1], 2u);
  EXPECT_EQ(cls.deg_in_bin[3], 0u);
}

TEST(Classify, PalettesInBinCountH2Share) {
  // Single node, palette {0..9}; count colors landing in its bin.
  const Graph g = Graph::from_edges(1, std::vector<Edge>{});
  const Instance inst = make_instance(g, 16.0);
  const PaletteSet pal = PaletteSet::uniform(1, 10);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);  // 2 at ell=16
  ASSERT_EQ(b, 2u);
  const auto h1 = constant_hash(0, b);                 // node in bin 1
  const auto h2 = KWiseHash::from_u64_seed(9, 4, b - 1);  // range 1: all bin 1
  const auto cls = classify(inst, pal, h1, h2, 1, params);
  // All 10 colors land in color bin 1, the node's bin.
  EXPECT_EQ(cls.pal_in_bin[0], 10u);
}

TEST(Classify, LastBinGetsNoPaletteCount) {
  const Graph g = Graph::from_edges(1, std::vector<Edge>{});
  const Instance inst = make_instance(g, 16.0);
  const PaletteSet pal = PaletteSet::uniform(1, 10);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);
  // Put node in the last bin: h1 constant with field value mapping to b-1.
  // Field value v maps to bucket (v * b) >> 61; choose v just below p.
  const auto h1 = constant_hash((std::uint64_t{1} << 61) - 2, b);
  ASSERT_EQ(h1(0), b - 1);  // last bucket, bin index b
  const auto h2 = KWiseHash::from_u64_seed(9, 4, b - 1);
  const auto cls = classify(inst, pal, h1, h2, 1, params);
  EXPECT_EQ(cls.pal_in_bin[0], 0u);
  // Isolated node in last bin: degree condition trivially met -> good.
  EXPECT_EQ(cls.bin_of[0], b);
}

TEST(Classify, BadBinDetectedWhenEverythingCollides) {
  // 600 isolated nodes with ell = 1e10 -> b = 10 bins; a constant h1 dumps
  // everyone into one bin, far beyond the 2*n_G/b + n^0.6 ~ 136 capacity.
  const NodeId n = 600;
  const Graph g = Graph::from_edges(n, std::vector<Edge>{});
  const Instance inst = make_instance(g, 1e10);
  const PaletteSet pal = PaletteSet::uniform(n, 20);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);
  ASSERT_EQ(b, 10u);
  // Dump everyone into the *last* bin (no palette condition there, and the
  // degree condition is trivial on isolated nodes): all 600 nodes are good,
  // crowding the bin far beyond its 2*n_G/b + n^0.6 ~ 136 capacity.
  const auto h1 = constant_hash((std::uint64_t{1} << 61) - 2, b);
  ASSERT_EQ(h1(0), b - 1);
  const auto h2 = KWiseHash::from_u64_seed(4, 4, b - 1);
  const auto cls = classify(inst, pal, h1, h2, n, params);
  EXPECT_EQ(cls.num_bad_nodes, 0u);
  EXPECT_GE(cls.num_bad_bins, 1u);
  EXPECT_GE(cls.cost_q, static_cast<double>(n));  // n * bad_bins dominates
}

TEST(Classify, CostAccounting) {
  const Graph g = gen_gnp(128, 0.15, 2);
  const Instance inst = make_instance(g, static_cast<double>(g.max_degree()));
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const std::uint64_t b = num_bins(inst.ell, params);
  const auto h1 = KWiseHash::from_u64_seed(5, 4, b);
  const auto h2 = KWiseHash::from_u64_seed(6, 4, b - 1);
  const auto cls = classify(inst, pal, h1, h2, 128, params);
  // cost_q = bad + n*bad_bins exactly.
  EXPECT_DOUBLE_EQ(cls.cost_q,
                   static_cast<double>(cls.num_bad_nodes) +
                       128.0 * static_cast<double>(cls.num_bad_bins));
  // bad_graph_words counts 1+deg per bad node.
  std::uint64_t words = 0;
  for (NodeId v = 0; v < 128; ++v) {
    if (cls.bin_of[v] == 0) words += 1 + g.degree(v);
  }
  EXPECT_EQ(cls.bad_graph_words, words);
  // Bin sizes partition the good nodes.
  std::uint64_t good = 0;
  for (const auto s : cls.bin_sizes) good += s;
  EXPECT_EQ(good + cls.num_bad_nodes, 128u);
}

TEST(Classify, RangeMismatchRejected) {
  const Graph g = gen_ring(8);
  const Instance inst = make_instance(g, 16.0);
  const PaletteSet pal = PaletteSet::uniform(8, 20);
  PartitionParams params;
  const auto h1 = KWiseHash::from_u64_seed(1, 4, 99);  // wrong range
  const auto h2 = KWiseHash::from_u64_seed(2, 4, 1);
  EXPECT_THROW(classify(inst, pal, h1, h2, 8, params), CheckError);
}

TEST(Params, NumBinsAndNextEll) {
  PartitionParams params;
  EXPECT_EQ(num_bins(16.0, params), 2u);          // 16^0.1 < 2 -> floor
  EXPECT_EQ(num_bins(1e10, params), 10u);         // (1e10)^0.1 = 10
  EXPECT_GT(next_ell(1000.0, params), 2.0);
  EXPECT_LT(next_ell(1000.0, params), 1000.0);
  EXPECT_DOUBLE_EQ(next_ell(2.0, params), 2.0);   // floor at 2
}

TEST(Params, TrajectoryBoundFormulas) {
  // Lemma 3.11 bounds bracket the nominal ell trajectory.
  const double delta0 = 1e6;
  for (unsigned i = 0; i < 9; ++i) {
    EXPECT_LT(lemma_311_ell_lower(delta0, i), lemma_311_ell_upper(delta0, i));
  }
  // Lemma 3.14's consequence: at depth 9 the size bound is O(n).
  const double n = 1e9;
  const double size9 = lemma_312_nodes_upper(n, delta0, 9) *
                       lemma_313_degree_upper(delta0, 9);
  // 6^9 * (n * Delta^{0.9^9-1} + n^0.6) * Delta^{0.9^9} stays near-linear:
  EXPECT_LT(size9 / n, 1e9);  // far below n*Delta = 1e15
}

}  // namespace
}  // namespace detcol
