// Unit tests for the robustness toolkit: deterministic failpoints
// (util/failpoint.hpp), crash-safe writes (util/atomic_file.hpp), JSON
// reading with raw spans (util/json.hpp), and cooperative deadlines
// (util/deadline.hpp + ExecContext). The end-to-end fault-injection tests
// that drive the detcol binary live in test_fault_injection.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>

#include "exec/exec.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

// Each test disarms on exit so suites do not leak armed failpoints into one
// another (the registry is process-global).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { ASSERT_TRUE(arm_failpoints("", nullptr)); }
};

TEST_F(FailpointTest, unarmed_site_is_a_no_op) {
  for (int i = 0; i < 3; ++i) DC_FAILPOINT("test.nowhere");
  EXPECT_EQ(failpoint_hits("test.nowhere"), 0u);
}

TEST_F(FailpointTest, fires_on_exactly_the_kth_hit) {
  ASSERT_TRUE(arm_failpoints("test.site@3", nullptr));
  DC_FAILPOINT("test.site");
  DC_FAILPOINT("test.site");
  EXPECT_THROW(DC_FAILPOINT("test.site"), std::system_error);
  // Subsequent hits pass again: one-shot semantics.
  DC_FAILPOINT("test.site");
  EXPECT_EQ(failpoint_hits("test.site"), 4u);
}

TEST_F(FailpointTest, actions_map_to_exception_types) {
  ASSERT_TRUE(arm_failpoints("a@1:io,b@1:oom,c@1:check,d@1:timeout", nullptr));
  EXPECT_THROW(DC_FAILPOINT("a"), std::system_error);
  EXPECT_THROW(DC_FAILPOINT("b"), std::bad_alloc);
  EXPECT_THROW(DC_FAILPOINT("c"), CheckError);
  EXPECT_THROW(DC_FAILPOINT("d"), DeadlineExceeded);
}

TEST_F(FailpointTest, io_action_reports_enospc_and_names_the_site) {
  ASSERT_TRUE(arm_failpoints("disk.full@1:io", nullptr));
  try {
    DC_FAILPOINT("disk.full");
    FAIL() << "failpoint did not fire";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code(), std::errc::no_space_on_device);
    EXPECT_NE(std::string(e.what()).find("disk.full"), std::string::npos);
  }
}

TEST_F(FailpointTest, same_name_armed_twice_fires_both_entries) {
  ASSERT_TRUE(arm_failpoints("test.site@2:timeout,test.site@4:check",
                             nullptr));
  DC_FAILPOINT("test.site");
  EXPECT_THROW(DC_FAILPOINT("test.site"), DeadlineExceeded);
  DC_FAILPOINT("test.site");
  EXPECT_THROW(DC_FAILPOINT("test.site"), CheckError);
  DC_FAILPOINT("test.site");
}

TEST_F(FailpointTest, unlisted_names_do_not_fire) {
  ASSERT_TRUE(arm_failpoints("test.armed@1", nullptr));
  DC_FAILPOINT("test.other");  // must not throw
  EXPECT_EQ(failpoint_hits("test.other"), 0u);
}

TEST_F(FailpointTest, empty_spec_disarms) {
  ASSERT_TRUE(arm_failpoints("test.site@1", nullptr));
  ASSERT_TRUE(arm_failpoints("", nullptr));
  DC_FAILPOINT("test.site");  // must not throw
}

TEST_F(FailpointTest, malformed_specs_are_rejected_with_a_message) {
  for (const char* bad :
       {"noat", "@3", "x@", "x@0", "x@abc", "x@2:frobnicate", "x@-1"}) {
    std::string error;
    EXPECT_FALSE(arm_failpoints(bad, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST_F(FailpointTest, parse_failure_leaves_previous_arming_untouched) {
  ASSERT_TRUE(arm_failpoints("test.site@1:check", nullptr));
  EXPECT_FALSE(arm_failpoints("x@0", nullptr));
  EXPECT_THROW(DC_FAILPOINT("test.site"), CheckError);
}

// ---------------------------------------------------------------------------
// atomic_write_file / atomic_write_stream
// ---------------------------------------------------------------------------

class AtomicFileTest : public FailpointTest {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("detcol_atomic_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    FailpointTest::TearDown();
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string read_all(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return std::move(os).str();
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, creates_and_replaces) {
  const std::string p = path("out.txt");
  atomic_write_file(p, "first");
  EXPECT_EQ(read_all(p), "first");
  atomic_write_file(p, "second");
  EXPECT_EQ(read_all(p), "second");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(AtomicFileTest, injected_failure_preserves_old_content_and_no_tmp) {
  const std::string p = path("out.txt");
  atomic_write_file(p, "old");
  for (const char* site :
       {"atomic.write.body@1", "atomic.fsync@1", "atomic.rename@1"}) {
    ASSERT_TRUE(arm_failpoints(site, nullptr));
    EXPECT_THROW(atomic_write_file(p, "new"), std::system_error) << site;
    EXPECT_EQ(read_all(p), "old") << site;
    EXPECT_FALSE(fs::exists(p + ".tmp")) << site;
  }
}

TEST_F(AtomicFileTest, stream_variant_round_trips) {
  const std::string p = path("out.txt");
  atomic_write_stream(p, [](std::ostream& os) { os << "line " << 42 << '\n'; });
  EXPECT_EQ(read_all(p), "line 42\n");
}

TEST_F(AtomicFileTest, dev_null_stays_a_device_node) {
  atomic_write_file("/dev/null", "discarded");
  EXPECT_FALSE(fs::is_regular_file("/dev/null"));
  EXPECT_FALSE(fs::exists("/dev/null.tmp"));
}

TEST_F(AtomicFileTest, unwritable_directory_names_path_and_reason) {
  try {
    atomic_write_file(path("no/such/dir/out.txt"), "x");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no/such/dir/out.txt"), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

// ---------------------------------------------------------------------------
// JSON reader + raw spans
// ---------------------------------------------------------------------------

TEST(JsonReadTest, parses_scalars_arrays_objects) {
  const std::string doc =
      R"({"a":1,"b":-2.5,"c":"hi\n","d":[true,false,null],"e":{"f":1e3}})";
  const JsonValue v = parse_json(doc, "doc");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("a")->number, 1.0);
  EXPECT_EQ(v.find("b")->number, -2.5);
  EXPECT_EQ(v.find("c")->string_value, "hi\n");
  ASSERT_EQ(v.find("d")->items.size(), 3u);
  EXPECT_TRUE(v.find("d")->items[0].bool_value);
  EXPECT_EQ(v.find("d")->items[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("e")->find("f")->number, 1000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReadTest, raw_spans_reproduce_the_source_bytes) {
  const std::string doc = R"({"cells":[{"x":0.333333},{"y":[1,2]}],"n":7})";
  const JsonValue v = parse_json(doc, "doc");
  const JsonValue& cells = *v.find("cells");
  const auto raw = [&](const JsonValue& j) {
    return doc.substr(j.raw_begin, j.raw_end - j.raw_begin);
  };
  EXPECT_EQ(raw(v), doc);
  EXPECT_EQ(raw(cells.items[0]), R"({"x":0.333333})");
  EXPECT_EQ(raw(cells.items[1]), R"({"y":[1,2]})");
  EXPECT_EQ(raw(*v.find("n")), "7");
}

TEST(JsonReadTest, writer_raw_splices_a_value_verbatim) {
  JsonWriter w;
  w.begin_object();
  w.key("kept").raw(R"({"wall_seconds":0.123456789})");
  w.key("fresh").value(1);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"kept":{"wall_seconds":0.123456789},"fresh":1})");
}

TEST(JsonReadTest, writer_output_round_trips_byte_identically) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\n");
  w.key("xs").begin_array().value(1).value(2.5).value(true).end_array();
  w.end_object();
  const std::string doc = w.str();
  const JsonValue v = parse_json(doc, "doc");
  EXPECT_EQ(doc.substr(v.raw_begin, v.raw_end - v.raw_begin), doc);
  EXPECT_EQ(v.find("s")->string_value, "a\"b\\c\n");
}

TEST(JsonReadTest, rejects_malformed_documents) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\":1}x", "tru",
                          "{\"a\" 1}", "\"unterminated", "01x"}) {
    EXPECT_THROW(parse_json(bad, "bad"), CheckError) << bad;
  }
}

TEST(JsonReadTest, depth_limit_bounds_recursion) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW(parse_json(deep, "deep"), CheckError);
}

// ---------------------------------------------------------------------------
// Deadline + ExecContext
// ---------------------------------------------------------------------------

TEST(DeadlineTest, default_is_unlimited_and_never_expires) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  ExecContext exec;
  exec.check_deadline("test");  // no deadline attached: no-op
}

TEST(DeadlineTest, expires_after_budget) {
  const Deadline d = Deadline::after_seconds(0.0);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, check_deadline_throws_and_names_the_driver) {
  const Deadline d = Deadline::after_seconds(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ExecContext exec;
  exec.set_deadline(&d);
  try {
    exec.check_deadline("color-reduce");
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("color-reduce"), std::string::npos);
  }
}

TEST(DeadlineTest, generous_budget_does_not_fire) {
  const Deadline d = Deadline::after_seconds(3600.0);
  ExecContext exec;
  exec.set_deadline(&d);
  exec.check_deadline("test");
}

}  // namespace
}  // namespace detcol
