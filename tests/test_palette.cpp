#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/palette.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Palette, UniformPalettes) {
  const PaletteSet p = PaletteSet::uniform(3, 5);
  EXPECT_EQ(p.num_nodes(), 3u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(p.palette_size(v), 5u);
    for (Color c = 0; c < 5; ++c) EXPECT_TRUE(p.contains(v, c));
    EXPECT_FALSE(p.contains(v, 5));
  }
  EXPECT_EQ(p.total_size(), 15u);
}

TEST(Palette, DeltaPlusOne) {
  const Graph g = gen_ring(6);
  const PaletteSet p = PaletteSet::delta_plus_one(g);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(p.palette_size(v), 3u);
}

TEST(Palette, RandomListsDistinctAndSized) {
  const Graph g = gen_gnp(100, 0.1, 7);
  const Color space = 10000;
  const PaletteSet p = PaletteSet::random_lists(g, space, 5);
  const std::size_t want = static_cast<std::size_t>(g.max_degree()) + 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto pal = p.palette(v);
    EXPECT_EQ(pal.size(), want);
    std::set<Color> uniq(pal.begin(), pal.end());
    EXPECT_EQ(uniq.size(), pal.size());
    for (const Color c : pal) EXPECT_LT(c, space);
  }
  // Deterministic.
  const PaletteSet q = PaletteSet::random_lists(g, space, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(std::equal(p.palette(v).begin(), p.palette(v).end(),
                           q.palette(v).begin()));
  }
}

TEST(Palette, DegPlusOneLists) {
  const Graph g = gen_power_law(300, 2.5, 6.0, 9);
  const PaletteSet p = PaletteSet::deg_plus_one_lists(g, 100000, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(p.palette_size(v), static_cast<std::size_t>(g.degree(v)) + 1);
  }
}

TEST(Palette, RestrictKeepsPredicate) {
  PaletteSet p = PaletteSet::uniform(1, 10);
  p.restrict(0, [](Color c) { return c % 2 == 0; });
  EXPECT_EQ(p.palette_size(0), 5u);
  EXPECT_TRUE(p.contains(0, 4));
  EXPECT_FALSE(p.contains(0, 3));
}

TEST(Palette, RemoveColorIdempotent) {
  PaletteSet p = PaletteSet::uniform(1, 4);
  p.remove_color(0, 2);
  EXPECT_EQ(p.palette_size(0), 3u);
  p.remove_color(0, 2);  // no-op
  EXPECT_EQ(p.palette_size(0), 3u);
  p.remove_color(0, 99);  // absent
  EXPECT_EQ(p.palette_size(0), 3u);
}

TEST(Palette, Truncate) {
  PaletteSet p = PaletteSet::uniform(1, 10);
  p.truncate(0, 4);
  EXPECT_EQ(p.palette_size(0), 4u);
  p.truncate(0, 8);  // no growth
  EXPECT_EQ(p.palette_size(0), 4u);
}

TEST(Palette, ConstructorRejectsDuplicates) {
  std::vector<std::vector<Color>> bad = {{1, 1, 2}};
  EXPECT_THROW(PaletteSet{std::move(bad)}, CheckError);
}

TEST(Palette, ConstructorSortsInput) {
  std::vector<std::vector<Color>> in = {{5, 1, 3}};
  const PaletteSet p{std::move(in)};
  const auto pal = p.palette(0);
  EXPECT_TRUE(std::is_sorted(pal.begin(), pal.end()));
}

}  // namespace
}  // namespace detcol
