#include <gtest/gtest.h>

#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "graph/palette.hpp"
#include "lowspace/mis.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

std::vector<std::vector<Color>> palettes_of(const Graph& g,
                                            const PaletteSet& p) {
  std::vector<std::vector<Color>> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto s = p.palette(v);
    out[v].assign(s.begin(), s.end());
  }
  return out;
}

void expect_valid(const Graph& g, const PaletteSet& pal,
                  const MisColorResult& r) {
  Coloring c(g.num_nodes());
  c.color = r.color;
  const auto v = verify_coloring(g, pal, c);
  EXPECT_TRUE(v.ok) << v.issue;
}

TEST(Mis, ColorsRingWithThreeColors) {
  const Graph g = gen_ring(50);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 1);
  expect_valid(g, pal, r);
  EXPECT_GE(r.phases, 1u);
}

TEST(Mis, ColorsGnpDeltaPlusOne) {
  const Graph g = gen_gnp(300, 0.04, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 2);
  expect_valid(g, pal, r);
}

TEST(Mis, ColorsArbitraryLists) {
  const Graph g = gen_random_regular(200, 8, 7);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 16, 9);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 3);
  expect_valid(g, pal, r);
}

TEST(Mis, ColorsDegPlusOneLists) {
  const Graph g = gen_power_law(400, 2.6, 6.0, 11);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 16, 13);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 4);
  expect_valid(g, pal, r);
}

TEST(Mis, Deterministic) {
  const Graph g = gen_gnp(150, 0.08, 15);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto a = mis_list_color(g, palettes_of(g, pal), {}, 5);
  const auto b = mis_list_color(g, palettes_of(g, pal), {}, 5);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.phases, b.phases);
}

TEST(Mis, PhasesLogarithmicInPractice) {
  const Graph g = gen_random_regular(500, 12, 17);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 6);
  expect_valid(g, pal, r);
  // Conflict edges ~ m * Delta; log2 of that is ~16, allow headroom.
  EXPECT_LE(r.phases, 64u);
}

TEST(Mis, EmptyGraphTrivial) {
  const Graph g = Graph::from_edges(3, std::vector<Edge>{});
  std::vector<std::vector<Color>> pals = {{5}, {6}, {5}};
  const auto r = mis_list_color(g, pals, {}, 8);
  EXPECT_EQ(r.color[0], 5u);
  EXPECT_EQ(r.color[1], 6u);
  EXPECT_EQ(r.color[2], 5u);
  EXPECT_EQ(r.phases, 1u);
}

TEST(Mis, RejectsDeficientPalette) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const std::vector<std::vector<Color>> pals = {{1}, {1}};
  EXPECT_THROW(mis_list_color(g, pals, {}, 9), CheckError);
}

// Parameterized sweep: the MIS reduction must color every (degree,
// palette-mode) combination; phases should stay logarithmic-ish.
using MisParam = std::tuple<NodeId /*deg*/, int /*palette mode*/>;

class MisSweep : public ::testing::TestWithParam<MisParam> {};

TEST_P(MisSweep, ColorsAcrossDegreesAndPaletteModes) {
  const auto [deg, mode] = GetParam();
  const Graph g = gen_random_regular(300, deg, 100 + deg);
  PaletteSet pal = PaletteSet::delta_plus_one(g);
  if (mode == 1) pal = PaletteSet::random_lists(g, 1u << 18, 5);
  if (mode == 2) pal = PaletteSet::deg_plus_one_lists(g, 1u << 18, 7);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 200 + deg);
  expect_valid(g, pal, r);
  EXPECT_LE(r.phases, 96u) << "deg=" << deg << " mode=" << mode;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MisSweep,
                         ::testing::Combine(::testing::Values(NodeId{4},
                                                              NodeId{8},
                                                              NodeId{16}),
                                            ::testing::Values(0, 1, 2)));

TEST(Mis, LedgerChargesSeedAndPhaseRounds) {
  const Graph g = gen_gnp(100, 0.1, 19);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = mis_list_color(g, palettes_of(g, pal), {}, 10);
  EXPECT_GT(r.ledger.total_rounds(), 0u);
  EXPECT_EQ(r.ledger.by_phase().count("mis-seed"), 1u);
  EXPECT_EQ(r.ledger.by_phase().count("mis-phase"), 1u);
  EXPECT_GT(r.seed_rounds, 0u);
}

}  // namespace
}  // namespace detcol
