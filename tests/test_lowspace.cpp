#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

void expect_valid(const Graph& g, const PaletteSet& pal,
                  const LowSpaceResult& r) {
  const auto v = verify_coloring(g, pal, r.coloring);
  EXPECT_TRUE(v.ok) << v.issue;
}

TEST(LowSpace, DeltaPlusOneOnGnp) {
  const Graph g = gen_gnp(800, 0.02, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = low_space_color(g, pal);
  expect_valid(g, pal, r);
  EXPECT_GE(r.num_mis_calls, 1u);
}

TEST(LowSpace, DegPlusOneListsOnPowerLaw) {
  // The (deg+1)-list problem is the paper's headline for Theorem 1.4:
  // skewed degrees, per-node palette sizes.
  const Graph g = gen_power_law(1000, 2.5, 6.0, 5);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 20, 7);
  const auto r = low_space_color(g, pal);
  expect_valid(g, pal, r);
}

TEST(LowSpace, HighDegreeGraphRecurses) {
  LowSpaceParams params;
  params.delta = 0.04;
  const Graph g = gen_random_regular(900, 64, 9);  // 64 > n^{7*0.04} ~ 6.7
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = low_space_color(g, pal, params);
  expect_valid(g, pal, r);
  EXPECT_GE(r.num_partitions, 1u);
  EXPECT_GE(r.depth_reached, 1u);
}

TEST(LowSpace, AllLowDegreeSkipsPartition) {
  const Graph g = gen_ring(500);  // degree 2 <= threshold
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = low_space_color(g, pal);
  expect_valid(g, pal, r);
  EXPECT_EQ(r.num_partitions, 0u);
  EXPECT_EQ(r.num_mis_calls, 1u);
}

TEST(LowSpace, Deterministic) {
  const Graph g = gen_gnp(400, 0.05, 11);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto a = low_space_color(g, pal);
  const auto b = low_space_color(g, pal);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.ledger.total_rounds(), b.ledger.total_rounds());
}

TEST(LowSpace, ListColoring) {
  const Graph g = gen_random_regular(500, 16, 13);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 18, 15);
  const auto r = low_space_color(g, pal);
  expect_valid(g, pal, r);
}

TEST(LowSpace, SpaceAccountingPopulated) {
  const Graph g = gen_gnp(600, 0.03, 17);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = low_space_color(g, pal);
  expect_valid(g, pal, r);
  EXPECT_GT(r.peak_total_words, 0u);
}

TEST(LowSpace, RejectsDeficientPalettes) {
  const Graph g = gen_complete(6);
  const PaletteSet pal = PaletteSet::uniform(6, 3);
  EXPECT_THROW(low_space_color(g, pal), CheckError);
}

// Parameterized sweep: (family, delta parameter) combinations must all
// produce verified colorings with the low-space pipeline.
using LsParam = std::tuple<int, double>;

class LowSpaceSweep : public ::testing::TestWithParam<LsParam> {};

TEST_P(LowSpaceSweep, VerifiedColoringAcrossFamiliesAndDeltas) {
  const auto [family, delta] = GetParam();
  Graph g;
  switch (family) {
    case 0: g = gen_gnp(700, 0.03, 31); break;
    case 1: g = gen_random_regular(700, 24, 33); break;
    case 2: g = gen_power_law(700, 2.6, 7.0, 35); break;
    default: g = gen_grid(26, 26); break;
  }
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 20, 37);
  LowSpaceParams params;
  params.delta = delta;
  const auto r = low_space_color(g, pal, params);
  const auto v = verify_coloring(g, pal, r.coloring);
  ASSERT_TRUE(v.ok) << "family=" << family << " delta=" << delta << ": "
                    << v.issue;
  // Space accounting must stay within the declared envelope.
  EXPECT_LE(r.peak_total_words,
            4 * (g.size_words() + pal.total_size()) +
                static_cast<std::uint64_t>(
                    16.0 * std::pow(static_cast<double>(g.num_nodes()),
                                    1.0 + 22.0 * delta)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LowSpaceSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.02, 0.04, 0.08)));

TEST(LowSpace, RoundsGrowWithDegreeNotSize) {
  // Theorem 1.4 shape: rounds ~ O(log Delta + log log n). Doubling n at
  // fixed degree must not double rounds.
  LowSpaceParams params;
  params.delta = 0.04;
  const Graph g1 = gen_random_regular(500, 32, 19);
  const Graph g2 = gen_random_regular(1000, 32, 21);
  const auto r1 =
      low_space_color(g1, PaletteSet::delta_plus_one(g1), params);
  const auto r2 =
      low_space_color(g2, PaletteSet::delta_plus_one(g2), params);
  EXPECT_LT(static_cast<double>(r2.ledger.total_rounds()),
            1.9 * static_cast<double>(r1.ledger.total_rounds() + 1));
}

}  // namespace
}  // namespace detcol
