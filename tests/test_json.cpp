#include <gtest/gtest.h>

#include <cmath>

#include "core/stats_export.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace detcol {
namespace {

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").value("x");
  w.key("c").value(true);
  w.key("d").value(1.5);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true,"d":1.5})");
}

TEST(Json, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array();
  w.value(std::uint64_t{1}).value(std::uint64_t{2});
  w.begin_object().key("y").value(std::int64_t{-3}).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,{"y":-3}]})");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  JsonWriter w;
  w.begin_object();
  w.key("weird\nkey").value("tab\there");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"weird\\nkey\":\"tab\\there\"}");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), CheckError);
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("a");
    EXPECT_THROW(w.end_object(), CheckError);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("nope"), CheckError);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), CheckError);  // unclosed scope
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("x");
    EXPECT_THROW(w.value(std::nan("")), CheckError);
  }
}

TEST(StatsExport, RoundTripsARealRun) {
  const Graph g = gen_gnp(400, 0.05, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const auto r = color_reduce(g, pal, cfg);
  const std::string json = result_to_json(r);
  // Structural sanity: keys present, braces balanced, numbers embedded.
  EXPECT_NE(json.find("\"num_partitions\":"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"total_rounds\":"), std::string::npos);
  std::int64_t depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(StatsExport, LedgerOnly) {
  RoundLedger l;
  l.charge("phase-a", 3, 10);
  const auto json = ledger_to_json(l);
  EXPECT_EQ(json,
            R"({"total_rounds":3,"total_words":10,"phases":{"phase-a":{"rounds":3,"words":10}}})");
}

TEST(StatsExport, WritesFile) {
  write_json_file("/tmp/detcolor_stats_test.json", "{}");
  EXPECT_THROW(write_json_file("/nonexistent/x.json", "{}"), CheckError);
}

}  // namespace
}  // namespace detcol
