#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lowspace/reduction.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Reduction, SingleEdgeSharedColor) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const std::vector<std::vector<Color>> pals = {{1, 2}, {2, 3}};
  const ReductionGraph r = build_reduction(g, pals);
  EXPECT_EQ(r.num_vertices, 4u);
  EXPECT_EQ(r.num_conflict_edges, 1u);  // only color 2 is shared
  // Vertex (0, color 2) is id base[0]+1; (1, color 2) is base[1]+0.
  EXPECT_EQ(r.base[0], 0u);
  EXPECT_EQ(r.base[1], 2u);
  ASSERT_EQ(r.conflicts[1].size(), 1u);
  EXPECT_EQ(r.conflicts[1][0], 2u);
  ASSERT_EQ(r.conflicts[2].size(), 1u);
  EXPECT_EQ(r.conflicts[2][0], 1u);
}

TEST(Reduction, NoSharedColorsNoEdges) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const std::vector<std::vector<Color>> pals = {{1, 2}, {3, 4}};
  const ReductionGraph r = build_reduction(g, pals);
  EXPECT_EQ(r.num_conflict_edges, 0u);
}

TEST(Reduction, TruncatesToDegPlusOne) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  // Node 0 has degree 1 but palette of size 5: truncated to 2.
  const std::vector<std::vector<Color>> pals = {{1, 2, 3, 4, 5}, {1, 2}};
  const ReductionGraph r = build_reduction(g, pals);
  EXPECT_EQ(r.palettes[0].size(), 2u);
  EXPECT_EQ(r.num_vertices, 4u);
}

TEST(Reduction, NodeOfInverseOfBase) {
  const Graph g = gen_ring(5);
  std::vector<std::vector<Color>> pals(5, std::vector<Color>{0, 1, 2});
  const ReductionGraph r = build_reduction(g, pals);
  EXPECT_EQ(r.num_vertices, 15u);
  for (std::uint64_t x = 0; x < r.num_vertices; ++x) {
    const NodeId v = r.node_of(x);
    EXPECT_GE(x, r.base[v]);
    EXPECT_LT(x - r.base[v], r.palettes[v].size());
  }
}

TEST(Reduction, ConflictCountMatchesPalette_Intersections) {
  const Graph g = gen_complete(4);
  std::vector<std::vector<Color>> pals(4, std::vector<Color>{0, 1, 2, 3});
  const ReductionGraph r = build_reduction(g, pals);
  // Every edge shares all 4 colors: 6 edges * 4 = 24 conflicts.
  EXPECT_EQ(r.num_conflict_edges, 24u);
  EXPECT_EQ(r.size_words(), 16u + 48u);
}

TEST(Reduction, RejectsUnsortedPalettes) {
  const Graph g = Graph::from_edges(1, std::vector<Edge>{});
  const std::vector<std::vector<Color>> pals = {{3, 1}};
  EXPECT_THROW(build_reduction(g, pals), CheckError);
}

TEST(Reduction, RejectsSizeMismatch) {
  const Graph g = gen_ring(3);
  const std::vector<std::vector<Color>> pals = {{0}, {1}};
  EXPECT_THROW(build_reduction(g, pals), CheckError);
}

}  // namespace
}  // namespace detcol
