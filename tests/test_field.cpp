#include <gtest/gtest.h>

#include "hashing/field.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

TEST(Field, ReduceIsCanonical) {
  EXPECT_EQ(m61_reduce(0), 0u);
  EXPECT_EQ(m61_reduce(kMersenne61), 0u);
  EXPECT_EQ(m61_reduce(kMersenne61 + 5), 5u);
  EXPECT_EQ(m61_reduce(kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Field, AddSubInverse) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = m61_reduce(rng.next());
    const auto b = m61_reduce(rng.next());
    EXPECT_EQ(m61_sub(m61_add(a, b), b), a);
    EXPECT_EQ(m61_add(a, m61_sub(0, a)), 0u);
  }
}

TEST(Field, MulAgreesWithSmallCases) {
  EXPECT_EQ(m61_mul(3, 4), 12u);
  EXPECT_EQ(m61_mul(kMersenne61 - 1, 1), kMersenne61 - 1);
  // (p-1)*(p-1) = p^2 - 2p + 1 == 1 mod p.
  EXPECT_EQ(m61_mul(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

TEST(Field, MulAssociativeCommutative) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto a = m61_reduce(rng.next());
    const auto b = m61_reduce(rng.next());
    const auto c = m61_reduce(rng.next());
    EXPECT_EQ(m61_mul(a, b), m61_mul(b, a));
    EXPECT_EQ(m61_mul(m61_mul(a, b), c), m61_mul(a, m61_mul(b, c)));
    // Distributivity.
    EXPECT_EQ(m61_mul(a, m61_add(b, c)),
              m61_add(m61_mul(a, b), m61_mul(a, c)));
  }
}

TEST(Field, FermatLittleTheorem) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto a = m61_reduce(rng.next());
    if (a == 0) continue;
    EXPECT_EQ(m61_pow(a, kMersenne61 - 1), 1u);
  }
}

TEST(Field, Inverse) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto a = m61_reduce(rng.next());
    if (a == 0) continue;
    EXPECT_EQ(m61_mul(a, m61_inv(a)), 1u);
  }
  EXPECT_THROW(m61_inv(0), CheckError);
  EXPECT_THROW(m61_inv(kMersenne61), CheckError);  // reduces to zero
}

TEST(Field, RangeMapCoversAllBucketsNearUniformly) {
  const std::uint64_t range = 7;
  std::uint64_t counts[7] = {};
  const int trials = 70000;
  Xoshiro256 rng(5);
  for (int i = 0; i < trials; ++i) {
    const auto u = m61_reduce(rng.next());
    const auto b = m61_to_range(u, range);
    ASSERT_LT(b, range);
    ++counts[b];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, trials / 70.0);
  }
}

TEST(Field, RangeMapEdges) {
  EXPECT_EQ(m61_to_range(0, 10), 0u);
  EXPECT_EQ(m61_to_range(kMersenne61 - 1, 10), 9u);
  EXPECT_EQ(m61_to_range(12345, 1), 0u);
}

}  // namespace
}  // namespace detcol
