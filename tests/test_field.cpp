#include <gtest/gtest.h>

#include "hashing/field.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

TEST(Field, ReduceIsCanonical) {
  EXPECT_EQ(m61_reduce(0), 0u);
  EXPECT_EQ(m61_reduce(kMersenne61), 0u);
  EXPECT_EQ(m61_reduce(kMersenne61 + 5), 5u);
  EXPECT_EQ(m61_reduce(kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Field, AddSubInverse) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = m61_reduce(rng.next());
    const auto b = m61_reduce(rng.next());
    EXPECT_EQ(m61_sub(m61_add(a, b), b), a);
    EXPECT_EQ(m61_add(a, m61_sub(0, a)), 0u);
  }
}

TEST(Field, MulAgreesWithSmallCases) {
  EXPECT_EQ(m61_mul(3, 4), 12u);
  EXPECT_EQ(m61_mul(kMersenne61 - 1, 1), kMersenne61 - 1);
  // (p-1)*(p-1) = p^2 - 2p + 1 == 1 mod p.
  EXPECT_EQ(m61_mul(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

// Edge-value pins, evaluated at compile time (everything in field.hpp is
// constexpr): 0, 1, p-1, p, and the 2^62-1 ceiling of m61_mul's documented
// single-fold bound. These freeze the exact values the vector kernels in
// hashing/simd_kernels.cpp must reproduce limb by limb.
constexpr std::uint64_t kP = kMersenne61;
constexpr std::uint64_t kTwo62Minus1 = (std::uint64_t{1} << 62) - 1;

static_assert(m61_reduce(0) == 0);
static_assert(m61_reduce(1) == 1);
static_assert(m61_reduce(kP - 1) == kP - 1);
static_assert(m61_reduce(kP) == 0);      // p == 0 in F_p
static_assert(m61_reduce(kP + 1) == 1);
static_assert(m61_reduce(kTwo62Minus1) == 1);  // 2^62-1 = 2p+1 == 1 mod p

static_assert(m61_mul(0, 0) == 0);
static_assert(m61_mul(0, kTwo62Minus1) == 0);
static_assert(m61_mul(1, kP - 1) == kP - 1);
static_assert(m61_mul(1, kP) == 0);
static_assert(m61_mul(kP, kP) == 0);
static_assert(m61_mul(kP - 1, kP - 1) == 1);  // (p-1)^2 == 1 mod p
// Non-canonical inputs up to the documented 2^62-1 bound still land on the
// canonical residue: 2^62-1 == 1 (mod p), so the products are 1*1 and 1*x.
static_assert(m61_mul(kTwo62Minus1, kTwo62Minus1) == 1);
static_assert(m61_mul(kTwo62Minus1, kP - 1) == kP - 1);

static_assert(m61_add(kP - 1, 1) == 0);
static_assert(m61_add(kP - 1, kP - 1) == kP - 2);
static_assert(m61_sub(0, 1) == kP - 1);

static_assert(m61_to_range(0, 10) == 0);
static_assert(m61_to_range(kP - 1, 10) == 9);

TEST(Field, MulCanonicalOnEdgeValues) {
  // Runtime mirror of the static_asserts above, so a toolchain that skips
  // constant evaluation still executes the pins, plus the canonicality
  // check m61_mul must preserve: every result is < p.
  const std::uint64_t edges[] = {0, 1, kP - 1, kP, kTwo62Minus1};
  for (const std::uint64_t a : edges) {
    for (const std::uint64_t b : edges) {
      const std::uint64_t r = m61_mul(a, b);
      EXPECT_LT(r, kP) << "a=" << a << " b=" << b;
      EXPECT_EQ(r, m61_mul(m61_reduce(a), m61_reduce(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Field, MulAssociativeCommutative) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto a = m61_reduce(rng.next());
    const auto b = m61_reduce(rng.next());
    const auto c = m61_reduce(rng.next());
    EXPECT_EQ(m61_mul(a, b), m61_mul(b, a));
    EXPECT_EQ(m61_mul(m61_mul(a, b), c), m61_mul(a, m61_mul(b, c)));
    // Distributivity.
    EXPECT_EQ(m61_mul(a, m61_add(b, c)),
              m61_add(m61_mul(a, b), m61_mul(a, c)));
  }
}

TEST(Field, FermatLittleTheorem) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto a = m61_reduce(rng.next());
    if (a == 0) continue;
    EXPECT_EQ(m61_pow(a, kMersenne61 - 1), 1u);
  }
}

TEST(Field, Inverse) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto a = m61_reduce(rng.next());
    if (a == 0) continue;
    EXPECT_EQ(m61_mul(a, m61_inv(a)), 1u);
  }
  EXPECT_THROW(m61_inv(0), CheckError);
  EXPECT_THROW(m61_inv(kMersenne61), CheckError);  // reduces to zero
}

TEST(Field, RangeMapCoversAllBucketsNearUniformly) {
  const std::uint64_t range = 7;
  std::uint64_t counts[7] = {};
  const int trials = 70000;
  Xoshiro256 rng(5);
  for (int i = 0; i < trials; ++i) {
    const auto u = m61_reduce(rng.next());
    const auto b = m61_to_range(u, range);
    ASSERT_LT(b, range);
    ++counts[b];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, trials / 70.0);
  }
}

TEST(Field, RangeMapEdges) {
  EXPECT_EQ(m61_to_range(0, 10), 0u);
  EXPECT_EQ(m61_to_range(kMersenne61 - 1, 10), 9u);
  EXPECT_EQ(m61_to_range(12345, 1), 0u);
}

}  // namespace
}  // namespace detcol
