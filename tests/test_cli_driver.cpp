// End-to-end tests of the `detcol` CLI driver: shells out to the real binary
// (path injected by CMake as DETCOL_BIN) and round-trips graphs and
// colorings through files, including the self-describing-header path where
// `verify` rebuilds the instance from the coloring file alone.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/coloring.hpp"
#include "graph/io.hpp"
#include "graph/palette.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

/// Single-quotes a path for the shell (temp paths never contain quotes
/// themselves, but may contain spaces).
std::string shq(const std::string& s) { return "'" + s + "'"; }

/// Runs `detcol <args>` through the shell; returns the process exit code.
int run_detcol(const std::string& args) {
  const std::string cmd = shq(DETCOL_BIN) + " " + args;
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "system() failed for: " << cmd;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::path(::testing::TempDir()) / "detcol_cli" / info->name();
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(CliDriver, GenWritesReadableEdgeList) {
  const fs::path dir = test_dir();
  const fs::path graph = dir / "g.txt";
  ASSERT_EQ(run_detcol("gen --gen=gnp --n=400 --p=0.03 --seed=7 --quiet "
                       "--out=" + shq(graph.string())),
            0);
  const Graph g = read_edge_list_file(graph.string());
  EXPECT_EQ(g.num_nodes(), 400u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(CliDriver, ColorThenVerifyAgainstGraphFile) {
  const fs::path dir = test_dir();
  const fs::path graph = dir / "g.txt";
  const fs::path colors = dir / "c.txt";
  ASSERT_EQ(run_detcol("gen --gen=gnp --n=400 --p=0.03 --seed=7 --quiet "
                       "--out=" + shq(graph.string())),
            0);
  ASSERT_EQ(run_detcol("color --input=" + shq(graph.string()) +
                       " --quiet --out=" + shq(colors.string())),
            0);
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string()) +
                       " --graph=" + shq(graph.string())),
            0);

  // Cross-check the emitted file against the library's own verifier.
  std::ifstream is(colors);
  std::string line;
  NodeId n = 0;
  std::vector<Color> parsed;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (n == 0) {
      ASSERT_TRUE(static_cast<bool>(ls >> n));
      continue;
    }
    Color c = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> c)) << line;
    parsed.push_back(c);
  }
  ASSERT_EQ(parsed.size(), n);
  const Graph g = read_edge_list_file(graph.string());
  Coloring coloring(n);
  coloring.color = parsed;
  const auto v =
      verify_coloring(g, PaletteSet::delta_plus_one(g), coloring);
  EXPECT_TRUE(v.ok) << v.issue;
}

TEST(CliDriver, VerifyRebuildsInstanceFromHeader) {
  // The ISSUE acceptance flow: color a generated graph, then verify from the
  // coloring file alone — graph and palettes come from the recorded spec.
  const fs::path dir = test_dir();
  const fs::path colors = dir / "c.txt";
  ASSERT_EQ(run_detcol("color --n=500 --p=0.02 --quiet --out=" +
                       shq(colors.string())),
            0);
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string())), 0);
}

TEST(CliDriver, VerifyRejectsMonochromaticColoring) {
  const fs::path dir = test_dir();
  const fs::path colors = dir / "bad.txt";
  std::ofstream os(colors);
  os << "# detcol coloring v1\n";
  os << "# graph: --gen=complete --n=5\n";
  os << "5\n";
  for (int i = 0; i < 5; ++i) os << "0\n";
  os.close();
  EXPECT_NE(run_detcol("verify --coloring=" + shq(colors.string())), 0);
}

TEST(CliDriver, LowSpaceAlgoWithDegPlusOneLists) {
  const fs::path dir = test_dir();
  const fs::path colors = dir / "c.txt";
  ASSERT_EQ(run_detcol("color --gen=powerlaw --n=300 --avgdeg=6 --seed=3 "
                       "--algo=lowspace --palette=deg1 --quiet --out=" +
                       shq(colors.string())),
            0);
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string())), 0);
  EXPECT_NE(read_file(colors).find("--palette=deg1"), std::string::npos);
}

TEST(CliDriver, StatsEmitsJsonDocument) {
  const fs::path dir = test_dir();
  const fs::path json = dir / "stats.json";
  ASSERT_EQ(run_detcol("stats --n=300 --p=0.03 --out=" + shq(json.string())), 0);
  const std::string doc = read_file(json);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"ledger\""), std::string::npos) << doc.substr(0, 200);
}

TEST(CliDriver, ThreadsFlagKeepsOutputBitIdenticalAndIsRecorded) {
  const fs::path dir = test_dir();
  const fs::path seq = dir / "seq.colors";
  const fs::path par = dir / "par.colors";
  const fs::path json = dir / "stats.json";
  ASSERT_EQ(run_detcol("color --n=400 --p=0.03 --seed=7 --quiet "
                       "--out=" + shq(seq.string())),
            0);
  ASSERT_EQ(run_detcol("color --n=400 --p=0.03 --seed=7 --quiet --threads=4 "
                       "--out=" + shq(par.string())),
            0);
  EXPECT_EQ(read_file(seq), read_file(par));  // determinism contract
  ASSERT_EQ(run_detcol("stats --n=300 --p=0.03 --threads=3 --out=" +
                       shq(json.string())),
            0);
  const std::string doc = read_file(json);
  EXPECT_NE(doc.find("\"threads\":3"), std::string::npos)
      << doc.substr(0, 200);
  EXPECT_NE(doc.find("\"per_depth_seconds\""), std::string::npos);
  // Bad thread counts are usage errors, not data errors.
  EXPECT_EQ(run_detcol("color --n=50 --threads=0 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --n=50 --threads=abc 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --n=50 --algo=greedy --threads=2 2>/dev/null"),
            2);
}

TEST(CliDriver, ThreadsFlagCoversLowSpaceAndBaselines) {
  // The low-space path (and the exec-aware baselines) honor --threads with
  // bit-identical output — the same determinism contract as ColorReduce.
  const fs::path dir = test_dir();
  const fs::path seq = dir / "seq.colors";
  const fs::path par = dir / "par.colors";
  ASSERT_EQ(run_detcol("color --n=400 --p=0.03 --algo=lowspace --quiet "
                       "--out=" + shq(seq.string())),
            0);
  ASSERT_EQ(run_detcol("color --n=400 --p=0.03 --algo=lowspace --quiet "
                       "--threads=4 --out=" + shq(par.string())),
            0);
  EXPECT_EQ(read_file(seq), read_file(par));  // determinism contract
  ASSERT_EQ(run_detcol("color --n=200 --p=0.04 --algo=mis --quiet "
                       "--threads=2 --out=" + shq(par.string())),
            0);
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(par.string())), 0);
  ASSERT_EQ(run_detcol("color --n=200 --p=0.04 --seed=5 --algo=trial --quiet "
                       "--threads=2 --out=" + shq(par.string())),
            0);
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(par.string())), 0);
}

TEST(CliDriver, UnknownCommandAndBadFlagsFailCleanly) {
  EXPECT_EQ(run_detcol("frobnicate 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --gen=nosuch 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("verify 2>/dev/null"), 2);
  // Typo'd flag names and malformed numbers must not silently run a
  // different instance.
  EXPECT_EQ(run_detcol("color --palete=deg1 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("gen --n=1e6 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --p=abc 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("gen --n=-5 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("gen --n=4294967297 2>/dev/null"), 2);
  // Bare value-flags must not be read as the string "true" (a bare --out
  // would write the coloring to a file literally named "true").
  EXPECT_EQ(run_detcol("color --n=50 --out 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --n=50 --stats 2>/dev/null"), 2);
  // Flags of a different generator / palette kind are misdirected, not
  // ignorable; likewise malformed boolean values.
  EXPECT_EQ(run_detcol("gen --gen=gnp --n=20 --radius=0.5 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --palette=delta1 --palette-seed=9 "
                       "2>/dev/null"),
            2);
  EXPECT_EQ(run_detcol("gen --n=20 --quiet=banana 2>/dev/null"), 2);
  // Out-of-domain values and dual-role --seed on deterministic generators.
  EXPECT_EQ(run_detcol("color --n=50 --p=1.5 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --gen=ring --n=100 --algo=trial --seed=7 "
                       "--quiet --out=/dev/null 2>/dev/null"),
            0);
  EXPECT_EQ(run_detcol("stats --n=100 --quiet --out=/dev/null 2>/dev/null"),
            0);
}

TEST(CliDriver, ScalableGenEndToEndThroughMmap) {
  const fs::path dir = test_dir();
  const fs::path ba = dir / "ba.dcg";
  ASSERT_EQ(run_detcol("gen --gen=ba --n=5000 --d=3 --seed=9 --threads=4 "
                       "--quiet --out=" + shq(ba.string())), 0);
  const fs::path mm = dir / "mm.txt";
  const fs::path ram = dir / "ram.txt";
  ASSERT_EQ(run_detcol("color --input=" + shq(ba.string()) +
                       " --mmap=1 --quiet --out=" + shq(mm.string())), 0);
  ASSERT_EQ(run_detcol("color --input=" + shq(ba.string()) +
                       " --quiet --out=" + shq(ram.string())), 0);
  // The mmap read path must be invisible to results: identical color lines
  // (the headers differ by the recorded " --mmap=1" spec suffix).
  std::istringstream a(read_file(mm)), b(read_file(ram));
  std::string la, lb;
  while (std::getline(a, la) && std::getline(b, lb)) {
    if (la.rfind('#', 0) == 0 && lb.rfind('#', 0) == 0) continue;
    EXPECT_EQ(la, lb);
  }
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(mm.string())), 0);
}

TEST(CliDriver, ScalableCacheGeneratesOnceAndDetectsStaleness) {
  const fs::path dir = test_dir();
  const fs::path cache = dir / "ba-cache.dcg";
  const fs::path c1 = dir / "c1.txt";
  const fs::path c2 = dir / "c2.txt";
  ASSERT_EQ(run_detcol("color --gen=ba --n=3000 --d=3 --seed=2 --cache=" +
                       shq(cache.string()) + " --quiet --out=" +
                       shq(c1.string())), 0);
  ASSERT_TRUE(fs::exists(cache));
  ASSERT_EQ(run_detcol("color --gen=ba --n=3000 --d=3 --seed=2 --cache=" +
                       shq(cache.string()) + " --quiet --out=" +
                       shq(c2.string())), 0);
  EXPECT_EQ(read_file(c1), read_file(c2));
  // A cache file that disagrees with the spec is a data error (exit 1, not
  // a usage error): the file exists and parses — its *content* is stale.
  EXPECT_EQ(run_detcol("color --gen=ba --n=4000 --d=3 --seed=2 --cache=" +
                       shq(cache.string()) +
                       " --quiet --out=/dev/null 2>/dev/null"),
            1);
}

TEST(CliDriver, ScalableAndMmapFlagsStayStrict) {
  // The scalable families stream .dcg only; other extensions and a missing
  // --out are contract violations, not silent fallbacks.
  EXPECT_EQ(run_detcol("gen --gen=ba --n=100 --d=2 --out=/tmp/x.edges "
                       "2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("gen --gen=ba --n=100 --d=2 2>/dev/null"), 2);
  // --threads applies to the scalable generators only; classic generators
  // are sequential and must say so instead of ignoring the flag.
  EXPECT_EQ(run_detcol("gen --gen=gnp --n=100 --p=0.1 --threads=2 "
                       "--out=/dev/null 2>/dev/null"), 2);
  // Misdirected family parameters keep the strict-applicability contract.
  EXPECT_EQ(run_detcol("gen --gen=ba --n=100 --p=0.5 --out=/tmp/x.dcg "
                       "2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("gen --gen=rgg --n=100 --d=4 --out=/tmp/x.dcg "
                       "2>/dev/null"), 2);
  // --cache is a placement detail of the scalable families in graph-consuming
  // commands; `gen` (which has --out) and classic generators reject it.
  EXPECT_EQ(run_detcol("gen --gen=ba --n=100 --d=2 --cache=/tmp/c.dcg "
                       "--out=/tmp/x.dcg 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --gen=gnp --n=100 --p=0.1 --cache=/tmp/c.dcg "
                       "2>/dev/null"), 2);
  // --mmap applies to --input sources with the .dcg format only.
  EXPECT_EQ(run_detcol("color --gen=gnp --n=100 --p=0.1 --mmap=1 "
                       "2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --input=/tmp/x.edges --format=edges --mmap=1 "
                       "2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("color --input=/tmp/x.dcg --mmap=banana "
                       "2>/dev/null"), 2);
  // Scalable kinds reject the dual-role --seed ambiguity like every other
  // generator when an algorithm seed is also in play.
  EXPECT_EQ(run_detcol("color --gen=ba --n=100 --d=2 --algo=trial --seed=7 "
                       "--quiet --out=/dev/null 2>/dev/null"), 0);
}

TEST(CliDriver, VerifyRejectsCorruptedColorLines) {
  const fs::path dir = test_dir();
  const fs::path colors = dir / "garbage.txt";
  std::ofstream os(colors);
  os << "# graph: --gen=ring --n=3\n";
  os << "3\n0\n1junk\n2\n";
  os.close();
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string()) +
                       " 2>/dev/null"),
            1);

  // Negative entries must be corruption, not a silent unsigned wrap.
  const fs::path neg = dir / "negative.txt";
  std::ofstream os2(neg);
  os2 << "# graph: --gen=ring --n=3\n";
  os2 << "3\n0\n-2\n1\n";
  os2.close();
  EXPECT_EQ(run_detcol("verify --proper-only --coloring=" + shq(neg.string()) +
                       " 2>/dev/null"),
            1);

  // A positional alongside --coloring would be silently ignored; reject it.
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string()) + " " +
                       shq(neg.string()) + " 2>/dev/null"),
            2);

  // A corrupt recorded spec is a data problem (exit 1), not a usage error.
  const fs::path corrupt = dir / "corrupt-header.txt";
  std::ofstream os3(corrupt);
  os3 << "# graph: --gen=bogus --n=3\n";
  os3 << "3\n0\n1\n2\n";
  os3.close();
  EXPECT_EQ(run_detcol("verify --coloring=" + shq(corrupt.string()) +
                       " 2>/dev/null"),
            1);
}

TEST(CliDriver, ConvertRoundTripsEveryGeneratorThroughDcg) {
  // The ISSUE acceptance flow: for every generator, gen -> edge list,
  // convert -> .dcg -> edge list, and the two text files are byte-equal.
  const fs::path dir = test_dir();
  const std::vector<std::string> gens = {
      "--gen=gnp --n=120 --p=0.05 --seed=7",
      "--gen=gnm --n=100 --m=250 --seed=3",
      "--gen=regular --n=80 --d=6 --seed=5",
      "--gen=powerlaw --n=90 --beta=2.5 --avgdeg=5 --seed=9",
      "--gen=grid --rows=7 --cols=9",
      "--gen=ring --n=31",
      "--gen=complete --n=13",
      "--gen=bipartite --a=30 --b=40 --p=0.1 --seed=11",
      "--gen=geometric --n=90 --radius=0.15 --seed=13",
      "--gen=planted --n=90 --k=4 --p=0.08 --seed=15",
      "--gen=tree --n=60 --seed=17",
  };
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const fs::path text = dir / ("g" + std::to_string(i) + ".edges");
    const fs::path dcg = dir / ("g" + std::to_string(i) + ".dcg");
    const fs::path back = dir / ("g" + std::to_string(i) + ".back.edges");
    ASSERT_EQ(run_detcol("gen " + gens[i] + " --quiet --out=" +
                         shq(text.string())),
              0)
        << gens[i];
    ASSERT_EQ(run_detcol("convert --input=" + shq(text.string()) +
                         " --quiet --out=" + shq(dcg.string())),
              0)
        << gens[i];
    ASSERT_EQ(run_detcol("convert --input=" + shq(dcg.string()) +
                         " --to=edges --quiet --out=" + shq(back.string())),
              0)
        << gens[i];
    EXPECT_EQ(read_file(text), read_file(back)) << gens[i];
  }
}

TEST(CliDriver, ConvertParallelParseMatchesSequential) {
  const fs::path dir = test_dir();
  const fs::path text = dir / "g.edges";
  const fs::path seq = dir / "seq.dcg";
  const fs::path par = dir / "par.dcg";
  ASSERT_EQ(run_detcol("gen --gen=gnp --n=1500 --p=0.01 --seed=2 --quiet "
                       "--out=" + shq(text.string())),
            0);
  ASSERT_EQ(run_detcol("convert --input=" + shq(text.string()) +
                       " --quiet --out=" + shq(seq.string())),
            0);
  ASSERT_EQ(run_detcol("convert --input=" + shq(text.string()) +
                       " --threads=4 --quiet --out=" + shq(par.string())),
            0);
  EXPECT_EQ(read_file(seq), read_file(par));  // determinism contract
}

TEST(CliDriver, ConvertUsageAndDataErrors) {
  const fs::path dir = test_dir();
  // Usage errors: missing --out, unknown formats, --from without --input.
  EXPECT_EQ(run_detcol("convert --n=20 2>/dev/null"), 2);
  EXPECT_EQ(run_detcol("convert --n=20 --to=nosuch --out=/dev/null "
                       "2>/dev/null"),
            2);
  EXPECT_EQ(run_detcol("convert --n=20 --from=edges --out=x.dcg 2>/dev/null"),
            2);
  EXPECT_EQ(run_detcol("convert --n=20 --out=noextension 2>/dev/null"), 2);
  // Data error: a corrupt .dcg is exit 1, not 2.
  const fs::path bad = dir / "bad.dcg";
  std::ofstream os(bad, std::ios::binary);
  os << "DCG1 but truncated garbage";
  os.close();
  EXPECT_EQ(run_detcol("convert --input=" + shq(bad.string()) +
                       " --to=edges --out=/dev/null 2>/dev/null"),
            1);
}

TEST(CliDriver, SuiteRunsMatrixAndWritesReport) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "suite.spec";
  const fs::path report = dir / "report.json";
  std::ofstream os(spec);
  os << "# two graphs x two pipelines x two thread counts\n";
  os << "graph tiny --gen=gnp --n=150 --p=0.05 --seed=1\n";
  os << "graph ringy --gen=ring --n=60\n";
  os << "pipelines reduce greedy\n";
  os << "threads 1 2\n";
  os.close();
  ASSERT_EQ(run_detcol("suite --spec=" + shq(spec.string()) +
                       " --quiet --out=" + shq(report.string())),
            0);
  const std::string doc = read_file(report);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"detcol_suite\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"host_cpus\""), std::string::npos);
  EXPECT_NE(doc.find("\"graph\":\"ringy\""), std::string::npos);
  // reduce runs at both thread counts, greedy collapses to one cell:
  // 2 graphs x (2 + 1) cells.
  std::size_t cells = 0;
  for (std::size_t at = doc.find("\"pipeline\""); at != std::string::npos;
       at = doc.find("\"pipeline\"", at + 1)) {
    ++cells;
  }
  EXPECT_EQ(cells, 6u);
  EXPECT_EQ(doc.find("\"verified\":false"), std::string::npos);
}

TEST(CliDriver, SuiteSpecErrorsAreDataErrors) {
  const fs::path dir = test_dir();
  const fs::path spec = dir / "bad.spec";
  // Missing --spec is a usage error.
  EXPECT_EQ(run_detcol("suite 2>/dev/null"), 2);
  // Unknown directive / pipeline / bad graph flags are data errors (exit 1).
  std::ofstream os(spec);
  os << "frobnicate all the things\n";
  os.close();
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " 2>/dev/null"),
            1);
  std::ofstream os2(spec);
  os2 << "graph g --gen=gnp --n=50\npipelines nosuch\n";
  os2.close();
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " 2>/dev/null"),
            1);
  std::ofstream os3(spec);
  os3 << "graph g --gen=nosuch --n=50\npipelines reduce\n";
  os3.close();
  EXPECT_EQ(run_detcol("suite --spec=" + shq(spec.string()) + " 2>/dev/null"),
            1);
}

TEST(CliDriver, ColorAcceptsDimacsAndMetisInputs) {
  const fs::path dir = test_dir();
  const fs::path dimacs = dir / "g.col";
  const fs::path metis = dir / "g.graph";
  const fs::path colors = dir / "c.txt";
  ASSERT_EQ(run_detcol("convert --gen=gnp --n=200 --p=0.04 --seed=9 --quiet "
                       "--out=" + shq(dimacs.string())),
            0);
  ASSERT_EQ(run_detcol("convert --input=" + shq(dimacs.string()) +
                       " --quiet --out=" + shq(metis.string())),
            0);
  for (const fs::path& input : {dimacs, metis}) {
    ASSERT_EQ(run_detcol("color --input=" + shq(input.string()) +
                         " --quiet --out=" + shq(colors.string())),
              0)
        << input;
    EXPECT_EQ(run_detcol("verify --coloring=" + shq(colors.string())), 0)
        << input;
  }
}

TEST(CliDriver, GnmDefaultEdgesFeasibleForTinyGraphs) {
  const fs::path dir = test_dir();
  const fs::path graph = dir / "tiny.txt";
  ASSERT_EQ(run_detcol("gen --gen=gnm --n=3 --quiet --out=" + shq(graph.string())),
            0);
  EXPECT_EQ(read_edge_list_file(graph.string()).num_edges(), 3u);
}

TEST(CliDriver, StatsFlagRejectedForAlgosWithoutStats) {
  EXPECT_EQ(run_detcol("color --algo=greedy --n=50 --stats=/dev/null "
                       "2>/dev/null"),
            2);
}

}  // namespace
}  // namespace detcol
