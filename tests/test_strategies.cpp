#include <gtest/gtest.h>

#include <cmath>

#include "derand/strategies.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

// A planted cost: counts the bits that differ from a target pattern, so the
// unique zero-cost seed is the pattern itself and conditional expectations
// are exactly (mismatches in prefix) + (remaining bits)/2.
double planted_cost(const SeedBits& s, std::uint64_t pattern, unsigned bits) {
  double c = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const bool want = (pattern >> (i % 16)) & 1;
    if (s.get_bits(i, 1) != static_cast<std::uint64_t>(want)) c += 1.0;
  }
  return c;
}

TEST(ThresholdScan, StopsAtFirstGoodSeed) {
  // Cost: index-of-seed proxy via a hash of its first byte; pick a loose
  // threshold so an early seed qualifies.
  unsigned bits = 64;
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kThresholdScan;
  cfg.scan_max_seeds = 32;
  const auto cost = [&](const SeedBits& s) {
    return static_cast<double>(s.get_bits(0, 6));  // 0..63
  };
  const auto r = select_seed(bits, cost, 20.0, cfg, 11);
  EXPECT_TRUE(r.met_threshold);
  EXPECT_LE(r.cost, 20.0);
  EXPECT_LE(r.evaluations, cfg.scan_max_seeds);
}

TEST(ThresholdScan, ExhaustsBudgetKeepsBest) {
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kThresholdScan;
  cfg.scan_max_seeds = 8;
  const auto cost = [](const SeedBits&) { return 100.0; };
  const auto r = select_seed(64, cost, 1.0, cfg, 3);
  EXPECT_FALSE(r.met_threshold);
  EXPECT_EQ(r.cost, 100.0);
  EXPECT_EQ(r.evaluations, 8u);
}

TEST(ThresholdScan, Deterministic) {
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kThresholdScan;
  const auto cost = [](const SeedBits& s) {
    return static_cast<double>(s.get_bits(0, 8));
  };
  const auto a = select_seed(128, cost, 10.0, cfg, 42);
  const auto b = select_seed(128, cost, 10.0, cfg, 42);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(MceExact, FindsSeedAtMostExpectation) {
  // 16-bit planted cost, expectation over uniform seeds = bits/2 = 8.
  const unsigned bits = 16;
  const std::uint64_t pattern = 0xC3A5;
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceExact;
  cfg.chunk_bits = 4;
  const auto cost = [&](const SeedBits& s) {
    return planted_cost(s, pattern, bits);
  };
  const auto r = select_seed(bits, cost, 8.0, cfg, 0);
  // Exact MCE on a separable cost finds the unique optimum.
  EXPECT_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.met_threshold);
  // Trajectory of conditional expectations is non-increasing.
  for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_LE(r.trajectory[i], r.trajectory[i - 1] + 1e-9);
  }
  // First fixed chunk's conditional expectation is at most the prior mean.
  ASSERT_FALSE(r.trajectory.empty());
  EXPECT_LE(r.trajectory.front(), 8.0 + 1e-9);
}

TEST(MceExact, RejectsLongSeeds) {
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceExact;
  const auto cost = [](const SeedBits&) { return 0.0; };
  EXPECT_THROW(select_seed(30, cost, 1.0, cfg, 0), CheckError);
}

TEST(MceSampled, SolvesPlantedPatternDeterministically) {
  const unsigned bits = 64;
  const std::uint64_t pattern = 0xF00D;
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceSampled;
  cfg.chunk_bits = 8;
  cfg.mce_samples = 4;
  const auto cost = [&](const SeedBits& s) {
    return planted_cost(s, pattern, bits);
  };
  // Separable cost: sampled estimates rank candidates correctly, so the
  // planted optimum is found exactly.
  const auto a = select_seed(bits, cost, 32.0, cfg, 5);
  EXPECT_EQ(a.cost, 0.0);
  EXPECT_TRUE(a.met_threshold);
  const auto b = select_seed(bits, cost, 32.0, cfg, 5);
  EXPECT_EQ(a.seed, b.seed);
}

TEST(MceSampled, FallsBackToScanWhenEstimatesMislead) {
  // Adversarial cost: good on most seeds (value 1) but the sampled-average
  // path can't see it; threshold however is met by scan easily.
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kMceSampled;
  cfg.chunk_bits = 8;
  cfg.mce_samples = 1;
  cfg.scan_max_seeds = 16;
  // Cost = 5 unless the first byte is exactly 0x77 (rare under MCE's greedy
  // walk, but the scan threshold of 5 accepts anything).
  const auto cost = [](const SeedBits& s) {
    return s.get_bits(0, 8) == 0x77 ? 0.0 : 5.0;
  };
  const auto r = select_seed(64, cost, 5.0, cfg, 9);
  EXPECT_TRUE(r.met_threshold);
  EXPECT_LE(r.cost, 5.0);
}

TEST(Schedule, RoundsChargedMatchChunkCount) {
  SeedSelectConfig cfg;
  cfg.strategy = SeedStrategy::kThresholdScan;
  cfg.chunk_bits = 8;
  cfg.aggregation_rounds = 2;
  const auto cost = [](const SeedBits&) { return 0.0; };
  const auto r = select_seed(256, cost, 1.0, cfg, 0);
  // ceil(256/8)=32 chunks * 2 rounds + 1 broadcast.
  EXPECT_EQ(r.rounds_charged, 65u);
}

}  // namespace
}  // namespace detcol
