// Multi-format ingestion tests: .dcg binary round trips + corruption
// handling, DIMACS/METIS dialects and their malformed-input paths, format
// sniffing, and the determinism of the sharded text parse (bit-identical
// graphs — and diagnostics — at 1/2/4/7 threads).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

/// Every generator in src/graph/generators.hpp at a small size.
std::vector<std::pair<std::string, Graph>> generator_menagerie() {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("gnp", gen_gnp(160, 0.05, 7));
  out.emplace_back("gnm", gen_gnm(150, 400, 3));
  out.emplace_back("regular", gen_random_regular(120, 8, 5));
  out.emplace_back("powerlaw", gen_power_law(140, 2.5, 6.0, 9));
  out.emplace_back("grid", gen_grid(9, 13));
  out.emplace_back("ring", gen_ring(41));
  out.emplace_back("complete", gen_complete(17));
  out.emplace_back("bipartite", gen_bipartite(40, 50, 0.08, 11));
  out.emplace_back("geometric", gen_geometric(130, 0.12, 13));
  out.emplace_back("planted", gen_planted_kcolorable(130, 5, 0.07, 15));
  out.emplace_back("tree", gen_random_tree(90, 17));
  return out;
}

std::string edge_list_text(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

void expect_same_graph(const Graph& a, const Graph& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  EXPECT_EQ(a.edge_list(), b.edge_list()) << what;
}

// ---------------------------------------------------------------------------
// .dcg round trips + corruption handling.
// ---------------------------------------------------------------------------

TEST(Formats, DcgRoundTripsEveryGenerator) {
  for (const auto& [name, g] : generator_menagerie()) {
    const std::string bytes = dcg_bytes(g);
    const Graph h = parse_dcg(bytes, name);
    expect_same_graph(g, h, name);
    // Bit-identical re-serialization AND golden text equality through the
    // full text -> .dcg -> text loop (the ISSUE acceptance criterion).
    EXPECT_EQ(dcg_bytes(h), bytes) << name;
    EXPECT_EQ(edge_list_text(h), edge_list_text(g)) << name;
  }
}

TEST(Formats, DcgEmptyAndIsolatedNodes) {
  const Graph empty = Graph::from_edges(0, std::vector<Edge>{});
  expect_same_graph(empty, parse_dcg(dcg_bytes(empty)), "empty");
  // Isolated nodes (zero-degree tail) survive: edge lists cannot express
  // them without the header, CSR stores them structurally.
  const Graph iso = Graph::from_edges(5, std::vector<Edge>{{0, 1}});
  const Graph h = parse_dcg(dcg_bytes(iso));
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_edges(), 1u);
}

TEST(Formats, DcgTruncationRejectedAtEveryPrefixBoundary) {
  const std::string bytes = dcg_bytes(gen_gnp(60, 0.1, 3));
  // A handful of representative cut points: inside the magic, inside the
  // header, inside the offsets, inside the adjacency, inside the checksum.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{20}, std::size_t{40},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    EXPECT_THROW(parse_dcg(bytes.substr(0, cut)), CheckError) << cut;
  }
}

TEST(Formats, DcgChecksumMismatchRejected) {
  std::string bytes = dcg_bytes(gen_gnp(60, 0.1, 3));
  // Flip one bit in the adjacency region: the size checks still pass, the
  // checksum must catch it.
  bytes[bytes.size() - 12] ^= 0x01;
  try {
    parse_dcg(bytes, "corrupt");
    FAIL() << "corrupt .dcg accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(Formats, DcgBadMagicAndTrailingBytesRejected) {
  std::string bytes = dcg_bytes(gen_ring(12));
  std::string wrong_magic = bytes;
  wrong_magic[3] = '2';  // future version byte
  EXPECT_THROW(parse_dcg(wrong_magic), CheckError);
  EXPECT_THROW(parse_dcg("not a dcg file at all"), CheckError);
  EXPECT_THROW(parse_dcg(bytes + "x"), CheckError);
}

TEST(Formats, DcgStructuralCorruptionCaughtByCsrValidation) {
  // Rebuild a payload whose checksum is valid but whose CSR is malformed:
  // serialize a graph, patch an adjacency entry to a self-loop, re-checksum.
  // parse_dcg must reject it via Graph::from_csr.
  const Graph g = gen_ring(8);
  std::string bytes = dcg_bytes(g);
  const std::size_t adj_begin = 8 + 24 + (8 + 1) * 8;
  // Node 0's first neighbor becomes 0 (self-loop), little-endian u32.
  bytes[adj_begin] = 0;
  bytes[adj_begin + 1] = 0;
  bytes[adj_begin + 2] = 0;
  bytes[adj_begin + 3] = 0;
  // Recompute the FNV-1a checksum so only the structural check can fire.
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < bytes.size() - 8; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] = static_cast<char>((h >> (8 * i)) & 0xff);
  }
  EXPECT_THROW(parse_dcg(bytes), CheckError);
}

// ---------------------------------------------------------------------------
// DIMACS dialect.
// ---------------------------------------------------------------------------

TEST(Formats, DimacsParsesCommentsDuplicatesAndReversedEdges) {
  const std::string buf =
      "c a coloring instance\n"
      "c with comments\n"
      "p edge 4 4\n"
      "e 1 2\n"
      "e 2 1\n"  // reversed duplicate collapses
      "e 2 3\n"
      "e 3 4\n"
      "c trailing comment\n";
  const Graph g = parse_dimacs(buf);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // duplicate collapsed
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Formats, DimacsWriterRoundTrips) {
  for (const auto& [name, g] : generator_menagerie()) {
    std::ostringstream os;
    write_dimacs(os, g);
    expect_same_graph(g, parse_dimacs(os.str(), {}, name), name);
  }
}

TEST(Formats, DimacsEdgeCountMismatchRejected) {
  const std::string buf = "p edge 3 5\ne 1 2\ne 2 3\n";
  try {
    parse_dimacs(buf, {}, "mismatch");
    FAIL() << "edge-count mismatch accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("claims 5 edges"), std::string::npos)
        << e.what();
  }
}

TEST(Formats, DimacsMalformedInputsRejected) {
  // Missing problem line.
  EXPECT_THROW(parse_dimacs("c only comments\n"), CheckError);
  // Edge before the problem line.
  EXPECT_THROW(parse_dimacs("e 1 2\np edge 2 1\n"), CheckError);
  // Vertices are 1-indexed: 0 is out of range.
  EXPECT_THROW(parse_dimacs("p edge 2 1\ne 0 1\n"), CheckError);
  // Out of range above n.
  EXPECT_THROW(parse_dimacs("p edge 2 1\ne 1 3\n"), CheckError);
  // Self-loop.
  EXPECT_THROW(parse_dimacs("p edge 2 1\ne 1 1\n"), CheckError);
  // Unknown line type.
  EXPECT_THROW(parse_dimacs("p edge 2 1\nn 1 4\ne 1 2\n"), CheckError);
  // Weighted / malformed edge line.
  EXPECT_THROW(parse_dimacs("p edge 2 1\ne 1 2 7\n"), CheckError);
}

// ---------------------------------------------------------------------------
// METIS dialect.
// ---------------------------------------------------------------------------

TEST(Formats, MetisParsesCommentsIsolatedNodesAndDuplicates) {
  const std::string buf =
      "% a metis file\n"
      "4 2\n"
      "2 2\n"   // node 1: duplicate entry collapses
      "1 3\n"   // node 2
      "2\n"     // node 3
      "\n";     // node 4: isolated (blank line counts as a data line)
  const Graph g = parse_metis(buf);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Formats, MetisWriterRoundTrips) {
  for (const auto& [name, g] : generator_menagerie()) {
    std::ostringstream os;
    write_metis(os, g);
    expect_same_graph(g, parse_metis(os.str(), {}, name), name);
  }
}

TEST(Formats, MetisSelfLoopRejected) {
  const std::string buf = "2 1\n1 2\n1\n";  // node 1 lists itself
  try {
    parse_metis(buf, {}, "loop");
    FAIL() << "self-loop accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("self-loop"), std::string::npos)
        << e.what();
  }
}

TEST(Formats, MetisMalformedInputsRejected) {
  // Asymmetric adjacency: node 1 lists 2, node 2 does not list 1.
  EXPECT_THROW(parse_metis("2 1\n2\n\n"), CheckError);
  // Header edge count disagrees with the adjacency lists.
  EXPECT_THROW(parse_metis("2 5\n2\n1\n"), CheckError);
  // Wrong number of adjacency lines.
  EXPECT_THROW(parse_metis("3 1\n2\n1\n"), CheckError);
  // Weighted formats are unsupported.
  EXPECT_THROW(parse_metis("2 1 011\n2 1\n1 1\n"), CheckError);
  // Neighbor out of the 1-indexed range.
  EXPECT_THROW(parse_metis("2 1\n3\n1\n"), CheckError);
  EXPECT_THROW(parse_metis("2 1\n0\n1\n"), CheckError);
  // Missing header entirely.
  EXPECT_THROW(parse_metis("% nothing else\n"), CheckError);
}

// ---------------------------------------------------------------------------
// Edge-list strictness (the rewritten parser).
// ---------------------------------------------------------------------------

TEST(Formats, EdgeListStrictDiagnostics) {
  // Malformed edge line: named with its 1-based line number.
  try {
    parse_edge_list("3 2\n0 1\n1 banana\n", {}, "strict");
    FAIL() << "malformed edge line accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("strict:3"), std::string::npos)
        << e.what();
  }
  // Endpoint out of range is caught at parse, with the line number.
  EXPECT_THROW(parse_edge_list("3 1\n0 7\n"), CheckError);
  // Three tokens on an edge line are no longer silently ignored.
  EXPECT_THROW(parse_edge_list("3 1\n0 1 2\n"), CheckError);
}

// ---------------------------------------------------------------------------
// Sniffing + the auto-dispatch reader.
// ---------------------------------------------------------------------------

TEST(Formats, SniffByMagicMarkersExtensionAndShape) {
  const Graph g = gen_gnp(30, 0.1, 1);
  EXPECT_EQ(sniff_format(dcg_bytes(g)), GraphFormat::kDcg);
  EXPECT_EQ(sniff_format("c x\np edge 3 1\ne 1 2\n"), GraphFormat::kDimacs);
  EXPECT_EQ(sniff_format("anything", "foo.metis"), GraphFormat::kMetis);
  EXPECT_EQ(sniff_format("anything", "foo.col"), GraphFormat::kDimacs);
  EXPECT_EQ(sniff_format("anything", "foo.txt"), GraphFormat::kEdgeList);
  // Shape heuristic (no extension): N data lines after an "N M" header is
  // METIS; a 0 token means 0-indexed, i.e. an edge list.
  EXPECT_EQ(sniff_format("3 2\n2\n1 3\n2\n"), GraphFormat::kMetis);
  EXPECT_EQ(sniff_format("3 2\n0 1\n1 2\n"), GraphFormat::kEdgeList);
  EXPECT_EQ(sniff_format(""), GraphFormat::kEdgeList);
}

TEST(Formats, ReadGraphFileAutoDetectsAllFormats) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "detcol_formats_auto";
  fs::create_directories(dir);
  const Graph g = gen_geometric(80, 0.15, 5);
  const std::vector<std::pair<std::string, GraphFormat>> files = {
      {"g.edges", GraphFormat::kEdgeList},
      {"g.col", GraphFormat::kDimacs},
      {"g.graph", GraphFormat::kMetis},
      {"g.dcg", GraphFormat::kDcg},
  };
  for (const auto& [name, fmt] : files) {
    const std::string path = (dir / name).string();
    write_graph_file(path, g, fmt);
    expect_same_graph(g, read_graph_file(path), name);            // sniffed
    expect_same_graph(g, read_graph_file(path, fmt), name);       // explicit
  }
  EXPECT_THROW(read_graph_file((dir / "missing.dcg").string()), CheckError);
  // Explicit format wins over a lying extension.
  const std::string lying = (dir / "lying.col").string();
  write_graph_file(lying, g, GraphFormat::kEdgeList);
  expect_same_graph(g, read_graph_file(lying, GraphFormat::kEdgeList),
                    "lying");
}

// ---------------------------------------------------------------------------
// Determinism of the sharded parse: bit-identical at 1/2/4/7 threads.
// ---------------------------------------------------------------------------

TEST(Formats, ParallelParseInvariance) {
  // Big enough that every thread count actually splits into many shards of
  // both passes (line scan + tokenize).
  const Graph g = gen_gnp(2500, 0.01, 42);
  std::ostringstream edges_os, dimacs_os, metis_os;
  write_edge_list(edges_os, g);
  write_dimacs(dimacs_os, g);
  write_metis(metis_os, g);
  const std::string golden = dcg_bytes(g);

  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    const ExecHolder holder = make_exec_holder(threads);
    EXPECT_EQ(dcg_bytes(parse_edge_list(edges_os.str(), holder.exec)), golden)
        << "edges @" << threads;
    EXPECT_EQ(dcg_bytes(parse_dimacs(dimacs_os.str(), holder.exec)), golden)
        << "dimacs @" << threads;
    EXPECT_EQ(dcg_bytes(parse_metis(metis_os.str(), holder.exec)), golden)
        << "metis @" << threads;
  }
}

TEST(Formats, ParallelParseReportsFirstErrorDeterministically) {
  // Two bad lines in different shards: every thread count must report the
  // earliest one (line 3), not whichever shard happened to finish first.
  std::ostringstream os;
  os << "5000 4000\n0 1\nBAD-EARLY\n";
  for (int i = 0; i < 4000; ++i) os << (i % 5000) << ' ' << ((i + 1) % 5000)
                                    << '\n';
  os << "BAD-LATE\n";
  const std::string buf = os.str();
  std::string first_message;
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    const ExecHolder holder = make_exec_holder(threads);
    try {
      parse_edge_list(buf, holder.exec, "err");
      FAIL() << "malformed buffer accepted @" << threads;
    } catch (const CheckError& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("err:3"), std::string::npos) << message;
      EXPECT_NE(message.find("BAD-EARLY"), std::string::npos) << message;
      if (first_message.empty()) first_message = message;
      EXPECT_EQ(message, first_message) << "@" << threads;
    }
  }
}

TEST(Formats, IndexLinesHandlesEdgeCases) {
  EXPECT_TRUE(index_lines("").empty());
  const auto no_trailing = index_lines("a\nb");
  ASSERT_EQ(no_trailing.size(), 2u);
  EXPECT_EQ(no_trailing[1].begin, 2u);
  EXPECT_EQ(no_trailing[1].end, 3u);
  const auto trailing = index_lines("a\nb\n");
  EXPECT_EQ(trailing.size(), 2u);
  // Invariant under threading for a buffer spanning many scan shards.
  std::string big;
  for (int i = 0; i < 300000; ++i) big += "line\n";
  const auto seq = index_lines(big);
  const ExecHolder holder = make_exec_holder(4);
  const auto par = index_lines(big, holder.exec);
  ASSERT_EQ(seq.size(), par.size());
  EXPECT_EQ(seq.front().begin, par.front().begin);
  EXPECT_EQ(seq.back().end, par.back().end);
}

}  // namespace
}  // namespace detcol
