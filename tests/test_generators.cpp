#include <gtest/gtest.h>

#include <queue>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(Generators, GnpDeterministicAndPlausibleDensity) {
  const Graph a = gen_gnp(500, 0.05, 42);
  const Graph b = gen_gnp(500, 0.05, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const double expected = 0.05 * 500 * 499 / 2;
  EXPECT_NEAR(static_cast<double>(a.num_edges()), expected, expected * 0.15);
  const Graph c = gen_gnp(500, 0.05, 43);
  EXPECT_NE(a.num_edges(), c.num_edges());  // overwhelmingly likely
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gen_gnp(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gen_gnp(50, 1.0, 1).num_edges(), 50u * 49 / 2);
}

TEST(Generators, GnmExactCount) {
  const Graph g = gen_gnm(100, 321, 9);
  EXPECT_EQ(g.num_edges(), 321u);
  EXPECT_THROW(gen_gnm(5, 11, 1), CheckError);  // > C(5,2)=10
}

TEST(Generators, RandomRegularDegreeBounds) {
  const Graph g = gen_random_regular(400, 8, 5);
  EXPECT_LE(g.max_degree(), 8u);
  // Configuration-model repair loses few edges: average degree close to 8.
  const double avg = 2.0 * g.num_edges() / 400.0;
  EXPECT_GT(avg, 7.0);
}

TEST(Generators, PowerLawSkewedDegrees) {
  const Graph g = gen_power_law(2000, 2.5, 8.0, 11);
  EXPECT_GT(g.max_degree(), 30u);  // heavy head
  const double avg = 2.0 * g.num_edges() / 2000.0;
  EXPECT_NEAR(avg, 8.0, 4.0);
}

TEST(Generators, GridStructure) {
  const Graph g = gen_grid(5, 7);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_EQ(g.num_edges(), 5u * 6 + 4u * 7);  // horizontal + vertical
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.degree(0), 2u);  // corner
}

TEST(Generators, RingAndComplete) {
  const Graph ring = gen_ring(10);
  EXPECT_EQ(ring.num_edges(), 10u);
  EXPECT_EQ(ring.max_degree(), 2u);
  EXPECT_THROW(gen_ring(2), CheckError);
  const Graph k5 = gen_complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);
}

TEST(Generators, BipartiteIsTwoColorable) {
  const Graph g = gen_bipartite(40, 60, 0.2, 3);
  EXPECT_EQ(g.num_nodes(), 100u);
  // BFS two-coloring must succeed.
  std::vector<int> side(g.num_nodes(), -1);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (side[s] != -1) continue;
    side[s] = 0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const NodeId u : g.neighbors(v)) {
        if (side[u] == -1) {
          side[u] = 1 - side[v];
          q.push(u);
        }
        ASSERT_NE(side[u], side[v]);
      }
    }
  }
}

TEST(Generators, GeometricSymmetricInRadius) {
  const Graph g = gen_geometric(300, 0.08, 17);
  EXPECT_GT(g.num_edges(), 0u);
  // Every node's neighbor relation is symmetric by construction of Graph;
  // sanity: no degree exceeds n-1 and graph is deterministic.
  const Graph h = gen_geometric(300, 0.08, 17);
  EXPECT_EQ(g.num_edges(), h.num_edges());
}

TEST(Generators, PlantedKColorableRespectsGroups) {
  const NodeId k = 5;
  const Graph g = gen_planted_kcolorable(200, k, 0.3, 23);
  // The chromatic number is at most k; check indirectly: the graph has no
  // clique of size k+1 among any k+1 nodes we test greedily. Cheap proxy:
  // max degree below n and edges only across groups means greedy with k*2
  // colors succeeds — full verification happens in coloring tests.
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_LT(g.max_degree(), 200u);
}

TEST(Generators, RandomTreeIsTree) {
  const Graph g = gen_random_tree(500, 31);
  EXPECT_EQ(g.num_edges(), 499u);
  // Connected: BFS reaches everyone.
  std::vector<char> seen(g.num_nodes(), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        ++count;
        q.push(u);
      }
    }
  }
  EXPECT_EQ(count, g.num_nodes());
}

}  // namespace
}  // namespace detcol
