#include <gtest/gtest.h>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

void expect_valid(const Graph& g, const PaletteSet& pal,
                  const ColorReduceResult& r) {
  const auto v = verify_coloring(g, pal, r.coloring);
  EXPECT_TRUE(v.ok) << v.issue;
}

TEST(ColorReduce, DeltaPlusOneOnGnp) {
  const Graph g = gen_gnp(2000, 0.02, 17);  // Delta ~ 40+
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal);
  expect_valid(g, pal, r);
  EXPECT_GT(r.ledger.total_rounds(), 0u);
  EXPECT_GE(r.num_collects, 1u);
}

TEST(ColorReduce, ListColoringOnRegular) {
  const Graph g = gen_random_regular(1500, 24, 29);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 20, 5);
  const auto r = color_reduce(g, pal);
  expect_valid(g, pal, r);
}

TEST(ColorReduce, DegPlusOneLists) {
  const Graph g = gen_power_law(1500, 2.5, 8.0, 31);
  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 20, 7);
  const auto r = color_reduce(g, pal);
  expect_valid(g, pal, r);
}

TEST(ColorReduce, TinyInstanceIsCollectedDirectly) {
  const Graph g = gen_ring(16);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal);
  expect_valid(g, pal, r);
  EXPECT_EQ(r.num_partitions, 0u);
  EXPECT_EQ(r.num_collects, 1u);
  EXPECT_TRUE(r.root.collected);
}

TEST(ColorReduce, DenseGraphForcesRecursion) {
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const Graph g = gen_gnp(800, 0.1, 23);  // Delta ~ 80, words ~ 52k >> 2n
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
  EXPECT_GE(r.num_partitions, 1u);
  EXPECT_GE(r.max_depth_reached, 1u);
  EXPECT_EQ(r.root.num_bins, 2u);  // Delta^0.1 < 2 at this scale
}

TEST(ColorReduce, Deterministic) {
  const Graph g = gen_gnp(600, 0.05, 41);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto a = color_reduce(g, pal);
  const auto b = color_reduce(g, pal);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.ledger.total_rounds(), b.ledger.total_rounds());
}

TEST(ColorReduce, SaltChangesColoringNotValidity) {
  const Graph g = gen_gnp(600, 0.05, 43);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const auto a = color_reduce(g, pal, cfg);
  cfg.salt = 999;
  const auto b = color_reduce(g, pal, cfg);
  expect_valid(g, pal, a);
  expect_valid(g, pal, b);
}

TEST(ColorReduce, StatsTreeMirrorsRecursion) {
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const Graph g = gen_random_regular(1000, 48, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
  ASSERT_FALSE(r.root.collected);
  // Children: b-1 color bins + last bin.
  EXPECT_EQ(r.root.children.size(), r.root.num_bins);
  // Bad-node subgraph within budget at every recorded partition.
  std::vector<const CallStats*> stack = {&r.root};
  while (!stack.empty()) {
    const CallStats* s = stack.back();
    stack.pop_back();
    if (!s->collected && s->n > 0) {
      EXPECT_LE(s->g0_words,
                static_cast<std::uint64_t>(cfg.part.g0_budget * 1000) +
                    1000u)
          << "depth " << s->depth;
    }
    for (const auto& c : s->children) stack.push_back(&c);
  }
}

TEST(ColorReduce, CollectCapacityRespected) {
  const Graph g = gen_gnp(1200, 0.03, 47);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
  EXPECT_LE(r.peak_collect_words,
            static_cast<std::uint64_t>(cfg.collect_slack * 1200));
}

TEST(ColorReduce, RejectsDeficientPalettes) {
  const Graph g = gen_complete(10);
  const PaletteSet pal = PaletteSet::uniform(10, 5);
  EXPECT_THROW(color_reduce(g, pal), CheckError);
}

TEST(ColorReduce, MirrorImplicitMatchesExplicit) {
  const Graph g = gen_gnp(500, 0.08, 53);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.mirror_implicit = true;
  cfg.part.collect_factor = 2.0;
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
  ASSERT_NE(r.implicit_store, nullptr);
  // Implicit representation is far below the explicit Theta(n*Delta).
  EXPECT_LT(r.implicit_store->space_words(), r.explicit_palette_words);
}

TEST(ColorReduce, MirrorImplicitRequiresUniformPalettes) {
  const Graph g = gen_gnp(200, 0.05, 59);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 16, 3);
  ColorReduceConfig cfg;
  cfg.mirror_implicit = true;
  EXPECT_THROW(color_reduce(g, pal, cfg), CheckError);
}

TEST(ColorReduce, McESampledStrategyEndToEnd) {
  ColorReduceConfig cfg;
  cfg.part.seed.strategy = SeedStrategy::kMceSampled;
  cfg.part.seed.chunk_bits = 6;
  cfg.part.seed.mce_samples = 2;
  cfg.part.collect_factor = 2.0;
  const Graph g = gen_gnp(400, 0.08, 61);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
}

TEST(ColorReduce, EmptyAndSingletonGraphs) {
  {
    const Graph g = Graph::from_edges(0, std::vector<Edge>{});
    const PaletteSet pal = PaletteSet::uniform(0, 1);
    const auto r = color_reduce(g, pal);
    EXPECT_TRUE(r.coloring.complete());
  }
  {
    const Graph g = Graph::from_edges(1, std::vector<Edge>{});
    const PaletteSet pal = PaletteSet::uniform(1, 1);
    const auto r = color_reduce(g, pal);
    expect_valid(g, pal, r);
  }
}

TEST(ColorReduce, DisconnectedComponents) {
  // Two cliques and isolated nodes.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = 10; u < 18; ++u) {
    for (NodeId v = u + 1; v < 18; ++v) edges.emplace_back(u, v);
  }
  const Graph g = Graph::from_edges(25, edges);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal);
  expect_valid(g, pal, r);
}

TEST(ColorReduce, RoundsComposeParallelNotSum) {
  // With recursion forced, the ledger's rounds must be far below the sum of
  // all per-call charges (children share rounds): compare against a naive
  // upper bound of partitions * (full seed schedule + routing).
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const Graph g = gen_random_regular(1200, 40, 67);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  const auto r = color_reduce(g, pal, cfg);
  expect_valid(g, pal, r);
  ASSERT_GE(r.num_partitions, 2u);
  const std::uint64_t per_partition_cost = 200;  // generous per-call bound
  EXPECT_LT(r.ledger.total_rounds(), r.num_partitions * per_partition_cost);
}

}  // namespace
}  // namespace detcol
