#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/mpc_ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace mpc {
namespace {

std::vector<std::uint64_t> random_items(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(k);
  for (auto& x : v) x = rng.next_below(1 << 20);
  return v;
}

TEST(Distribute, RespectsHalfCapacity) {
  const auto items = random_items(1000, 1);
  const auto d = distribute(items, 64);
  EXPECT_EQ(d.total_items(), 1000u);
  for (const auto& m : d.machine) EXPECT_LE(m.size(), 32u);
  EXPECT_GE(d.num_machines(), 1000u / 32);
}

TEST(Distribute, TinySpaceRejected) {
  EXPECT_THROW(distribute({1, 2, 3}, 4), CheckError);
}

TEST(SampleSort, SortsGlobally) {
  const auto items = random_items(5000, 2);
  auto d = distribute(items, 512);
  const MpcModel model(512, 1u << 22);
  MpcCosts acc;
  const auto rounds = sample_sort(d, model, acc);
  EXPECT_GE(rounds, 3u);  // sample + splitters + exchange
  const auto out = d.gather();
  auto want = items;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(out, want);
}

TEST(SampleSort, SingleMachineNoCommunication) {
  const auto items = random_items(50, 3);
  auto d = distribute(items, 1024);
  ASSERT_EQ(d.num_machines(), 1u);
  const MpcModel model(1024, 1 << 16);
  MpcCosts acc;
  EXPECT_EQ(sample_sort(d, model, acc), 0u);
  const auto out = d.gather();
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(SampleSort, DuplicateHeavyKeys) {
  std::vector<std::uint64_t> items(4000, 7);  // all equal
  for (std::size_t i = 0; i < 100; ++i) items[i * 17] = i;
  auto d = distribute(items, 4096);
  const MpcModel model(4096, 1u << 22);
  MpcCosts acc;
  sample_sort(d, model, acc);
  const auto out = d.gather();
  auto want = items;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(out, want);
}

TEST(SampleSort, EmptyInput) {
  auto d = distribute({}, 64);
  const MpcModel model(64, 4096);
  MpcCosts acc;
  EXPECT_EQ(sample_sort(d, model, acc), 0u);
}

TEST(SampleSort, SpaceBoundEnforcedOnSkew) {
  // All keys equal: every item lands in one bucket; with too little space
  // the guarantee breaks and the primitive must refuse loudly.
  std::vector<std::uint64_t> items(2000, 42);
  auto d = distribute(items, 64);  // 63 machines, bucket of 2000 >> 64
  const MpcModel model(64, 1u << 22);
  MpcCosts acc;
  EXPECT_THROW(sample_sort(d, model, acc), CheckError);
}

TEST(PrefixSums, ExclusivePrefixPerMachine) {
  std::vector<std::uint64_t> items(100);
  std::iota(items.begin(), items.end(), 1);  // 1..100, total 5050
  auto d = distribute(items, 32);
  const MpcModel model(32, 1 << 16);
  MpcCosts acc;
  const auto prefix = machine_prefix_sums(d, model, acc);
  ASSERT_EQ(prefix.size(), d.num_machines());
  EXPECT_EQ(prefix[0], 0u);
  std::uint64_t running = 0;
  for (std::uint64_t i = 0; i < d.num_machines(); ++i) {
    EXPECT_EQ(prefix[i], running);
    for (const auto x : d.machine[i]) running += x;
  }
  EXPECT_EQ(running, 5050u);
}

TEST(PrefixSums, ChargesConstantRounds) {
  const auto items = random_items(300, 5);
  auto d = distribute(items, 64);
  const MpcModel model(64, 1 << 16);
  MpcCosts acc;
  machine_prefix_sums(d, model, acc);
  EXPECT_LE(acc.ledger.total_rounds(), 4u);
}

}  // namespace
}  // namespace mpc
}  // namespace detcol
