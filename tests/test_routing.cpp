#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/routing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace cc {
namespace {

std::multiset<std::uint64_t> payloads_for(
    const RouteResult& r, std::uint32_t dst) {
  std::multiset<std::uint64_t> out;
  for (const auto& p : r.delivered[dst]) out.insert(p.payload);
  return out;
}

TEST(Routing, DeliversPermutation) {
  const std::uint32_t n = 16;
  Network net(n);
  std::vector<Packet> packets;
  for (std::uint32_t v = 0; v < n; ++v) {
    packets.push_back({v, (v + 5) % n, 1000 + v});
  }
  const auto r = route_packets(net, packets);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto got = payloads_for(r, (v + 5) % n);
    EXPECT_TRUE(got.count(1000 + v)) << "packet from " << v << " lost";
  }
  // A permutation is perfectly balanced: constant rounds.
  EXPECT_LE(r.rounds, 4u);
}

TEST(Routing, AllToAllCompletesInConstantRounds) {
  // Every node sends one word to every other node: send/recv load n-1.
  const std::uint32_t n = 12;
  Network net(n);
  std::vector<Packet> packets;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v) packets.push_back({u, v, u * 100ull + v});
    }
  }
  const auto r = route_packets(net, packets);
  std::uint64_t total = 0;
  for (std::uint32_t v = 0; v < n; ++v) total += r.delivered[v].size();
  EXPECT_EQ(total, packets.size());
  // Load (n-1, n-1) is within Lenzen's O(n) bound: a small constant of
  // rounds suffices (phase 1 one sweep, phase 2 bounded by collisions).
  EXPECT_LE(r.rounds, 8u);
}

TEST(Routing, SingleHotReceiverDegradesGracefully) {
  // All n-1 nodes send k packets to node 0: receive load k*(n-1) = O(n)
  // when k small; rounds grow with k but delivery stays exact.
  const std::uint32_t n = 10;
  const std::uint64_t k = 3;
  Network net(n);
  std::vector<Packet> packets;
  for (std::uint32_t v = 1; v < n; ++v) {
    for (std::uint64_t i = 0; i < k; ++i) {
      packets.push_back({v, 0, v * 10 + i});
    }
  }
  const auto r = route_packets(net, packets);
  EXPECT_EQ(r.delivered[0].size(), packets.size());
  const auto [ms, mr] = load_of(n, packets);
  EXPECT_EQ(ms, k);
  EXPECT_EQ(mr, k * (n - 1));
  // Destination receives at most n-1 words per round in phase 2.
  EXPECT_GE(r.phase2_rounds, (packets.size() + n - 2) / (n - 1));
}

TEST(Routing, RandomLoadsDeliverExactly) {
  const std::uint32_t n = 20;
  Xoshiro256 rng(77);
  Network net(n);
  std::vector<Packet> packets;
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    auto v = static_cast<std::uint32_t>(rng.next_below(n));
    packets.push_back({u, v, static_cast<std::uint64_t>(i)});
  }
  const auto r = route_packets(net, packets);
  std::multiset<std::uint64_t> want, got;
  for (const auto& p : packets) want.insert(p.payload);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const auto& p : r.delivered[v]) {
      EXPECT_EQ(p.dst, v);
      got.insert(p.payload);
    }
  }
  EXPECT_EQ(got, want);
}

// Parameterized load sweep: per-node send load k means every node ships k
// packets to deterministic pseudo-random destinations; delivery must be
// exact and phase-1 rounds must match ceil(k/(n-1)).
class RoutingLoad : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingLoad, BalancedLoadsDeliverWithPredictablePhase1) {
  const std::uint64_t k = GetParam();
  const std::uint32_t n = 16;
  Network net(n);
  Xoshiro256 rng(k);
  std::vector<Packet> packets;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint64_t i = 0; i < k; ++i) {
      packets.push_back(
          {v, static_cast<std::uint32_t>(rng.next_below(n)),
           v * 1000 + i});
    }
  }
  const auto r = route_packets(net, packets);
  std::uint64_t total = 0;
  for (std::uint32_t v = 0; v < n; ++v) total += r.delivered[v].size();
  EXPECT_EQ(total, packets.size());
  EXPECT_EQ(r.phase1_rounds, (k + n - 2) / (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Loads, RoutingLoad,
                         ::testing::Values(1ull, 4ull, 15ull, 16ull, 40ull));

TEST(Routing, SelfAddressedPacketsAllowed) {
  // src == dst packets are legal at the routing layer (the intermediary
  // hands them over without a final network hop when it coincides).
  const std::uint32_t n = 6;
  Network net(n);
  std::vector<Packet> packets = {{2, 2, 42}, {3, 1, 7}};
  const auto r = route_packets(net, packets);
  EXPECT_EQ(r.delivered[2].size(), 1u);
  EXPECT_EQ(r.delivered[1].size(), 1u);
}

TEST(Routing, EmptyInput) {
  Network net(4);
  const auto r = route_packets(net, {});
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Routing, LoadOfRejectsOutOfRange) {
  std::vector<Packet> bad = {{0, 9, 1}};
  EXPECT_THROW(load_of(4, bad), CheckError);
}

}  // namespace
}  // namespace cc
}  // namespace detcol
