#include <gtest/gtest.h>

#include <numeric>

#include "core/invariants.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"

namespace detcol {
namespace {

Instance make_instance(Graph g, double ell) {
  Instance inst;
  inst.orig.resize(g.num_nodes());
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = std::move(g);
  inst.ell = ell;
  return inst;
}

TEST(Partition, MeetsLemma39Targets) {
  const Graph g = gen_gnp(800, 0.05, 13);  // Delta ~ 40
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const CliqueModel model(800);
  MpcCosts acc;
  const auto pr = partition(inst, pal, 800, params, &model, &acc, 1);
  // Derandomized guarantees: no bad bins, G0 within the O(n) budget.
  EXPECT_EQ(pr.cls.num_bad_bins, 0u);
  EXPECT_LE(pr.cls.cost_size, params.g0_budget * 800.0);
  EXPECT_TRUE(pr.seed.met_threshold);
  EXPECT_GE(pr.num_bins, 2u);
  EXPECT_GT(acc.ledger.total_rounds(), 0u);
}

TEST(Partition, GoodColorBinNodesAreRecursivelyColorable) {
  const Graph g = gen_random_regular(600, 32, 7);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto pr = partition(inst, pal, 600, params, nullptr, nullptr, 2);
  const std::uint64_t b = pr.num_bins;
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (pr.cls.bin_of[v] != 0 && pr.cls.bin_of[v] != b) {
      // The belt-and-braces guarantee: restricted palette beats bin degree.
      EXPECT_GT(pr.cls.pal_in_bin[v], pr.cls.deg_in_bin[v]);
    }
  }
}

TEST(Partition, Deterministic) {
  const Graph g = gen_gnp(300, 0.1, 5);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto a = partition(inst, pal, 300, params, nullptr, nullptr, 9);
  const auto b = partition(inst, pal, 300, params, nullptr, nullptr, 9);
  EXPECT_EQ(a.cls.bin_of, b.cls.bin_of);
  EXPECT_EQ(a.seed.cost, b.seed.cost);
  // Different salt explores a different (but still valid) seed.
  const auto c = partition(inst, pal, 300, params, nullptr, nullptr, 10);
  EXPECT_EQ(c.cls.num_bad_bins, 0u);
}

TEST(Partition, EllNextFollowsPaperFormula) {
  const Graph g = gen_gnp(200, 0.2, 3);
  const double ell = 1000.0;
  const Instance inst = make_instance(g, ell);
  // Palettes must exceed ell for Corollary 3.3 — give everyone 1001 colors.
  const PaletteSet pal = PaletteSet::uniform(200, 1100);
  PartitionParams params;
  const auto pr = partition(inst, pal, 200, params, nullptr, nullptr, 4);
  EXPECT_DOUBLE_EQ(pr.ell_next, next_ell(ell, params));
}

TEST(Partition, InvariantPreservedAtRoot) {
  // At the paper's starting point (ell = Delta, palettes Delta+1) Corollary
  // 3.3 holds exactly.
  const Graph g = gen_power_law(1000, 2.7, 10.0, 19);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto rep = check_corollary_33(inst, pal, params);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST(Partition, Lemma32CheckerOnChosenSeed) {
  // On a dense random-regular graph at realistic scale, the checker reports
  // how good nodes fare against the Lemma 3.2 conclusions. Condition (iii)
  // (d' < p') must hold for color-bin nodes by construction.
  const Graph g = gen_random_regular(500, 40, 3);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto pr = partition(inst, pal, 500, params, nullptr, nullptr, 6);
  const auto rep = check_lemma_32(inst, pr.cls, params);
  EXPECT_GT(rep.checked, 0u);
  EXPECT_EQ(rep.viol_deg_lt_p, 0u) << rep.to_string();
}

TEST(Partition, ColorBinsReceiveDisjointPalettes) {
  // The parallel recursion of Algorithm 1 is sound because the h2
  // restriction hands different color bins *disjoint* palette shares.
  const Graph g = gen_gnp(400, 0.1, 11);
  const Instance inst = make_instance(g, g.max_degree());
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto pr = partition(inst, pal, 400, params, nullptr, nullptr, 12);
  const std::uint64_t b = pr.num_bins;
  for (NodeId u = 0; u < inst.n(); ++u) {
    const auto bu = pr.cls.bin_of[u];
    if (bu == 0 || bu == b) continue;
    for (const Color c : pal.palette(u)) {
      if (pr.h2(c) + 1 != bu) continue;  // c is in u's share
      // c must not be in the share of any other color bin.
      for (std::uint64_t other = 1; other < b; ++other) {
        if (other != bu) {
          ASSERT_NE(pr.h2(c) + 1, other);
        }
      }
    }
  }
}

TEST(Partition, SparseGraphManyBadStillWithinBudget) {
  // Very low degree: slacks swamp degrees, nearly everyone is good.
  const Graph g = gen_ring(1000);
  Instance inst = make_instance(g, 8.0);
  const PaletteSet pal = PaletteSet::uniform(1000, 9);
  PartitionParams params;
  const auto pr = partition(inst, pal, 1000, params, nullptr, nullptr, 8);
  EXPECT_LE(pr.cls.cost_size, params.g0_budget * 1000.0);
}

}  // namespace
}  // namespace detcol
