#include <gtest/gtest.h>

#include "core/network_color.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(NetworkColor, ColorsRing) {
  const Graph g = gen_ring(64);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto r = network_color_round(g, pal, params);
  const auto v = verify_coloring(g, pal, r.coloring);
  EXPECT_TRUE(v.ok) << v.issue;
}

TEST(NetworkColor, ColorsGnpWithRealMessages) {
  const Graph g = gen_gnp(96, 0.08, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto r = network_color_round(g, pal, params);
  const auto v = verify_coloring(g, pal, r.coloring);
  ASSERT_TRUE(v.ok) << v.issue;
  EXPECT_GT(r.words_sent, 0u);
  EXPECT_GT(r.network_rounds, r.mce_rounds);
}

TEST(NetworkColor, MceRoundsMatchSchedule) {
  const Graph g = gen_random_regular(80, 8, 5);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;  // c = 4 -> 512 seed bits
  const auto r = network_color_round(g, pal, params, /*chunk_bits=*/4);
  // 512 bits / 4 per chunk = 128 chunks, exactly 2 network rounds each.
  EXPECT_EQ(r.mce_rounds, 256u);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
}

TEST(NetworkColor, ListColoring) {
  const Graph g = gen_random_regular(100, 10, 7);
  const PaletteSet pal = PaletteSet::random_lists(g, 1u << 16, 9);
  PartitionParams params;
  const auto r = network_color_round(g, pal, params);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
}

TEST(NetworkColor, PartitionQualityMatchesLemma39) {
  const Graph g = gen_gnp(128, 0.1, 11);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto r = network_color_round(g, pal, params);
  EXPECT_TRUE(verify_coloring(g, pal, r.coloring).ok);
  EXPECT_EQ(r.cls.num_bad_bins, 0u);
  // Bad-node subgraph within the O(n) budget of Corollary 3.10.
  EXPECT_LE(r.cls.bad_graph_words, 16ull * g.num_nodes());
}

TEST(NetworkColor, Deterministic) {
  const Graph g = gen_gnp(72, 0.1, 13);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  PartitionParams params;
  const auto a = network_color_round(g, pal, params);
  const auto b = network_color_round(g, pal, params);
  EXPECT_EQ(a.coloring.color, b.coloring.color);
  EXPECT_EQ(a.network_rounds, b.network_rounds);
  EXPECT_EQ(a.words_sent, b.words_sent);
}

TEST(NetworkColor, RejectsDeficientPalettes) {
  const Graph g = gen_complete(8);
  const PaletteSet pal = PaletteSet::uniform(8, 4);
  PartitionParams params;
  EXPECT_THROW(network_color_round(g, pal, params), CheckError);
}

TEST(NetworkColor, RoundsIndependentOfWhichGraph) {
  // The MCE schedule depends only on seed length and chunk size; total
  // rounds vary only with routing load, staying within a small envelope.
  PartitionParams params;
  const Graph g1 = gen_random_regular(64, 6, 1);
  const Graph g2 = gen_random_regular(128, 6, 2);
  const auto r1 =
      network_color_round(g1, PaletteSet::delta_plus_one(g1), params);
  const auto r2 =
      network_color_round(g2, PaletteSet::delta_plus_one(g2), params);
  EXPECT_TRUE(verify_coloring(g1, PaletteSet::delta_plus_one(g1),
                              r1.coloring).ok);
  EXPECT_TRUE(verify_coloring(g2, PaletteSet::delta_plus_one(g2),
                              r2.coloring).ok);
  EXPECT_EQ(r1.mce_rounds, r2.mce_rounds);
  // Doubling n must not double total message rounds.
  EXPECT_LT(r2.network_rounds, 2 * r1.network_rounds);
}

}  // namespace
}  // namespace detcol
