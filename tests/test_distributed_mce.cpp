#include <gtest/gtest.h>

#include "derand/distributed_mce.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

TEST(DistributedMce, TwoNetworkRoundsPerChunk) {
  cc::Network net(16);
  const auto cost = [](std::uint32_t, const SeedBits&) { return 1.0; };
  const auto r = distributed_mce(net, 32, 4, cost);
  EXPECT_EQ(r.chunks, 8u);
  EXPECT_EQ(r.network_rounds, 16u);  // exactly 2 rounds per chunk
}

TEST(DistributedMce, FindsPlantedSeparableOptimum) {
  // Each node x penalizes bit x of the seed differing from pattern bit x:
  // the global optimum is the pattern itself, and conditional expectations
  // decompose over nodes exactly as in Section 2.4.
  const std::uint32_t n = 32;
  const unsigned bits = 32;
  const std::uint64_t pattern = 0xDEADBEEF;
  cc::Network net(n);
  const auto cost = [&](std::uint32_t v, const SeedBits& s) {
    const bool want = (pattern >> v) & 1;
    return s.get_bits(v, 1) == static_cast<std::uint64_t>(want) ? 0.0 : 1.0;
  };
  const auto r = distributed_mce(net, bits, 5, cost, /*samples=*/2);
  for (unsigned i = 0; i < bits; ++i) {
    EXPECT_EQ(r.seed.get_bits(i, 1), (pattern >> i) & 1) << "bit " << i;
  }
  EXPECT_DOUBLE_EQ(r.final_estimate, 0.0);
}

TEST(DistributedMce, AgreementIsDeterministic) {
  cc::Network net1(8), net2(8);
  const auto cost = [](std::uint32_t v, const SeedBits& s) {
    return static_cast<double>((s.get_bits(0, 8) ^ v) & 0x0F);
  };
  const auto a = distributed_mce(net1, 24, 3, cost);
  const auto b = distributed_mce(net2, 24, 3, cost);
  EXPECT_EQ(a.seed, b.seed);
}

TEST(DistributedMce, RespectsBandwidth) {
  // The implementation must schedule within one word per link per round —
  // the Network would throw otherwise. 2^chunk == n is the extreme case.
  cc::Network net(8);
  const auto cost = [](std::uint32_t, const SeedBits&) { return 0.5; };
  EXPECT_NO_THROW(distributed_mce(net, 12, 3, cost));
}

TEST(DistributedMce, RejectsTooManyCandidates) {
  cc::Network net(8);
  const auto cost = [](std::uint32_t, const SeedBits&) { return 0.0; };
  EXPECT_THROW(distributed_mce(net, 16, 4, cost), CheckError);  // 16 > 8
}

TEST(DistributedMce, RejectsNegativeCosts) {
  cc::Network net(8);
  const auto cost = [](std::uint32_t, const SeedBits&) { return -1.0; };
  EXPECT_THROW(distributed_mce(net, 8, 2, cost), CheckError);
}

}  // namespace
}  // namespace detcol
