#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "hashing/field.hpp"
#include "hashing/kwise.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

TEST(KWise, DeterministicForSameSeed) {
  const auto h1 = KWiseHash::from_u64_seed(99, 4, 16);
  const auto h2 = KWiseHash::from_u64_seed(99, 4, 16);
  for (std::uint64_t x = 0; x < 1000; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(KWise, DifferentSeedsDiffer) {
  const auto h1 = KWiseHash::from_u64_seed(1, 4, 1 << 20);
  const auto h2 = KWiseHash::from_u64_seed(2, 4, 1 << 20);
  int differing = 0;
  for (std::uint64_t x = 0; x < 100; ++x) {
    if (h1(x) != h2(x)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(KWise, RangeRespected) {
  const auto h = KWiseHash::from_u64_seed(7, 4, 13);
  for (std::uint64_t x = 0; x < 10000; ++x) ASSERT_LT(h(x), 13u);
}

TEST(KWise, SeedBitsFormula) {
  EXPECT_EQ(KWiseHash::seed_bits(1), 64u);
  EXPECT_EQ(KWiseHash::seed_bits(4), 256u);
  EXPECT_EQ(KWiseHash::seed_bits(8), 512u);
}

TEST(KWise, IndependenceMatchesCoefficientCount) {
  const auto h = KWiseHash::from_u64_seed(0, 6, 10);
  EXPECT_EQ(h.independence(), 6u);
  EXPECT_EQ(h.coefficients().size(), 6u);
}

TEST(KWise, ConstantPolynomialIsConstant) {
  // Degree-0 polynomial: h(x) = a_0 for all x.
  std::vector<std::uint64_t> coeffs = {12345};
  const KWiseHash h(coeffs, 100);
  const auto v = h(0);
  for (std::uint64_t x = 1; x < 100; ++x) EXPECT_EQ(h(x), v);
}

TEST(KWise, LinearPolynomialEvaluation) {
  // h(x) = 3x + 5 in the field; check via field_eval.
  std::vector<std::uint64_t> coeffs = {5, 3};
  const KWiseHash h(coeffs, 1);
  EXPECT_EQ(h.field_eval(0), 5u);
  EXPECT_EQ(h.field_eval(1), 8u);
  EXPECT_EQ(h.field_eval(10), 35u);
  EXPECT_EQ(h.field_eval(kMersenne61), 5u);  // input reduced to 0
}

TEST(KWise, MarginalsNearUniform) {
  // Average over many seeds: each input lands in each bucket ~uniformly.
  const std::uint64_t range = 8;
  std::map<std::uint64_t, int> counts;
  const int seeds = 8000;
  for (int s = 0; s < seeds; ++s) {
    const auto h = KWiseHash::from_u64_seed(s, 4, range);
    ++counts[h(42)];
  }
  for (std::uint64_t b = 0; b < range; ++b) {
    EXPECT_NEAR(counts[b], seeds / 8, seeds / 40) << "bucket " << b;
  }
}

TEST(KWise, PairwiseJointNearUniform) {
  // 2-wise independence check over seeds: the joint distribution of
  // (h(1), h(2)) should be near uniform over range^2 cells.
  const std::uint64_t range = 4;
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> counts;
  const int seeds = 16000;
  for (int s = 0; s < seeds; ++s) {
    const auto h = KWiseHash::from_u64_seed(s * 31 + 7, 4, range);
    ++counts[{h(1), h(2)}];
  }
  const double expect = seeds / 16.0;
  for (std::uint64_t a = 0; a < range; ++a) {
    for (std::uint64_t b = 0; b < range; ++b) {
      const int got = counts[std::make_pair(a, b)];
      EXPECT_NEAR(got, expect, expect * 0.2)
          << "cell (" << a << "," << b << ")";
    }
  }
}

TEST(KWise, EmptySeedRejected) {
  std::vector<std::uint64_t> empty;
  EXPECT_THROW(KWiseHash(empty, 4), CheckError);
  EXPECT_THROW(KWiseHash::from_u64_seed(1, 4, 0), CheckError);
}

}  // namespace
}  // namespace detcol
