// The sharded scalable generators (graph/scalable_gen.hpp) and the mmap
// read path they pair with: the determinism contract (byte-identical .dcg
// at every thread count AND every spill budget), golden fingerprints that
// pin the hashed samplers and the container format, statistical sanity of
// each family, and the lazy-validation semantics of map_dcg_file on
// corrupted files.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "exec/exec.hpp"
#include "graph/formats.hpp"
#include "graph/io.hpp"
#include "graph/scalable_gen.hpp"
#include "serve/instance_store.hpp"
#include "util/check.hpp"

namespace detcol {
namespace {

namespace fs = std::filesystem;

fs::path test_dir() {
  const fs::path dir = fs::path(::testing::TempDir()) / "detcol_scalable_gen";
  fs::create_directories(dir);
  return dir;
}

/// Generate `spec` into a scratch file and return the file's bytes.
std::string gen_bytes(const ScalableGenSpec& spec, unsigned threads,
                      std::size_t budget_bytes = std::size_t{1} << 30) {
  ExecHolder holder = make_exec_holder(threads);
  const std::string path =
      (test_dir() / (std::string(scalable_family_name(spec.family)) + "-t" +
                     std::to_string(threads) + "-b" +
                     std::to_string(budget_bytes) + ".dcg"))
          .string();
  ScalableGenOptions options;
  options.budget_bytes = budget_bytes;
  generate_scalable_dcg(spec, path, holder.exec, options);
  std::string bytes = slurp_file(path);
  fs::remove(path);
  return bytes;
}

ScalableGenSpec ba_spec(NodeId n, NodeId d, std::uint64_t seed) {
  ScalableGenSpec s;
  s.family = ScalableFamily::kBarabasiAlbert;
  s.n = n;
  s.d = d;
  s.seed = seed;
  return s;
}

ScalableGenSpec rgg_spec(NodeId n, double radius, std::uint64_t seed) {
  ScalableGenSpec s;
  s.family = ScalableFamily::kGeometric;
  s.n = n;
  s.radius = radius;
  s.seed = seed;
  return s;
}

ScalableGenSpec sgnm_spec(NodeId n, std::uint64_t m, std::uint64_t seed) {
  ScalableGenSpec s;
  s.family = ScalableFamily::kGnm;
  s.n = n;
  s.m = m;
  s.seed = seed;
  return s;
}

ScalableGenSpec sgnp_spec(NodeId n, double p, std::uint64_t seed) {
  ScalableGenSpec s;
  s.family = ScalableFamily::kGnp;
  s.n = n;
  s.p = p;
  s.seed = seed;
  return s;
}

// ---------------------------------------------------------------------------
// The determinism contract: thread count and spill budget never change a
// single byte of the output container.
// ---------------------------------------------------------------------------

TEST(ScalableGen, ByteIdenticalAcrossThreadCounts) {
  const ScalableGenSpec specs[] = {
      ba_spec(20000, 5, 3),
      rgg_spec(8000, 0.02, 4),
      sgnm_spec(10000, 40000, 5),
      sgnp_spec(4000, 0.003, 6),
  };
  for (const ScalableGenSpec& spec : specs) {
    const std::string baseline = gen_bytes(spec, 1);
    for (const unsigned threads : {2u, 4u, 7u}) {
      EXPECT_TRUE(gen_bytes(spec, threads) == baseline)
          << scalable_family_name(spec.family) << " at " << threads
          << " threads differs from the sequential output";
    }
  }
}

TEST(ScalableGen, ByteIdenticalUnderForcedSpill) {
  // A 4 KiB budget is far below these instances' arc volume, so every chunk
  // round-trips through the spill files; the bytes must not move.
  const ScalableGenSpec specs[] = {
      ba_spec(20000, 5, 3),
      rgg_spec(8000, 0.02, 4),
  };
  for (const ScalableGenSpec& spec : specs) {
    const std::string in_ram = gen_bytes(spec, 4);
    EXPECT_TRUE(gen_bytes(spec, 4, /*budget_bytes=*/4096) == in_ram)
        << scalable_family_name(spec.family)
        << ": spill path changed the output";
    EXPECT_TRUE(gen_bytes(spec, 1, /*budget_bytes=*/4096) == in_ram)
        << scalable_family_name(spec.family)
        << ": sequential spill path changed the output";
  }
}

// ---------------------------------------------------------------------------
// Golden fingerprints: FNV-1a over the whole emitted file. These pin the
// hashed samplers AND the .dcg container bit-for-bit — an intentional change
// to either is a format/generator break and must update these constants
// (and regenerate every committed artifact built from the families).
// ---------------------------------------------------------------------------

TEST(ScalableGen, GoldenFingerprints) {
  EXPECT_EQ(serve::fnv1a64_bytes(gen_bytes(ba_spec(2000, 4, 1), 2)),
            0xc124a893e4b9f5ecull);
  EXPECT_EQ(serve::fnv1a64_bytes(gen_bytes(rgg_spec(1500, 0.04, 2), 2)),
            0x4a919a59c332a970ull);
  EXPECT_EQ(serve::fnv1a64_bytes(gen_bytes(sgnm_spec(1200, 6000, 3), 2)),
            0xa8aea1efcda1a8a3ull);
  EXPECT_EQ(serve::fnv1a64_bytes(gen_bytes(sgnp_spec(900, 0.01, 4), 2)),
            0x43b18e645b790a53ull);
}

// ---------------------------------------------------------------------------
// The emitted container is the canonical encoding: reading it back (heap or
// mmap) and re-serializing reproduces the file bytes exactly.
// ---------------------------------------------------------------------------

TEST(ScalableGen, EmitsCanonicalDcgBytes) {
  const std::string path = (test_dir() / "canonical.dcg").string();
  ExecHolder holder = make_exec_holder(2);
  const ScalableGenResult res =
      generate_scalable_dcg(ba_spec(5000, 4, 7), path, holder.exec);
  const std::string file_bytes = slurp_file(path);

  const Graph owned = read_graph_file(path);
  EXPECT_EQ(owned.num_nodes(), res.n);
  EXPECT_EQ(owned.num_edges(), res.num_edges);
  EXPECT_EQ(owned.max_degree(), res.max_degree);
  EXPECT_TRUE(dcg_bytes(owned) == file_bytes);

  const Graph mapped = map_dcg_file(path);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_TRUE(mapped.mapped_bytes() == file_bytes);
  for (NodeId v = 0; v < owned.num_nodes(); ++v) {
    ASSERT_EQ(owned.degree(v), mapped.degree(v)) << "node " << v;
  }
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Statistical shape per family (loose bounds — these are sanity checks on
// the samplers, not distribution tests; the fingerprints above pin the
// exact output).
// ---------------------------------------------------------------------------

TEST(ScalableGen, BaDegreeDistributionIsHeavyTailed) {
  const std::string path = (test_dir() / "ba-shape.dcg").string();
  const ScalableGenResult res = generate_scalable_dcg(ba_spec(20000, 4, 1),
                                                      path);
  const Graph g = read_graph_file(path);
  fs::remove(path);
  // Each of the n steps adds at most d distinct edges (self-loops dropped,
  // duplicates collapse), and nearly all survive.
  EXPECT_LE(res.num_edges, std::uint64_t{20000} * 4);
  EXPECT_GE(res.num_edges, std::uint64_t{20000} * 4 * 9 / 10);
  // Preferential attachment grows hubs far beyond the arc parameter.
  EXPECT_GE(g.max_degree(), 10u * 4u);
  // ... but most nodes stay near the minimum: the median degree is O(d).
  std::size_t small = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) small += g.degree(v) <= 12;
  EXPECT_GE(small, g.num_nodes() * 3u / 4u);
}

TEST(ScalableGen, RggEdgeCountNearExpectation) {
  const NodeId n = 8000;
  const double r = 0.02;
  const ScalableGenResult res =
      generate_scalable_dcg(rgg_spec(n, r, 4),
                            (test_dir() / "rgg-shape.dcg").string());
  fs::remove(test_dir() / "rgg-shape.dcg");
  // E[m] ~= n^2/2 * pi r^2 (boundary effects push it slightly below).
  const double expected = 0.5 * double(n) * double(n) * 3.14159265 * r * r;
  EXPECT_GE(res.num_edges, std::uint64_t(expected * 0.7));
  EXPECT_LE(res.num_edges, std::uint64_t(expected * 1.3));
}

TEST(ScalableGen, SgnmEdgeCountNearRequested) {
  const ScalableGenResult res =
      generate_scalable_dcg(sgnm_spec(10000, 40000, 5),
                            (test_dir() / "sgnm-shape.dcg").string());
  fs::remove(test_dir() / "sgnm-shape.dcg");
  // m hashed draws minus self-loops (1/n) and collisions (birthday term).
  EXPECT_LE(res.num_edges, 40000u);
  EXPECT_GE(res.num_edges, 39000u);
}

TEST(ScalableGen, SgnpEdgeCountNearExpectation) {
  const NodeId n = 4000;
  const double p = 0.003;
  const ScalableGenResult res =
      generate_scalable_dcg(sgnp_spec(n, p, 6),
                            (test_dir() / "sgnp-shape.dcg").string());
  fs::remove(test_dir() / "sgnp-shape.dcg");
  const double expected = p * double(n) * double(n - 1) / 2;
  EXPECT_GE(res.num_edges, std::uint64_t(expected * 0.9));
  EXPECT_LE(res.num_edges, std::uint64_t(expected * 1.1));
}

TEST(ScalableGen, RejectsOutOfDomainParameters) {
  const std::string path = (test_dir() / "reject.dcg").string();
  EXPECT_THROW(generate_scalable_dcg(ba_spec(0, 4, 1), path), CheckError);
  EXPECT_THROW(generate_scalable_dcg(ba_spec(100, 0, 1), path), CheckError);
  EXPECT_THROW(generate_scalable_dcg(rgg_spec(100, 0.0, 1), path),
               CheckError);
  EXPECT_THROW(generate_scalable_dcg(rgg_spec(100, 1.5, 1), path),
               CheckError);
  EXPECT_THROW(generate_scalable_dcg(sgnp_spec(100, -0.1, 1), path),
               CheckError);
  EXPECT_THROW(generate_scalable_dcg(sgnp_spec(100, 1.1, 1), path),
               CheckError);
  EXPECT_FALSE(fs::exists(path)) << "a failed generation must not leave the "
                                    "output file behind (atomic write)";
}

// ---------------------------------------------------------------------------
// The mmap read path on damaged files: structural header problems fail at
// map time; adjacency damage fails lazily, at the first touch of the
// damaged vertex block, as a clean CheckError naming the file.
// ---------------------------------------------------------------------------

/// Generate a ba graph to `path` and return its byte size.
std::string make_victim(const std::string& path) {
  generate_scalable_dcg(ba_spec(20000, 4, 9), path);
  return slurp_file(path);
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

TEST(ScalableGen, MapRejectsTruncationEagerly) {
  const std::string path = (test_dir() / "trunc.dcg").string();
  const std::string bytes = make_victim(path);
  write_raw(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(map_dcg_file(path), CheckError);
  fs::remove(path);
}

TEST(ScalableGen, MapRejectsNonMonotoneOffsetsEagerly) {
  const std::string path = (test_dir() / "offsets.dcg").string();
  std::string bytes = make_victim(path);
  // Offsets live at [32, 32 + 8(n+1)); blow up an entry in the middle.
  const std::size_t victim = 32 + 8 * 1000;
  bytes[victim + 7] = char(0xff);
  write_raw(path, bytes);
  EXPECT_THROW(map_dcg_file(path), CheckError);
  fs::remove(path);
}

TEST(ScalableGen, AdjacencyDamageSurfacesLazilyAtFirstTouch) {
  const std::string path = (test_dir() / "adj.dcg").string();
  std::string bytes = make_victim(path);
  const Graph intact = map_dcg_file(path);
  const NodeId n = intact.num_nodes();
  ASSERT_GT(n, 2u * 4096u) << "need several lazy-validation blocks";
  // Damage the adjacency of a node in the LAST block: point its first
  // neighbor entry out of range.
  const NodeId victim_node = n - 1000;
  const std::size_t adj_base = 32 + 8 * (std::size_t{n} + 1);
  // Find the victim's arc offset by walking degrees (mapped accessors on the
  // intact graph are fine — the file on disk is still clean).
  std::size_t arc = 0;
  for (NodeId v = 0; v < victim_node; ++v) arc += intact.degree(v);
  ASSERT_GE(intact.degree(victim_node), 1u);
  const std::size_t off = adj_base + 4 * arc;
  bytes[off] = char(0xff);
  bytes[off + 1] = char(0xff);
  bytes[off + 2] = char(0xff);
  bytes[off + 3] = char(0x7f);  // neighbor 0x7fffffff: far out of range
  write_raw(path, bytes);

  const Graph damaged = map_dcg_file(path);  // offsets pass still clean
  // Touching an early block is fine...
  EXPECT_NO_THROW((void)damaged.neighbors(0));
  // ...the damaged block fails with a CheckError that names the file.
  try {
    (void)damaged.neighbors(victim_node);
    FAIL() << "expected CheckError on the damaged block";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("adj.dcg"), std::string::npos)
        << "error should name the file: " << e.what();
  }
  fs::remove(path);
}

}  // namespace
}  // namespace detcol
