// Frequency assignment: the classic list-coloring application the paper's
// introduction motivates. Radio towers in the plane interfere when close
// (unit-disk interference graph); each tower is licensed for its own set of
// channels; adjacent towers must broadcast on different channels.
//
//   ./frequency_assignment [--towers=3000] [--radius=0.02] [--channels=4096]
//
// Builds a random geometric graph, gives each tower deg+1 licensed channels
// (a (deg+1)-list coloring instance — the hardest variant the paper
// handles), solves it with deterministic ColorReduce, and prints spectrum
// statistics.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId towers = static_cast<NodeId>(args.get_uint("towers", 3000));
  const double radius = args.get_double("radius", 0.02);
  const Color channels = args.get_uint("channels", 4096);

  const Graph g = gen_geometric(towers, radius, /*seed=*/2718);
  std::printf("interference graph: %u towers, %zu interference pairs, "
              "max interference degree %u\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  // Each tower's license: deg+1 channels from the shared band. This is the
  // (deg+1)-list coloring problem — node palettes differ in size and
  // content, exactly what Algorithm 1 supports.
  const PaletteSet licenses =
      PaletteSet::deg_plus_one_lists(g, channels, /*seed=*/5);

  const ColorReduceResult r = color_reduce(g, licenses);
  const VerifyResult v = verify_coloring(g, licenses, r.coloring);
  if (!v.ok) {
    std::fprintf(stderr, "assignment invalid: %s\n", v.issue.c_str());
    return 1;
  }

  // Spectrum usage statistics.
  std::map<Color, std::uint64_t> usage;
  for (const Color c : r.coloring.color) ++usage[c];
  std::uint64_t max_reuse = 0;
  for (const auto& [c, k] : usage) max_reuse = std::max(max_reuse, k);

  Table t({"metric", "value"});
  t.row().cell("towers assigned").cell(std::uint64_t{towers});
  t.row().cell("distinct channels used").cell(usage.size());
  t.row().cell("max reuse of one channel").cell(max_reuse);
  t.row().cell("model rounds").cell(r.ledger.total_rounds());
  t.row().cell("recursion depth").cell(r.max_depth_reached);
  t.print("frequency assignment (deterministic, conflict-free by proof)");

  std::printf("\nEvery tower broadcasts on a licensed channel and no two "
              "interfering towers share one.\n");
  return 0;
}
