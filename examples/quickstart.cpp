// Quickstart: color a random graph with the paper's deterministic
// constant-round CONGESTED CLIQUE algorithm and inspect what happened.
//
//   ./quickstart [--n=5000] [--p=0.01] [--lists] [--dump-stats=run.json]
//
// Walks through the full public API: generate a graph, build palettes, run
// color_reduce, verify, and read the round ledger and recursion stats.
#include <cstdio>

#include "core/color_reduce.hpp"
#include "core/stats_export.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 5000));
  const double p = args.get_double("p", 0.01);
  const bool lists = args.get_bool("lists", false);

  // 1. The input graph.
  const Graph g = gen_gnp(n, p, /*seed=*/7);
  std::printf("graph: n=%u, m=%zu, Delta=%u\n", g.num_nodes(), g.num_edges(),
              g.max_degree());

  // 2. Palettes: plain (Δ+1)-coloring, or (Δ+1)-list coloring where every
  //    node brings its own list from a large color space.
  const PaletteSet palettes =
      lists ? PaletteSet::random_lists(g, /*color_space=*/1u << 24, 3)
            : PaletteSet::delta_plus_one(g);
  std::printf("palettes: %s, total %zu color entries\n",
              lists ? "(Δ+1)-lists" : "(Δ+1) uniform", palettes.total_size());

  // 3. Run deterministic ColorReduce (Algorithm 1, Theorem 1.1).
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 2.0;
  const ColorReduceResult result = color_reduce(g, palettes, cfg);

  // 4. Verify against the original graph and initial palettes.
  const VerifyResult v = verify_coloring(g, palettes, result.coloring);
  if (!v.ok) {
    std::fprintf(stderr, "BUG: invalid coloring: %s\n", v.issue.c_str());
    return 1;
  }
  std::printf("coloring verified: every node colored from its own palette, "
              "no monochromatic edge\n\n");

  // 5. What did it cost in the CONGESTED CLIQUE model?
  std::printf("model cost (CONGESTED CLIQUE):\n%s\n",
              result.ledger.summary().c_str());
  std::printf("recursion: depth=%u, partitions=%llu, local collects=%llu, "
              "seed evaluations=%llu\n",
              result.max_depth_reached,
              static_cast<unsigned long long>(result.num_partitions),
              static_cast<unsigned long long>(result.num_collects),
              static_cast<unsigned long long>(result.total_seed_evaluations));
  std::printf("peak collected instance: %llu words (machine capacity %u*16)\n",
              static_cast<unsigned long long>(result.peak_collect_words),
              g.num_nodes());

  // 6. Optional: machine-readable dump of the whole run for plotting.
  const std::string dump = args.get_string("dump-stats", "");
  if (!dump.empty()) {
    write_json_file(dump, result_to_json(result));
    std::printf("wrote stats JSON to %s\n", dump.c_str());
  }
  return 0;
}
