// Exam timetabling as list coloring. Courses conflict when they share a
// student; conflicting courses need different exam slots; each course may
// only use slots its room/examiner allows (its list).
//
//   ./exam_timetabling [--students=2000] [--courses=400] [--load=4]
//
// Generates a random enrollment (each student takes `load` courses), builds
// the course-conflict graph, gives each course a list of deg+1 permitted
// slots, and compares the paper's deterministic distributed algorithm with
// the centralized greedy.
#include <cstdio>
#include <set>
#include <vector>

#include "baselines/greedy.hpp"
#include "core/color_reduce.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::uint64_t students = args.get_uint("students", 2000);
  const NodeId courses = static_cast<NodeId>(args.get_uint("courses", 400));
  const unsigned load = static_cast<unsigned>(args.get_uint("load", 4));

  // Random enrollment -> conflict edges between co-taken courses.
  Xoshiro256 rng(1618);
  std::set<Edge> conflicts;
  for (std::uint64_t s = 0; s < students; ++s) {
    std::vector<NodeId> taken;
    while (taken.size() < load) {
      const NodeId c = static_cast<NodeId>(rng.next_below(courses));
      if (std::find(taken.begin(), taken.end(), c) == taken.end()) {
        taken.push_back(c);
      }
    }
    for (std::size_t i = 0; i < taken.size(); ++i) {
      for (std::size_t j = i + 1; j < taken.size(); ++j) {
        conflicts.emplace(std::min(taken[i], taken[j]),
                          std::max(taken[i], taken[j]));
      }
    }
  }
  const std::vector<Edge> edges(conflicts.begin(), conflicts.end());
  const Graph g = Graph::from_edges(courses, edges);
  std::printf("conflict graph: %u courses, %zu conflicting pairs, max "
              "conflicts per course %u\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  // Each course gets deg+1 permitted slots out of a week of 64 slot ids —
  // different courses have different availability windows.
  std::vector<std::vector<Color>> slots(courses);
  const Color week = 64 + g.max_degree();  // enough slot ids to draw from
  for (NodeId c = 0; c < courses; ++c) {
    Xoshiro256 r2(sub_seed(99, c));
    std::set<Color> mine;
    while (mine.size() <= g.degree(c)) mine.insert(r2.next_below(week));
    slots[c].assign(mine.begin(), mine.end());
  }
  const PaletteSet permitted{std::move(slots)};

  const auto det = color_reduce(g, permitted);
  const auto vd = verify_coloring(g, permitted, det.coloring);
  if (!vd.ok) {
    std::fprintf(stderr, "timetable invalid: %s\n", vd.issue.c_str());
    return 1;
  }
  const auto greedy = greedy_baseline(g, permitted);
  const auto vg = verify_coloring(g, permitted, greedy.coloring);

  std::set<Color> used_det(det.coloring.color.begin(),
                           det.coloring.color.end());
  std::set<Color> used_greedy(greedy.coloring.color.begin(),
                              greedy.coloring.color.end());

  Table t({"algorithm", "valid", "distinct slots used", "model rounds"});
  t.row()
      .cell("ColorReduce (distributed, deterministic)")
      .cell(vd.ok ? "yes" : "NO")
      .cell(used_det.size())
      .cell(det.ledger.total_rounds());
  t.row()
      .cell("Greedy (centralized)")
      .cell(vg.ok ? "yes" : "NO")
      .cell(used_greedy.size())
      .cell(std::uint64_t{0});
  t.print("exam timetabling");

  std::printf("\nBoth schedules are clash-free and respect every course's "
              "availability list;\nthe distributed one costs a constant "
              "number of communication rounds.\n");
  return 0;
}
