// detcolor as a command-line tool: color a graph from an edge-list file.
//
//   ./color_file --in=graph.edges [--out=colors.txt] [--algo=reduce]
//
// Formats: input is "n m" followed by one "u v" edge per line ('#'
// comments allowed); output is one "node color" pair per line.
// Algorithms: reduce (default, Theorem 1.1), lowspace (Theorem 1.4),
// trial (randomized baseline), greedy (centralized), mis (MIS reduction).
// With no --in, a demo graph is generated and colored.
#include <cstdio>
#include <fstream>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "lowspace/low_space.hpp"
#include "util/cli.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string in = args.get_string("in", "");
  const std::string out = args.get_string("out", "");
  const std::string algo = args.get_string("algo", "reduce");

  Graph g = in.empty() ? gen_gnp(2000, 0.01, 1) : read_edge_list_file(in);
  if (in.empty()) {
    std::printf("no --in given; generated demo G(2000, 0.01)\n");
  }
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::printf("graph: n=%u m=%zu Delta=%u, algorithm: %s\n", g.num_nodes(),
              g.num_edges(), g.max_degree(), algo.c_str());

  Coloring coloring(g.num_nodes());
  std::uint64_t rounds = 0;
  if (algo == "reduce") {
    const auto r = color_reduce(g, pal);
    coloring = r.coloring;
    rounds = r.ledger.total_rounds();
  } else if (algo == "lowspace") {
    const auto r = low_space_color(g, pal);
    coloring = r.coloring;
    rounds = r.ledger.total_rounds();
  } else if (algo == "trial") {
    const auto r = random_trial_color(g, pal, 7);
    coloring = r.coloring;
    rounds = r.model_rounds;
  } else if (algo == "greedy") {
    const auto r = greedy_baseline(g, pal);
    coloring = r.coloring;
  } else if (algo == "mis") {
    const auto r = mis_baseline_color(g, pal);
    coloring = r.coloring;
    rounds = r.rounds;
  } else {
    std::fprintf(stderr, "unknown --algo=%s (reduce|lowspace|trial|greedy|"
                         "mis)\n", algo.c_str());
    return 2;
  }

  const auto v = verify_coloring(g, pal, coloring);
  if (!v.ok) {
    std::fprintf(stderr, "INVALID coloring: %s\n", v.issue.c_str());
    return 1;
  }
  std::printf("valid (Δ+1)-coloring in %llu model rounds\n",
              static_cast<unsigned long long>(rounds));

  if (!out.empty()) {
    std::ofstream os(out);
    if (!os.good()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    for (NodeId node = 0; node < g.num_nodes(); ++node) {
      os << node << ' ' << coloring.color[node] << '\n';
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
