// Low-space MPC demo (Theorem 1.4): (deg+1)-list coloring of a power-law
// "social network" when no machine can hold even one node's full
// neighborhood — the sublinear-space regime where instances are colored
// through the MIS reduction instead of being collected.
//
//   ./lowspace_demo [--n=5000] [--beta=2.5] [--avgdeg=8]
#include <cstdio>

#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 5000));
  const double beta = args.get_double("beta", 2.5);
  const double avgdeg = args.get_double("avgdeg", 8.0);

  const Graph g = gen_power_law(n, beta, avgdeg, /*seed=*/13);
  std::printf("power-law graph: n=%u, m=%zu, max degree %u (skewed: the\n"
              "(deg+1)-list problem gives small palettes to small nodes)\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 22, 3);

  LowSpaceParams params;
  params.delta = 0.04;  // bins = n^delta, low-degree threshold n^{7*delta}
  const LowSpaceResult r = low_space_color(g, pal, params);

  const VerifyResult v = verify_coloring(g, pal, r.coloring);
  if (!v.ok) {
    std::fprintf(stderr, "invalid: %s\n", v.issue.c_str());
    return 1;
  }

  Table t({"metric", "value"});
  t.row().cell("model rounds").cell(r.ledger.total_rounds());
  t.row().cell("recursion depth").cell(r.depth_reached);
  t.row().cell("partitions").cell(r.num_partitions);
  t.row().cell("MIS reduction calls").cell(r.num_mis_calls);
  t.row().cell("total MIS phases").cell(r.total_mis_phases);
  t.row().cell("violators diverted to G0").cell(r.diverted_violators);
  t.row().cell("peak global space (words)").cell(r.peak_total_words);
  t.print("low-space MPC (deg+1)-list coloring (Theorem 1.4)");

  std::printf("\nmodel cost breakdown:\n%s", r.ledger.summary().c_str());
  std::printf("\nRounds are dominated by the MIS phases — the paper's\n"
              "O(log Delta + log log n) term (see DESIGN.md for the MIS\n"
              "substitution note).\n");
  return 0;
}
