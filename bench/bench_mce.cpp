// Experiment F2 (Lemma 3.8 + Section 2.4): the derandomization itself.
// Part 1: the cost q(h1,h2) of *random* seed pairs on a fixed Partition
// instance — Lemma 3.8 bounds the expectation by n/ell^2; we print the
// empirical distribution (mean, quantiles, fraction within the acceptance
// threshold) over many seeds.
// Part 2: the method-of-conditional-expectations trajectory: the running
// estimate after each fixed chunk must be non-increasing, ending at a seed
// whose exact cost meets the threshold.
// Part 3: seed-selection strategy comparison (evaluations, final cost).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/classify.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 1000));
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 32));
  const std::uint64_t trials = args.get_uint("trials", 200);

  const Graph g = gen_random_regular(n, deg, 11);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  Instance inst;
  inst.orig.resize(n);
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = g;
  inst.ell = static_cast<double>(g.max_degree());
  PartitionParams params;

  const std::uint64_t b = num_bins(inst.ell, params);
  const unsigned c = params.independence;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);

  auto eval = [&](const SeedBits& s) {
    const KWiseHash h1(s.word_range(0, c), b);
    const KWiseHash h2(s.word_range(c, c), b - 1);
    return classify(inst, pal, h1, h2, n, params);
  };

  // Part 1: random-seed population.
  std::vector<double> q_costs, size_costs;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const auto cls = eval(SeedBits::expand(bits, 0xF00, i));
    q_costs.push_back(cls.cost_q);
    size_costs.push_back(cls.cost_size);
  }
  std::sort(q_costs.begin(), q_costs.end());
  std::sort(size_costs.begin(), size_costs.end());
  const double mean_q =
      std::accumulate(q_costs.begin(), q_costs.end(), 0.0) / trials;
  const double bound = static_cast<double>(n) / (inst.ell * inst.ell);
  const double threshold = params.g0_budget * static_cast<double>(n);
  const std::uint64_t within =
      std::count_if(size_costs.begin(), size_costs.end(),
                    [&](double v) { return v <= threshold; });

  Table t1({"metric", "value"});
  t1.row().cell("seeds sampled").cell(trials);
  t1.row().cell("mean q (bad nodes + n*bad bins)").cell(mean_q, 2);
  t1.row().cell("Lemma 3.8 asymptotic bound n/l^2").cell(bound, 2);
  t1.row().cell("median q").cell(q_costs[trials / 2], 1);
  t1.row().cell("p95 q").cell(q_costs[trials * 95 / 100], 1);
  t1.row().cell("max q").cell(q_costs.back(), 1);
  t1.row()
      .cell("seeds meeting G0 acceptance")
      .cell(std::to_string(within) + "/" + std::to_string(trials));
  t1.print("F2a — Lemma 3.8: cost distribution of random seeds");

  // Part 2: MCE trajectory.
  SeedSelectConfig mce;
  mce.strategy = SeedStrategy::kMceSampled;
  mce.chunk_bits = 4;
  mce.mce_samples = 2;
  const SeedCostFn cost = [&](const SeedBits& s) {
    return eval(s).cost_size;
  };
  const auto sel = select_seed(bits, cost, threshold, mce, 0xCE11);
  Table t2({"chunk", "running estimate"});
  for (std::size_t i = 0; i < sel.trajectory.size(); ++i) {
    if (i % 8 == 0 || i + 1 == sel.trajectory.size()) {
      t2.row().cell(std::uint64_t{i}).cell(sel.trajectory[i], 1);
    }
  }
  t2.print("F2b — Section 2.4: conditional-expectation trajectory");
  std::printf("final exact cost %.1f (threshold %.1f, met=%s, %llu evals)\n",
              sel.cost, threshold, sel.met_threshold ? "yes" : "no",
              static_cast<unsigned long long>(sel.evaluations));

  // Part 3: strategy comparison.
  Table t3({"strategy", "exact cost", "met", "evaluations",
            "model rounds charged"});
  for (const auto strat :
       {SeedStrategy::kThresholdScan, SeedStrategy::kMceSampled}) {
    SeedSelectConfig cfg;
    cfg.strategy = strat;
    cfg.chunk_bits = 4;
    cfg.mce_samples = 2;
    const auto r = select_seed(bits, cost, threshold, cfg, 0xAB);
    t3.row()
        .cell(strat == SeedStrategy::kThresholdScan ? "threshold scan"
                                                    : "MCE (sampled)")
        .cell(r.cost, 1)
        .cell(r.met_threshold ? "yes" : "no")
        .cell(r.evaluations)
        .cell(r.rounds_charged);
  }
  t3.print("F2c — seed-selection strategies");
  std::printf(
      "\nPaper prediction: random seeds are overwhelmingly good (Lemma 3.8\n"
      "in spirit; its n/l^2 constant is asymptotic), and both strategies\n"
      "end below the acceptance threshold while charging the same\n"
      "O(1)-round schedule. Note: the *exact* MCE trajectory is provably\n"
      "non-increasing (validated in tests/test_strategies.cpp); the sampled\n"
      "variant shown here re-draws suffix completions per chunk, so its\n"
      "trace fluctuates before collapsing onto a good seed.\n");
  return 0;
}
