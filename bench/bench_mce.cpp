// Experiment F2 (Lemma 3.8 + Section 2.4): the derandomization itself.
// Part 1: the cost q(h1,h2) of *random* seed pairs on a fixed Partition
// instance — Lemma 3.8 bounds the expectation by n/ell^2; we print the
// empirical distribution (mean, quantiles, fraction within the acceptance
// threshold) over many seeds.
// Part 2: the method-of-conditional-expectations trajectory: the running
// estimate after each fixed chunk must be non-increasing, ending at a seed
// whose exact cost meets the threshold.
// Part 3: seed-selection strategy comparison (evaluations, final cost).
// Part 4: seed-evaluation throughput — the naive classify() backend vs the
// batched SeedEvalEngine on the sampled-MCE candidate stream; results are
// written machine-readable to BENCH_seed_eval.json (see README) so future
// PRs have a perf baseline. Flags: --eval-n, --eval-deg, --eval-evals,
// --json=PATH (empty path skips the file).
// Part 5: thread scaling — end-to-end ColorReduce wall-clock at a matrix of
// pool sizes, asserting bit-identical results; written to
// BENCH_parallel.json. Flags: --scale-n, --scale-deg, --scale-threads,
// --parallel-json=PATH (empty path skips the file).
// Part 6: the low-space layer's seed search — naive per-candidate violator
// recomputation vs the batched LowSpaceSeedEngine on the sampled-MCE
// stream, plus end-to-end LowSpaceColorReduce thread scaling (bit-identical
// asserted); written to BENCH_lowspace.json. Flags: --ls-n, --ls-deg,
// --ls-evals, --ls-scale-n, --ls-scale-threads, --lowspace-json=PATH.
// Part 7 (F2g): single-thread LowSpaceColorReduce wall time after the
// lock-free MpcCosts refactor vs the committed pre-refactor baseline
// (mutex-guarded MpcSim), on the reference n=2^14 instance. Flags:
// --ls-lockfree-n, --ls-prerefactor-seconds (the baseline measured on the
// seed build of the same host; 0 skips the comparison row).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include <cmath>

#include "core/classify.hpp"
#include "core/color_reduce.hpp"
#include "core/partition.hpp"
#include "core/seed_eval.hpp"
#include "exec/exec.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "lowspace/seed_engine.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

namespace {

struct StreamResult {
  std::uint64_t evals = 0;
  double seconds = 0.0;
  double checksum = 0.0;  // sum of costs: keeps the work observable
};

/// Drive `cost` through the sampled-MCE candidate stream (chunk flips with
/// common deterministic suffix completions — the exact access pattern of
/// run_mce_sampled), visiting every chunk position but capping candidates
/// per chunk so the eval budget spans the whole seed: chunks early in the
/// seed change many coefficients per eval, chunks in the h2 half change
/// none of h1's, and a run that never leaves chunk 0 would misrepresent
/// full-search throughput.
StreamResult drive_mce_stream(unsigned num_bits, SeedCostFn cost,
                              const SeedSelectConfig& cfg,
                              std::uint64_t max_evals,
                              std::uint64_t cands_per_chunk,
                              std::uint64_t salt) {
  StreamResult r;
  SeedBits prefix(num_bits);
  SeedBits completion(num_bits);
  WallTimer t;
  unsigned fixed = 0;
  while (fixed < num_bits && r.evals < max_evals) {
    const unsigned count = std::min(cfg.chunk_bits, num_bits - fixed);
    const std::uint64_t candidates =
        std::min(std::uint64_t{1} << count, cands_per_chunk);
    double best_est = 0.0;
    std::uint64_t best_value = 0;
    bool have_best = false;
    for (std::uint64_t v = 0; v < candidates && r.evals < max_evals; ++v) {
      prefix.set_bits(fixed, count, v);
      double est = 0.0;
      const bool last_chunk = fixed + count >= num_bits;
      const unsigned samples = last_chunk ? 1 : cfg.mce_samples;
      for (unsigned s = 0; s < samples && r.evals < max_evals; ++s) {
        completion = prefix;
        if (!last_chunk) {
          completion.fill_suffix(fixed + count, salt ^ (fixed * 0x9E37ULL), s);
        }
        const double c = cost(completion);
        est += c;
        r.checksum += c;
        ++r.evals;
      }
      if (!have_best || est < best_est) {
        best_est = est;
        best_value = v;
        have_best = true;
      }
    }
    prefix.set_bits(fixed, count, best_value);
    fixed += count;
  }
  r.seconds = t.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 1000));
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 32));
  const std::uint64_t trials = args.get_uint("trials", 200);
  const NodeId eval_n = static_cast<NodeId>(args.get_uint("eval-n", 1 << 14));
  const NodeId eval_deg = static_cast<NodeId>(args.get_uint("eval-deg", 32));
  const std::uint64_t eval_evals = args.get_uint("eval-evals", 512);
  const std::string json_path =
      args.get_string("json", "BENCH_seed_eval.json");

  const Graph g = gen_random_regular(n, deg, 11);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  Instance inst;
  inst.orig.resize(n);
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = g;
  inst.ell = static_cast<double>(g.max_degree());
  PartitionParams params;

  const std::uint64_t b = num_bins(inst.ell, params);
  const unsigned c = params.independence;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);

  auto eval = [&](const SeedBits& s) {
    const KWiseHash h1(s.word_range(0, c), b);
    const KWiseHash h2(s.word_range(c, c), b - 1);
    return classify(inst, pal, h1, h2, n, params);
  };

  // Part 1: random-seed population.
  std::vector<double> q_costs, size_costs;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const auto cls = eval(SeedBits::expand(bits, 0xF00, i));
    q_costs.push_back(cls.cost_q);
    size_costs.push_back(cls.cost_size);
  }
  std::sort(q_costs.begin(), q_costs.end());
  std::sort(size_costs.begin(), size_costs.end());
  const double mean_q =
      std::accumulate(q_costs.begin(), q_costs.end(), 0.0) / trials;
  const double bound = static_cast<double>(n) / (inst.ell * inst.ell);
  const double threshold = params.g0_budget * static_cast<double>(n);
  const std::uint64_t within =
      std::count_if(size_costs.begin(), size_costs.end(),
                    [&](double v) { return v <= threshold; });

  Table t1({"metric", "value"});
  t1.row().cell("seeds sampled").cell(trials);
  t1.row().cell("mean q (bad nodes + n*bad bins)").cell(mean_q, 2);
  t1.row().cell("Lemma 3.8 asymptotic bound n/l^2").cell(bound, 2);
  t1.row().cell("median q").cell(q_costs[trials / 2], 1);
  t1.row().cell("p95 q").cell(q_costs[trials * 95 / 100], 1);
  t1.row().cell("max q").cell(q_costs.back(), 1);
  t1.row()
      .cell("seeds meeting G0 acceptance")
      .cell(std::to_string(within) + "/" + std::to_string(trials));
  t1.print("F2a — Lemma 3.8: cost distribution of random seeds");

  // Part 2: MCE trajectory.
  SeedSelectConfig mce;
  mce.strategy = SeedStrategy::kMceSampled;
  mce.chunk_bits = 4;
  mce.mce_samples = 2;
  const auto cost = [&](const SeedBits& s) {
    return eval(s).cost_size;
  };
  const auto sel = select_seed(bits, cost, threshold, mce, 0xCE11);
  Table t2({"chunk", "running estimate"});
  for (std::size_t i = 0; i < sel.trajectory.size(); ++i) {
    if (i % 8 == 0 || i + 1 == sel.trajectory.size()) {
      t2.row().cell(std::uint64_t{i}).cell(sel.trajectory[i], 1);
    }
  }
  t2.print("F2b — Section 2.4: conditional-expectation trajectory");
  std::printf("final exact cost %.1f (threshold %.1f, met=%s, %llu evals)\n",
              sel.cost, threshold, sel.met_threshold ? "yes" : "no",
              static_cast<unsigned long long>(sel.evaluations));

  // Part 3: strategy comparison.
  Table t3({"strategy", "exact cost", "met", "evaluations",
            "model rounds charged"});
  for (const auto strat :
       {SeedStrategy::kThresholdScan, SeedStrategy::kMceSampled}) {
    SeedSelectConfig cfg;
    cfg.strategy = strat;
    cfg.chunk_bits = 4;
    cfg.mce_samples = 2;
    const auto r = select_seed(bits, cost, threshold, cfg, 0xAB);
    t3.row()
        .cell(strat == SeedStrategy::kThresholdScan ? "threshold scan"
                                                    : "MCE (sampled)")
        .cell(r.cost, 1)
        .cell(r.met_threshold ? "yes" : "no")
        .cell(r.evaluations)
        .cell(r.rounds_charged);
  }
  t3.print("F2c — seed-selection strategies");

  // Part 4: seed-evaluation throughput, naive classify() vs SeedEvalEngine
  // on the sampled-MCE candidate stream (uniform [Δ+1] palettes).
  {
    const Graph ge = gen_random_regular(eval_n, eval_deg, 11);
    const PaletteSet pale = PaletteSet::delta_plus_one(ge);
    Instance ie;
    ie.orig.resize(eval_n);
    std::iota(ie.orig.begin(), ie.orig.end(), NodeId{0});
    ie.graph = ge;
    ie.ell = static_cast<double>(ge.max_degree());
    const std::uint64_t be = num_bins(ie.ell, params);
    const unsigned ce = params.independence;
    const unsigned bits_e = 2 * KWiseHash::seed_bits(ce);
    SeedSelectConfig stream_cfg;  // sampled-MCE defaults: 8-bit chunks, 4 samples

    const auto naive_cost = [&](const SeedBits& s) {
      const auto [h1, h2] = seed_hash_pair(s, ce, be);
      return classify(ie, pale, h1, h2, eval_n, params).cost_size;
    };
    SeedEvalEngine engine(ie, pale, eval_n, params);
    const auto engine_cost = [&engine](const SeedBits& s) {
      return engine.cost_size(s);
    };

    // Spread the eval budget across every chunk position of the seed.
    const std::uint64_t chunks =
        (bits_e + stream_cfg.chunk_bits - 1) / stream_cfg.chunk_bits;
    const std::uint64_t cands_per_chunk = std::max<std::uint64_t>(
        1, eval_evals / (chunks * stream_cfg.mce_samples));
    // Warm both backends (page in power tables / palettes) before timing.
    drive_mce_stream(bits_e, naive_cost, stream_cfg, 2, 1, 0xF4);
    drive_mce_stream(bits_e, engine_cost, stream_cfg, 2, 1, 0xF4);
    const StreamResult rn = drive_mce_stream(bits_e, naive_cost, stream_cfg,
                                             eval_evals, cands_per_chunk, 0xF4);
    const StreamResult re = drive_mce_stream(bits_e, engine_cost, stream_cfg,
                                             eval_evals, cands_per_chunk, 0xF4);
    DC_CHECK(rn.evals == re.evals && rn.checksum == re.checksum,
             "backends diverged: the engine must be bit-identical");
    const double naive_eps = static_cast<double>(rn.evals) / rn.seconds;
    const double engine_eps = static_cast<double>(re.evals) / re.seconds;
    const double speedup = engine_eps / naive_eps;

    Table t4({"backend", "evals", "evals/sec", "ns/eval"});
    t4.row().cell("naive classify").cell(rn.evals).cell(naive_eps, 0).cell(
        1e9 * rn.seconds / static_cast<double>(rn.evals), 0);
    t4.row().cell("SeedEvalEngine").cell(re.evals).cell(engine_eps, 0).cell(
        1e9 * re.seconds / static_cast<double>(re.evals), 0);
    t4.print("F2d — seed-evaluation throughput (sampled-MCE stream, n=" +
             std::to_string(eval_n) + ")");
    std::printf("engine speedup: %.1fx\n", speedup);

    if (!json_path.empty()) {
      JsonWriter w;
      w.begin_object();
      w.key("bench").value("seed_eval");
      w.key("n").value(std::uint64_t{eval_n});
      w.key("max_degree").value(std::uint64_t{ge.max_degree()});
      w.key("num_bins").value(be);
      w.key("independence").value(ce);
      w.key("seed_bits").value(bits_e);
      w.key("distinct_colors").value(
          std::uint64_t{engine.num_distinct_colors()});
      w.key("chunk_bits").value(stream_cfg.chunk_bits);
      w.key("mce_samples").value(stream_cfg.mce_samples);
      w.key("evals").value(rn.evals);
      w.key("naive").begin_object();
      w.key("seconds").value(rn.seconds);
      w.key("evals_per_sec").value(naive_eps);
      w.key("ns_per_eval").value(1e9 * rn.seconds /
                                 static_cast<double>(rn.evals));
      w.end_object();
      w.key("engine").begin_object();
      w.key("seconds").value(re.seconds);
      w.key("evals_per_sec").value(engine_eps);
      w.key("ns_per_eval").value(1e9 * re.seconds /
                                 static_cast<double>(re.evals));
      w.end_object();
      w.key("speedup").value(speedup);
      w.end_object();
      std::ofstream out(json_path);
      out << w.str() << "\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  // Part 5 (F2e): thread scaling of end-to-end ColorReduce. Sibling color
  // bins recurse as pool tasks and the seed search shards per-node passes;
  // results must be bit-identical at every pool size, so the run doubles as
  // a large-instance invariance check.
  {
    const NodeId sn = static_cast<NodeId>(args.get_uint("scale-n", 1u << 14));
    const NodeId sdeg = static_cast<NodeId>(args.get_uint("scale-deg", 32));
    const auto thread_list = args.get_uint_list("scale-threads", {1, 2, 4});
    const std::string pjson =
        args.get_string("parallel-json", "BENCH_parallel.json");

    const Graph gs = gen_random_regular(sn, sdeg, 11);
    const PaletteSet pals = PaletteSet::delta_plus_one(gs);
    struct ScaleRun {
      std::uint64_t threads = 0;
      double seconds = 0.0;
      std::uint64_t rounds = 0;
      std::uint64_t colorhash = 0;
    };
    std::vector<ScaleRun> runs;
    for (const std::uint64_t t : thread_list) {
      std::optional<ThreadPool> pool;
      ColorReduceConfig cfg;
      if (t > 1) {
        pool.emplace(static_cast<unsigned>(t));
        cfg.exec = ExecContext(*pool);
      }
      WallTimer wt;
      const auto r = color_reduce(gs, pals, cfg);
      ScaleRun run;
      run.threads = t;
      run.seconds = wt.seconds();
      run.rounds = r.ledger.total_rounds();
      run.colorhash = 0xcbf29ce484222325ULL;
      for (NodeId v = 0; v < gs.num_nodes(); ++v) {
        run.colorhash ^= r.coloring.color[v];
        run.colorhash *= 0x100000001B3ULL;
      }
      if (!runs.empty()) {
        DC_CHECK(run.colorhash == runs.front().colorhash &&
                     run.rounds == runs.front().rounds,
                 "thread count changed the result — determinism contract "
                 "violated");
      }
      runs.push_back(run);
    }

    // Speedup baseline: the 1-thread run wherever it appears in the list
    // (the list order is user-chosen), falling back to the first run.
    double base_seconds = runs.front().seconds;
    for (const auto& run : runs) {
      if (run.threads == 1) base_seconds = run.seconds;
    }
    Table t5({"threads", "seconds", "speedup vs 1 thread"});
    for (const auto& run : runs) {
      t5.row()
          .cell(run.threads)
          .cell(run.seconds, 3)
          .cell(base_seconds / run.seconds, 2);
    }
    t5.print("F2e — ColorReduce end-to-end thread scaling (n=" +
             std::to_string(sn) + ", results bit-identical)");

    if (!pjson.empty()) {
      JsonWriter w;
      w.begin_object();
      w.key("bench").value("parallel_scaling");
      w.key("n").value(std::uint64_t{sn});
      w.key("max_degree").value(std::uint64_t{gs.max_degree()});
      w.key("palette").value("delta1");
      w.key("host_cpus")
          .value(std::uint64_t{std::thread::hardware_concurrency()});
      w.key("rounds").value(runs.front().rounds);
      w.key("colorhash").value(runs.front().colorhash);
      w.key("runs").begin_array();
      for (const auto& run : runs) {
        w.begin_object();
        w.key("threads").value(run.threads);
        w.key("seconds").value(run.seconds);
        w.key("speedup").value(base_seconds / run.seconds);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      std::ofstream out(pjson);
      out << w.str() << "\n";
      std::printf("wrote %s\n", pjson.c_str());
    }
  }

  // Part 6 (F2f): the low-space layer's seed search. Same MCE candidate
  // stream as Part 4, driven through the Algorithm 4 violator count — naive
  // full recomputation per candidate vs the batched LowSpaceSeedEngine —
  // then end-to-end LowSpaceColorReduce at a matrix of pool sizes.
  {
    const NodeId ln = static_cast<NodeId>(args.get_uint("ls-n", 1u << 14));
    const NodeId ldeg = static_cast<NodeId>(args.get_uint("ls-deg", 32));
    const std::uint64_t ls_evals = args.get_uint("ls-evals", 512);
    const NodeId lsn = static_cast<NodeId>(
        args.get_uint("ls-scale-n", 8192));
    const auto ls_threads = args.get_uint_list("ls-scale-threads", {1, 2, 4});
    const std::string ljson =
        args.get_string("lowspace-json", "BENCH_lowspace.json");

    const Graph gl = gen_random_regular(ln, ldeg, 11);
    const PaletteSet pall = PaletteSet::delta_plus_one(gl);
    std::vector<NodeId> orig(ln);
    std::iota(orig.begin(), orig.end(), NodeId{0});
    const std::uint64_t bl = std::max<std::uint64_t>(
        2, ipow_floor(static_cast<double>(ln), 0.25));
    const unsigned cl = 4;
    const double slack_exp = 0.6;
    const unsigned bits_l = 2 * KWiseHash::seed_bits(cl);
    SeedSelectConfig stream_cfg;  // sampled-MCE defaults

    // The naive cost exactly as the pre-engine low_space.cpp computed it
    // (the reference oracle the engine's tests diff against).
    const auto naive_cost = [&](const SeedBits& s) {
      const KWiseHash h1(s.word_range(0, cl), bl);
      const KWiseHash h2(s.word_range(cl, cl), bl - 1);
      return static_cast<double>(lowspace_naive_violations(
          gl, orig, pall, bl, slack_exp, h1, h2));
    };
    LowSpaceSeedEngine lengine(gl, orig, pall, bl, cl, slack_exp);
    const auto engine_cost = [&lengine](const SeedBits& s) {
      return lengine.cost(s);
    };

    const std::uint64_t chunks =
        (bits_l + stream_cfg.chunk_bits - 1) / stream_cfg.chunk_bits;
    const std::uint64_t cands_per_chunk = std::max<std::uint64_t>(
        1, ls_evals / (chunks * stream_cfg.mce_samples));
    drive_mce_stream(bits_l, naive_cost, stream_cfg, 2, 1, 0xF5);
    drive_mce_stream(bits_l, engine_cost, stream_cfg, 2, 1, 0xF5);
    const StreamResult rn = drive_mce_stream(bits_l, naive_cost, stream_cfg,
                                             ls_evals, cands_per_chunk, 0xF5);
    const StreamResult re = drive_mce_stream(bits_l, engine_cost, stream_cfg,
                                             ls_evals, cands_per_chunk, 0xF5);
    DC_CHECK(rn.evals == re.evals && rn.checksum == re.checksum,
             "backends diverged: the engine must be bit-identical");
    const double naive_eps = static_cast<double>(rn.evals) / rn.seconds;
    const double engine_eps = static_cast<double>(re.evals) / re.seconds;
    const double speedup = engine_eps / naive_eps;

    Table t6({"backend", "evals", "evals/sec", "ns/eval"});
    t6.row().cell("naive violations").cell(rn.evals).cell(naive_eps, 0).cell(
        1e9 * rn.seconds / static_cast<double>(rn.evals), 0);
    t6.row().cell("LowSpaceSeedEngine").cell(re.evals).cell(engine_eps, 0)
        .cell(1e9 * re.seconds / static_cast<double>(re.evals), 0);
    t6.print("F2f — low-space seed-evaluation throughput (n=" +
             std::to_string(ln) + ", b=" + std::to_string(bl) + ")");
    std::printf("lowspace engine speedup: %.1fx\n", speedup);

    // End-to-end LowSpaceColorReduce thread scaling, bit-identity asserted.
    const Graph gs = gen_random_regular(lsn, ldeg, 13);
    const PaletteSet pals = PaletteSet::delta_plus_one(gs);
    struct ScaleRun {
      std::uint64_t threads = 0;
      double seconds = 0.0;
      std::uint64_t rounds = 0;
      std::uint64_t colorhash = 0;
    };
    std::vector<ScaleRun> runs;
    for (const std::uint64_t t : ls_threads) {
      std::optional<ThreadPool> pool;
      LowSpaceParams params;
      params.delta = 0.04;
      if (t > 1) {
        pool.emplace(static_cast<unsigned>(t));
        params.exec = ExecContext(*pool);
      }
      WallTimer wt;
      const auto r = low_space_color(gs, pals, params);
      ScaleRun run;
      run.threads = t;
      run.seconds = wt.seconds();
      run.rounds = r.ledger.total_rounds();
      run.colorhash = 0xcbf29ce484222325ULL;
      for (NodeId v = 0; v < gs.num_nodes(); ++v) {
        run.colorhash ^= r.coloring.color[v];
        run.colorhash *= 0x100000001B3ULL;
      }
      if (!runs.empty()) {
        DC_CHECK(run.colorhash == runs.front().colorhash &&
                     run.rounds == runs.front().rounds,
                 "thread count changed the low-space result — determinism "
                 "contract violated");
      }
      runs.push_back(run);
    }
    double base_seconds = runs.front().seconds;
    for (const auto& run : runs) {
      if (run.threads == 1) base_seconds = run.seconds;
    }
    Table t7({"threads", "seconds", "speedup vs 1 thread"});
    for (const auto& run : runs) {
      t7.row()
          .cell(run.threads)
          .cell(run.seconds, 3)
          .cell(base_seconds / run.seconds, 2);
    }
    t7.print("F2f — LowSpaceColorReduce end-to-end thread scaling (n=" +
             std::to_string(lsn) + ", results bit-identical)");

    // Part 7 (F2g): the cost of the accounting itself. One sequential run
    // on the reference instance, compared against the pre-refactor
    // baseline (branch-shared mutex-guarded MpcSim). The default is the
    // seed tree rebuilt at these exact flags (-O2 -DNDEBUG) on the same
    // 1-CPU host, interleaved with the lock-free runs to share load.
    const NodeId lfn = static_cast<NodeId>(
        args.get_uint("ls-lockfree-n", 1u << 14));
    const double prerefactor_seconds =
        args.get_double("ls-prerefactor-seconds", 0.425);
    const Graph glf = gen_random_regular(lfn, ldeg, 13);
    const PaletteSet pallf = PaletteSet::delta_plus_one(glf);
    LowSpaceParams lf_params;
    lf_params.delta = 0.04;
    WallTimer lf_timer;
    const auto lf = low_space_color(glf, pallf, lf_params);
    const double lockfree_seconds = lf_timer.seconds();
    Table t8({"accounting", "seconds", "rounds"});
    if (prerefactor_seconds > 0.0) {
      t8.row().cell("mutex-guarded MpcSim (seed build)")
          .cell(prerefactor_seconds, 3)
          .cell(lf.ledger.total_rounds());
    }
    t8.row().cell("branch-private MpcCosts")
        .cell(lockfree_seconds, 3)
        .cell(lf.ledger.total_rounds());
    t8.print("F2g — lock-free cost accounting, 1-thread LowSpace (n=" +
             std::to_string(lfn) + ")");
    if (prerefactor_seconds > 0.0) {
      std::printf("lock-free vs pre-refactor: %.2fx\n",
                  prerefactor_seconds / lockfree_seconds);
    }

    if (!ljson.empty()) {
      JsonWriter w;
      w.begin_object();
      w.key("bench").value("lowspace_seed_eval");
      w.key("n").value(std::uint64_t{ln});
      w.key("max_degree").value(std::uint64_t{gl.max_degree()});
      w.key("num_bins").value(bl);
      w.key("independence").value(cl);
      w.key("seed_bits").value(bits_l);
      w.key("distinct_colors").value(
          std::uint64_t{lengine.num_distinct_colors()});
      w.key("chunk_bits").value(stream_cfg.chunk_bits);
      w.key("mce_samples").value(stream_cfg.mce_samples);
      w.key("evals").value(rn.evals);
      w.key("host_cpus")
          .value(std::uint64_t{std::thread::hardware_concurrency()});
      w.key("naive").begin_object();
      w.key("seconds").value(rn.seconds);
      w.key("evals_per_sec").value(naive_eps);
      w.key("ns_per_eval").value(1e9 * rn.seconds /
                                 static_cast<double>(rn.evals));
      w.end_object();
      w.key("engine").begin_object();
      w.key("seconds").value(re.seconds);
      w.key("evals_per_sec").value(engine_eps);
      w.key("ns_per_eval").value(1e9 * re.seconds /
                                 static_cast<double>(re.evals));
      w.end_object();
      w.key("speedup").value(speedup);
      w.key("scaling").begin_object();
      w.key("n").value(std::uint64_t{lsn});
      w.key("rounds").value(runs.front().rounds);
      w.key("colorhash").value(runs.front().colorhash);
      w.key("runs").begin_array();
      for (const auto& run : runs) {
        w.begin_object();
        w.key("threads").value(run.threads);
        w.key("seconds").value(run.seconds);
        w.key("speedup").value(base_seconds / run.seconds);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.key("lockfree_accounting").begin_object();
      w.key("n").value(std::uint64_t{lfn});
      w.key("delta").value(lf_params.delta);
      w.key("rounds").value(lf.ledger.total_rounds());
      w.key("seconds").value(lockfree_seconds);
      w.key("prerefactor_seconds").value(prerefactor_seconds);
      if (prerefactor_seconds > 0.0) {
        w.key("speedup_vs_prerefactor")
            .value(prerefactor_seconds / lockfree_seconds);
      }
      w.end_object();
      w.end_object();
      std::ofstream out(ljson);
      out << w.str() << "\n";
      std::printf("wrote %s\n", ljson.c_str());
    }
  }

  std::printf(
      "\nPaper prediction: random seeds are overwhelmingly good (Lemma 3.8\n"
      "in spirit; its n/l^2 constant is asymptotic), and both strategies\n"
      "end below the acceptance threshold while charging the same\n"
      "O(1)-round schedule. Note: the *exact* MCE trajectory is provably\n"
      "non-increasing (validated in tests/test_strategies.cpp); the sampled\n"
      "variant shown here re-draws suffix completions per chunk, so its\n"
      "trace fluctuates before collapsing onto a good seed.\n");
  return 0;
}
