// Experiment T5 + T7 (Theorem 1.4): low-space MPC (deg+1)-list coloring.
// Part 1: rounds over an (n, Delta) grid on regular graphs — the paper's
// O(log Delta + log log n) shape means strong growth in Delta, negligible
// growth in n.
// Part 2: (deg+1)-list coloring on skewed power-law graphs, the regime the
// low-space algorithm is designed for.
#include <cmath>
#include <cstdio>
#include <memory>

#include "exec/exec.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns = args.get_uint_list("ns", {2000, 8000});
  const auto degs = args.get_uint_list("degs", {8, 32, 128});
  // Host threads for the driver (results are bit-identical for every value;
  // only the wall-clock column moves).
  const ExecHolder holder = make_exec_holder(
      static_cast<unsigned>(args.get_uint("threads", 1)));
  const ExecContext exec = holder.exec;

  Table t({"n", "Delta", "rounds", "mis phases", "mis calls", "partitions",
           "depth", "rounds/(lgD+lglg n)", "wall ms"});
  for (const auto n : ns) {
    for (const auto d : degs) {
      const Graph g = gen_random_regular(static_cast<NodeId>(n),
                                         static_cast<NodeId>(d), 7 + n + d);
      const PaletteSet pal = PaletteSet::delta_plus_one(g);
      LowSpaceParams params;
      params.delta = 0.04;
      params.exec = exec;
      WallTimer timer;
      const auto r = low_space_color(g, pal, params);
      const double ms = timer.millis();
      const auto v = verify_coloring(g, pal, r.coloring);
      if (!v.ok) {
        std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
        return 1;
      }
      const double shape = std::log2(static_cast<double>(g.max_degree())) +
                           loglog2(static_cast<double>(n));
      t.row()
          .cell(n)
          .cell(std::uint64_t{g.max_degree()})
          .cell(r.ledger.total_rounds())
          .cell(r.total_mis_phases)
          .cell(r.num_mis_calls)
          .cell(r.num_partitions)
          .cell(r.depth_reached)
          .cell(static_cast<double>(r.ledger.total_rounds()) / shape, 1)
          .cell(ms, 1);
    }
  }
  t.print("T5 — Theorem 1.4: low-space MPC rounds over (n, Delta)");

  Table t2({"n", "avg deg", "max deg", "rounds", "mis phases", "violators",
            "peak total words", "wall ms"});
  for (const auto n : ns) {
    const Graph g = gen_power_law(static_cast<NodeId>(n), 2.5, 8.0, 99 + n);
    const PaletteSet pal = PaletteSet::deg_plus_one_lists(g, 1u << 20, 3);
    LowSpaceParams params;
    params.delta = 0.04;
    params.exec = exec;
    WallTimer timer;
    const auto r = low_space_color(g, pal, params);
    const double ms = timer.millis();
    const auto v = verify_coloring(g, pal, r.coloring);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
      return 1;
    }
    t2.row()
        .cell(n)
        .cell(2.0 * static_cast<double>(g.num_edges()) /
                  static_cast<double>(n),
              1)
        .cell(std::uint64_t{g.max_degree()})
        .cell(r.ledger.total_rounds())
        .cell(r.total_mis_phases)
        .cell(r.diverted_violators)
        .cell(r.peak_total_words)
        .cell(ms, 1);
  }
  t2.print("T7 — Theorem 1.4: (deg+1)-list coloring on power-law graphs");
  std::printf(
      "\nPaper prediction: rounds grow with log(Delta) (the MIS term) and\n"
      "are nearly flat in n; our MIS substitute (derandomized Luby, see\n"
      "DESIGN.md) carries a log(conflict-edges) phase count, so the n-term\n"
      "is log n rather than [7]'s log log n — same Delta shape.\n");
  return 0;
}
