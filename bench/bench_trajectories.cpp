// Experiment F1 (Lemmas 3.11-3.13): recursion trajectories. For one deep
// ColorReduce run, print per depth the realized ell_i, the largest instance
// node count n_i and max degree Delta_i, next to the analytic upper bounds
//   ell_i <= Delta^{0.9^i},        (Lemma 3.11)
//   n_i <= 3^i (n Delta^{0.9^i - 1} + n^0.6),   (Lemma 3.12)
//   Delta_i <= 2^i Delta^{0.9^i}.  (Lemma 3.13)
#include <cstdio>
#include <map>
#include <vector>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

namespace {
struct DepthAgg {
  double ell = 0.0;
  std::uint64_t max_n = 0;
  std::uint64_t max_deg = 0;
  std::uint64_t instances = 0;
};

void walk(const CallStats& s, std::map<unsigned, DepthAgg>& by_depth) {
  auto& a = by_depth[s.depth];
  a.ell = std::max(a.ell, s.ell);
  a.max_n = std::max(a.max_n, s.n);
  a.max_deg = std::max(a.max_deg, s.max_deg);
  ++a.instances;
  for (const auto& c : s.children) walk(c, by_depth);
}
}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 16000));
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 128));

  const Graph g = gen_random_regular(n, deg, 2024);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  ColorReduceConfig cfg;
  cfg.part.collect_factor = 1.0;  // go as deep as the structure allows
  const auto r = color_reduce(g, pal, cfg);
  const auto v = verify_coloring(g, pal, r.coloring);
  if (!v.ok) {
    std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
    return 1;
  }
  std::map<unsigned, DepthAgg> by_depth;
  walk(r.root, by_depth);

  const double delta0 = static_cast<double>(g.max_degree());
  Table t({"depth", "instances", "ell_i", "L3.11 bound", "max n_i",
           "L3.12 bound", "max Delta_i", "L3.13 bound"});
  for (const auto& [depth, a] : by_depth) {
    t.row()
        .cell(depth)
        .cell(a.instances)
        .cell(a.ell, 1)
        .cell(lemma_311_ell_upper(delta0, depth), 1)
        .cell(a.max_n)
        .cell(lemma_312_nodes_upper(static_cast<double>(n), delta0, depth), 0)
        .cell(a.max_deg)
        .cell(lemma_313_degree_upper(delta0, depth), 1);
  }
  t.print("F1 — Lemmas 3.11-3.13: recursion trajectories vs analytic bounds");
  std::printf(
      "\nPaper prediction: every measured column stays at or below its\n"
      "bound column; depth stays O(1) (9 suffices asymptotically). Note\n"
      "ell_i follows the bound exactly by construction of next_ell.\n");
  return 0;
}
