// bench_serve — measures what the serving layer amortizes.
//
// Three latencies per pipeline on the same n=2^14 instance:
//
//   cold_oneshot   full `detcol color` subprocess (DETCOL_BIN): process
//                  startup + graph build + palette build + power tables +
//                  the pipeline itself, per request;
//   warm_cached    a request against a running server whose result cache
//                  holds this exact request — the steady state of a client
//                  re-asking an identical question;
//   warm_compute   a request that misses the result cache (fresh seed in
//                  the cache key) but hits the resident instance — the
//                  pipeline recomputes, everything else is amortized.
//
// The server runs in-process on a background thread; requests travel over a
// real Unix-domain socket through the real client, so the measured warm
// latencies include framing, JSON, and scheduling. DC_CHECKs assert the
// acceptance bar (warm cached >= 10x cold for ColorReduce) and that the
// served coloring file is byte-identical to the one-shot CLI's output.
// Writes BENCH_serve.json (override with --out).
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace detcol {
namespace {

constexpr char kGraphSpec[] = "--gen=gnp --n=16384 --p=0.002 --seed=1";
constexpr std::uint64_t kN = 16384;

std::string shq(const std::string& s) { return "'" + s + "'"; }

double time_oneshot(const std::string& algo, const std::string& out_path) {
  const std::string cmd = shq(DETCOL_BIN) + " color " + kGraphSpec +
                          " --algo=" + algo + " --quiet --out=" +
                          shq(out_path);
  WallTimer timer;
  const int status = std::system(cmd.c_str());
  const double seconds = timer.seconds();
  DC_CHECK(status == 0, "one-shot run failed: ", cmd);
  return seconds;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DC_CHECK(is.good(), "cannot read ", path);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct WarmResult {
  double seconds = 0;
  std::string coloring_file;  // from the last response
};

/// One timed round trip. A distinct `seed` forces a result-cache miss (the
/// seed is part of the cache key) without changing the coloring — reduce and
/// lowspace ignore it — so it isolates warm_compute from warm_cached.
WarmResult timed_request(const std::string& endpoint, const std::string& algo,
                         std::uint64_t seed) {
  serve::Request req;
  req.op = "color";
  req.graph_spec = kGraphSpec;
  req.algo = algo;
  req.seed = seed;
  serve::ServeClient client(endpoint);
  std::string raw;
  WallTimer timer;
  const JsonValue resp = client.roundtrip(req, &raw);
  WarmResult out;
  out.seconds = timer.seconds();
  const JsonValue* ok = resp.find("ok");
  DC_CHECK(ok != nullptr && ok->bool_value, "request failed: ", raw);
  const JsonValue* result = resp.find("result");
  const JsonValue* file = result->find("coloring_file");
  DC_CHECK(file != nullptr, "response has no coloring_file");
  out.coloring_file = file->string_value;
  return out;
}

struct Row {
  std::string algo;
  double cold = 0;
  double warm_cached = 0;
  double warm_compute = 0;
  bool byte_identical = false;
};

int run(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string out_path = args.get_string("out", "BENCH_serve.json");
  const int cold_reps = static_cast<int>(args.get_uint("cold-reps", 3));
  const int warm_reps = static_cast<int>(args.get_uint("warm-reps", 21));

  const std::string sock = "/tmp/detcol_bench_serve." +
                           std::to_string(::getpid()) + ".sock";
  ::unlink(sock.c_str());
  serve::ServeOptions opts;
  opts.listen_path = sock;
  opts.threads = 1;
  opts.executors = 2;
  opts.quiet = true;
  std::thread server([&opts] { serve::run_server(opts); });
  for (int i = 0; i < 500; ++i) {
    struct stat st{};
    if (::stat(sock.c_str(), &st) == 0) break;
    ::usleep(10 * 1000);
  }

  std::vector<Row> rows;
  for (const std::string algo : {"reduce", "lowspace"}) {
    Row row;
    row.algo = algo;
    std::fprintf(stderr, "bench_serve: %s cold one-shot x%d...\n",
                 algo.c_str(), cold_reps);
    const std::string oneshot_path = sock + "." + algo + ".colors";
    double cold = 0;
    for (int i = 0; i < cold_reps; ++i) {
      const double s = time_oneshot(algo, oneshot_path);
      cold = i == 0 ? s : std::min(cold, s);
    }
    row.cold = cold;

    // Prime: first request builds the instance and caches the result.
    const WarmResult primed = timed_request(sock, algo, /*seed=*/1);
    row.byte_identical = primed.coloring_file == read_file(oneshot_path);
    DC_CHECK(row.byte_identical,
             "served coloring differs from the one-shot CLI for ", algo);

    std::fprintf(stderr, "bench_serve: %s warm cached x%d...\n", algo.c_str(),
                 warm_reps);
    std::vector<double> cached;
    for (int i = 0; i < warm_reps; ++i) {
      cached.push_back(timed_request(sock, algo, /*seed=*/1).seconds);
    }
    row.warm_cached = median(cached);

    std::fprintf(stderr, "bench_serve: %s warm compute x%d...\n",
                 algo.c_str(), cold_reps);
    std::vector<double> compute;
    for (int i = 0; i < cold_reps; ++i) {
      // Fresh seed each time: instance-warm, result-cold.
      compute.push_back(
          timed_request(sock, algo, /*seed=*/100 + i).seconds);
    }
    row.warm_compute = median(compute);
    ::unlink(oneshot_path.c_str());
    rows.push_back(row);
  }

  {
    serve::Request req;
    req.op = "shutdown";
    serve::ServeClient client(sock);
    client.roundtrip(req);
  }
  server.join();
  ::unlink(sock.c_str());

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve_warm_requests");
  w.key("graph").value(kGraphSpec);
  w.key("n").value(kN);
  w.key("host_cpus").value(std::uint64_t{std::thread::hardware_concurrency()});
  w.key("cold_reps").value(std::uint64_t(cold_reps));
  w.key("warm_reps").value(std::uint64_t(warm_reps));
  w.key("requirement").value(
      "warm cached request latency >= 10x better than cold one-shot CLI "
      "(reduce row)");
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("algo").value(row.algo);
    w.key("cold_oneshot_seconds").value(row.cold);
    w.key("warm_cached_seconds").value(row.warm_cached);
    w.key("warm_compute_seconds").value(row.warm_compute);
    w.key("speedup_cached").value(row.cold / row.warm_cached);
    w.key("speedup_compute").value(row.cold / row.warm_compute);
    w.key("byte_identical_to_cli").value(row.byte_identical);
    w.end_object();
    std::fprintf(stderr,
                 "bench_serve: %s cold=%.4fs cached=%.6fs (%.0fx) "
                 "compute=%.4fs (%.1fx)\n",
                 row.algo.c_str(), row.cold, row.warm_cached,
                 row.cold / row.warm_cached, row.warm_compute,
                 row.cold / row.warm_compute);
  }
  w.end_array();
  const double reduce_speedup = rows[0].cold / rows[0].warm_cached;
  w.key("pass").value(reduce_speedup >= 10.0);
  w.end_object();

  std::ofstream os(out_path, std::ios::binary);
  os << w.str() << "\n";
  DC_CHECK(os.good(), "cannot write ", out_path);
  os.close();
  std::fprintf(stderr, "bench_serve: wrote %s\n", out_path.c_str());
  DC_CHECK(reduce_speedup >= 10.0,
           "acceptance: warm cached speedup ", reduce_speedup, " < 10x");
  return 0;
}

}  // namespace
}  // namespace detcol

int main(int argc, char** argv) {
  try {
    return detcol::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
