// Experiment T4 (Theorems 1.2 / 1.3): space accounting.
//   * Theorem 1.2: explicit palettes cost Theta(n*Delta) global words —
//     optimal for general lists, whose input is that big.
//   * Theorem 1.3: for plain (Δ+1)-coloring the implicit representation
//     (restriction chains + removed colors) brings global space to O(m+n).
//   * The collect step never exceeds the O(n) single-machine bound.
#include <cstdio>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns = args.get_uint_list("ns", {2000, 8000, 32000});
  const auto degs = args.get_uint_list("degs", {32, 128});

  Table t({"n", "Delta", "m", "explicit pal words", "implicit words",
           "m+n", "implicit/(m+n)", "peak collect", "collect cap"});
  for (const auto n : ns) {
    for (const auto d : degs) {
      const Graph g = gen_random_regular(static_cast<NodeId>(n),
                                         static_cast<NodeId>(d), 5 + n + d);
      const PaletteSet pal = PaletteSet::delta_plus_one(g);
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      cfg.mirror_implicit = true;
      const auto r = color_reduce(g, pal, cfg);
      const auto v = verify_coloring(g, pal, r.coloring);
      if (!v.ok) {
        std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
        return 1;
      }
      const std::uint64_t mn = g.num_edges() + g.num_nodes();
      const std::uint64_t imp = r.implicit_store->space_words();
      t.row()
          .cell(n)
          .cell(std::uint64_t{g.max_degree()})
          .cell(g.num_edges())
          .cell(r.explicit_palette_words)
          .cell(imp)
          .cell(mn)
          .cell(static_cast<double>(imp) / static_cast<double>(mn), 2)
          .cell(r.peak_collect_words)
          .cell(static_cast<std::uint64_t>(cfg.collect_slack *
                                           static_cast<double>(n)));
    }
  }
  t.print("T4 — Theorems 1.2/1.3: palette space, explicit vs implicit");
  std::printf(
      "\nPaper prediction: 'explicit pal words' grows like n*Delta while\n"
      "'implicit words' tracks m+n (constant ratio column), and the peak\n"
      "collected instance always fits the O(n)-word machine capacity.\n");
  return 0;
}
