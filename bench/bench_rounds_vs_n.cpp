// Experiment T1 (Theorem 1.1): CONGESTED CLIQUE rounds of deterministic
// ColorReduce as a function of n at fixed degree. The paper's claim is O(1):
// the measured rounds must be flat in n (they may vary with Delta — see T2).
//
// Output: one row per n with rounds, recursion depth, #partitions,
// #collects, and the growth ratio vs the previous row (~1.00 = constant).
#include <cstdio>

#include "baselines/random_trial.hpp"
#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns =
      args.get_uint_list("ns", {2000, 4000, 8000, 16000, 32000});
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 32));

  Table t({"n", "Delta", "rounds", "depth", "partitions", "collects",
           "seed evals", "rand-trial rounds", "rounds ratio", "wall ms"});
  std::uint64_t prev_rounds = 0;
  for (const auto n : ns) {
    const Graph g =
        gen_random_regular(static_cast<NodeId>(n), deg, 1234 + n);
    const PaletteSet pal = PaletteSet::delta_plus_one(g);
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 2.0;  // force real recursion at every n
    WallTimer timer;
    const auto r = color_reduce(g, pal, cfg);
    const double ms = timer.millis();
    const auto v = verify_coloring(g, pal, r.coloring);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID coloring at n=%llu: %s\n",
                   static_cast<unsigned long long>(n), v.issue.c_str());
      return 1;
    }
    const auto trial = random_trial_color(g, pal, 99);
    t.row()
        .cell(n)
        .cell(std::uint64_t{g.max_degree()})
        .cell(r.ledger.total_rounds())
        .cell(r.max_depth_reached)
        .cell(r.num_partitions)
        .cell(r.num_collects)
        .cell(r.total_seed_evaluations)
        .cell(trial.model_rounds)
        .cell(prev_rounds == 0
                  ? std::string("-")
                  : format_ratio(static_cast<double>(r.ledger.total_rounds()),
                                 static_cast<double>(prev_rounds)))
        .cell(ms, 1);
    prev_rounds = r.ledger.total_rounds();
  }
  t.print("T1 — Theorem 1.1: rounds vs n at fixed degree (expect flat)");
  std::printf("\nPaper prediction: deterministic (Δ+1)-list coloring in O(1)"
              " rounds — the 'rounds' column must not grow with n.\n");
  return 0;
}
