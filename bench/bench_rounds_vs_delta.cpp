// Experiment T2 (Theorem 1.1): rounds as a function of Delta at fixed n.
// The constant in O(1) depends on the recursion depth, which grows very
// slowly with Delta (Lemma 3.14 caps it at 9 asymptotically); measured
// rounds may drift with Delta but stay bounded and tiny relative to the
// O(log Delta)-round deterministic state of the art the paper supersedes.
#include <cmath>
#include <cstdio>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 8000));
  const auto degs = args.get_uint_list("degs", {8, 16, 32, 64, 128});

  Table t({"n", "Delta", "rounds", "depth", "partitions", "depth/lg(Delta)",
           "wall ms"});
  for (const auto d : degs) {
    const Graph g = gen_random_regular(n, static_cast<NodeId>(d), 777 + d);
    const PaletteSet pal = PaletteSet::delta_plus_one(g);
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 2.0;
    WallTimer timer;
    const auto r = color_reduce(g, pal, cfg);
    const double ms = timer.millis();
    const auto v = verify_coloring(g, pal, r.coloring);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
      return 1;
    }
    t.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{g.max_degree()})
        .cell(r.ledger.total_rounds())
        .cell(r.max_depth_reached)
        .cell(r.num_partitions)
        .cell(static_cast<double>(r.max_depth_reached) /
                  std::max(1.0, std::log2(static_cast<double>(d))),
              2)
        .cell(ms, 1);
  }
  t.print("T2 — Theorem 1.1: rounds vs Delta at fixed n");
  std::printf(
      "\nPaper prediction: recursion depth stays O(1) (<= 9 at asymptotic\n"
      "parameters); at laptop scale bins = 2, so depth tracks ~log2(Delta)\n"
      "until the collect threshold bites, and rounds stay in the hundreds\n"
      "regardless of n (contrast the O(log n)-round randomized baseline).\n");
  return 0;
}
