// Experiment F4: Theorem 1.1's pipeline at true message granularity.
// One ColorReduce level runs on the per-link-bandwidth-enforcing network:
// seed agreement via the distributed method of conditional expectations
// (exactly 2 rounds per chunk), balanced-routed collects, and neighbor
// announcements. Measured *network* rounds must be flat in n — the same
// constancy T1 shows for the costed simulator, now with every word
// scheduled onto a real link.
#include <cstdio>

#include "core/network_color.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns = args.get_uint_list("ns", {64, 128, 256, 512});
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 8));

  Table t({"n", "Delta", "network rounds", "mce rounds", "routing+color",
           "words", "bad bins", "G0 words", "wall ms"});
  PartitionParams params;
  for (const auto n : ns) {
    const Graph g =
        gen_random_regular(static_cast<NodeId>(n), deg, 1000 + n);
    const PaletteSet pal = PaletteSet::delta_plus_one(g);
    WallTimer timer;
    const auto r = network_color_round(g, pal, params);
    const double ms = timer.millis();
    const auto v = verify_coloring(g, pal, r.coloring);
    if (!v.ok) {
      std::fprintf(stderr, "INVALID at n=%llu: %s\n",
                   static_cast<unsigned long long>(n), v.issue.c_str());
      return 1;
    }
    t.row()
        .cell(n)
        .cell(std::uint64_t{g.max_degree()})
        .cell(r.network_rounds)
        .cell(r.mce_rounds)
        .cell(r.network_rounds - r.mce_rounds)
        .cell(r.words_sent)
        .cell(r.cls.num_bad_bins)
        .cell(r.cls.bad_graph_words)
        .cell(ms, 1);
  }
  t.print("F4 — message-level ColorReduce level: rounds vs n");
  std::printf(
      "\nPaper prediction: every phase is O(1) network rounds independent\n"
      "of n — the MCE column is exactly 2 x (seed bits / chunk bits), the\n"
      "routing/coloring remainder is a small constant, and words grow\n"
      "linearly while rounds stay flat.\n");
  return 0;
}
