// Scalable-generator bench: streaming .dcg emission throughput and the
// out-of-core read path's memory story.
//
// For each n it generates a graph with the sharded scalable path
// (graph/scalable_gen.hpp), then greedy-colors it through map_dcg_file with
// the shared-uniform delta1 palettes — the configuration whose peak heap
// residency is O(n) regardless of m. Columns:
//   * gen s / Medge/s  — end-to-end generation wall time and throughput,
//   * file MB          — the emitted .dcg size (what mmap pays in *address
//                        space*, mostly non-resident for streaming access),
//   * heap CSR MB      — what read_graph_file would allocate for the same
//                        graph (offsets + adjacency), i.e. the in-RAM cost
//                        the mmap path avoids,
//   * peak RSS MB      — ru_maxrss after the mmap coloring; the headline
//                        claim is peak RSS < heap CSR MB at large n.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "cli/pipeline.hpp"
#include "exec/exec.hpp"
#include "graph/formats.hpp"
#include "graph/palette.hpp"
#include "graph/scalable_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace detcol;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double peak_rss_mb() {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns = args.get_uint_list("ns", {1u << 18, 1u << 20, 1u << 22});
  const auto d = args.get_uint("d", 8);
  const auto threads = static_cast<unsigned>(args.get_uint("threads", 4));
  const std::string dir =
      args.get_string("dir", std::filesystem::temp_directory_path().string());

  ExecHolder holder = make_exec_holder(threads);
  Table t({"n", "m", "Delta", "gen s", "Medge/s", "file MB", "heap CSR MB",
           "greedy s", "colors", "peak RSS MB"});
  for (const auto n : ns) {
    ScalableGenSpec spec;
    spec.family = ScalableFamily::kBarabasiAlbert;
    spec.n = static_cast<NodeId>(n);
    spec.d = static_cast<NodeId>(d);
    spec.seed = 7;
    const std::string path = dir + "/bench_scalable_" + std::to_string(n) +
                             ".dcg";
    const auto t_gen = std::chrono::steady_clock::now();
    const ScalableGenResult res =
        generate_scalable_dcg(spec, path, holder.exec);
    const double gen_s = seconds_since(t_gen);

    const double file_mb =
        static_cast<double>(std::filesystem::file_size(path)) / (1024 * 1024);
    // read_graph_file's allocation for the same CSR: 8-byte offsets (n+1)
    // plus 4-byte arcs (2m).
    const double heap_mb =
        (8.0 * (double(n) + 1) + 8.0 * double(res.num_edges)) / (1024 * 1024);

    const Graph g = map_dcg_file(path, holder.exec);
    const PaletteSet pal = PaletteSet::delta_plus_one(g);
    const auto t_col = std::chrono::steady_clock::now();
    const cli::PipelineRun run = cli::run_pipeline(
        "greedy", g, pal, holder.exec, /*seed=*/1, /*want_stats=*/false);
    const double greedy_s = seconds_since(t_col);

    std::size_t colors = 0;
    for (const Color c : run.coloring.color) {
      colors = std::max(colors, static_cast<std::size_t>(c) + 1);
    }
    t.row()
        .cell(std::uint64_t{n})
        .cell(res.num_edges)
        .cell(std::uint64_t{res.max_degree})
        .cell(gen_s, 2)
        .cell(gen_s > 0 ? double(res.num_edges) / gen_s / 1e6 : 0.0, 2)
        .cell(file_mb, 1)
        .cell(heap_mb, 1)
        .cell(greedy_s, 2)
        .cell(std::uint64_t{colors})
        .cell(peak_rss_mb(), 1);
    std::filesystem::remove(path);
  }
  t.print("scalable gen: streaming emission + out-of-core greedy coloring");
  std::printf(
      "\nExpectation: Medge/s roughly flat in n (streaming, no O(m) arrays);\n"
      "at large n the peak RSS stays below 'heap CSR MB' — the mmap path\n"
      "never materializes the adjacency, and delta1 palettes are shared.\n");
  return 0;
}
