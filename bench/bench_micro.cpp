// Experiment F3: micro-benchmarks (google-benchmark) of the hot primitives:
// field multiply, k-wise hash evaluation, Definition 3.1 classification,
// induced-subgraph construction, and the local greedy. These bound the
// wall-clock cost per seed evaluation, which is what makes the threshold
// scan / MCE search affordable.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/classify.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "hashing/field.hpp"
#include "hashing/kwise.hpp"

using namespace detcol;

namespace {

void BM_FieldMul(benchmark::State& state) {
  std::uint64_t a = 0x123456789ABCDEFULL, b = 0xFEDCBA987654321ULL;
  for (auto _ : state) {
    a = m61_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_KWiseEval(benchmark::State& state) {
  const auto h =
      KWiseHash::from_u64_seed(7, static_cast<unsigned>(state.range(0)), 16);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++x));
  }
}
BENCHMARK(BM_KWiseEval)->Arg(2)->Arg(4)->Arg(8);

struct ClassifyFixture {
  Graph g;
  PaletteSet pal;
  Instance inst;
  PartitionParams params;

  explicit ClassifyFixture(NodeId n, NodeId d)
      : g(gen_random_regular(n, d, 1)), pal(PaletteSet::delta_plus_one(g)) {
    inst.orig.resize(n);
    std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
    inst.graph = g;
    inst.ell = static_cast<double>(g.max_degree());
  }
};

void BM_Classify(benchmark::State& state) {
  ClassifyFixture f(static_cast<NodeId>(state.range(0)), 32);
  const std::uint64_t b = num_bins(f.inst.ell, f.params);
  const auto h1 = KWiseHash::from_u64_seed(1, 4, b);
  const auto h2 = KWiseHash::from_u64_seed(2, 4, b - 1);
  for (auto _ : state) {
    const auto cls = classify(f.inst, f.pal, h1, h2, f.g.num_nodes(),
                              f.params);
    benchmark::DoNotOptimize(cls.cost_q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Classify)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph g =
      gen_random_regular(static_cast<NodeId>(state.range(0)), 32, 2);
  std::vector<NodeId> half;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) half.push_back(v);
  for (auto _ : state) {
    const Graph sub = induced_subgraph(g, half);
    benchmark::DoNotOptimize(sub.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph)->Arg(1000)->Arg(8000);

void BM_GreedyColor(benchmark::State& state) {
  const Graph g =
      gen_random_regular(static_cast<NodeId>(state.range(0)), 32, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (auto _ : state) {
    Coloring c(g.num_nodes());
    const bool ok = greedy_color_all(g, pal, c);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedyColor)->Arg(1000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
