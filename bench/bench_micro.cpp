// Experiment F3: micro-benchmarks (google-benchmark) of the hot primitives:
// field multiply, k-wise hash evaluation, Definition 3.1 classification,
// induced-subgraph construction, and the local greedy. These bound the
// wall-clock cost per seed evaluation, which is what makes the threshold
// scan / MCE search affordable.
//
// Invoked with --simd-json=FILE the binary skips google-benchmark entirely
// and runs the scalar-vs-SIMD A/B of the four dispatched field-kernel
// passes (hashing/simd_kernels.hpp), writing per-pass throughput and
// speedups to FILE — the committed BENCH_simd.json baseline (see
// docs/BENCHMARKS.md for the regeneration procedure).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/classify.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "hashing/field.hpp"
#include "hashing/kwise.hpp"
#include "hashing/simd_kernels.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

namespace {

void BM_FieldMul(benchmark::State& state) {
  std::uint64_t a = 0x123456789ABCDEFULL, b = 0xFEDCBA987654321ULL;
  for (auto _ : state) {
    a = m61_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_KWiseEval(benchmark::State& state) {
  const auto h =
      KWiseHash::from_u64_seed(7, static_cast<unsigned>(state.range(0)), 16);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++x));
  }
}
BENCHMARK(BM_KWiseEval)->Arg(2)->Arg(4)->Arg(8);

struct ClassifyFixture {
  Graph g;
  PaletteSet pal;
  Instance inst;
  PartitionParams params;

  explicit ClassifyFixture(NodeId n, NodeId d)
      : g(gen_random_regular(n, d, 1)), pal(PaletteSet::delta_plus_one(g)) {
    inst.orig.resize(n);
    std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
    inst.graph = g;
    inst.ell = static_cast<double>(g.max_degree());
  }
};

void BM_Classify(benchmark::State& state) {
  ClassifyFixture f(static_cast<NodeId>(state.range(0)), 32);
  const std::uint64_t b = num_bins(f.inst.ell, f.params);
  const auto h1 = KWiseHash::from_u64_seed(1, 4, b);
  const auto h2 = KWiseHash::from_u64_seed(2, 4, b - 1);
  for (auto _ : state) {
    const auto cls = classify(f.inst, f.pal, h1, h2, f.g.num_nodes(),
                              f.params);
    benchmark::DoNotOptimize(cls.cost_q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Classify)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph g =
      gen_random_regular(static_cast<NodeId>(state.range(0)), 32, 2);
  std::vector<NodeId> half;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) half.push_back(v);
  for (auto _ : state) {
    const Graph sub = induced_subgraph(g, half);
    benchmark::DoNotOptimize(sub.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph)->Arg(1000)->Arg(8000);

void BM_GreedyColor(benchmark::State& state) {
  const Graph g =
      gen_random_regular(static_cast<NodeId>(state.range(0)), 32, 3);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  for (auto _ : state) {
    Coloring c(g.num_nodes());
    const bool ok = greedy_color_all(g, pal, c);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedyColor)->Arg(1000)->Arg(8000);

}  // namespace

// ---------------------------------------------------------------------------
// --simd-json=FILE: scalar vs. SIMD A/B of the dispatched field kernels.
//
// Times the four passes behind the FieldKernel table on the workload shapes
// the engines actually run them at (n = 2^14 points, c = 8 polynomial rows,
// bins range << 2^32), under every kernel this build + host can select.
// Outputs are checksummed and DC_CHECKed identical across kernels — the A/B
// doubles as a bit-identity smoke on the real buffer sizes. `ns_per_point`
// is wall time divided by (reps * n): one "point" is one element of one
// pass invocation, so mul_add_rows/power_table/horner each do `rows`
// multiply-adds per point.
// ---------------------------------------------------------------------------

namespace {

struct KernelData {
  std::size_t n = 0;
  unsigned rows = 0;
  std::vector<std::uint64_t> points;              // raw 64-bit words
  std::vector<std::vector<std::uint64_t>> table;  // rows x n, canonical
  std::vector<const std::uint64_t*> row_ptrs;
  std::vector<std::uint64_t> deltas;  // canonical coefficient diffs
  std::vector<std::uint64_t> vals;    // u64 scratch
  std::vector<std::uint64_t> work;    // u64 scratch
  std::vector<std::uint32_t> bins;    // u32 scratch
  std::vector<std::vector<std::uint64_t>> out_table;  // power-table scratch
};

KernelData make_kernel_data(std::size_t n, unsigned rows) {
  KernelData d;
  d.n = n;
  d.rows = rows;
  Xoshiro256 rng(0x51D0);
  d.points.resize(n);
  for (auto& p : d.points) p = rng.next();
  d.table.assign(rows, std::vector<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = m61_reduce(d.points[i]);
    d.table[0][i] = x;
    for (unsigned r = 1; r < rows; ++r) {
      d.table[r][i] = m61_mul(d.table[r - 1][i], x);
    }
  }
  for (const auto& row : d.table) d.row_ptrs.push_back(row.data());
  d.deltas.resize(rows);
  for (auto& dd : d.deltas) dd = m61_reduce(rng.next());
  d.vals.resize(n);
  d.work.resize(n);
  d.bins.resize(n);
  d.out_table.assign(rows, std::vector<std::uint64_t>(n));
  return d;
}

std::uint64_t fnv_words(std::uint64_t h, const std::uint64_t* p,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001B3ULL;
  }
  return h;
}

struct PassResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

PassResult run_mul_add_rows(const FieldKernel& k, KernelData& d,
                            unsigned reps) {
  std::copy(d.table[0].begin(), d.table[0].end(), d.vals.begin());
  WallTimer t;
  for (unsigned r = 0; r < reps; ++r) {
    k.mul_add_rows(d.vals.data(), d.row_ptrs.data(), d.deltas.data(), d.rows,
                   0, d.n);
  }
  PassResult res;
  res.seconds = t.seconds();
  res.checksum = fnv_words(0xcbf29ce484222325ULL, d.vals.data(), d.n);
  return res;
}

PassResult run_power_table(const FieldKernel& k, KernelData& d,
                           unsigned reps) {
  // The BatchKWiseEval constructor's table build: x^1 by canonicalizing the
  // raw points, then each higher row as prev-row * x^1.
  WallTimer t;
  for (unsigned r = 0; r < reps; ++r) {
    k.reduce_row(d.out_table[0].data(), d.points.data(), 0, d.n);
    for (unsigned row = 1; row < d.rows; ++row) {
      k.mul_rows(d.out_table[row].data(), d.out_table[row - 1].data(),
                 d.out_table[0].data(), 0, d.n);
    }
  }
  PassResult res;
  res.seconds = t.seconds();
  res.checksum = 0xcbf29ce484222325ULL;
  for (const auto& row : d.out_table) {
    res.checksum = fnv_words(res.checksum, row.data(), d.n);
  }
  return res;
}

PassResult run_to_bins(const FieldKernel& k, KernelData& d, unsigned reps) {
  WallTimer t;
  for (unsigned r = 0; r < reps; ++r) {
    k.to_bins(d.bins.data(), d.table[1].data(), /*range=*/509, /*offset=*/1,
              0, d.n);
  }
  PassResult res;
  res.seconds = t.seconds();
  res.checksum = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < d.n; ++i) {
    res.checksum = (res.checksum ^ d.bins[i]) * 0x100000001B3ULL;
  }
  return res;
}

PassResult run_horner(const FieldKernel& k, KernelData& d, unsigned reps) {
  // The bulk KWiseHash::field_eval path: canonicalize the points, then a
  // degree-(rows-1) Horner chain of fma_const steps.
  WallTimer t;
  for (unsigned r = 0; r < reps; ++r) {
    k.reduce_row(d.work.data(), d.points.data(), 0, d.n);
    std::fill(d.vals.begin(), d.vals.end(), d.deltas[0]);
    for (unsigned j = 1; j < d.rows; ++j) {
      k.fma_const(d.vals.data(), d.work.data(), d.deltas[j], 0, d.n);
    }
  }
  PassResult res;
  res.seconds = t.seconds();
  res.checksum = fnv_words(0xcbf29ce484222325ULL, d.vals.data(), d.n);
  return res;
}

int run_simd_ab(const std::string& json_path) {
  const std::size_t n = std::size_t{1} << 14;
  const unsigned rows = 8;
  const unsigned reps = 512;

  std::vector<std::string> kernels{"scalar"};
  if (simd_available(SimdKind::kAvx2)) kernels.push_back("avx2");
  if (simd_available(SimdKind::kNeon)) kernels.push_back("neon");

  struct Pass {
    const char* name;
    PassResult (*fn)(const FieldKernel&, KernelData&, unsigned);
  };
  const Pass passes[] = {
      {"mul_add_rows", run_mul_add_rows},
      {"power_table", run_power_table},
      {"to_bins", run_to_bins},
      {"horner", run_horner},
  };

  KernelData data = make_kernel_data(n, rows);
  struct Run {
    std::string kernel;
    double seconds = 0.0;
    double ns_per_point = 0.0;
    double speedup = 1.0;
  };
  Table tbl({"pass", "kernel", "ns/point", "speedup vs scalar"});
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("simd_kernels");
  w.key("n").value(std::uint64_t{n});
  w.key("rows").value(rows);
  w.key("reps").value(reps);
  w.key("host_cpus").value(std::uint64_t{std::thread::hardware_concurrency()});
  w.key("auto_kernel").value(simd_kind_name(simd_auto_kind()));
  w.key("kernels").begin_array();
  for (const auto& kname : kernels) w.value(kname);
  w.end_array();
  w.key("passes").begin_array();

  std::string error;
  for (const Pass& pass : passes) {
    std::vector<Run> runs;
    std::uint64_t scalar_checksum = 0;
    for (const std::string& kname : kernels) {
      DC_CHECK(select_simd(kname, &error), error);
      const FieldKernel& k = active_field_kernel();
      pass.fn(k, data, 8);  // warm caches / page in tables
      const PassResult r = pass.fn(k, data, reps);
      if (kname == "scalar") {
        scalar_checksum = r.checksum;
      } else {
        DC_CHECK(r.checksum == scalar_checksum, "kernel '", kname,
                 "' diverged from scalar on pass ", pass.name,
                 " — bit-identity contract violated");
      }
      Run run;
      run.kernel = kname;
      run.seconds = r.seconds;
      run.ns_per_point =
          1e9 * r.seconds / (static_cast<double>(reps) * static_cast<double>(n));
      run.speedup = runs.empty() ? 1.0 : runs.front().seconds / r.seconds;
      runs.push_back(run);
    }
    w.begin_object();
    w.key("pass").value(pass.name);
    w.key("runs").begin_array();
    for (const Run& run : runs) {
      w.begin_object();
      w.key("kernel").value(run.kernel);
      w.key("seconds").value(run.seconds);
      w.key("ns_per_point").value(run.ns_per_point);
      w.key("speedup").value(run.speedup);
      w.end_object();
      tbl.row()
          .cell(pass.name)
          .cell(run.kernel)
          .cell(run.ns_per_point, 2)
          .cell(run.speedup, 2);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  DC_CHECK(select_simd("auto", &error), error);

  tbl.print("F3s — field-kernel throughput, n=" + std::to_string(n) +
            ", rows=" + std::to_string(rows) +
            " (outputs checksummed identical across kernels)");
  std::ofstream out(json_path);
  out << w.str() << "\n";
  DC_CHECK(out.good(), "failed to write ", json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

// BENCHMARK_MAIN(), except --simd-json=FILE diverts into the field-kernel
// A/B harness before google-benchmark sees the arguments.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--simd-json=";
    if (arg.rfind(prefix, 0) == 0) {
      return run_simd_ab(arg.substr(prefix.size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
