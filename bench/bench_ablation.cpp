// Ablation study of the design choices DESIGN.md calls out:
//   A1 — hash-family independence c (Lemma 2.2 needs c >= 4; what do lower/
//        higher values do to partition quality and seed-search effort?)
//   A2 — collect threshold (the "size O(n)" constant of Algorithm 1):
//        trades recursion depth against collected-instance size.
//   A3 — G0 acceptance budget (Corollary 3.10 constant): tighter budgets
//        cost more seed evaluations, looser ones bigger G0 collects.
//   A4 — bin exponent (Algorithm 2's ell^0.1): more bins shrink degrees
//        faster per level but weaken per-bin concentration.
#include <cstdio>

#include "core/color_reduce.hpp"
#include "util/check.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

namespace {
struct Sums {
  std::uint64_t bad = 0, parts = 0;
  void walk(const CallStats& s) {
    if (!s.collected && s.n > 0) {
      bad += s.bad_nodes;
      ++parts;
    }
    for (const auto& c : s.children) walk(c);
  }
};

void run_row(Table& t, const std::string& label, const Graph& g,
             const PaletteSet& pal, const ColorReduceConfig& cfg) {
  WallTimer w;
  try {
    const auto r = color_reduce(g, pal, cfg);
    const double ms = w.millis();
    const auto v = verify_coloring(g, pal, r.coloring);
    Sums sums;
    sums.walk(r.root);
    t.row()
        .cell(label)
        .cell(r.ledger.total_rounds())
        .cell(r.max_depth_reached)
        .cell(sums.parts)
        .cell(sums.bad)
        .cell(r.total_seed_evaluations)
        .cell(r.peak_collect_words)
        .cell(v.ok ? "yes" : "NO")
        .cell(ms, 1);
  } catch (const CheckError&) {
    // The simulator rejected a model-limit violation (e.g. G0 outgrew the
    // O(n) machine): that *is* the ablation's result for this variant.
    t.row()
        .cell(label)
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("-")
        .cell("MODEL VIOLATION")
        .cell(w.millis(), 1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 6000));
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 48));
  const Graph g = gen_random_regular(n, deg, 404);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);
  std::printf("instance: random %u-regular, n=%u\n", deg, n);

  const std::vector<std::string> headers = {
      "variant",    "rounds",     "depth", "partitions", "bad nodes",
      "seed evals", "peak collect", "valid", "wall ms"};

  {
    Table t(headers);
    for (const unsigned c : {2u, 4u, 8u}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      cfg.part.independence = c;
      run_row(t, "c = " + std::to_string(c), g, pal, cfg);
    }
    t.print("A1 — independence of the hash families");
  }
  {
    Table t(headers);
    for (const double f : {1.0, 2.0, 4.0, 8.0}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = f;
      run_row(t, "collect_factor = " + format_double(f, 1), g, pal, cfg);
    }
    t.print("A2 — collect threshold (Algorithm 1's 'size O(n)')");
  }
  {
    Table t(headers);
    for (const double b : {0.25, 0.5, 1.0, 2.0}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      cfg.part.g0_budget = b;
      run_row(t, "g0_budget = " + format_double(b, 2), g, pal, cfg);
    }
    t.print("A3 — G0 acceptance budget (Corollary 3.10 constant)");
  }
  {
    Table t(headers);
    for (const double e : {0.1, 0.2, 0.3, 0.4}) {
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      cfg.part.bin_exp = e;
      run_row(t, "bin_exp = " + format_double(e, 1), g, pal, cfg);
    }
    t.print("A4 — bin exponent (Algorithm 2's ell^0.1)");
  }
  std::printf(
      "\nReading: c=2 lacks the Lemma 2.2 guarantee yet behaves here (the\n"
      "scan verifies seeds exactly, so weak families just scan longer);\n"
      "larger collect_factor flattens the recursion; tighter g0_budget\n"
      "costs evaluations; larger bin_exp shortens recursion until bins\n"
      "outrun the concentration slack and bad counts rise.\n");
  return 0;
}
