// Experiment T6: deterministic ColorReduce vs every baseline on identical
// instances. Who wins on model rounds, by what factor, and at what
// wall-clock cost. The headline comparison of the paper:
//   * vs randomized O(log n) color trial (the classic baseline),
//   * vs deterministic MIS-reduction coloring (pre-paper deterministic SoTA
//     proxy, O(log Delta)-ish phases),
//   * vs randomized ColorReduce (ablation: what derandomization costs),
//   * vs sequential greedy (wall-clock reference, no rounds).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "baselines/randomized_reduce.hpp"
#include "core/color_reduce.hpp"
#include "exec/exec.hpp"
#include "graph/generators.hpp"
#include "lowspace/low_space.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace detcol;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const NodeId n = static_cast<NodeId>(args.get_uint("n", 8000));
  const NodeId deg = static_cast<NodeId>(args.get_uint("deg", 32));
  // One pool shared by every contender: ColorReduce, the low-space driver
  // AND the trial/mis baselines all shard over it, so wall-clock columns
  // compare like for like at any --threads value (results stay bit-identical
  // to the sequential run by the exec-layer contract).
  const ExecHolder holder = make_exec_holder(
      static_cast<unsigned>(args.get_uint("threads", 1)));
  const ExecContext exec = holder.exec;

  struct Row {
    std::string name;
    std::uint64_t rounds;
    std::uint64_t words;
    bool valid;
    double ms;
    std::string note;
  };
  std::vector<Row> rows;

  const Graph g = gen_random_regular(n, deg, 31337);
  const PaletteSet pal = PaletteSet::delta_plus_one(g);

  {
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 2.0;
    cfg.exec = exec;
    WallTimer w;
    const auto r = color_reduce(g, pal, cfg);
    rows.push_back({"ColorReduce (det, this paper)", r.ledger.total_rounds(),
                    r.ledger.total_words(),
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    "depth " + std::to_string(r.max_depth_reached)});
  }
  {
    ColorReduceConfig cfg;
    cfg.part.collect_factor = 2.0;
    cfg.exec = exec;
    WallTimer w;
    const auto r = randomized_reduce(g, pal, 0, cfg);
    rows.push_back({"ColorReduce (randomized ablation)",
                    r.ledger.total_rounds(), r.ledger.total_words(),
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    "first seed, no search"});
  }
  {
    WallTimer w;
    const auto r = random_trial_color(g, pal, 4242, kRandomTrialMaxRounds, exec);
    rows.push_back({"Randomized color trial", r.model_rounds, r.words_sent,
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    std::to_string(r.trial_rounds) + " trials"});
  }
  {
    MisParams mis_params;
    mis_params.exec = exec;
    WallTimer w;
    const auto r = mis_baseline_color(g, pal, mis_params);
    rows.push_back({"Det. MIS-reduction (pre-paper det.)", r.rounds, r.words,
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    std::to_string(r.phases) + " Luby phases"});
  }
  {
    LowSpaceParams params;
    params.delta = 0.04;
    params.exec = exec;
    WallTimer w;
    const auto r = low_space_color(g, pal, params);
    rows.push_back({"LowSpaceColorReduce (Thm 1.4)", r.ledger.total_rounds(),
                    r.ledger.total_words(),
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    std::to_string(r.total_mis_phases) + " MIS phases"});
  }
  {
    WallTimer w;
    const auto r = greedy_baseline(g, pal);
    rows.push_back({"Sequential greedy (centralized)", 0, 0,
                    verify_coloring(g, pal, r.coloring).ok, w.millis(),
                    "no communication model"});
  }

  Table t({"algorithm", "model rounds", "words", "valid", "wall ms", "notes"});
  for (const auto& r : rows) {
    t.row()
        .cell(r.name)
        .cell(r.rounds)
        .cell(r.words)
        .cell(r.valid ? "yes" : "NO")
        .cell(r.ms, 1)
        .cell(r.note);
  }
  t.print("T6 — baselines on random " + std::to_string(deg) + "-regular, n=" +
          std::to_string(n));

  // F3 — crossover analysis: the deterministic algorithm's rounds are a
  // constant C(Δ); the randomized trial needs ~a + b*log2(n). Fit (a, b)
  // over an n-sweep and report where the curves cross.
  {
    Table t2({"n", "det rounds", "trial rounds (avg of 3 seeds)"});
    std::vector<double> xs, ys;
    std::uint64_t det_rounds = 0;
    for (const std::uint64_t nn : {2000ull, 8000ull, 32000ull}) {
      const Graph gg = gen_random_regular(static_cast<NodeId>(nn), deg,
                                          91 + nn);
      const PaletteSet pp = PaletteSet::delta_plus_one(gg);
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      const auto d = color_reduce(gg, pp, cfg);
      det_rounds = d.ledger.total_rounds();
      double trial_avg = 0.0;
      for (std::uint64_t s = 0; s < 3; ++s) {
        trial_avg += static_cast<double>(
            random_trial_color(gg, pp, 100 + s).model_rounds);
      }
      trial_avg /= 3.0;
      xs.push_back(std::log2(static_cast<double>(nn)));
      ys.push_back(trial_avg);
      t2.row().cell(nn).cell(det_rounds).cell(trial_avg, 1);
    }
    // Least-squares fit of trial rounds = a + b*log2(n).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double k = static_cast<double>(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sx += xs[i];
      sy += ys[i];
      sxx += xs[i] * xs[i];
      sxy += xs[i] * ys[i];
    }
    const double b = (k * sxy - sx * sy) / std::max(1e-9, k * sxx - sx * sx);
    const double a = (sy - b * sx) / k;
    t2.print("F3 — crossover: constant deterministic vs O(log n) randomized");
    if (b > 1e-6) {
      const double cross_log2 =
          (static_cast<double>(det_rounds) - a) / b;
      std::printf(
          "\ntrial-rounds fit: %.1f + %.2f*log2(n). Deterministic constant "
          "%llu\n=> curves cross at n ~= 2^%.0f — the paper's win is "
          "asymptotic\n(and, more importantly, deterministic).\n",
          a, b, static_cast<unsigned long long>(det_rounds), cross_log2);
    } else {
      std::printf("\ntrial rounds did not grow over this n range; the "
                  "crossover lies beyond it.\n");
    }
  }

  std::printf(
      "\nPaper prediction: the deterministic ColorReduce round count is a\n"
      "constant (independent of n), competitive with the randomized trial\n"
      "at this scale and far below the MIS-reduction deterministic\n"
      "baseline; the randomized ablation saves seed-search evaluations but\n"
      "loses the G0 = O(n) guarantee (see T3).\n");
  return 0;
}
