// Experiment T3 (Lemma 3.9 / Corollary 3.10): quality of the derandomized
// seed selection. For every Partition executed during a ColorReduce run we
// record bad-node counts against the paper's n/ell^2 target, bad bins
// (must be zero), and the bad-subgraph G0 size against the O(n) budget that
// makes the collect step legal.
#include <cstdio>
#include <vector>

#include "core/color_reduce.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

using namespace detcol;

namespace {
struct Agg {
  std::uint64_t partitions = 0;
  std::uint64_t bad_nodes = 0;
  std::uint64_t bad_bins = 0;
  std::uint64_t reclassified = 0;
  std::uint64_t g0_words_max = 0;
  double paper_bound_sum = 0.0;  // sum over partitions of n_orig/ell^2
  std::uint64_t met = 0;
};

void walk(const CallStats& s, std::uint64_t n_orig, Agg& a) {
  if (!s.collected && s.n > 0) {
    ++a.partitions;
    a.bad_nodes += s.bad_nodes;
    a.bad_bins += s.bad_bins;
    a.reclassified += s.reclassified;
    a.g0_words_max = std::max(a.g0_words_max, s.g0_words);
    a.paper_bound_sum +=
        static_cast<double>(n_orig) / (s.ell * s.ell);
    if (s.seed_met_threshold) ++a.met;
  }
  for (const auto& c : s.children) walk(c, n_orig, a);
}
}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ns = args.get_uint_list("ns", {2000, 8000, 32000});
  const auto degs = args.get_uint_list("degs", {16, 64});

  Table t({"n", "Delta", "partitions", "bad nodes", "n/l^2 budget(sum)",
           "bad bins", "reclassified", "max G0 words", "G0 budget",
           "seeds ok"});
  for (const auto n : ns) {
    for (const auto d : degs) {
      const Graph g = gen_random_regular(static_cast<NodeId>(n),
                                         static_cast<NodeId>(d), 42 + n + d);
      const PaletteSet pal = PaletteSet::delta_plus_one(g);
      ColorReduceConfig cfg;
      cfg.part.collect_factor = 2.0;
      const auto r = color_reduce(g, pal, cfg);
      const auto v = verify_coloring(g, pal, r.coloring);
      if (!v.ok) {
        std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
        return 1;
      }
      Agg a;
      walk(r.root, n, a);
      t.row()
          .cell(n)
          .cell(std::uint64_t{g.max_degree()})
          .cell(a.partitions)
          .cell(a.bad_nodes)
          .cell(a.paper_bound_sum, 1)
          .cell(a.bad_bins)
          .cell(a.reclassified)
          .cell(a.g0_words_max)
          .cell(static_cast<std::uint64_t>(cfg.part.g0_budget *
                                           static_cast<double>(n)))
          .cell(std::to_string(a.met) + "/" + std::to_string(a.partitions));
    }
  }
  t.print("T3 — Lemma 3.9 / Cor 3.10: derandomized partition quality");
  std::printf(
      "\nPaper prediction: zero bad bins, and every G0 collected is O(n)\n"
      "words ('max G0 words' <= 'G0 budget'). The paper's asymptotic\n"
      "n/ell^2 bad-node count is loose at laptop-scale ell (slack terms\n"
      "ell^0.6 dominate small degrees), which the comparison column shows.\n");
  return 0;
}
