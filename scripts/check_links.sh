#!/usr/bin/env bash
# Fails when README.md or docs/*.md contains a relative markdown link whose
# target file does not exist. External (http/https/mailto) and pure-anchor
# links are skipped; fragments are stripped before the existence check.
# Run from the repository root; CI's docs job does.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for file in README.md docs/*.md; do
  dir=$(dirname "$file")
  # Inline links: ...](target). Targets never contain ')' in this tree.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $file -> $target (resolved: $dir/$path)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "check_links: broken relative links found" >&2
  exit 1
fi
echo "check_links: all relative links in README.md and docs/ resolve"
