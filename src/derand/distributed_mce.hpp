// Section 2.4 executed with real messages: distributed method of
// conditional expectations on the cc::Network.
//
// Every node holds a local cost component q_x; the nodes must agree on a
// seed chunk by chunk. Per chunk, the candidate values are aggregated in
// exactly two network rounds:
//   round 1 — node v sends its local estimate for candidate j to node j
//             (one word per ordered pair: bandwidth-legal for 2^chunk <= n);
//   round 2 — node j broadcasts the total for candidate j to everyone.
// All nodes then apply the same deterministic argmin and extend the prefix.
// This is the *communication pattern the paper charges for*; the costed
// simulators charge its contract price, and this module demonstrates the
// price is real.
//
// Estimates are fixed-point-encoded doubles (the model's O(log n)-bit words
// carry them with negligible quantization, mirroring the paper's own
// rounding remarks in Section 2.3).
#pragma once

#include <cstdint>

#include "derand/seedbits.hpp"
#include "exec/exec.hpp"
#include "sim/mpc_costs.hpp"
#include "sim/network.hpp"
#include "util/function_ref.hpp"

namespace detcol {

/// Local conditional-expectation estimator of node `v` for a candidate seed
/// completion: returns node v's share of E[q | prefix] (any deterministic
/// sampled or exact estimate works; consistency across calls is all that is
/// required). Non-owning (util/function_ref.hpp): the MCE loop invokes it
/// n * candidates * samples times per chunk — pass a named callable. When a
/// parallel ExecContext is supplied, the estimate matrix fill invokes it
/// concurrently for distinct nodes (the candidate buffer is shared and
/// read-only), so the callable must be safe to call from multiple threads.
using NodeCostFn =
    FunctionRef<double(std::uint32_t node, const SeedBits& candidate)>;

struct DistributedMceResult {
  SeedBits seed;
  std::uint64_t network_rounds = 0;  // exact message rounds consumed
  std::uint64_t chunks = 0;
  double final_estimate = 0.0;
  /// Cost block: the agreement's measured rounds and message words, charged
  /// to the "mce-agree" phase (caller merges it into its own accumulator).
  MpcCosts mpc;
};

/// Agree on a `num_bits`-bit seed over `net` with chunked MCE. The estimator
/// is evaluated with the candidate chunk appended to the agreed prefix and a
/// deterministic suffix completion (sampled `samples` times; the sample
/// average is aggregated). Requires 2^chunk_bits <= net.n(). The per-chunk
/// estimate matrix (disjoint per-node slots) shards over `exec` with static
/// boundaries while the fixed-point encode/aggregate order stays fixed, so
/// the agreed seed is bit-identical for any thread count.
DistributedMceResult distributed_mce(cc::Network& net, unsigned num_bits,
                                     unsigned chunk_bits, NodeCostFn node_cost,
                                     unsigned samples = 2,
                                     std::uint64_t salt = 0xD157ULL,
                                     ExecContext exec = {});

}  // namespace detcol
