// Bit-addressable seed strings.
//
// A seed specifies a pair of hash functions (Lemma 2.4); the method of
// conditional expectations (Section 2.4) fixes it chunk by chunk. SeedBits is
// the shared representation: a fixed-length bit string with chunk get/set and
// word export (the hash constructors consume 64-bit words).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace detcol {

class SeedBits {
 public:
  explicit SeedBits(unsigned num_bits);

  unsigned num_bits() const { return num_bits_; }

  /// Set `count` (<= 64) bits starting at `pos` to the low bits of `value`.
  void set_bits(unsigned pos, unsigned count, std::uint64_t value);

  /// Read `count` (<= 64) bits starting at `pos`.
  std::uint64_t get_bits(unsigned pos, unsigned count) const;

  /// Underlying words (little-endian bit order within each word).
  std::span<const std::uint64_t> words() const { return words_; }

  /// Words [first, first+count) — used to split one seed string into the
  /// h1-part and h2-part.
  std::span<const std::uint64_t> word_range(unsigned first,
                                            unsigned count) const;

  /// Deterministically expand (salt, index) into a full seed string — the
  /// fixed enumeration order used by scan-based selection and by sampled
  /// completions in the MCE strategy.
  static SeedBits expand(unsigned num_bits, std::uint64_t salt,
                         std::uint64_t index);

  /// Fill bits [from, num_bits) pseudo-randomly from (salt, index), keeping
  /// bits [0, from) intact — "complete the suffix" for MCE estimates.
  void fill_suffix(unsigned from, std::uint64_t salt, std::uint64_t index);

  bool operator==(const SeedBits& other) const = default;

 private:
  unsigned num_bits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace detcol
