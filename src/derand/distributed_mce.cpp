#include "derand/distributed_mce.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace detcol {
namespace {

constexpr double kFixedScale = 1024.0;  // 10 fractional bits

std::uint64_t encode(double v) {
  DC_CHECK(v >= 0.0, "cost components must be non-negative");
  return static_cast<std::uint64_t>(v * kFixedScale + 0.5);
}

}  // namespace

DistributedMceResult distributed_mce(cc::Network& net, unsigned num_bits,
                                     unsigned chunk_bits, NodeCostFn node_cost,
                                     unsigned samples, std::uint64_t salt,
                                     ExecContext exec) {
  const std::uint32_t n = net.n();
  DC_CHECK(chunk_bits >= 1 && chunk_bits <= 20, "bad chunk size");
  const std::uint64_t candidates = std::uint64_t{1} << chunk_bits;
  DC_CHECK(candidates <= n,
           "2^chunk_bits candidates must not exceed n (delta log n bits per "
           "chunk, Section 2.4)");
  DC_CHECK(samples >= 1, "need at least one completion sample");

  DistributedMceResult result{SeedBits(num_bits), 0, 0, 0.0, {}};
  SeedBits prefix(num_bits);
  SeedBits completion(num_bits);  // reused per (candidate, sample)
  // contrib[v * cand_here + cand]: node v's estimate for a candidate. One
  // flat buffer reused across chunks (the seed-search hot loop must not
  // allocate; see core/seed_eval.hpp for the same discipline host-side).
  std::vector<std::uint64_t> contrib;
  const std::uint64_t start_round = net.round();
  const std::uint64_t start_words = net.total_words_sent();

  unsigned fixed = 0;
  while (fixed < num_bits) {
    const unsigned count = std::min(chunk_bits, num_bits - fixed);
    const std::uint64_t cand_here = std::uint64_t{1} << count;

    // Each node evaluates its local estimate for every candidate (local
    // computation is free in the model).
    contrib.assign(static_cast<std::size_t>(n) * cand_here, 0);
    const bool last_chunk = fixed + count >= num_bits;
    for (std::uint64_t cand = 0; cand < cand_here; ++cand) {
      prefix.set_bits(fixed, count, cand);
      for (unsigned s = 0; s < (last_chunk ? 1u : samples); ++s) {
        completion = prefix;
        if (!last_chunk) {
          completion.fill_suffix(fixed + count, salt ^ (fixed * 0x9E37ULL),
                                 s);
        }
        // The estimate matrix is embarrassingly parallel: every node owns
        // its contrib slot and the completion buffer is read-only for the
        // whole pass. Sharding over nodes keeps each slot's accumulation in
        // sample order, so the fixed-point sums are bit-identical for any
        // thread count.
        parallel_for_shards(exec, n, [&](std::size_t, std::size_t begin,
                                         std::size_t end) {
          for (std::size_t v = begin; v < end; ++v) {
            contrib[v * cand_here + cand] += encode(
                node_cost(static_cast<std::uint32_t>(v), completion));
          }
        });
      }
    }

    // Round 1: node v ships candidate j's contribution to aggregator j.
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint64_t j = 0; j < cand_here; ++j) {
        if (static_cast<std::uint32_t>(j) == v) continue;  // kept locally
        net.send(v, static_cast<std::uint32_t>(j),
                 contrib[static_cast<std::size_t>(v) * cand_here + j]);
      }
    }
    net.deliver();
    std::vector<std::uint64_t> totals(cand_here, 0);
    for (std::uint64_t j = 0; j < cand_here; ++j) {
      std::uint64_t sum = contrib[j * cand_here + j];
      for (const auto& m :
           net.inbox(static_cast<std::uint32_t>(j))) {
        sum += m.payload;
      }
      totals[j] = sum;
    }

    // Round 2: aggregator j broadcasts its total; every node now knows all
    // candidate totals and applies the same argmin.
    for (std::uint64_t j = 0; j < cand_here; ++j) {
      const auto src = static_cast<std::uint32_t>(j);
      for (std::uint32_t v = 0; v < n; ++v) {
        if (v != src) net.send(src, v, totals[j]);
      }
    }
    net.deliver();

    const std::uint64_t best = static_cast<std::uint64_t>(
        std::distance(totals.begin(),
                      std::min_element(totals.begin(), totals.end())));
    prefix.set_bits(fixed, count, best);
    fixed += count;
    ++result.chunks;
    result.final_estimate =
        static_cast<double>(totals[best]) /
        (kFixedScale * (last_chunk ? 1.0 : static_cast<double>(samples)));
  }

  result.seed = prefix;
  result.network_rounds = net.round() - start_round;
  result.mpc.ledger.charge("mce-agree", result.network_rounds,
                           net.total_words_sent() - start_words);
  return result;
}

}  // namespace detcol
