#include "derand/seedbits.hpp"

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace detcol {

SeedBits::SeedBits(unsigned num_bits)
    : num_bits_(num_bits), words_(ceil_div(num_bits, 64), 0) {
  DC_CHECK(num_bits >= 1, "empty seed");
}

void SeedBits::set_bits(unsigned pos, unsigned count, std::uint64_t value) {
  DC_CHECK(count >= 1 && count <= 64, "chunk must be 1..64 bits");
  DC_CHECK(pos + count <= num_bits_, "chunk out of range");
  for (unsigned i = 0; i < count; ++i) {
    const unsigned bit = pos + i;
    const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
    if ((value >> i) & 1) {
      words_[bit / 64] |= mask;
    } else {
      words_[bit / 64] &= ~mask;
    }
  }
}

std::uint64_t SeedBits::get_bits(unsigned pos, unsigned count) const {
  DC_CHECK(count >= 1 && count <= 64, "chunk must be 1..64 bits");
  DC_CHECK(pos + count <= num_bits_, "chunk out of range");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned bit = pos + i;
    if ((words_[bit / 64] >> (bit % 64)) & 1) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::span<const std::uint64_t> SeedBits::word_range(unsigned first,
                                                    unsigned count) const {
  DC_CHECK(first + count <= words_.size(), "word range out of bounds");
  return {words_.data() + first, words_.data() + first + count};
}

SeedBits SeedBits::expand(unsigned num_bits, std::uint64_t salt,
                          std::uint64_t index) {
  SeedBits s(num_bits);
  SplitMix64 sm(salt ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  for (auto& w : s.words_) w = sm.next();
  // Clear bits beyond num_bits so equality semantics are clean.
  const unsigned tail = num_bits % 64;
  if (tail != 0) s.words_.back() &= (std::uint64_t{1} << tail) - 1;
  return s;
}

void SeedBits::fill_suffix(unsigned from, std::uint64_t salt,
                           std::uint64_t index) {
  DC_CHECK(from <= num_bits_, "suffix start out of range");
  const SeedBits rnd = expand(num_bits_, salt, index);
  unsigned pos = from;
  while (pos < num_bits_) {
    const unsigned count = std::min(64u, num_bits_ - pos);
    set_bits(pos, count, rnd.get_bits(pos, count));
    pos += count;
  }
}

}  // namespace detcol
