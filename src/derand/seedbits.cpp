#include "derand/seedbits.hpp"

#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace detcol {

SeedBits::SeedBits(unsigned num_bits)
    : num_bits_(num_bits), words_(ceil_div(num_bits, 64), 0) {
  DC_CHECK(num_bits >= 1, "empty seed");
}

void SeedBits::set_bits(unsigned pos, unsigned count, std::uint64_t value) {
  DC_CHECK(count >= 1 && count <= 64, "chunk must be 1..64 bits");
  DC_CHECK(pos + count <= num_bits_, "chunk out of range");
  for (unsigned i = 0; i < count; ++i) {
    const unsigned bit = pos + i;
    const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
    if ((value >> i) & 1) {
      words_[bit / 64] |= mask;
    } else {
      words_[bit / 64] &= ~mask;
    }
  }
}

std::uint64_t SeedBits::get_bits(unsigned pos, unsigned count) const {
  DC_CHECK(count >= 1 && count <= 64, "chunk must be 1..64 bits");
  DC_CHECK(pos + count <= num_bits_, "chunk out of range");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned bit = pos + i;
    if ((words_[bit / 64] >> (bit % 64)) & 1) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::span<const std::uint64_t> SeedBits::word_range(unsigned first,
                                                    unsigned count) const {
  DC_CHECK(first + count <= words_.size(), "word range out of bounds");
  return {words_.data() + first, words_.data() + first + count};
}

SeedBits SeedBits::expand(unsigned num_bits, std::uint64_t salt,
                          std::uint64_t index) {
  SeedBits s(num_bits);
  SplitMix64 sm(salt ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  for (auto& w : s.words_) w = sm.next();
  // Clear bits beyond num_bits so equality semantics are clean.
  const unsigned tail = num_bits % 64;
  if (tail != 0) s.words_.back() &= (std::uint64_t{1} << tail) - 1;
  return s;
}

void SeedBits::fill_suffix(unsigned from, std::uint64_t salt,
                           std::uint64_t index) {
  DC_CHECK(from <= num_bits_, "suffix start out of range");
  if (from == num_bits_) return;
  // Bit-identical to copying bits [from, num_bits) out of expand(), without
  // materializing the temporary: word k of expand() is the k-th SplitMix64
  // output, and discard() skips straight to the first word we touch. This
  // runs once per sampled MCE completion — tens of thousands of times per
  // partition() — so it must not allocate.
  SplitMix64 sm(salt ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  const unsigned first_word = from / 64;
  sm.discard(first_word);
  const unsigned keep_bits = from % 64;
  for (std::size_t w = first_word; w < words_.size(); ++w) {
    const std::uint64_t rnd = sm.next();
    if (w == first_word && keep_bits != 0) {
      const std::uint64_t keep_mask = (std::uint64_t{1} << keep_bits) - 1;
      words_[w] = (words_[w] & keep_mask) | (rnd & ~keep_mask);
    } else {
      words_[w] = rnd;
    }
  }
  // Clear bits beyond num_bits, matching expand()'s tail masking.
  const unsigned tail = num_bits_ % 64;
  if (tail != 0) words_.back() &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace detcol
