// Deterministic seed selection: the library's implementation of Section 2.4.
//
// The task: given a non-negative cost function q over seeds (in the paper,
// bad nodes + n * bad bins) with E[q] <= Q over a uniformly random seed, find
// deterministically a seed with q at most a threshold tau (>= Q).
//
// The model's method of conditional expectations fixes delta*log(n)-bit
// chunks, aggregating per-machine conditional expectations via O(1)-round
// prefix sums (free *local* computation makes exact conditional expectations
// affordable in the model, but not on a laptop — see DESIGN.md §2). We ship
// three interchangeable strategies, all deterministic end-to-end:
//
//  * kThresholdScan — enumerate seeds in a fixed order, evaluate q exactly,
//    stop at q <= tau. E[q] <= Q and Markov make success quick on random-like
//    families. Default for large instances.
//  * kMceSampled — the chunk-by-chunk search with conditional expectations
//    estimated as deterministic fixed-sample averages; exact final check,
//    scan fallback if the estimate misled us.
//  * kMceExact — exact conditional expectations by exhaustive enumeration of
//    the remaining seed space. Only feasible for small seeds; used by tests
//    to validate the mechanism end-to-end.
//
// Every strategy charges the ledger with the *paper's* round schedule
// (#chunks x O(1) aggregation rounds), so reported round counts reflect the
// algorithm being reproduced, not the host-side search shortcut.
//
// All strategies mutate one candidate buffer in place (prefix + chunk value
// + suffix completion) rather than rebuilding seeds, so consecutive cost()
// calls see seeds differing in few words. Cost backends that diff against
// the previous seed — core/seed_eval.hpp's SeedEvalEngine, the backend
// partition() installs — therefore pay only for the changed coefficients;
// the enumeration order and every returned result are unchanged.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "derand/seedbits.hpp"
#include "util/function_ref.hpp"

namespace detcol {

enum class SeedStrategy {
  kThresholdScan,
  kMceSampled,
  kMceExact,
};

struct SeedSelectConfig {
  SeedStrategy strategy = SeedStrategy::kThresholdScan;
  unsigned chunk_bits = 8;        // delta*log(n) bits per MCE chunk
  unsigned mce_samples = 4;       // completions per conditional estimate
  std::uint64_t scan_max_seeds = 64;  // scan budget before giving up
  std::uint64_t aggregation_rounds = 2;  // O(1) rounds per chunk (Lemma 2.1)
};

struct SeedSelectResult {
  /// Starts from a placeholder seed; every other field keeps its default
  /// (an explicit constructor, so partially-filled returns in the strategy
  /// implementations stay clean under -Wmissing-field-initializers).
  explicit SeedSelectResult(SeedBits initial_seed)
      : seed(std::move(initial_seed)) {}

  SeedBits seed;
  double cost = 0.0;              // exact cost of the chosen seed
  bool met_threshold = false;     // cost <= tau
  std::uint64_t evaluations = 0;  // host-side exact evaluations performed
  std::uint64_t rounds_charged = 0;  // model rounds of the MCE schedule
  std::uint64_t words_charged = 0;
  // For MCE strategies: the running estimate/bound after fixing each chunk;
  // the paper's argument makes this sequence non-increasing in expectation.
  std::vector<double> trajectory;
};

/// Non-owning: the strategies call `cost` tens of thousands of times per
/// search, and a FunctionRef invocation is one indirect call with no
/// type-erasure allocation (util/function_ref.hpp). Pass a named callable
/// (or an inline lambda as a call argument); do not *store* a SeedCostFn
/// built from a temporary.
using SeedCostFn = FunctionRef<double(const SeedBits&)>;

/// Select a seed of `num_bits` bits minimizing/thresholding `cost`.
/// `salt` namespaces the deterministic enumeration (callers pass a value
/// derived from recursion depth and instance id so sibling calls explore
/// different parts of the family in the same deterministic way).
SeedSelectResult select_seed(unsigned num_bits, SeedCostFn cost,
                             double threshold, const SeedSelectConfig& config,
                             std::uint64_t salt);

}  // namespace detcol
