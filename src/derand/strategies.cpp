#include "derand/strategies.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {
namespace {

/// Rounds the paper's MCE schedule charges for fixing `num_bits` bits in
/// chunks of `chunk_bits`: one O(1)-round aggregation per chunk, plus one
/// final broadcast of the winning seed.
std::uint64_t schedule_rounds(unsigned num_bits,
                              const SeedSelectConfig& config) {
  const std::uint64_t chunks = ceil_div(num_bits, config.chunk_bits);
  return chunks * config.aggregation_rounds + 1;
}

std::uint64_t schedule_words(unsigned num_bits,
                             const SeedSelectConfig& config) {
  // Each chunk aggregates 2^chunk_bits candidate sums (one word each per
  // machine is already folded into the aggregation primitive's accounting at
  // the call site; here we track candidate volume only).
  const std::uint64_t chunks = ceil_div(num_bits, config.chunk_bits);
  return chunks * (std::uint64_t{1} << std::min(config.chunk_bits, 20u));
}

SeedSelectResult run_threshold_scan(unsigned num_bits, SeedCostFn cost,
                                    double threshold,
                                    const SeedSelectConfig& config,
                                    std::uint64_t salt) {
  SeedSelectResult best{SeedBits(num_bits)};
  best.cost = std::numeric_limits<double>::infinity();
  SeedBits candidate(num_bits);  // reused; fill_suffix(0, ...) == expand()
  for (std::uint64_t i = 0; i < config.scan_max_seeds; ++i) {
    candidate.fill_suffix(0, salt, i);
    const double c = cost(candidate);
    ++best.evaluations;
    if (c < best.cost) {
      best.cost = c;
      best.seed = candidate;
    }
    if (best.cost <= threshold) {
      best.met_threshold = true;
      break;
    }
  }
  return best;
}

SeedSelectResult run_mce_sampled(unsigned num_bits, SeedCostFn cost,
                                 double threshold,
                                 const SeedSelectConfig& config,
                                 std::uint64_t salt) {
  SeedSelectResult r{SeedBits(num_bits)};
  SeedBits prefix(num_bits);
  SeedBits completion(num_bits);  // reused across all candidate evaluations
  unsigned fixed = 0;
  while (fixed < num_bits) {
    const unsigned count = std::min(config.chunk_bits, num_bits - fixed);
    const std::uint64_t candidates = std::uint64_t{1} << count;
    double best_est = std::numeric_limits<double>::infinity();
    std::uint64_t best_value = 0;
    for (std::uint64_t v = 0; v < candidates; ++v) {
      prefix.set_bits(fixed, count, v);
      double est = 0.0;
      const bool last_chunk = fixed + count >= num_bits;
      const unsigned samples = last_chunk ? 1 : config.mce_samples;
      for (unsigned s = 0; s < samples; ++s) {
        completion = prefix;  // same-length assign: no allocation
        if (!last_chunk) {
          // Common random completions across candidates: the same suffix
          // sample set is reused for every candidate value, so separable
          // costs are ranked exactly and variance cancels in comparisons.
          completion.fill_suffix(fixed + count, salt ^ (fixed * 0x9E37ULL), s);
        }
        est += cost(completion);
        ++r.evaluations;
      }
      est /= static_cast<double>(samples);
      if (est < best_est) {
        best_est = est;
        best_value = v;
      }
    }
    prefix.set_bits(fixed, count, best_value);
    fixed += count;
    r.trajectory.push_back(best_est);
  }
  r.seed = prefix;
  r.cost = cost(r.seed);
  ++r.evaluations;
  r.met_threshold = r.cost <= threshold;
  if (!r.met_threshold) {
    // The sampled estimates misled us; fall back to the deterministic scan
    // (still fully deterministic overall).
    SeedSelectResult scan =
        run_threshold_scan(num_bits, cost, threshold, config, salt ^ 0x1234);
    scan.evaluations += r.evaluations;
    scan.trajectory = std::move(r.trajectory);
    if (scan.cost < r.cost) return scan;
    r.evaluations = scan.evaluations;
  }
  return r;
}

SeedSelectResult run_mce_exact(unsigned num_bits, SeedCostFn cost,
                               double threshold,
                               const SeedSelectConfig& config,
                               std::uint64_t /*salt*/) {
  DC_CHECK(num_bits <= 24,
           "exact MCE enumerates 2^bits completions; seed too long (",
           num_bits, " bits)");
  SeedSelectResult r{SeedBits(num_bits)};
  SeedBits prefix(num_bits);
  SeedBits full(num_bits);  // reused across all exhaustive completions
  unsigned fixed = 0;
  while (fixed < num_bits) {
    const unsigned count = std::min(config.chunk_bits, num_bits - fixed);
    const std::uint64_t candidates = std::uint64_t{1} << count;
    const unsigned rest = num_bits - fixed - count;
    const std::uint64_t completions = std::uint64_t{1} << rest;
    double best_exp = std::numeric_limits<double>::infinity();
    std::uint64_t best_value = 0;
    for (std::uint64_t v = 0; v < candidates; ++v) {
      prefix.set_bits(fixed, count, v);
      double sum = 0.0;
      for (std::uint64_t w = 0; w < completions; ++w) {
        full = prefix;
        if (rest > 0) full.set_bits(fixed + count, rest, w);
        sum += cost(full);
        ++r.evaluations;
      }
      const double expectation = sum / static_cast<double>(completions);
      if (expectation < best_exp) {
        best_exp = expectation;
        best_value = v;
      }
    }
    prefix.set_bits(fixed, count, best_value);
    fixed += count;
    r.trajectory.push_back(best_exp);
  }
  r.seed = prefix;
  r.cost = cost(r.seed);
  ++r.evaluations;
  r.met_threshold = r.cost <= threshold;
  return r;
}

}  // namespace

SeedSelectResult select_seed(unsigned num_bits, SeedCostFn cost,
                             double threshold, const SeedSelectConfig& config,
                             std::uint64_t salt) {
  DC_CHECK(num_bits >= 1, "seed needs bits");
  DC_CHECK(config.chunk_bits >= 1 && config.chunk_bits <= 20,
           "chunk_bits must be in [1, 20]");
  SeedSelectResult r{SeedBits(num_bits)};
  switch (config.strategy) {
    case SeedStrategy::kThresholdScan:
      r = run_threshold_scan(num_bits, cost, threshold, config, salt);
      break;
    case SeedStrategy::kMceSampled:
      r = run_mce_sampled(num_bits, cost, threshold, config, salt);
      break;
    case SeedStrategy::kMceExact:
      r = run_mce_exact(num_bits, cost, threshold, config, salt);
      break;
  }
  r.rounds_charged = schedule_rounds(num_bits, config);
  r.words_charged = schedule_words(num_bits, config);
  return r;
}

}  // namespace detcol
