#include "core/stats_export.hpp"

#include "hashing/simd_kernels.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace detcol {
namespace {

void emit_call_stats(JsonWriter& w, const CallStats& s) {
  w.begin_object();
  w.key("depth").value(s.depth);
  w.key("n").value(s.n);
  w.key("m").value(s.m);
  w.key("max_deg").value(s.max_deg);
  w.key("ell").value(s.ell);
  w.key("collected").value(s.collected);
  if (!s.collected) {
    w.key("num_bins").value(s.num_bins);
    w.key("bad_nodes").value(s.bad_nodes);
    w.key("bad_bins").value(s.bad_bins);
    w.key("reclassified").value(s.reclassified);
    w.key("g0_words").value(s.g0_words);
    w.key("seed_evaluations").value(s.seed_evaluations);
    w.key("seed_met_threshold").value(s.seed_met_threshold);
  }
  w.key("children").begin_array();
  for (const auto& c : s.children) emit_call_stats(w, c);
  w.end_array();
  w.end_object();
}

void emit_ledger(JsonWriter& w, const RoundLedger& ledger) {
  w.begin_object();
  w.key("total_rounds").value(ledger.total_rounds());
  w.key("total_words").value(ledger.total_words());
  w.key("phases").begin_object();
  for (const auto& [name, cost] : ledger.by_phase()) {
    w.key(name).begin_object();
    w.key("rounds").value(cost.rounds);
    w.key("words").value(cost.words);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void emit_mpc_costs(JsonWriter& w, const MpcCosts& c) {
  w.begin_object();
  w.key("peak_local_words").value(c.peak_local_words);
  w.key("peak_total_words").value(c.peak_total_words);
  w.key("num_sorts").value(c.num_sorts);
  w.key("num_prefix_sums").value(c.num_prefix_sums);
  w.key("num_routes").value(c.num_routes);
  w.key("num_gathers").value(c.num_gathers);
  w.key("num_broadcasts").value(c.num_broadcasts);
  w.key("num_aggregates").value(c.num_aggregates);
  w.key("num_collects").value(c.num_collects);
  w.key("ledger");
  emit_ledger(w, c.ledger);
  w.end_object();
}

}  // namespace

std::string call_stats_to_json(const CallStats& stats) {
  JsonWriter w;
  emit_call_stats(w, stats);
  return w.str();
}

std::string ledger_to_json(const RoundLedger& ledger) {
  JsonWriter w;
  emit_ledger(w, ledger);
  return w.str();
}

std::string mpc_costs_to_json(const MpcCosts& costs) {
  JsonWriter w;
  emit_mpc_costs(w, costs);
  return w.str();
}

std::string result_to_json(const ColorReduceResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("max_depth_reached").value(result.max_depth_reached);
  w.key("num_partitions").value(result.num_partitions);
  w.key("num_collects").value(result.num_collects);
  w.key("peak_collect_words").value(result.peak_collect_words);
  w.key("total_seed_evaluations").value(result.total_seed_evaluations);
  w.key("explicit_palette_words").value(result.explicit_palette_words);
  if (result.implicit_store) {
    w.key("implicit_palette_words")
        .value(result.implicit_store->space_words());
  }
  w.key("num_colored")
      .value(static_cast<std::uint64_t>(result.coloring.num_colored()));
  // Host-side execution telemetry: thread count, field kernel and per-depth
  // wall-clock, so bench trajectories can attribute speedups to recursion
  // levels. "kernel" names the selected field kernel — host-dependent like
  // "timing", so cross-host bit-compares exclude both; every other block is
  // bit-identical across thread counts *and* kernels.
  w.key("threads").value(result.threads_used);
  w.key("kernel").value(active_simd_name());
  w.key("timing").begin_object();
  w.key("wall_seconds").value(result.wall_seconds);
  w.key("per_depth_seconds").begin_array();
  for (const double s : result.depth_seconds) w.value(s);
  w.end_array();
  w.end_object();
  w.key("mpc");
  emit_mpc_costs(w, result.mpc);
  w.key("ledger");
  emit_ledger(w, result.ledger);
  w.key("stats");
  emit_call_stats(w, result.root);
  w.end_object();
  return w.str();
}

std::string lowspace_result_to_json(const LowSpaceResult& result,
                                    double wall_seconds) {
  JsonWriter w;
  w.begin_object();
  w.key("depth_reached").value(result.depth_reached);
  w.key("num_partitions").value(result.num_partitions);
  w.key("num_mis_calls").value(result.num_mis_calls);
  w.key("total_mis_phases").value(result.total_mis_phases);
  w.key("seed_evaluations").value(result.seed_evaluations);
  w.key("diverted_violators").value(result.diverted_violators);
  w.key("peak_local_words").value(result.peak_local_words);
  w.key("peak_total_words").value(result.peak_total_words);
  w.key("num_colored")
      .value(static_cast<std::uint64_t>(result.coloring.num_colored()));
  w.key("kernel").value(active_simd_name());
  w.key("timing").begin_object();
  w.key("wall_seconds").value(wall_seconds);
  w.end_object();
  w.key("mpc");
  emit_mpc_costs(w, result.mpc);
  w.key("ledger");
  emit_ledger(w, result.ledger);
  w.end_object();
  return w.str();
}

std::string mis_result_to_json(const MisBaselineResult& result,
                               double wall_seconds) {
  JsonWriter w;
  w.begin_object();
  w.key("phases").value(result.phases);
  w.key("rounds").value(result.rounds);
  w.key("words").value(result.words);
  w.key("seed_evaluations").value(result.seed_evaluations);
  w.key("num_colored")
      .value(static_cast<std::uint64_t>(result.coloring.num_colored()));
  w.key("kernel").value(active_simd_name());
  w.key("timing").begin_object();
  w.key("wall_seconds").value(wall_seconds);
  w.end_object();
  w.key("mpc");
  emit_mpc_costs(w, result.mpc);
  w.end_object();
  return w.str();
}

void write_json_file(const std::string& path, const std::string& json) {
  DC_FAILPOINT("stats.write.body");
  atomic_write_file(path, json + "\n");
}

}  // namespace detcol
