// Algorithm 2 (Partition) with derandomized seed selection (Lemma 3.9).
//
// partition() selects hash functions h1 (nodes -> b bins) and h2 (colors ->
// b-1 bins) deterministically, so that there are no bad bins and the bad-node
// subgraph G0 is O(n) words (Corollary 3.10). It returns the node assignment
// plus the chosen h2, which the ColorReduce driver uses to restrict palettes
// of the color bins.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/classify.hpp"
#include "core/params.hpp"
#include "derand/strategies.hpp"
#include "exec/exec.hpp"
#include "graph/palette.hpp"
#include "hashing/kwise.hpp"
#include "sim/clique_sim.hpp"

namespace detcol {

struct PartitionResult {
  std::uint64_t num_bins = 0;  // b; color bins are 1..b-1, last bin is b
  Classification cls;          // classification under the chosen seed
  SeedSelectResult seed;       // chosen seed + selection telemetry
  KWiseHash h2;                // color hash (range b-1) for palette restriction
  double ell_next = 0.0;       // ell' for the recursive calls
};

/// Runs seed selection for Partition(G, ell) on `inst` and returns the
/// chosen partition. When both `model` and `costs` are non-null, charges the
/// seed-selection round schedule and the instance-routing cost through the
/// immutable `model` into the caller-owned `costs` accumulator. `salt` makes
/// sibling calls deterministic but distinct. The seed-evaluation engine
/// shards its per-node passes over `exec`; the chosen seed and
/// classification are bit-identical for any thread count.
PartitionResult partition(const Instance& inst, const PaletteSet& palettes,
                          std::uint64_t n_orig, const PartitionParams& params,
                          const CliqueModel* model, MpcCosts* costs,
                          std::uint64_t salt, ExecContext exec = {});

}  // namespace detcol
