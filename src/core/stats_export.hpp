// JSON export of run statistics — the machine-readable counterpart of the
// bench tables, for downstream plotting.
#pragma once

#include <string>

#include "baselines/mis_coloring.hpp"
#include "core/color_reduce.hpp"
#include "lowspace/low_space.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_costs.hpp"

namespace detcol {

/// Full CallStats recursion tree as nested JSON objects.
std::string call_stats_to_json(const CallStats& stats);

/// Ledger totals and per-phase breakdown.
std::string ledger_to_json(const RoundLedger& ledger);

/// MPC cost block: residency peaks, operation counters and the phase
/// ledger. Deterministic — bit-comparable across thread counts.
std::string mpc_costs_to_json(const MpcCosts& costs);

/// Everything about a ColorReduce run (summary + mpc block + ledger + stats
/// tree).
std::string result_to_json(const ColorReduceResult& result);

/// Low-space MPC run: counters + mpc block + ledger. Wall-clock lives under
/// "timing" (the only block that is not bit-comparable across runs).
std::string lowspace_result_to_json(const LowSpaceResult& result,
                                    double wall_seconds);

/// MIS-baseline run: counters + mpc block. Same "timing" convention.
std::string mis_result_to_json(const MisBaselineResult& result,
                               double wall_seconds);

/// Write a JSON document to a file (throws CheckError on I/O failure).
void write_json_file(const std::string& path, const std::string& json);

}  // namespace detcol
