// JSON export of run statistics — the machine-readable counterpart of the
// bench tables, for downstream plotting.
#pragma once

#include <string>

#include "core/color_reduce.hpp"
#include "sim/ledger.hpp"

namespace detcol {

/// Full CallStats recursion tree as nested JSON objects.
std::string call_stats_to_json(const CallStats& stats);

/// Ledger totals and per-phase breakdown.
std::string ledger_to_json(const RoundLedger& ledger);

/// Everything about a ColorReduce run (summary + ledger + stats tree).
std::string result_to_json(const ColorReduceResult& result);

/// Write a JSON document to a file (throws CheckError on I/O failure).
void write_json_file(const std::string& path, const std::string& json);

}  // namespace detcol
