// Good/bad classification (Definition 3.1) for a candidate hash pair.
//
// Given an instance, a pair (h1: nodes -> bins, h2: colors -> color bins) and
// the partition parameters, computes for every node its bin, its within-bin
// degree d', its within-bin palette size p' (for color bins), applies the
// paper's goodness conditions, and produces the cost values that drive seed
// selection: the paper's q (Equation 1) and the size-based acceptance cost
// (bad subgraph words) that Corollary 3.10 is really about.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "hashing/kwise.hpp"
#include "core/params.hpp"

namespace detcol {

/// A coloring (sub)instance: an induced graph over original node ids plus the
/// paper's degree proxy ell. Palettes live in the driver's global PaletteSet,
/// keyed by original id.
struct Instance {
  Graph graph;                // induced subgraph, local ids
  std::vector<NodeId> orig;   // local -> original node id
  double ell = 0.0;

  NodeId n() const { return graph.num_nodes(); }
  std::size_t size_words() const { return graph.size_words(); }
};

struct Classification {
  std::uint64_t num_bins = 0;       // b (node bins; color bins = b-1)
  std::vector<std::uint32_t> bin_of;   // per local node: 0 = bad, 1..b = bin
  std::vector<std::uint32_t> deg_in_bin;   // d'(v)
  std::vector<std::uint64_t> pal_in_bin;   // p'(v) for bins 1..b-1, else 0

  std::uint64_t num_bad_nodes = 0;
  std::uint64_t num_bad_bins = 0;
  std::uint64_t reclassified = 0;   // good-by-Def-3.1 but p' <= d' guards
  std::uint64_t bad_graph_words = 0;  // sum over bad v of (1 + d(v))
  std::vector<std::uint64_t> bin_sizes;  // good nodes per bin, index 0..b-1

  /// Paper cost (Equation 1): |bad nodes| + n * |bad bins|.
  double cost_q = 0.0;
  /// Acceptance cost: bad-subgraph words + n * |bad bins| (what must be O(n)
  /// for the collect of G0 to be legal, Corollary 3.10).
  double cost_size = 0.0;
};

/// Reusable workspace for classify(): every buffer a classification pass
/// needs, including the output itself. Owned by seed-search loops so that the
/// ~tens of thousands of evaluations behind one partition() call perform no
/// allocation after the first (vector::assign reuses capacity).
struct ClassifyScratch {
  std::vector<std::uint32_t> raw_bin;  // per local node: bin 1..b under h1
  Classification cls;

  /// Per-shard partial accumulators for the parallel goodness pass of
  /// classify_detail::finish — one slot per static node shard, reused across
  /// evaluations (the seed-search hot loop must not allocate). Totals are
  /// folded in shard-index order (all integers, so order cannot matter, but
  /// the exec layer's shard-ordered contract holds regardless).
  struct FinishShard {
    std::uint64_t num_bad_nodes = 0;
    std::uint64_t reclassified = 0;
    std::uint64_t bad_graph_words = 0;
    std::vector<std::uint64_t> bin_sizes;
  };
  std::vector<FinishShard> finish_shards;
};

/// Evaluate Definition 3.1 for the pair (h1, h2) on `inst`.
/// `n_orig` is the original graph's node count (the capital-N of the bin
/// capacity and of the cost weighting).
Classification classify(const Instance& inst, const PaletteSet& palettes,
                        const KWiseHash& h1, const KWiseHash& h2,
                        std::uint64_t n_orig, const PartitionParams& params);

/// Workspace-taking overload: identical outputs, all buffers reused from
/// `scratch`. Returns a reference to scratch.cls (valid until the next call
/// with the same scratch).
const Classification& classify(const Instance& inst, const PaletteSet& palettes,
                               const KWiseHash& h1, const KWiseHash& h2,
                               std::uint64_t n_orig,
                               const PartitionParams& params,
                               ClassifyScratch& scratch);

namespace classify_detail {

/// d'(v): neighbors hashed to the same bin. The engine computes this over a
/// narrower (cache-resident) bin array; counts are identical either way.
/// Shards over `exec` (each shard writes its own deg_in_bin slots; raw_bin
/// must be fully written before the call).
void fill_deg_in_bin(const Graph& g, std::span<const std::uint32_t> raw_bin,
                     std::vector<std::uint32_t>& deg_in_bin,
                     ExecContext exec = {});

/// The shared tail of a classification pass: given the raw bin assignment in
/// scratch.raw_bin and d'(v) / p'(v) already filled in scratch.cls (with
/// scratch.cls.num_bins set), applies Definition 3.1 and the good-bin
/// capacity, and fills every remaining Classification field. Both the naive
/// classify() and the batched SeedEvalEngine run through this one kernel, so
/// their goodness arithmetic cannot drift apart. The per-node pass shards
/// over `exec` into scratch.finish_shards (per-node decisions are
/// independent; the per-shard counters fold in shard order), so the output
/// is bit-identical for every thread count.
void finish(const Instance& inst, const PaletteSet& palettes,
            std::uint64_t n_orig, const PartitionParams& params,
            ClassifyScratch& scratch, ExecContext exec = {});

}  // namespace classify_detail

}  // namespace detcol
