// One level of ColorReduce executed with *real messages* on the cc::Network
// — the end-to-end message-granularity demonstration that the costed
// simulator's charges are honest.
//
// The pipeline of Algorithm 1, at one recursion level:
//   1. Seed agreement for Partition via the Section 2.4 distributed method
//      of conditional expectations (2 network rounds per chunk; every node
//      evaluates its own goodness locally — it knows its neighbors' ids and
//      its palette, so it can apply candidate h1/h2 itself; node 0 plays
//      the paper's designated bin-overflow checker, which only needs the
//      public id space [n]).
//   2. Each color bin's sub-instance (within-bin adjacency + restricted
//      palette) is routed to a per-bin coordinator with the two-phase
//      balanced router; all color bins ship simultaneously.
//   3. Coordinators color their bins locally (free local computation) and
//      route colors back; nodes announce colors to neighbors (one round).
//   4. The last bin updates palettes from the announcements and repeats the
//      collect; finally the bad-node graph G0 does the same.
//
// Intended for moderate n (the message-level network is O(n^2) state); the
// recursive production driver is color_reduce() on the costed simulator.
#pragma once

#include <cstdint>

#include "core/classify.hpp"
#include "core/params.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/palette.hpp"
#include "sim/mpc_costs.hpp"
#include "sim/network.hpp"

namespace detcol {

struct NetworkColorResult {
  Coloring coloring;
  Classification cls;            // partition outcome under the agreed seed
  std::uint64_t network_rounds = 0;  // true message rounds end to end
  std::uint64_t mce_rounds = 0;      // of which: seed agreement
  std::uint64_t words_sent = 0;
  std::uint64_t num_bins = 0;

  /// Cost block assembled from the measured network counters: the seed
  /// agreement's "mce-agree" charge plus per-group collect/announce phase
  /// deltas and the peak collected-group residency.
  MpcCosts mpc;

  explicit NetworkColorResult(NodeId n) : coloring(n) {}
};

/// Run one Partition + color-all-parts level on a fresh message network of
/// g.num_nodes() nodes. Requires p(v) > d(v) for all v and
/// 2^chunk_bits <= n. The result's coloring is complete and proper. The
/// per-node cost evaluations of the seed agreement shard over `exec`
/// (bit-identical results for any thread count).
NetworkColorResult network_color_round(const Graph& g, const PaletteSet& pal,
                                       const PartitionParams& params,
                                       unsigned chunk_bits = 4,
                                       std::uint64_t salt = 0xC0FFEE,
                                       ExecContext exec = {});

}  // namespace detcol
