#include "core/classify.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {

namespace classify_detail {

void fill_deg_in_bin(const Graph& g, std::span<const std::uint32_t> raw_bin,
                     std::vector<std::uint32_t>& deg_in_bin,
                     ExecContext exec) {
  const NodeId n = g.num_nodes();
  deg_in_bin.resize(n);  // every slot is overwritten by its shard below
  parallel_for_shards(exec, n, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      std::uint32_t d = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (raw_bin[u] == raw_bin[v]) ++d;
      }
      deg_in_bin[v] = d;
    }
  });
}

void finish(const Instance& inst, const PaletteSet& palettes,
            std::uint64_t n_orig, const PartitionParams& params,
            ClassifyScratch& scratch, ExecContext exec) {
  const Graph& g = inst.graph;
  const NodeId n = g.num_nodes();
  Classification& out = scratch.cls;
  const std::uint64_t b = out.num_bins;
  const std::vector<std::uint32_t>& raw_bin = scratch.raw_bin;

  out.bin_of.resize(n);  // every slot is written by its shard below
  out.bin_sizes.assign(b, 0);
  out.num_bad_nodes = 0;
  out.num_bad_bins = 0;
  out.reclassified = 0;
  out.bad_graph_words = 0;

  // Definition 3.1 node goodness. The expected within-bin degree share is
  // d(v)/b (we use the realized bin count b <= ell^0.1, which only loosens
  // the condition); slacks are the paper's ell powers. Every node's decision
  // is independent of every other's, so the pass shards over exec: each
  // shard writes its own bin_of slots and accumulates into its own
  // ClassifyScratch::FinishShard, folded below in shard order.
  const double deg_slack = fpow(inst.ell, params.deg_slack_exp);
  const double pal_slack = fpow(inst.ell, params.pal_slack_exp);
  scratch.finish_shards.resize(shard_count(n));
  parallel_for_shards(exec, n, [&](std::size_t s, std::size_t begin,
                                   std::size_t end) {
    ClassifyScratch::FinishShard& part = scratch.finish_shards[s];
    part.num_bad_nodes = 0;
    part.reclassified = 0;
    part.bad_graph_words = 0;
    part.bin_sizes.assign(b, 0);
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      const double d = static_cast<double>(g.degree(v));
      const double dshare = d / static_cast<double>(b);
      const double dprime = static_cast<double>(out.deg_in_bin[v]);
      bool good = std::abs(dprime - dshare) <= deg_slack;
      if (good && raw_bin[v] != b) {
        const double p =
            static_cast<double>(palettes.palette_size(inst.orig[v]));
        const double pprime = static_cast<double>(out.pal_in_bin[v]);
        if (pprime < p / static_cast<double>(b) + pal_slack) good = false;
        // Belt and braces: a "good" node must actually be recursively
        // colorable — its restricted palette must exceed its bin degree.
        // Lemma 3.2 guarantees this at the paper's asymptotic scale; at
        // laptop scale we enforce it directly (see DESIGN.md §2).
        if (good && pprime <= dprime) {
          good = false;
          ++part.reclassified;
        }
      }
      if (good) {
        out.bin_of[v] = raw_bin[v];
        ++part.bin_sizes[raw_bin[v] - 1];
      } else {
        out.bin_of[v] = 0;
        ++part.num_bad_nodes;
        part.bad_graph_words += 1 + g.degree(v);
      }
    }
  });
  for (const ClassifyScratch::FinishShard& part : scratch.finish_shards) {
    out.num_bad_nodes += part.num_bad_nodes;
    out.reclassified += part.reclassified;
    out.bad_graph_words += part.bad_graph_words;
    for (std::uint64_t i = 0; i < b; ++i) {
      out.bin_sizes[i] += part.bin_sizes[i];
    }
  }

  // Good-bin condition: fewer than bin_cap_coeff * n_G / b + n_orig^0.6.
  const double cap =
      params.bin_cap_coeff * static_cast<double>(n) / static_cast<double>(b) +
      fpow(static_cast<double>(n_orig), params.bin_cap_exp);
  for (std::uint64_t i = 0; i < b; ++i) {
    if (static_cast<double>(out.bin_sizes[i]) >= cap) ++out.num_bad_bins;
  }

  const double nw = static_cast<double>(n_orig);
  out.cost_q = static_cast<double>(out.num_bad_nodes) +
               nw * static_cast<double>(out.num_bad_bins);
  out.cost_size = static_cast<double>(out.bad_graph_words) +
                  nw * static_cast<double>(out.num_bad_bins);
}

}  // namespace classify_detail

const Classification& classify(const Instance& inst, const PaletteSet& palettes,
                               const KWiseHash& h1, const KWiseHash& h2,
                               std::uint64_t n_orig,
                               const PartitionParams& params,
                               ClassifyScratch& scratch) {
  const NodeId n = inst.graph.num_nodes();
  Classification& out = scratch.cls;
  out.num_bins = num_bins(inst.ell, params);
  const std::uint64_t b = out.num_bins;
  DC_CHECK(h1.range() == b, "h1 range mismatch");
  DC_CHECK(h2.range() == b - 1, "h2 range mismatch");

  // Raw bin assignment: h1 over *original* ids (the paper's domain [N]),
  // as one bulk pass through the active field kernel.
  scratch.raw_bin.resize(n);
  const std::vector<std::uint64_t> pts(inst.orig.begin(), inst.orig.end());
  h1.eval_bins_many(pts, scratch.raw_bin, /*offset=*/1);

  // p'(v) for color-bin nodes: palette colors h2 sends to the node's bin.
  out.pal_in_bin.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (scratch.raw_bin[v] == b) continue;  // last bin receives no colors
    std::uint64_t p = 0;
    for (const Color c : palettes.palette(inst.orig[v])) {
      if (h2(c) + 1 == scratch.raw_bin[v]) ++p;
    }
    out.pal_in_bin[v] = p;
  }

  classify_detail::fill_deg_in_bin(inst.graph, scratch.raw_bin,
                                   out.deg_in_bin);
  classify_detail::finish(inst, palettes, n_orig, params, scratch);
  return out;
}

Classification classify(const Instance& inst, const PaletteSet& palettes,
                        const KWiseHash& h1, const KWiseHash& h2,
                        std::uint64_t n_orig, const PartitionParams& params) {
  ClassifyScratch scratch;
  return classify(inst, palettes, h1, h2, n_orig, params, scratch);
}

}  // namespace detcol
