#include "core/implicit_palette.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace detcol {

std::uint32_t ImplicitPaletteStore::LocalBatch::add_hash(const KWiseHash& h2) {
  hashes_.push_back(h2);
  return static_cast<std::uint32_t>(hashes_.size() - 1);
}

void ImplicitPaletteStore::LocalBatch::push_restriction(NodeId v,
                                                        std::uint32_t hash_id,
                                                        std::uint32_t bin) {
  DC_CHECK(hash_id < hashes_.size(), "unknown hash id");
  restrictions_.push_back({v, hash_id, bin});
}

void ImplicitPaletteStore::LocalBatch::merge(LocalBatch&& child) {
  const auto base = static_cast<std::uint32_t>(hashes_.size());
  hashes_.insert(hashes_.end(),
                 std::make_move_iterator(child.hashes_.begin()),
                 std::make_move_iterator(child.hashes_.end()));
  restrictions_.reserve(restrictions_.size() + child.restrictions_.size());
  for (const Restriction& r : child.restrictions_) {
    restrictions_.push_back({r.v, r.hash_id + base, r.bin});
  }
  child.hashes_.clear();
  child.restrictions_.clear();
}

ImplicitPaletteStore::ImplicitPaletteStore(NodeId num_nodes, Color num_colors)
    : num_colors_(num_colors), chain_(num_nodes), removed_(num_nodes) {
  DC_CHECK(num_colors >= 1, "empty color space");
}

void ImplicitPaletteStore::apply(LocalBatch&& batch) {
  const auto base = static_cast<std::uint32_t>(hashes_.size());
  hashes_.insert(hashes_.end(),
                 std::make_move_iterator(batch.hashes_.begin()),
                 std::make_move_iterator(batch.hashes_.end()));
  for (const LocalBatch::Restriction& r : batch.restrictions_) {
    const std::uint32_t id = r.hash_id + base;
    DC_CHECK(id < hashes_.size(), "unknown hash id");
    DC_CHECK(r.v < chain_.size(), "restriction for unknown node");
    chain_[r.v].push_back({id, r.bin});
  }
  batch.hashes_.clear();
  batch.restrictions_.clear();
}

void ImplicitPaletteStore::remove_color(NodeId v, Color c) {
  auto& r = removed_[v];
  const auto it = std::lower_bound(r.begin(), r.end(), c);
  if (it == r.end() || *it != c) r.insert(it, c);
}

bool ImplicitPaletteStore::contains(NodeId v, Color c) const {
  if (c >= num_colors_) return false;
  if (std::binary_search(removed_[v].begin(), removed_[v].end(), c)) {
    return false;
  }
  for (const auto& step : chain_[v]) {
    if (hashes_[step.hash_id](c) + 1 != step.bin) return false;
  }
  return true;
}

std::vector<Color> ImplicitPaletteStore::materialize(NodeId v) const {
  std::vector<Color> out;
  for (Color c = 0; c < num_colors_; ++c) {
    if (contains(v, c)) out.push_back(c);
  }
  return out;
}

std::uint64_t ImplicitPaletteStore::palette_size(NodeId v) const {
  std::uint64_t s = 0;
  for (Color c = 0; c < num_colors_; ++c) {
    if (contains(v, c)) ++s;
  }
  return s;
}

std::uint64_t ImplicitPaletteStore::space_words() const {
  std::uint64_t w = chain_.size();  // chain heads
  for (const auto& h : hashes_) w += h.independence() + 1;
  for (const auto& c : chain_) w += c.size();
  for (const auto& r : removed_) w += r.size();
  return w;
}

}  // namespace detcol
