#include "core/implicit_palette.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {

ImplicitPaletteStore::ImplicitPaletteStore(NodeId num_nodes, Color num_colors)
    : num_colors_(num_colors), chain_(num_nodes), removed_(num_nodes) {
  DC_CHECK(num_colors >= 1, "empty color space");
}

std::uint32_t ImplicitPaletteStore::add_hash(const KWiseHash& h2) {
  const std::lock_guard<std::mutex> lk(hashes_mu_);
  hashes_.push_back(h2);
  const auto id = static_cast<std::uint32_t>(hashes_.size() - 1);
  num_hashes_.store(id + 1, std::memory_order_release);
  return id;
}

void ImplicitPaletteStore::push_restriction(NodeId v, std::uint32_t hash_id,
                                            std::uint32_t bin) {
  // Lock-free id validation: ids are handed out by add_hash and the count
  // only grows, so comparing against the atomic size never locks the hot
  // per-node restriction loop against concurrent registrations.
  DC_CHECK(hash_id < num_hashes_.load(std::memory_order_acquire),
           "unknown hash id");
  chain_[v].push_back({hash_id, bin});
}

void ImplicitPaletteStore::remove_color(NodeId v, Color c) {
  auto& r = removed_[v];
  const auto it = std::lower_bound(r.begin(), r.end(), c);
  if (it == r.end() || *it != c) r.insert(it, c);
}

bool ImplicitPaletteStore::contains(NodeId v, Color c) const {
  if (c >= num_colors_) return false;
  if (std::binary_search(removed_[v].begin(), removed_[v].end(), c)) {
    return false;
  }
  for (const auto& step : chain_[v]) {
    if (hashes_[step.hash_id](c) + 1 != step.bin) return false;
  }
  return true;
}

std::vector<Color> ImplicitPaletteStore::materialize(NodeId v) const {
  std::vector<Color> out;
  for (Color c = 0; c < num_colors_; ++c) {
    if (contains(v, c)) out.push_back(c);
  }
  return out;
}

std::uint64_t ImplicitPaletteStore::palette_size(NodeId v) const {
  std::uint64_t s = 0;
  for (Color c = 0; c < num_colors_; ++c) {
    if (contains(v, c)) ++s;
  }
  return s;
}

std::uint64_t ImplicitPaletteStore::space_words() const {
  std::uint64_t w = chain_.size();  // chain heads
  for (const auto& h : hashes_) w += h.independence() + 1;
  for (const auto& c : chain_) w += c.size();
  for (const auto& r : removed_) w += r.size();
  return w;
}

}  // namespace detcol
