// Parameters of ColorReduce / Partition (Algorithms 1 and 2).
//
// The paper's constants are exponents of ell: ell^0.1 bins, ell^0.6 degree
// slack, ell^0.7 palette slack, ell' = ell^0.9 - ell^0.6, bin capacity
// 2*n_G*ell^-0.1 + n^0.6, and a depth-9 recursion (Lemma 3.14). All of them
// are configurable so that benches can run ablations; defaults are the
// paper's values.
#pragma once

#include <cstdint>

#include "derand/strategies.hpp"

namespace detcol {

class PowerTableProvider;  // hashing/batch_eval.hpp

struct PartitionParams {
  // Exponents of Definition 3.1 / Algorithm 2.
  double bin_exp = 0.1;        // number of bins b = ell^bin_exp
  double deg_slack_exp = 0.6;  // degree deviation allowance ell^0.6
  double pal_slack_exp = 0.7;  // palette surplus requirement ell^0.7
  double ell_decay_exp = 0.9;  // ell' = ell^0.9 - ell^0.6

  // Good-bin capacity: fewer than bin_cap_coeff * n_G / b + n^bin_cap_exp.
  double bin_cap_coeff = 2.0;
  double bin_cap_exp = 0.6;

  /// At laptop scale ell^0.1 < 2; a partition needs at least two bins (one
  /// color bin + the colorless last bin).
  std::uint64_t min_bins = 2;

  /// Independence c of the hash families (Lemma 2.2 wants even c >= 4).
  unsigned independence = 4;

  /// Collect-and-color-locally once instance words <= collect_factor * n
  /// (the "size O(n)" branch of Algorithm 1).
  double collect_factor = 4.0;

  /// Seed acceptance: the chosen seed must give no bad bins and a bad-node
  /// subgraph G0 of at most g0_budget * n words (Corollary 3.10's O(n)).
  double g0_budget = 1.0;

  /// Hard safety bound on recursion depth (the paper proves 9 suffices at
  /// its asymptotic parameterization; practical runs stay well below this).
  unsigned max_depth = 32;

  /// Below this ell a partition is pointless (slack terms exceed degrees);
  /// such instances are collected directly.
  double min_ell = 4.0;

  /// Optional source of shared seed-evaluation power tables
  /// (hashing/batch_eval.hpp). Null = every engine builds its own (the
  /// one-shot CLI path); the serving layer points this at a per-instance
  /// cache so repeated requests on one graph skip the table builds. Must be
  /// thread-safe; never changes results.
  PowerTableProvider* tables = nullptr;

  SeedSelectConfig seed;
};

/// b = max(min_bins, floor(ell^bin_exp)).
std::uint64_t num_bins(double ell, const PartitionParams& params);

/// ell' = ell^0.9 - ell^0.6, floored at 2.
double next_ell(double ell, const PartitionParams& params);

/// Paper trajectory bounds (Lemmas 3.11-3.13), used by tests and the
/// trajectory bench: at recursion depth i with initial degree bound Delta,
///   ell_i in (Delta^{0.9^i} / 2, Delta^{0.9^i}],
///   n_i <= 3^i (n * Delta^{0.9^i - 1} + n^0.6),
///   Delta_i <= 2^i * Delta^{0.9^i}.
double lemma_311_ell_upper(double delta0, unsigned depth);
double lemma_311_ell_lower(double delta0, unsigned depth);
double lemma_312_nodes_upper(double n, double delta0, unsigned depth);
double lemma_313_degree_upper(double delta0, unsigned depth);

}  // namespace detcol
