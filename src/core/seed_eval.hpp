// Batched seed-evaluation engine for derandomized partition (Lemma 3.9).
//
// One partition() call evaluates the classification cost of up to tens of
// thousands of candidate seeds on a *fixed* (instance, palettes) pair. The
// naive path rebuilds both hash functions and re-runs a Horner polynomial
// over every node id and every palette color per candidate — O(n·Δ) field
// evaluations each. SeedEvalEngine amortizes everything that does not depend
// on the seed:
//
//  * power tables  — x^j mod 2^61-1 for every node id and every *distinct*
//    palette color, built once (BatchKWiseEval); a candidate whose seed
//    shares a prefix with the previous one (the method of conditional
//    expectations changes one chunk at a time) costs one multiply-add per
//    point per changed coefficient;
//  * distinct-color memoization — h2 is evaluated once per distinct color in
//    the union of palettes instead of once per (node, color) pair; nodes
//    whose palette is the full color universe (every node, in the uniform
//    [Δ+1] case) read their p'(v) from a per-bin color count in O(1);
//  * scratch reuse — all classification buffers live in a ClassifyScratch
//    owned by the engine and reused across evaluations.
//
// evaluate() is bit-identical to classify() with KWiseHash pairs built from
// the same seed: identical field elements, identical range mapping, and the
// goodness arithmetic runs through the same classify_detail::finish kernel.
// tests/test_seed_eval.cpp asserts full equality, and that select_seed picks
// bit-identical seeds whichever backend drives the cost function.
#pragma once

#include <cstdint>
#include <vector>

#include "core/classify.hpp"
#include "core/params.hpp"
#include "derand/seedbits.hpp"
#include "exec/exec.hpp"
#include "graph/palette.hpp"
#include "hashing/batch_eval.hpp"

namespace detcol {

class SeedEvalEngine {
 public:
  /// Precomputes power tables and the distinct-color index for `inst` /
  /// `palettes`. Both must outlive the engine and stay unmodified while it
  /// is in use (partition() holds palettes fixed for the whole seed search).
  /// Every per-node pass of evaluate() shards over `exec` with static shard
  /// boundaries; outputs are bit-identical for any thread count (see
  /// exec/exec.hpp for the contract).
  SeedEvalEngine(const Instance& inst, const PaletteSet& palettes,
                 std::uint64_t n_orig, const PartitionParams& params,
                 ExecContext exec = {});

  /// Exact classification under `seed` (layout: independence words for h1,
  /// then independence words for h2 — partition()'s seed layout). The
  /// returned reference points into engine-owned scratch and is valid until
  /// the next evaluate() call.
  const Classification& evaluate(const SeedBits& seed);

  /// Convenience for SeedCostFn: the acceptance cost of Corollary 3.10.
  double cost_size(const SeedBits& seed) { return evaluate(seed).cost_size; }

  std::uint64_t num_bins() const { return b_; }
  std::size_t num_distinct_colors() const { return colors_.size(); }

 private:
  const Instance& inst_;
  const PaletteSet& pal_;
  std::uint64_t n_orig_;
  const PartitionParams& params_;
  ExecContext exec_;
  std::uint64_t b_;
  unsigned c_;

  std::vector<Color> colors_;  // sorted union of all palettes (built first:
                               // h2_'s power table is over these points)
  BatchKWiseEval h1_;          // points: original node ids, range b
  BatchKWiseEval h2_;          // points: distinct colors, range b-1
  // Per node: true if its palette equals the full color universe (then p'
  // comes from the per-bin count); otherwise its colors as indices into
  // colors_, stored flat in pal_idx_[pal_off_[v] .. pal_off_[v+1]).
  std::vector<bool> full_palette_;
  std::vector<std::uint32_t> pal_idx_;
  std::vector<std::size_t> pal_off_;

  // Per-evaluation scratch. raw_bin / deg_in_bin are only recomputed when an
  // h1 coefficient actually moved, cbin_/colors_in_bin_ when h2 did.
  std::vector<std::uint32_t> cbin_;           // per distinct color: bin 1..b-1
  std::vector<std::uint64_t> colors_in_bin_;  // per color bin: |h2^-1(bin)|
  ClassifyScratch scratch_;
  bool primed_ = false;  // scratch holds a valid previous evaluation
};

/// Builds the two KWiseHash functions partition() derives from a seed (the
/// engine's evaluate() is bit-identical to classifying with this pair).
std::pair<KWiseHash, KWiseHash> seed_hash_pair(const SeedBits& seed,
                                               unsigned independence,
                                               std::uint64_t num_bins);

}  // namespace detcol
