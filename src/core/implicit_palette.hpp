// Implicit palette representation for (Δ+1)-coloring (Theorem 1.3 /
// Section 3.6).
//
// When all initial palettes are [Δ+1], storing them explicitly costs
// Θ(nΔ) global words. The paper instead stores, per node, (a) the chain of
// (hash, bin) restrictions applied by ancestor Partition calls — the hash
// itself is shared, O(log n) bits each — and (b) the explicit set of colors
// removed because a neighbor used them (at most one per neighbor, O(m)
// total). Palettes remain fully query-able; total space drops to O(m + n).
//
// ColorReduce can mirror its palette operations into this store
// (ColorReduceConfig::mirror_implicit) so equivalence and footprint are
// measured on real runs.
//
// Registration follows the two-tier state model (docs/ARCHITECTURE.md,
// "State ownership & determinism"): each recursion branch registers its
// hashes and restrictions into a private LocalBatch; join points merge child
// batches into the parent's in bin-index order, and the driver applies the
// root batch once at collect time. Hash ids are therefore assigned in
// recursion-tree order — a schedule-independent numbering — and the store
// needs no synchronization at all.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "hashing/kwise.hpp"

namespace detcol {

class ImplicitPaletteStore {
 public:
  /// Per-branch registry of hash registrations and palette restrictions.
  /// One recursion branch owns one batch privately (no locking); merge()
  /// composes a child batch after the parent's. merge is associative with
  /// the empty batch as identity, so the fixed bin-order fold at join
  /// points yields the same ids as the serial schedule.
  class LocalBatch {
   public:
    /// Register a hash (one per Partition call); returns its batch-local id,
    /// valid for push_restriction() on this batch.
    std::uint32_t add_hash(const KWiseHash& h2);

    /// Record that node v's palette was restricted to colors c with
    /// h2(c)+1 == bin (bin is 1-based, matching the classifier).
    void push_restriction(NodeId v, std::uint32_t hash_id, std::uint32_t bin);

    /// Append `child` after this batch, re-basing the child's hash ids.
    void merge(LocalBatch&& child);

    bool empty() const { return hashes_.empty() && restrictions_.empty(); }

   private:
    friend class ImplicitPaletteStore;

    struct Restriction {
      NodeId v;
      std::uint32_t hash_id;  // batch-local until apply()
      std::uint32_t bin;      // 1-based
    };

    std::vector<KWiseHash> hashes_;
    std::vector<Restriction> restrictions_;
  };

  /// All nodes start with palette {0, ..., num_colors-1}.
  ImplicitPaletteStore(NodeId num_nodes, Color num_colors);

  /// Install a finished batch: hashes keep their batch order (re-based onto
  /// the store's table) and each node's chain receives its restrictions in
  /// batch order — ancestors before descendants, by construction of the
  /// merge discipline. Single-threaded; called at the driver's collect
  /// point, after every branch has joined.
  void apply(LocalBatch&& batch);

  /// Record that color c was used by a neighbor of v. Safe to call
  /// concurrently for distinct nodes (each node's removed list is owned by
  /// the one recursion branch that contains the node).
  void remove_color(NodeId v, Color c);

  /// Materialize the current palette of v (O(num_colors) scan).
  std::vector<Color> materialize(NodeId v) const;

  std::uint64_t palette_size(NodeId v) const;
  bool contains(NodeId v, Color c) const;

  /// Words of storage actually used: shared hash coefficients + per-node
  /// restriction chains + per-node removed-color lists + n chain heads.
  std::uint64_t space_words() const;

  Color num_colors() const { return num_colors_; }

 private:
  struct Restriction {
    std::uint32_t hash_id;
    std::uint32_t bin;  // 1-based
  };

  Color num_colors_;
  std::vector<KWiseHash> hashes_;
  std::vector<std::vector<Restriction>> chain_;   // per node
  std::vector<std::vector<Color>> removed_;       // per node, sorted
};

}  // namespace detcol
