// Implicit palette representation for (Δ+1)-coloring (Theorem 1.3 /
// Section 3.6).
//
// When all initial palettes are [Δ+1], storing them explicitly costs
// Θ(nΔ) global words. The paper instead stores, per node, (a) the chain of
// (hash, bin) restrictions applied by ancestor Partition calls — the hash
// itself is shared, O(log n) bits each — and (b) the explicit set of colors
// removed because a neighbor used them (at most one per neighbor, O(m)
// total). Palettes remain fully query-able; total space drops to O(m + n).
//
// ColorReduce can mirror its palette operations into this store
// (ColorReduceConfig::mirror_implicit) so equivalence and footprint are
// measured on real runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "hashing/kwise.hpp"

namespace detcol {

class ImplicitPaletteStore {
 public:
  /// All nodes start with palette {0, ..., num_colors-1}.
  ImplicitPaletteStore(NodeId num_nodes, Color num_colors);

  /// Register a shared hash function (one per Partition call); returns its
  /// id. Thread-safe: concurrent ColorReduce bin recursions register their
  /// hashes under a mutex. Ids then depend on registration order (i.e. the
  /// schedule), but nothing observable does — every query resolves ids
  /// through the same table, and space_words() counts hashes, not ids.
  std::uint32_t add_hash(const KWiseHash& h2);

  /// Record that node v's palette was restricted to colors c with
  /// h2(c)+1 == bin (bin is 1-based, matching the classifier). Safe to call
  /// concurrently for distinct nodes (each node's chain is owned by the one
  /// recursion branch that contains the node).
  void push_restriction(NodeId v, std::uint32_t hash_id, std::uint32_t bin);

  /// Record that color c was used by a neighbor of v. Same per-node
  /// ownership rule as push_restriction.
  void remove_color(NodeId v, Color c);

  /// Materialize the current palette of v (O(num_colors) scan).
  std::vector<Color> materialize(NodeId v) const;

  std::uint64_t palette_size(NodeId v) const;
  bool contains(NodeId v, Color c) const;

  /// Words of storage actually used: shared hash coefficients + per-node
  /// restriction chains + per-node removed-color lists + n chain heads.
  std::uint64_t space_words() const;

  Color num_colors() const { return num_colors_; }

 private:
  struct Restriction {
    std::uint32_t hash_id;
    std::uint32_t bin;  // 1-based
  };

  Color num_colors_;
  mutable std::mutex hashes_mu_;  // guards hashes_ during concurrent runs
  std::atomic<std::uint32_t> num_hashes_{0};  // = hashes_.size(), lock-free
  std::vector<KWiseHash> hashes_;
  std::vector<std::vector<Restriction>> chain_;   // per node
  std::vector<std::vector<Color>> removed_;       // per node, sorted
};

}  // namespace detcol
