#include "core/params.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {

std::uint64_t num_bins(double ell, const PartitionParams& params) {
  DC_CHECK(ell >= 1.0, "ell must be >= 1");
  const auto b = ipow_floor(ell, params.bin_exp, params.min_bins);
  return std::max<std::uint64_t>(b, params.min_bins);
}

double next_ell(double ell, const PartitionParams& params) {
  const double v =
      fpow(ell, params.ell_decay_exp) - fpow(ell, params.deg_slack_exp);
  return std::max(2.0, v);
}

double lemma_311_ell_upper(double delta0, unsigned depth) {
  return std::pow(delta0, std::pow(0.9, depth));
}

double lemma_311_ell_lower(double delta0, unsigned depth) {
  return 0.5 * std::pow(delta0, std::pow(0.9, depth));
}

double lemma_312_nodes_upper(double n, double delta0, unsigned depth) {
  const double e = std::pow(0.9, depth) - 1.0;
  return std::pow(3.0, depth) * (n * std::pow(delta0, e) + std::pow(n, 0.6));
}

double lemma_313_degree_upper(double delta0, unsigned depth) {
  return std::pow(2.0, depth) * std::pow(delta0, std::pow(0.9, depth));
}

}  // namespace detcol
