#include "core/partition.hpp"

#include <algorithm>

#include "core/seed_eval.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/math.hpp"

namespace detcol {

PartitionResult partition(const Instance& inst, const PaletteSet& palettes,
                          std::uint64_t n_orig, const PartitionParams& params,
                          const CliqueModel* model, MpcCosts* costs,
                          std::uint64_t salt, ExecContext exec) {
  const std::uint64_t b = num_bins(inst.ell, params);
  DC_CHECK(b >= 2, "partition needs at least 2 bins");
  const unsigned c = params.independence;
  const unsigned h1_bits = KWiseHash::seed_bits(c);
  const unsigned h2_bits = KWiseHash::seed_bits(c);
  const unsigned total_bits = h1_bits + h2_bits;

  // Batched evaluator: power tables + distinct-color index built once,
  // every candidate below costs one incremental pass (bit-identical to the
  // naive classify(), see core/seed_eval.hpp).
  SeedEvalEngine engine(inst, palettes, n_orig, params, exec);

  // Acceptance: no bad bins and |G0| within the O(n) budget of Cor. 3.10.
  const double threshold =
      params.g0_budget * static_cast<double>(n_orig);
  const auto cost = [&engine](const SeedBits& s) {
    return engine.cost_size(s);
  };

  SeedSelectResult sel =
      select_seed(total_bits, cost, threshold, params.seed, salt);
  if (!sel.met_threshold) {
    DC_LOG_WARN << "partition seed search exhausted budget (best cost "
                << sel.cost << ", threshold " << threshold
                << ", n=" << inst.n() << ", ell=" << inst.ell << ")";
  }

  Classification cls = engine.evaluate(sel.seed);
  // Only h2 outlives the call: the driver restricts palettes with it.
  KWiseHash h2(sel.seed.word_range(c, c), b - 1);

  if (model != nullptr && costs != nullptr) {
    // The MCE schedule: per chunk, every machine contributes one partial
    // conditional expectation per candidate; aggregated via Lemma 2.1.
    const std::uint64_t chunks =
        ceil_div(total_bits, params.seed.chunk_bits);
    for (std::uint64_t i = 0; i < chunks; ++i) {
      model->aggregate(std::uint64_t{1} << params.seed.chunk_bits,
                       "seed-selection", *costs);
    }
    model->broadcast(ceil_div(total_bits, 64), "seed-selection", *costs);
    // Announce bins / reshuffle the instance into per-bin machine groups.
    // Each node moves its own row: 1 + deg(v) words.
    model->lenzen_route(inst.size_words(),
                        std::uint64_t{1} + inst.graph.max_degree(),
                        "partition-route", *costs);
  }

  PartitionResult out{b, std::move(cls), std::move(sel), std::move(h2),
                      next_ell(inst.ell, params)};
  return out;
}

}  // namespace detcol
