#include "core/network_color.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "derand/distributed_mce.hpp"
#include "hashing/kwise.hpp"
#include "sim/routing.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {
namespace {

/// Ship `words_per_node[v]` words from every node to its coordinator and a
/// one-word reply back; returns nothing (payloads are modeled, content is
/// assembled host-side — the *accounting* is what the network enforces).
void route_collect_and_reply(cc::Network& net,
                             const std::vector<NodeId>& members,
                             const std::vector<std::uint64_t>& words_per_node,
                             std::uint32_t coordinator) {
  std::vector<cc::Packet> up, down;
  for (const NodeId v : members) {
    for (std::uint64_t w = 0; w < words_per_node[v]; ++w) {
      up.push_back({v, coordinator, w});
    }
    down.push_back({coordinator, v, 0});
  }
  cc::route_packets(net, up);
  cc::route_packets(net, down);
}

/// One announcement round: every newly colored node tells its neighbors.
void announce_colors(cc::Network& net, const Graph& g,
                     const std::vector<NodeId>& members,
                     const Coloring& coloring) {
  bool any = false;
  for (const NodeId v : members) {
    for (const NodeId u : g.neighbors(v)) {
      net.send(v, u, coloring.color[v]);
      any = true;
    }
  }
  if (any) net.deliver();
}

}  // namespace

NetworkColorResult network_color_round(const Graph& g, const PaletteSet& pal,
                                       const PartitionParams& params,
                                       unsigned chunk_bits,
                                       std::uint64_t salt, ExecContext exec) {
  const NodeId n = g.num_nodes();
  DC_CHECK(n >= 4, "network demo needs at least 4 nodes");
  for (NodeId v = 0; v < n; ++v) {
    DC_CHECK(pal.palette_size(v) > g.degree(v),
             "p(v) > d(v) violated at node ", v);
  }
  NetworkColorResult result(n);
  cc::Network net(n);

  Instance inst;
  inst.orig.resize(n);
  std::iota(inst.orig.begin(), inst.orig.end(), NodeId{0});
  inst.graph = g;
  inst.ell = std::max(1.0, static_cast<double>(g.max_degree()));

  const std::uint64_t b = num_bins(inst.ell, params);
  const unsigned c = params.independence;
  const unsigned bits = 2 * KWiseHash::seed_bits(c);
  result.num_bins = b;

  // --- 1. Seed agreement (Section 2.4 on real messages). Each node scores
  // its own Definition 3.1 badness under the candidate seed; node 0 plays
  // the designated bin-capacity checker of Lemma 3.9's implementation note
  // (it knows the public id space, so it can count bin loads — an upper
  // bound on good-node loads, which only tightens the acceptance).
  const double deg_slack = fpow(inst.ell, params.deg_slack_exp);
  const double pal_slack = fpow(inst.ell, params.pal_slack_exp);
  const double bin_cap =
      params.bin_cap_coeff * static_cast<double>(n) / static_cast<double>(b) +
      fpow(static_cast<double>(n), params.bin_cap_exp);

  const auto node_cost = [&](std::uint32_t v, const SeedBits& s) {
    const KWiseHash h1(s.word_range(0, c), b);
    const KWiseHash h2(s.word_range(c, c), b - 1);
    const std::uint64_t my_bin = h1(v) + 1;
    std::uint64_t dprime = 0;
    for (const NodeId u : g.neighbors(static_cast<NodeId>(v))) {
      if (h1(u) + 1 == my_bin) ++dprime;
    }
    const double d = static_cast<double>(g.degree(static_cast<NodeId>(v)));
    bool good = std::abs(static_cast<double>(dprime) -
                         d / static_cast<double>(b)) <= deg_slack;
    if (good && my_bin != b) {
      std::uint64_t pprime = 0;
      for (const Color col : pal.palette(static_cast<NodeId>(v))) {
        if (h2(col) + 1 == my_bin) ++pprime;
      }
      if (static_cast<double>(pprime) <
              static_cast<double>(pal.palette_size(static_cast<NodeId>(v))) /
                      static_cast<double>(b) +
                  pal_slack ||
          pprime <= dprime) {
        good = false;
      }
    }
    double cost = good ? 0.0 : 1.0 + d;  // bad-subgraph words (Cor. 3.10)
    if (v == 0) {
      std::vector<std::uint64_t> load(b, 0);
      for (NodeId u = 0; u < n; ++u) ++load[h1(u)];
      for (const auto l : load) {
        if (static_cast<double>(l) >= bin_cap) cost += static_cast<double>(n);
      }
    }
    return cost;
  };

  const auto mce = distributed_mce(net, bits, chunk_bits, node_cost,
                                   /*samples=*/2, salt, exec);
  result.mce_rounds = mce.network_rounds;
  result.mpc.merge(mce.mpc);

  const KWiseHash h1(mce.seed.word_range(0, c), b);
  const KWiseHash h2(mce.seed.word_range(c, c), b - 1);
  result.cls = classify(inst, pal, h1, h2, n, params);

  // --- Materialize bin membership.
  std::vector<std::vector<NodeId>> bin_nodes(b);
  std::vector<NodeId> bad_nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (result.cls.bin_of[v] == 0) {
      bad_nodes.push_back(v);
    } else {
      bin_nodes[result.cls.bin_of[v] - 1].push_back(v);
    }
  }

  // Working palettes: h2-restriction for the color bins.
  PaletteSet work = pal;
  for (std::uint64_t i = 0; i + 1 < b; ++i) {
    for (const NodeId v : bin_nodes[i]) {
      work.restrict(v, [&](Color col) { return h2(col) + 1 == i + 1; });
    }
  }

  // Row words per node: itself + within-bin neighbors + current palette.
  auto row_words = [&](NodeId v) {
    return std::uint64_t{1} + result.cls.deg_in_bin[v] +
           work.palette_size(v);
  };

  auto color_group = [&](const std::vector<NodeId>& members,
                         std::uint32_t coordinator) {
    if (members.empty()) return;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> words(n, 0);
    for (const NodeId v : members) {
      words[v] = row_words(v);
      total += words[v];
    }
    DC_CHECK(total <= 16ull * n, "collected group of ", total,
             " words exceeds the O(n) machine bound");
    // Charge the measured deltas of the two phases into the cost block: the
    // group lands on one coordinator, so the collected words are its peak
    // residency.
    const std::uint64_t r0 = net.round();
    const std::uint64_t w0 = net.total_words_sent();
    route_collect_and_reply(net, members, words, coordinator);
    result.mpc.ledger.charge("bin-collect", net.round() - r0,
                             net.total_words_sent() - w0);
    result.mpc.note_resident(total, total);
    ++result.mpc.num_collects;
    // Coordinator-local greedy (local computation is free in the model).
    std::vector<NodeId> order(members);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId bb) {
      if (g.degree(a) != g.degree(bb)) return g.degree(a) > g.degree(bb);
      return a < bb;
    });
    const bool ok = greedy_color(g, work, order, result.coloring);
    DC_CHECK(ok, "coordinator greedy ran out of colors");
    const std::uint64_t r1 = net.round();
    const std::uint64_t w1 = net.total_words_sent();
    announce_colors(net, g, members, result.coloring);
    result.mpc.ledger.charge("color-announce", net.round() - r1,
                             net.total_words_sent() - w1);
  };

  // --- 2+3. Color bins 1..b-1. In the model these collects proceed in the
  // same rounds (disjoint coordinators, Lenzen-routed); the message network
  // executes them through one shared router call per group here, so the
  // measured round total is an upper bound on the parallel schedule.
  for (std::uint64_t i = 0; i + 1 < b; ++i) {
    color_group(bin_nodes[i], static_cast<std::uint32_t>(i));
  }

  // --- 4. Last bin: palettes lose the colors announced by neighbors.
  for (const NodeId v : bin_nodes[b - 1]) {
    for (const NodeId u : g.neighbors(v)) {
      if (result.coloring.is_colored(u)) {
        work.remove_color(v, result.coloring.color[u]);
      }
    }
  }
  color_group(bin_nodes[b - 1], static_cast<std::uint32_t>(b - 1));

  // --- 5. G0 (bad nodes), palettes updated the same way.
  for (const NodeId v : bad_nodes) {
    for (const NodeId u : g.neighbors(v)) {
      if (result.coloring.is_colored(u)) {
        work.remove_color(v, result.coloring.color[u]);
      }
    }
  }
  color_group(bad_nodes, static_cast<std::uint32_t>(b % n));

  result.network_rounds = net.round();
  result.words_sent = net.total_words_sent();
  return result;
}

}  // namespace detcol
