#include "core/color_reduce.hpp"

#include <algorithm>
#include <numeric>

#include "core/partition.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

/// Words needed to collect an instance onto one machine: the graph plus
/// palettes truncated to deg+1 (Theorem 1.3's trick: dropping surplus colors
/// before a local solve is always safe).
std::uint64_t collect_words(const Instance& inst, const PaletteSet& pal) {
  std::uint64_t w = inst.size_words();
  for (NodeId v = 0; v < inst.n(); ++v) {
    w += std::min<std::uint64_t>(pal.palette_size(inst.orig[v]),
                                 std::uint64_t{inst.graph.degree(v)} + 1);
  }
  return w;
}

class Driver {
 public:
  Driver(const Graph& g, const PaletteSet& palettes,
         const ColorReduceConfig& cfg)
      : g_(g), pal_(palettes), cfg_(cfg), result_(g.num_nodes()) {}

  ColorReduceResult run() {
    Instance root;
    root.orig.resize(g_.num_nodes());
    std::iota(root.orig.begin(), root.orig.end(), NodeId{0});
    root.graph = g_;
    root.ell = std::max(1.0, static_cast<double>(g_.max_degree()));
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      DC_CHECK(pal_.palette_size(v) > g_.degree(v),
               "node ", v, " has palette of size ", pal_.palette_size(v),
               " but degree ", g_.degree(v),
               " — (deg+1)-list precondition violated");
    }
    result_.explicit_palette_words = pal_.total_size();
    if (cfg_.mirror_implicit) {
      // Theorem 1.3 applies to the uniform-palette case only: every node
      // must hold exactly {0, ..., Δ}.
      const Color k = static_cast<Color>(g_.max_degree()) + 1;
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        const auto p = pal_.palette(v);
        DC_CHECK(p.size() == k,
                 "mirror_implicit requires uniform [Δ+1] palettes");
        for (Color c = 0; c < k; ++c) {
          DC_CHECK(p[c] == c,
                   "mirror_implicit requires uniform [Δ+1] palettes");
        }
      }
      result_.implicit_store =
          std::make_unique<ImplicitPaletteStore>(g_.num_nodes(), k);
    }
    result_.ledger = recurse(root, 0, cfg_.salt, result_.root);
    return std::move(result_);
  }

 private:
  CliqueSim make_sim() const {
    return CliqueSim(std::max<std::uint64_t>(1, g_.num_nodes()), cfg_.costs,
                     cfg_.route_slack, cfg_.collect_slack);
  }

  /// Collect `inst` onto one machine and greedily color it, consulting
  /// already-colored neighbors in the original graph.
  void collect_and_color(const Instance& inst, CliqueSim& sim) {
    const std::uint64_t words = collect_words(inst, pal_);
    sim.collect(words, "collect-color");
    result_.peak_collect_words =
        std::max(result_.peak_collect_words, sim.peak_collect_words());
    // Color highest-degree-first within the instance. order_scratch_ is a
    // driver-owned buffer: collects happen at every leaf of the recursion
    // and must not reallocate each time.
    order_scratch_.assign(inst.orig.begin(), inst.orig.end());
    std::sort(order_scratch_.begin(), order_scratch_.end(),
              [&](NodeId a, NodeId b) {
                const auto da = g_.degree(a), db = g_.degree(b);
                if (da != db) return da > db;
                return a < b;
              });
    const bool ok = greedy_color(g_, pal_, order_scratch_, result_.coloring);
    DC_CHECK(ok, "local greedy ran out of colors — the p(v) > d(v) "
                 "invariant was broken upstream");
    // Announce the new colors to all neighbors (one word per node).
    if (inst.n() > 0) {
      sim.lenzen_route(inst.n(), 1 + inst.graph.max_degree(),
                       "color-announce");
    }
    ++result_.num_collects;
  }

  /// Remove colors of already-colored original-graph neighbors from the
  /// palettes of `nodes` (the paper's "update color palettes" steps).
  void update_palettes(std::span<const NodeId> nodes, CliqueSim& sim) {
    std::uint64_t touched = 0;
    for (const NodeId v : nodes) {
      for (const NodeId u : g_.neighbors(v)) {
        if (result_.coloring.is_colored(u)) {
          pal_.remove_color(v, result_.coloring.color[u]);
          if (result_.implicit_store) {
            result_.implicit_store->remove_color(v,
                                                 result_.coloring.color[u]);
          }
          ++touched;
        }
      }
    }
    if (!nodes.empty()) {
      sim.lenzen_route(std::max<std::uint64_t>(1, touched),
                       1 + g_.max_degree(), "palette-update");
    }
  }

  Instance make_child(const Instance& inst,
                      std::span<const NodeId> local_nodes,
                      double ell) const {
    Instance child;
    child.graph = induced_subgraph(inst.graph, local_nodes);
    child.orig.reserve(local_nodes.size());
    for (const NodeId l : local_nodes) child.orig.push_back(inst.orig[l]);
    child.ell = ell;
    return child;
  }

  RoundLedger recurse(const Instance& inst, unsigned depth,
                      std::uint64_t salt, CallStats& stats) {
    result_.max_depth_reached = std::max(result_.max_depth_reached, depth);
    stats.depth = depth;
    stats.n = inst.n();
    stats.m = inst.graph.num_edges();
    stats.max_deg = inst.n() > 0 ? inst.graph.max_degree() : 0;
    stats.ell = inst.ell;

    CliqueSim sim = make_sim();
    if (inst.n() == 0) return sim.ledger();

    const auto& p = cfg_.part;
    const double collect_limit =
        p.collect_factor * static_cast<double>(g_.num_nodes());
    const bool small = static_cast<double>(collect_words(inst, pal_)) <=
                       collect_limit;
    if (small || depth >= p.max_depth || inst.ell < p.min_ell) {
      if (!small) {
        // Expected when ell bottoms out before the size threshold; the
        // collect-capacity check still guards the model limit.
        DC_LOG_DEBUG << "forced collect at depth " << depth << " (n="
                     << inst.n() << ", ell=" << inst.ell << ")";
      }
      stats.collected = true;
      collect_and_color(inst, sim);
      return sim.ledger();
    }

    // --- Partition (Algorithm 2) with derandomized seeds (Lemma 3.9). ---
    PartitionResult pr =
        partition(inst, pal_, g_.num_nodes(), p, &sim, salt);
    ++result_.num_partitions;
    result_.total_seed_evaluations += pr.seed.evaluations;
    stats.num_bins = pr.num_bins;
    stats.bad_nodes = pr.cls.num_bad_nodes;
    stats.bad_bins = pr.cls.num_bad_bins;
    stats.reclassified = pr.cls.reclassified;
    stats.g0_words = pr.cls.bad_graph_words;
    stats.seed_evaluations = pr.seed.evaluations;
    stats.seed_met_threshold = pr.seed.met_threshold;

    const std::uint64_t b = pr.num_bins;
    std::vector<std::vector<NodeId>> bin_local(b);  // index 0..b-1 = bins 1..b
    std::vector<NodeId> bad_local;
    for (NodeId v = 0; v < inst.n(); ++v) {
      const auto bin = pr.cls.bin_of[v];
      if (bin == 0) {
        bad_local.push_back(v);
      } else {
        bin_local[bin - 1].push_back(v);
      }
    }

    // Restrict palettes of the color bins 1..b-1 to their h2 share.
    std::uint32_t hash_id = 0;
    if (result_.implicit_store) {
      hash_id = result_.implicit_store->add_hash(pr.h2);
    }
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      for (const NodeId l : bin_local[i]) {
        const NodeId v = inst.orig[l];
        pal_.restrict(v, [&](Color c) { return pr.h2(c) + 1 == i + 1; });
        if (result_.implicit_store) {
          result_.implicit_store->push_restriction(
              v, hash_id, static_cast<std::uint32_t>(i + 1));
        }
      }
    }

    // Recurse on the color bins in parallel (disjoint palettes).
    std::vector<RoundLedger> group;
    group.reserve(b - 1);
    if (cfg_.record_stats) stats.children.reserve(b);
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      Instance child = make_child(inst, bin_local[i], pr.ell_next);
      CallStats child_stats;
      RoundLedger led =
          recurse(child, depth + 1, sub_seed(salt, i + 1), child_stats);
      group.push_back(std::move(led));
      if (cfg_.record_stats) stats.children.push_back(std::move(child_stats));
    }

    // Last bin: update palettes, then recurse. update_palettes only touches
    // the palette stores, so last.orig can be passed directly.
    Instance last = make_child(inst, bin_local[b - 1], pr.ell_next);
    update_palettes(last.orig, sim);
    CallStats last_stats;
    RoundLedger last_led =
        recurse(last, depth + 1, sub_seed(salt, b + 1), last_stats);
    if (cfg_.record_stats) stats.children.push_back(std::move(last_stats));

    // G0 (bad nodes): collect and color locally. Greedy consults colored
    // neighbors directly, so the palette update is implicit.
    if (!bad_local.empty()) {
      Instance g0 = make_child(inst, bad_local, inst.ell);
      collect_and_color(g0, sim);
    }

    RoundLedger total = sim.ledger();
    total.merge_parallel(group);
    total.merge_sequential(last_led);
    return total;
  }

  const Graph& g_;
  PaletteSet pal_;  // mutated during the run (restrictions + updates)
  ColorReduceConfig cfg_;
  ColorReduceResult result_;
  std::vector<NodeId> order_scratch_;  // collect_and_color ordering buffer
};

}  // namespace

ColorReduceResult color_reduce(const Graph& g, const PaletteSet& palettes,
                               const ColorReduceConfig& config) {
  Driver driver(g, palettes, config);
  return driver.run();
}

}  // namespace detcol
