#include "core/color_reduce.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>

#include "core/partition.hpp"
#include "exec/thread_pool.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace detcol {
namespace {

/// Words needed to collect an instance onto one machine: the graph plus
/// palettes truncated to deg+1 (Theorem 1.3's trick: dropping surplus colors
/// before a local solve is always safe). Shard-ordered reduction over the
/// instance's nodes (an integer sum, so the fold order cannot matter; small
/// instances collapse to one inline shard).
std::uint64_t collect_words(const Instance& inst, const PaletteSet& pal,
                            ExecContext exec) {
  return parallel_reduce_shards(
      exec, inst.n(), inst.size_words(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::uint64_t w = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v = static_cast<NodeId>(i);
          w += std::min<std::uint64_t>(
              pal.palette_size(inst.orig[v]),
              std::uint64_t{inst.graph.degree(v)} + 1);
        }
        return w;
      },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
}

/// Everything one recursion branch accumulates: MPC costs (ledger + peaks +
/// op counters), recursion telemetry, per-depth wall-clock, and the branch's
/// implicit-palette registrations. Branches own their RunState privately;
/// join points merge children into the parent in bin-index order, so the
/// merged values are independent of the schedule. merge_sequential is
/// associative with a default-constructed RunState as identity.
struct RunState {
  MpcCosts costs;
  unsigned max_depth = 0;
  std::uint64_t num_partitions = 0;
  std::uint64_t total_seed_evaluations = 0;
  std::vector<double> depth_seconds;  // telemetry only, never bit-compared
  ImplicitPaletteStore::LocalBatch implicit;

  void add_depth_seconds(unsigned depth, double seconds) {
    if (depth_seconds.size() <= depth) depth_seconds.resize(depth + 1, 0.0);
    depth_seconds[depth] += seconds;
  }

  /// Scalar part shared by both compositions (the ledger is what differs).
  void fold_scalars(RunState&& child) {
    max_depth = std::max(max_depth, child.max_depth);
    num_partitions += child.num_partitions;
    total_seed_evaluations += child.total_seed_evaluations;
    if (depth_seconds.size() < child.depth_seconds.size()) {
      depth_seconds.resize(child.depth_seconds.size(), 0.0);
    }
    for (std::size_t d = 0; d < child.depth_seconds.size(); ++d) {
      depth_seconds[d] += child.depth_seconds[d];
    }
    implicit.merge(std::move(child.implicit));
  }

  /// Child ran after this state's charges (model time): ledgers add.
  void merge_sequential(RunState&& child) {
    costs.merge(child.costs);
    fold_scalars(std::move(child));
  }

  /// Children ran simultaneously in the model: rounds advance by the
  /// critical path, everything else folds in bin-index order.
  void merge_group(std::vector<RunState>&& children) {
    std::vector<MpcCosts> group;
    group.reserve(children.size());
    for (RunState& c : children) group.push_back(std::move(c.costs));
    costs.merge_parallel(group);
    for (RunState& c : children) fold_scalars(std::move(c));
  }
};

// Concurrency discipline of the driver (the "why this is deterministic"):
//
// Sibling color bins G1..G_{b-1} of one Partition call run as pool tasks.
// Two branches that run concurrently are always members of distinct bins of
// some common ancestor partition, so
//   * their node sets are disjoint — every per-node slot (coloring entries,
//     palettes, implicit chains/removals, CallStats children) has exactly
//     one writer;
//   * their palettes are restricted to disjoint h2 color classes *before*
//     the group is spawned — so a color committed by a concurrent branch is
//     never present in (and never removable from) a palette this branch
//     reads, and never collides with a greedy candidate. Whether a cross-
//     branch read observes such a color therefore cannot change any output.
// Cross-branch color reads go through relaxed atomics (greedy_color,
// update_palettes) purely to make them well-defined; everything else lives
// in the branch-private RunState and merges at the fork/join boundaries in
// bin-index order (TaskGroup::fold). The driver itself is immutable during
// the recursion apart from those per-node slots: no mutexes, no atomic
// counters. Net effect: colorings, ledgers, cost blocks and stats are
// bit-identical for every thread count.
class Driver {
 public:
  Driver(const Graph& g, const PaletteSet& palettes,
         const ColorReduceConfig& cfg)
      : g_(g),
        cfg_(cfg),
        model_(std::max<std::uint64_t>(1, g.num_nodes()), cfg.costs,
               cfg.route_slack, cfg.collect_slack),
        pal_(palettes),
        result_(g.num_nodes()) {}

  ColorReduceResult run() {
    WallTimer wall;
    Instance root;
    root.orig.resize(g_.num_nodes());
    std::iota(root.orig.begin(), root.orig.end(), NodeId{0});
    root.graph = g_;
    root.ell = std::max(1.0, static_cast<double>(g_.max_degree()));
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      DC_CHECK(pal_.palette_size(v) > g_.degree(v),
               "node ", v, " has palette of size ", pal_.palette_size(v),
               " but degree ", g_.degree(v),
               " — (deg+1)-list precondition violated");
    }
    result_.explicit_palette_words = pal_.total_size();
    if (cfg_.mirror_implicit) {
      // Theorem 1.3 applies to the uniform-palette case only: every node
      // must hold exactly {0, ..., Δ}.
      const Color k = static_cast<Color>(g_.max_degree()) + 1;
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        const auto p = pal_.palette(v);
        DC_CHECK(p.size() == k,
                 "mirror_implicit requires uniform [Δ+1] palettes");
        for (Color c = 0; c < k; ++c) {
          DC_CHECK(p[c] == c,
                   "mirror_implicit requires uniform [Δ+1] palettes");
        }
      }
      result_.implicit_store =
          std::make_unique<ImplicitPaletteStore>(g_.num_nodes(), k);
    }
    TaskScratch scratch;
    RunState st = recurse(root, 0, cfg_.salt, result_.root, scratch);

    // Collect point: the merged run state becomes the result. Hash
    // registrations install into the store here, in recursion-tree order.
    if (result_.implicit_store) {
      result_.implicit_store->apply(std::move(st.implicit));
    }
    result_.ledger = st.costs.ledger;
    result_.max_depth_reached = st.max_depth;
    result_.num_partitions = st.num_partitions;
    result_.num_collects = st.costs.num_collects;
    result_.peak_collect_words = st.costs.peak_local_words;
    result_.total_seed_evaluations = st.total_seed_evaluations;
    result_.mpc = std::move(st.costs);
    result_.threads_used = cfg_.exec.num_threads();
    result_.depth_seconds = std::move(st.depth_seconds);
    result_.wall_seconds = wall.seconds();
    return std::move(result_);
  }

 private:
  /// Buffers owned by one recursion branch. Each spawned bin task gets its
  /// own; sequential child calls inherit the parent's (collects happen at
  /// every leaf and must not reallocate each time).
  struct TaskScratch {
    std::vector<NodeId> order;  // collect_and_color ordering buffer
  };

  /// Collect `inst` (already costed at `words` words) onto one machine and
  /// greedily color it, consulting already-colored neighbors in the
  /// original graph.
  void collect_and_color(const Instance& inst, std::uint64_t words,
                         RunState& st, TaskScratch& scratch) {
    model_.collect(words, "collect-color", st.costs);
    // Color highest-degree-first within the instance.
    scratch.order.assign(inst.orig.begin(), inst.orig.end());
    std::sort(scratch.order.begin(), scratch.order.end(),
              [&](NodeId a, NodeId b) {
                const auto da = g_.degree(a), db = g_.degree(b);
                if (da != db) return da > db;
                return a < b;
              });
    const bool ok = greedy_color(g_, pal_, scratch.order, result_.coloring);
    DC_CHECK(ok, "local greedy ran out of colors — the p(v) > d(v) "
                 "invariant was broken upstream");
    // Announce the new colors to all neighbors (one word per node).
    if (inst.n() > 0) {
      model_.lenzen_route(inst.n(), 1 + inst.graph.max_degree(),
                          "color-announce", st.costs);
    }
  }

  /// Remove colors of already-colored original-graph neighbors from the
  /// palettes of `nodes` (the paper's "update color palettes" steps). The
  /// routed message count is the number of removals that actually changed a
  /// palette: that count is schedule-independent (see the class comment —
  /// a concurrently-committed color is never present), so the ledger words
  /// are identical for every thread count. Implicit-store removals write
  /// per-node lists owned by this branch, so they go straight to the store.
  void update_palettes(std::span<const NodeId> nodes, RunState& st) {
    std::uint64_t touched = 0;
    for (const NodeId v : nodes) {
      for (const NodeId u : g_.neighbors(v)) {
        const Color cu = std::atomic_ref<Color>(result_.coloring.color[u])
                             .load(std::memory_order_relaxed);
        if (cu == Coloring::kUncolored) continue;
        if (pal_.remove_color(v, cu)) {
          if (result_.implicit_store) {
            result_.implicit_store->remove_color(v, cu);
          }
          ++touched;
        }
      }
    }
    if (!nodes.empty()) {
      model_.lenzen_route(std::max<std::uint64_t>(1, touched),
                          1 + g_.max_degree(), "palette-update", st.costs);
    }
  }

  Instance make_child(const Instance& inst,
                      std::span<const NodeId> local_nodes,
                      double ell) const {
    Instance child;
    child.graph = induced_subgraph(inst.graph, local_nodes);
    child.orig.reserve(local_nodes.size());
    for (const NodeId l : local_nodes) child.orig.push_back(inst.orig[l]);
    child.ell = ell;
    return child;
  }

  RunState recurse(const Instance& inst, unsigned depth, std::uint64_t salt,
                   CallStats& stats, TaskScratch& scratch) {
    // Coarse, safe point for the cooperative budget and fault-injection
    // checks: no partial state exists yet at a recursion entry, so throwing
    // here unwinds cleanly through the fork/join joins.
    cfg_.exec.check_deadline("color-reduce");
    DC_FAILPOINT("color_reduce.recurse");
    WallTimer timer;
    double own_seconds = 0.0;
    RunState st;
    st.max_depth = depth;
    stats.depth = depth;
    stats.n = inst.n();
    stats.m = inst.graph.num_edges();
    stats.max_deg = inst.n() > 0 ? inst.graph.max_degree() : 0;
    stats.ell = inst.ell;

    if (inst.n() == 0) return st;

    const auto& p = cfg_.part;
    const double collect_limit =
        p.collect_factor * static_cast<double>(g_.num_nodes());
    const std::uint64_t inst_words = collect_words(inst, pal_, cfg_.exec);
    const bool small = static_cast<double>(inst_words) <= collect_limit;
    if (small || depth >= p.max_depth || inst.ell < p.min_ell) {
      if (!small) {
        // Expected when ell bottoms out before the size threshold; the
        // collect-capacity check still guards the model limit.
        DC_LOG_DEBUG << "forced collect at depth " << depth << " (n="
                     << inst.n() << ", ell=" << inst.ell << ")";
      }
      stats.collected = true;
      collect_and_color(inst, inst_words, st, scratch);
      st.add_depth_seconds(depth, timer.seconds());
      return st;
    }

    // --- Partition (Algorithm 2) with derandomized seeds (Lemma 3.9). ---
    PartitionResult pr = partition(inst, pal_, g_.num_nodes(), p, &model_,
                                   &st.costs, salt, cfg_.exec);
    st.num_partitions += 1;
    st.total_seed_evaluations += pr.seed.evaluations;
    stats.num_bins = pr.num_bins;
    stats.bad_nodes = pr.cls.num_bad_nodes;
    stats.bad_bins = pr.cls.num_bad_bins;
    stats.reclassified = pr.cls.reclassified;
    stats.g0_words = pr.cls.bad_graph_words;
    stats.seed_evaluations = pr.seed.evaluations;
    stats.seed_met_threshold = pr.seed.met_threshold;

    const std::uint64_t b = pr.num_bins;
    std::vector<std::vector<NodeId>> bin_local(b);  // index 0..b-1 = bins 1..b
    std::vector<NodeId> bad_local;
    for (NodeId v = 0; v < inst.n(); ++v) {
      const auto bin = pr.cls.bin_of[v];
      if (bin == 0) {
        bad_local.push_back(v);
      } else {
        bin_local[bin - 1].push_back(v);
      }
    }

    // Restrict palettes of the color bins 1..b-1 to their h2 share. This
    // happens *before* the sibling group is spawned: it is what makes the
    // group's palettes pairwise disjoint, and with them every cross-branch
    // interaction harmless (class comment). The hash and its restrictions
    // register into this branch's batch — ancestors land before descendants
    // when the batch finally applies.
    std::uint32_t hash_id = 0;
    if (result_.implicit_store) {
      hash_id = st.implicit.add_hash(pr.h2);
    }
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      for (const NodeId l : bin_local[i]) {
        const NodeId v = inst.orig[l];
        pal_.restrict(v, [&](Color c) { return pr.h2(c) + 1 == i + 1; });
        if (result_.implicit_store) {
          st.implicit.push_restriction(v, hash_id,
                                       static_cast<std::uint32_t>(i + 1));
        }
      }
    }

    // Recurse on the color bins in parallel (disjoint palettes): dispatched
    // as pool tasks when an ExecContext is configured, inline otherwise.
    // TaskGroup::fold joins the branch states in bin-index order either
    // way, so both paths produce identical merged results.
    const std::uint64_t groups = b - 1;
    const bool par = cfg_.exec.parallel() && groups > 1;
    std::vector<RunState> children;
    children.reserve(groups);
    std::vector<CallStats> child_stats(groups);
    own_seconds += timer.seconds();
    TaskGroup::fold(
        par ? cfg_.exec.pool() : nullptr, groups,
        [&](std::size_t i) -> RunState {
          Instance child = make_child(inst, bin_local[i], pr.ell_next);
          if (par) {
            TaskScratch ts;
            return recurse(child, depth + 1, sub_seed(salt, i + 1),
                           child_stats[i], ts);
          }
          return recurse(child, depth + 1, sub_seed(salt, i + 1),
                         child_stats[i], scratch);
        },
        [&](std::size_t, RunState&& rs) { children.push_back(std::move(rs)); });
    st.merge_group(std::move(children));
    timer.reset();
    if (cfg_.record_stats) {
      stats.children.reserve(b);
      for (auto& cs : child_stats) stats.children.push_back(std::move(cs));
    }

    // Last bin: update palettes, then recurse. This runs strictly after the
    // group join — exactly the model's schedule, where G_b's palette update
    // sees every color the parallel phase committed. update_palettes only
    // touches the palette stores, so last.orig can be passed directly.
    Instance last = make_child(inst, bin_local[b - 1], pr.ell_next);
    update_palettes(last.orig, st);
    own_seconds += timer.seconds();
    CallStats last_stats;
    RunState last_st =
        recurse(last, depth + 1, sub_seed(salt, b + 1), last_stats, scratch);
    st.merge_sequential(std::move(last_st));
    timer.reset();
    if (cfg_.record_stats) stats.children.push_back(std::move(last_stats));

    // G0 (bad nodes): collect and color locally. Greedy consults colored
    // neighbors directly, so the palette update is implicit.
    if (!bad_local.empty()) {
      Instance g0 = make_child(inst, bad_local, inst.ell);
      collect_and_color(g0, collect_words(g0, pal_, cfg_.exec), st, scratch);
    }

    own_seconds += timer.seconds();
    st.add_depth_seconds(depth, own_seconds);
    return st;
  }

  // Immutable instance state: shared read-only across every branch.
  const Graph& g_;
  const ColorReduceConfig cfg_;
  const CliqueModel model_;

  // Per-node slots with exactly one writer per entry (see class comment).
  PaletteSet pal_;  // mutated during the run (restrictions + updates)
  ColorReduceResult result_;
};

}  // namespace

ColorReduceResult color_reduce(const Graph& g, const PaletteSet& palettes,
                               const ColorReduceConfig& config) {
  Driver driver(g, palettes, config);
  return driver.run();
}

}  // namespace detcol
