#include "core/seed_eval.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {
namespace {

/// Sorted union of all palettes of `inst`'s nodes.
std::vector<Color> color_universe(const Instance& inst,
                                  const PaletteSet& palettes) {
  std::vector<Color> colors;
  for (NodeId v = 0; v < inst.n(); ++v) {
    const auto p = palettes.palette(inst.orig[v]);
    colors.insert(colors.end(), p.begin(), p.end());
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  return colors;
}

}  // namespace

std::pair<KWiseHash, KWiseHash> seed_hash_pair(const SeedBits& seed,
                                               unsigned independence,
                                               std::uint64_t num_bins) {
  KWiseHash h1(seed.word_range(0, independence), num_bins);
  KWiseHash h2(seed.word_range(independence, independence), num_bins - 1);
  return {std::move(h1), std::move(h2)};
}

SeedEvalEngine::SeedEvalEngine(const Instance& inst, const PaletteSet& palettes,
                               std::uint64_t n_orig,
                               const PartitionParams& params, ExecContext exec)
    : inst_(inst),
      pal_(palettes),
      n_orig_(n_orig),
      params_(params),
      exec_(exec),
      b_(::detcol::num_bins(inst.ell, params)),  // the free function, not
                                                 // the member accessor
      c_(params.independence),
      colors_(color_universe(inst, palettes)),
      h1_(acquire_power_table(
              params.tables,
              std::vector<std::uint64_t>(inst.orig.begin(), inst.orig.end()),
              c_),
          b_),
      h2_(acquire_power_table(params.tables, colors_, c_), b_ - 1) {
  DC_CHECK(b_ >= 2, "partition needs at least 2 bins");

  // Per-node color-universe index. Palettes are sorted and duplicate-free
  // (PaletteSet invariant), so a palette equals the universe iff the sizes
  // match; otherwise a merge walk maps each color to its universe slot.
  const NodeId n = inst.n();
  full_palette_.assign(n, false);
  pal_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t partial_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t sz = palettes.palette_size(inst.orig[v]);
    full_palette_[v] = sz == colors_.size();
    if (!full_palette_[v]) partial_total += sz;
    pal_off_[v + 1] = partial_total;
  }
  pal_idx_.reserve(partial_total);
  for (NodeId v = 0; v < n; ++v) {
    if (full_palette_[v]) continue;
    auto it = colors_.begin();
    for (const Color c : palettes.palette(inst.orig[v])) {
      it = std::lower_bound(it, colors_.end(), c);
      DC_ASSERT(it != colors_.end() && *it == c);
      pal_idx_.push_back(static_cast<std::uint32_t>(it - colors_.begin()));
    }
  }
  cbin_.assign(colors_.size(), 0);
  colors_in_bin_.assign(b_ - 1, 0);
}

const Classification& SeedEvalEngine::evaluate(const SeedBits& seed) {
  // Incremental coefficient load. The return values make the evaluation
  // prefix-aware: when the MCE walk is fixing bits of one hash, the other
  // hash's words are untouched and everything derived from it is reused —
  // for chunks inside the h2 half of the seed that skips the d'(v) pass,
  // the most expensive part of a classification.
  const bool h1_changed = h1_.load(seed.word_range(0, c_), exec_);
  const bool h2_changed = h2_.load(seed.word_range(c_, c_), exec_);
  if (primed_ && !h1_changed && !h2_changed) return scratch_.cls;

  const NodeId n = inst_.n();
  Classification& out = scratch_.cls;
  out.num_bins = b_;

  if (h1_changed || !primed_) {
    scratch_.raw_bin.resize(n);
    h1_.bins_into(scratch_.raw_bin, /*offset=*/1, exec_);
    classify_detail::fill_deg_in_bin(inst_.graph, scratch_.raw_bin,
                                     out.deg_in_bin, exec_);
  }

  if (h2_changed || !primed_) {
    // h2 once per distinct color (range mapping shards over exec_), plus
    // per-bin color counts for the full-palette fast path (serial: one add
    // per distinct color).
    h2_.bins_into(cbin_, /*offset=*/1, exec_);  // 1..b-1
    colors_in_bin_.assign(b_ - 1, 0);
    for (std::size_t k = 0; k < cbin_.size(); ++k) {
      ++colors_in_bin_[cbin_[k] - 1];
    }
  }

  // p'(v): memoized palette share. Every slot is written by its shard (the
  // serial assign() a resize leaves behind would be the one unsharded O(n)
  // pass of the pipeline).
  out.pal_in_bin.resize(n);
  parallel_for_shards(exec_, n, [&](std::size_t, std::size_t begin,
                                    std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      const std::uint32_t bin = scratch_.raw_bin[v];
      if (bin == b_) {
        out.pal_in_bin[v] = 0;  // last bin receives no colors
        continue;
      }
      if (full_palette_[v]) {
        out.pal_in_bin[v] = colors_in_bin_[bin - 1];
        continue;
      }
      std::uint64_t p = 0;
      for (std::size_t k = pal_off_[v]; k < pal_off_[v + 1]; ++k) {
        if (cbin_[pal_idx_[k]] == bin) ++p;
      }
      out.pal_in_bin[v] = p;
    }
  });

  classify_detail::finish(inst_, pal_, n_orig_, params_, scratch_, exec_);
  primed_ = true;
  return out;
}

}  // namespace detcol
