// Algorithm 1 (ColorReduce): deterministic (Δ+1)-list coloring in O(1)
// CONGESTED CLIQUE rounds (Theorem 1.1), executed on the costed simulator.
//
// Structure of a call on instance G with degree proxy ell:
//   1. If |G| = O(n): collect onto one machine, color locally (greedy).
//   2. Else Partition(G, ell) -> G0 (bad nodes), G1..G_{b-1} (color bins),
//      G_b (last bin, no colors).
//   3. Recurse on G1..G_{b-1} in parallel (palettes restricted via h2;
//      palettes across bins are disjoint so the groups cannot conflict).
//   4. Update palettes of G_b (drop colors used by colored neighbors),
//      recurse on it.
//   5. Update palettes of G0, collect and color locally.
//
// Round accounting: parallel groups contribute the max of their ledgers,
// sequential phases add. Every produced coloring is verified against the
// original graph by the caller (verify_coloring).
//
// Host-side execution: the step-3 sibling recursions are independent in the
// model (disjoint node sets, disjoint h2-restricted palettes) and the driver
// exploits that on real cores — ColorReduceConfig::exec dispatches them as
// thread-pool tasks, and the seed search inside each partition() shards its
// per-node passes over the same pool. Colorings, ledgers and stats trees are
// bit-identical for every thread count (see README, "Parallel execution and
// determinism").
//
// State ownership follows the two-tier model (docs/ARCHITECTURE.md): the
// driver holds only immutable instance state (graph, config, a CliqueModel);
// every recursion branch accumulates its costs, counters and implicit-store
// registrations in a private run state that merges at the fork/join
// boundaries in bin-index order. No locks, no atomic counters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/classify.hpp"
#include "core/implicit_palette.hpp"
#include "core/params.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "sim/clique_sim.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_costs.hpp"

namespace detcol {

/// Per-call statistics, recorded as a tree mirroring the recursion.
struct CallStats {
  unsigned depth = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t max_deg = 0;
  double ell = 0.0;
  std::uint64_t num_bins = 0;       // 0 for collected leaves
  std::uint64_t bad_nodes = 0;
  std::uint64_t bad_bins = 0;
  std::uint64_t reclassified = 0;
  std::uint64_t g0_words = 0;
  std::uint64_t seed_evaluations = 0;
  bool seed_met_threshold = true;
  bool collected = false;           // leaf solved by collect-and-color
  std::vector<CallStats> children;  // color bins first, then last bin
};

struct ColorReduceConfig {
  PartitionParams part;
  /// Record the full CallStats tree (cheap; on by default).
  bool record_stats = true;
  /// Deterministic namespace for all seed searches.
  std::uint64_t salt = 0x0DE7C0102ULL;
  /// Congested-clique cost model.
  CliqueCosts costs{};
  double route_slack = 16.0;
  double collect_slack = 16.0;

  /// Mirror every palette operation into an ImplicitPaletteStore (Theorem
  /// 1.3's O(m+n) representation) and report its footprint. Only valid when
  /// the initial palettes are the uniform [Δ+1] of plain (Δ+1)-coloring.
  bool mirror_implicit = false;

  /// Host-side execution context. Default-constructed = sequential; built
  /// from a ThreadPool = sibling color-bin recursions and seed-evaluation
  /// shards run as pool tasks. The pool must outlive the color_reduce()
  /// call. Results are bit-identical for every thread count.
  ExecContext exec{};
};

struct ColorReduceResult {
  Coloring coloring;
  RoundLedger ledger;
  CallStats root;

  /// Merged per-branch cost accumulator: the ledger above plus residency
  /// peaks and operation counters, bit-identical for every thread count.
  MpcCosts mpc;

  unsigned max_depth_reached = 0;
  std::uint64_t num_partitions = 0;
  /// Legacy views of `mpc` (num_collects / peak_local_words), kept for
  /// existing callers and golden fingerprints.
  std::uint64_t num_collects = 0;
  std::uint64_t peak_collect_words = 0;
  std::uint64_t total_seed_evaluations = 0;

  /// Space accounting (words): initial explicit palette footprint vs the
  /// final implicit-store footprint (populated when mirror_implicit).
  std::uint64_t explicit_palette_words = 0;
  std::unique_ptr<ImplicitPaletteStore> implicit_store;

  /// Host-side execution telemetry (stats_export emits it under "timing";
  /// deliberately kept out of CallStats so stats trees stay bit-comparable
  /// across thread counts). depth_seconds[d] sums, over all recursion calls
  /// at depth d, the wall-clock each call spent in its own body — partition
  /// and seed search, palette updates, collects — excluding time inside
  /// child recursions and time blocked on their completion.
  unsigned threads_used = 1;
  double wall_seconds = 0.0;
  std::vector<double> depth_seconds;

  ColorReduceResult(NodeId n) : coloring(n) {}
};

/// Run deterministic ColorReduce on (g, palettes). Every palette must be
/// strictly larger than the node's degree (p(v) > d(v)); both the classic
/// (Δ+1)(-list) setup and (deg+1)-lists satisfy this.
ColorReduceResult color_reduce(const Graph& g, const PaletteSet& palettes,
                               const ColorReduceConfig& config = {});

}  // namespace detcol
