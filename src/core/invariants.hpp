// Checkers for the Partition invariant (Lemma 3.2 / Corollary 3.3).
//
// Corollary 3.3: every instance entering Partition satisfies, for all v,
//   (i) ell < p(v),  (ii) d(v) <= ell + ell^0.7,  (iii) d(v) < p(v).
// Lemma 3.2: good nodes then satisfy the same three conditions with
// ell' = ell^0.9 - ell^0.6, d', p'.
//
// The paper proves these at asymptotic scale; the checkers report violation
// counts so tests can assert them on large-ell synthetic instances and
// benches can report how far laptop-scale runs deviate.
#pragma once

#include <cstdint>
#include <string>

#include "core/classify.hpp"
#include "core/params.hpp"
#include "graph/palette.hpp"

namespace detcol {

struct InvariantReport {
  std::uint64_t checked = 0;
  std::uint64_t viol_ell_lt_p = 0;     // (i)  ell < p(v)
  std::uint64_t viol_deg_le_ell = 0;   // (ii) d(v) <= ell + ell^0.7
  std::uint64_t viol_deg_lt_p = 0;     // (iii) d(v) < p(v)

  bool clean() const {
    return viol_ell_lt_p == 0 && viol_deg_le_ell == 0 && viol_deg_lt_p == 0;
  }
  std::string to_string() const;
};

/// Check Corollary 3.3 on an instance about to be partitioned.
InvariantReport check_corollary_33(const Instance& inst,
                                   const PaletteSet& palettes,
                                   const PartitionParams& params);

/// Check Lemma 3.2's conclusions for the good nodes of a classification:
/// conditions (i)-(iii) with ell', d'(v), p'(v). Only color-bin nodes have a
/// p' at classification time, so (i)/(iii) are checked for bins 1..b-1 and
/// (ii) for all good nodes.
InvariantReport check_lemma_32(const Instance& inst,
                               const Classification& cls,
                               const PartitionParams& params);

}  // namespace detcol
