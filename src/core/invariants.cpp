#include "core/invariants.hpp"

#include <sstream>

#include "util/math.hpp"

namespace detcol {

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  os << "checked=" << checked << " viol(i)=" << viol_ell_lt_p
     << " viol(ii)=" << viol_deg_le_ell << " viol(iii)=" << viol_deg_lt_p;
  return os.str();
}

InvariantReport check_corollary_33(const Instance& inst,
                                   const PaletteSet& palettes,
                                   const PartitionParams& params) {
  InvariantReport r;
  const double ell = inst.ell;
  const double deg_bound = ell + fpow(ell, params.pal_slack_exp);
  for (NodeId v = 0; v < inst.n(); ++v) {
    ++r.checked;
    const double p = static_cast<double>(palettes.palette_size(inst.orig[v]));
    const double d = static_cast<double>(inst.graph.degree(v));
    if (!(ell < p)) ++r.viol_ell_lt_p;
    if (!(d <= deg_bound)) ++r.viol_deg_le_ell;
    if (!(d < p)) ++r.viol_deg_lt_p;
  }
  return r;
}

InvariantReport check_lemma_32(const Instance& inst,
                               const Classification& cls,
                               const PartitionParams& params) {
  InvariantReport r;
  const double ell_next = next_ell(inst.ell, params);
  const double deg_bound =
      ell_next + fpow(ell_next, params.pal_slack_exp);
  const std::uint64_t b = cls.num_bins;
  for (NodeId v = 0; v < inst.n(); ++v) {
    if (cls.bin_of[v] == 0) continue;  // bad nodes are exempt
    ++r.checked;
    const double dprime = static_cast<double>(cls.deg_in_bin[v]);
    if (!(dprime <= deg_bound)) ++r.viol_deg_le_ell;
    if (cls.bin_of[v] != b) {
      const double pprime = static_cast<double>(cls.pal_in_bin[v]);
      if (!(ell_next < pprime)) ++r.viol_ell_lt_p;
      if (!(dprime < pprime)) ++r.viol_deg_lt_p;
    }
  }
  return r;
}

}  // namespace detcol
