// Crash-safe durable file writes: temp file + fsync + rename.
//
// Every writer in the tree funnels through this module (a CI lint enforces
// that no raw std::ofstream write exists outside it), which yields one
// durability guarantee everywhere: at every instant, `path` is either the
// complete old content or the complete new content — never a torn or
// truncated artifact. A crash, kill, or injected ENOSPC mid-write leaves
// the previous file intact and no stray `path.tmp` behind (the temp file is
// unlinked on every failure path).
//
// Protocol: write `path + ".tmp"` with stream-state checks after the flush,
// fsync the temp file, rename() it over `path` (atomic on POSIX), then
// fsync the containing directory (best-effort) so the rename itself
// survives a power cut.
//
// Non-regular targets (/dev/null, pipes, ttys) are written directly with
// the same stream-state checking: renaming over a device node would
// replace the node itself.
//
// Failpoints (util/failpoint.hpp): "atomic.write.body", "atomic.fsync",
// "atomic.rename" — one per protocol step, for fault-injection tests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/function_ref.hpp"

namespace detcol {

/// Durably replace `path` with `bytes`. Throws CheckError (open/stream
/// failures, message names the path and errno) or std::system_error
/// (injected I/O faults); on any throw the target is untouched and the
/// temp file removed.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Stream-writer variant: `fn` renders into an in-memory stream, then the
/// bytes go through atomic_write_file. Writers keep their `(std::ostream&)`
/// shape; durability is this module's job.
void atomic_write_stream(const std::string& path,
                         FunctionRef<void(std::ostream&)> fn);

/// Buffered byte sink handed to atomic_write_chunked writers. write()
/// appends; failures surface on the enclosing atomic_write_chunked call
/// (stream-state style: the sink records the first error and every later
/// write is a no-op, so writers need no per-call checks).
class ByteSink {
 public:
  virtual void write(const void* data, std::size_t len) = 0;
  void write(std::string_view bytes) { write(bytes.data(), bytes.size()); }

 protected:
  ~ByteSink() = default;
};

/// True streaming variant for artifacts too large to render in memory
/// (multi-GB .dcg containers): `fn` writes incrementally through a ByteSink
/// that goes straight to the temp file, then the same fsync + rename
/// protocol commits it. Same failure guarantees as atomic_write_file; same
/// "atomic.write.body" / "atomic.fsync" / "atomic.rename" failpoints.
/// Non-regular targets (/dev/null, pipes) are streamed in place.
void atomic_write_chunked(const std::string& path,
                          FunctionRef<void(ByteSink&)> fn);

}  // namespace detcol
