#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace detcol {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("DETCOLOR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }
void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[detcolor " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace detcol
