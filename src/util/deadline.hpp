// Cooperative wall-clock budgets.
//
// A Deadline is a value: default-constructed it is unlimited, armed via
// after_seconds() it expires once the steady clock passes the budget. The
// drivers never preempt work — they poll expired() at coarse, safe points
// (recursion entries, phase loops) and unwind by throwing DeadlineExceeded,
// so a timed-out pipeline leaves no half-mutated shared state behind: the
// exception propagates through the same fork/join joins as any other
// failure (TaskGroup rethrows the first task error).
//
// The deadline travels on ExecContext (exec/exec.hpp) so every pipeline
// that already takes an exec token inherits timeout support for free.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace detcol {

/// Thrown by a cooperative deadline check once the budget is exhausted.
/// Distinct from CheckError: a timeout is not bad data or a broken
/// invariant — callers (the suite runner) record it as its own outcome
/// class instead of folding it into the data-error path.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Wall-clock budget as a copyable value. Default-constructed = unlimited.
class Deadline {
 public:
  constexpr Deadline() = default;

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return !armed_; }

  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace detcol
