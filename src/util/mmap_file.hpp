// Read-only memory-mapped files (the out-of-core graph substrate).
//
// MappedFile wraps one mmap(2) of a whole regular file: open O_RDONLY,
// fstat for the length, map PROT_READ/MAP_PRIVATE, close the descriptor
// immediately (the mapping survives the close), munmap in the destructor.
// The object is heap-only and shared by std::shared_ptr — every consumer
// that hands out views into the mapping (Graph, the serving layer's
// instance cache) keeps a shared_ptr alive, so the unmap can never race a
// live span. That ordering IS the eviction contract: the instance store may
// drop its reference while a request still holds one, and the pages stay
// mapped until the last holder releases.
//
// Failure model: open/fstat/mmap failures throw CheckError naming the path
// (exit-1 data errors, like any unreadable input). Truncating the file
// under an active mapping is outside the model (SIGBUS, as for every
// mmap consumer); the detcol writers never mutate a published file in
// place (util/atomic_file renames a fresh inode over the old name, which
// leaves existing mappings intact).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace detcol {

class MappedFile {
 public:
  /// Map `path` read-only in its entirety. Throws CheckError on any
  /// open/stat/map failure; an empty file maps to a null, zero-length view.
  static std::shared_ptr<MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(addr_); }
  std::size_t size() const { return size_; }
  std::string_view bytes() const { return {data(), size_}; }
  const std::string& path() const { return path_; }

  /// madvise(MADV_SEQUENTIAL / MADV_RANDOM) hint; best-effort, never fails.
  void advise_sequential() const;
  void advise_random() const;

 private:
  MappedFile(void* addr, std::size_t size, std::string path)
      : addr_(addr), size_(size), path_(std::move(path)) {}

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace detcol
