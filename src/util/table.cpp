#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace detcol {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_ratio(double got, double want) {
  if (want == 0.0) return "n/a";
  return format_double(got / want, 2) + "x";
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DC_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  DC_CHECK(!rows_.empty(), "cell() before row()");
  DC_CHECK(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(unsigned v) { return cell(std::to_string(v)); }
Table& Table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) w[i] = headers[i].size();
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      w[i] = std::max(w[i], r[i].size());
    }
  }
  return w;
}

void append_padded(std::ostringstream& os, const std::string& s,
                   std::size_t width) {
  os << s;
  for (std::size_t i = s.size(); i < width; ++i) os << ' ';
}
}  // namespace

std::string Table::str() const {
  const auto w = column_widths(headers_, rows_);
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto width : w) {
      for (std::size_t i = 0; i < width + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << ' ';
    append_padded(os, headers_[i], w[i]);
    os << " |";
  }
  os << '\n';
  rule();
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      os << ' ';
      append_padded(os, i < r.size() ? r[i] : std::string(), w[i]);
      os << " |";
    }
    os << '\n';
  }
  rule();
  return os.str();
}

std::string Table::markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < headers_.size(); ++i) os << "---|";
  os << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      os << ' ' << (i < r.size() ? r[i] : std::string()) << " |";
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(const std::string& caption) const {
  std::cout << "\n== " << caption << " ==\n" << str() << std::flush;
}

}  // namespace detcol
