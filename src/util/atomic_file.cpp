#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace detcol {
namespace {

std::string errno_text() { return std::strerror(errno); }

/// True when `path` exists and is not a regular file (device node, fifo,
/// socket, ...). Renaming over such a target would replace the node itself
/// — /dev/null would become a regular file — so those are written in place.
bool non_regular_target(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;  // absent: regular flow
  return !S_ISREG(st.st_mode);
}

void checked_stream_write(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DC_CHECK(os.good(), "cannot open ", path, " for writing: ", errno_text());
  DC_FAILPOINT("atomic.write.body");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  DC_CHECK(os.good(), "write to ", path, " failed: ", errno_text());
}

void fsync_file(const std::string& path) {
  DC_FAILPOINT("atomic.fsync");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DC_CHECK(fd >= 0, "cannot reopen ", path, " for fsync: ", errno_text());
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  errno = saved;
  DC_CHECK(rc == 0, "fsync of ", path, " failed: ", errno_text());
}

/// Best-effort: persist the rename itself. Some filesystems reject
/// directory fsync; the file content is already durable either way.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const char* name = dir.empty() ? "." : dir.c_str();
  const int fd = ::open(name, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes) {
  if (non_regular_target(path)) {
    checked_stream_write(path, bytes);
    return;
  }
  std::string tmp = path;
  tmp += ".tmp";
  try {
    checked_stream_write(tmp, bytes);
    fsync_file(tmp);
    DC_FAILPOINT("atomic.rename");
    DC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0, "rename ", tmp,
             " -> ", path, " failed: ", errno_text());
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  fsync_parent_dir(path);
}

void atomic_write_stream(const std::string& path,
                         FunctionRef<void(std::ostream&)> fn) {
  std::ostringstream os;
  fn(os);
  DC_CHECK(os.good(), "rendering output for ", path, " failed");
  atomic_write_file(path, std::move(os).str());
}

namespace {

/// fd-backed ByteSink with a fixed buffer. Records the first write error
/// instead of throwing mid-writer (the caller checks ok() after fn returns,
/// mirroring the stream-state protocol of checked_stream_write).
class FdSink final : public ByteSink {
 public:
  explicit FdSink(int fd) : fd_(fd) { buf_.reserve(kBufBytes); }

  void write(const void* data, std::size_t len) override {
    if (!ok_) return;
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const std::size_t room = kBufBytes - buf_.size();
      const std::size_t take = std::min(len, room);
      buf_.append(p, take);
      p += take;
      len -= take;
      if (buf_.size() == kBufBytes && !flush()) return;
    }
  }

  bool flush() {
    if (!ok_) return false;
    const char* p = buf_.data();
    std::size_t left = buf_.size();
    while (left > 0) {
      const ::ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok_ = false;
        saved_errno_ = errno;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    buf_.clear();
    return true;
  }

  bool ok() const { return ok_; }
  int saved_errno() const { return saved_errno_; }

 private:
  static constexpr std::size_t kBufBytes = std::size_t{1} << 20;
  int fd_;
  std::string buf_;
  bool ok_ = true;
  int saved_errno_ = 0;
};

void checked_chunked_write(const std::string& path,
                           FunctionRef<void(ByteSink&)> fn) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  DC_CHECK(fd >= 0, "cannot open ", path, " for writing: ", errno_text());
  FdSink sink(fd);
  try {
    DC_FAILPOINT("atomic.write.body");
    fn(sink);
  } catch (...) {
    ::close(fd);
    throw;
  }
  const bool flushed = sink.flush();
  const int close_rc = ::close(fd);
  if (!flushed) errno = sink.saved_errno();
  DC_CHECK(flushed, "write to ", path, " failed: ", errno_text());
  DC_CHECK(close_rc == 0, "close of ", path, " failed: ", errno_text());
}

}  // namespace

void atomic_write_chunked(const std::string& path,
                          FunctionRef<void(ByteSink&)> fn) {
  if (non_regular_target(path)) {
    checked_chunked_write(path, fn);
    return;
  }
  std::string tmp = path;
  tmp += ".tmp";
  try {
    checked_chunked_write(tmp, fn);
    fsync_file(tmp);
    DC_FAILPOINT("atomic.rename");
    DC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0, "rename ", tmp,
             " -> ", path, " failed: ", errno_text());
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  fsync_parent_dir(path);
}

}  // namespace detcol
