#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace detcol {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
        bare_.insert(arg.substr(2));
      } else {
        const std::string name = arg.substr(2, eq - 2);
        flags_[name] = arg.substr(eq + 1);
        bare_.erase(name);  // last one wins, including bare-ness
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::vector<std::string> ArgParser::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

bool ArgParser::was_bare(const std::string& name) const {
  return bare_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t ArgParser::get_uint(const std::string& name,
                                  std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback
                            : std::strtoull(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::uint64_t> ArgParser::get_uint_list(
    const std::string& name, std::vector<std::uint64_t> fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::vector<std::uint64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto token = s.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
    if (!token.empty()) {
      out.push_back(std::strtoull(token.c_str(), nullptr, 10));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  DC_CHECK(!out.empty(), "empty list flag --", name);
  return out;
}

}  // namespace detcol
