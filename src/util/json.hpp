// Minimal JSON writer + reader — enough to export run statistics and to
// reload our own reports (suite --resume) without external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace detcol {

/// Streaming JSON writer with nesting validation. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("n").value(42);
///   w.key("children").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string s = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Append `json` verbatim where a value is due. The caller vouches that
  /// it is one complete JSON value — used to re-emit elements of a resumed
  /// report byte-identically (see JsonValue::raw_begin/raw_end).
  JsonWriter& raw(std::string_view json);

  /// Finished document (validates that all scopes are closed).
  std::string str() const;

  static std::string escape(const std::string& s);

 private:
  void maybe_comma();
  enum class Scope { kObject, kArray };
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  // a key was just written
  std::string out_;
};

/// Parsed JSON value. Besides the decoded content, every value records the
/// byte span [raw_begin, raw_end) it occupied in the parsed text, so a
/// caller holding the original document can re-emit any sub-value
/// byte-identically (the suite runner's --resume does this for completed
/// cells: re-rendering would be lossy for floating-point fields).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;        // kNumber
  std::string string_value;   // kString (unescaped)
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, in order
  std::size_t raw_begin = 0;
  std::size_t raw_end = 0;

  /// Member lookup (objects only); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Recursive-descent parse of one complete JSON document (trailing
/// whitespace allowed, trailing content rejected). `what` names the source
/// in diagnostics. Throws CheckError on malformed input.
JsonValue parse_json(std::string_view text, const std::string& what);

}  // namespace detcol
