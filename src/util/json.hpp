// Minimal JSON writer — enough to export run statistics for downstream
// plotting/analysis without external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace detcol {

/// Streaming JSON writer with nesting validation. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("n").value(42);
///   w.key("children").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string s = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Finished document (validates that all scopes are closed).
  std::string str() const;

  static std::string escape(const std::string& s);

 private:
  void maybe_comma();
  enum class Scope { kObject, kArray };
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  // a key was just written
  std::string out_;
};

}  // namespace detcol
