// Small math helpers shared across the library.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace detcol {

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr unsigned ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

/// x^e for real exponent, on non-negative x. The paper's parameterization is
/// full of fractional powers (l^0.1, l^0.6, ...), all evaluated on magnitudes
/// that comfortably fit a double.
inline double fpow(double x, double e) {
  DC_CHECK(x >= 0.0, "fpow on negative base ", x);
  return std::pow(x, e);
}

/// floor(x^e) as an integer, clamped to at least `lo`.
inline std::uint64_t ipow_floor(double x, double e, std::uint64_t lo = 0) {
  const double v = fpow(x, e);
  DC_CHECK(v < static_cast<double>(std::numeric_limits<std::uint64_t>::max()),
           "ipow_floor overflow");
  const auto f = static_cast<std::uint64_t>(v);
  return f < lo ? lo : f;
}

/// Integer power a^b with overflow check (used for small exponents).
inline std::uint64_t ipow(std::uint64_t a, unsigned b) {
  std::uint64_t r = 1;
  while (b--) {
    DC_CHECK(a == 0 || r <= std::numeric_limits<std::uint64_t>::max() / (a ? a : 1),
             "ipow overflow");
    r *= a;
  }
  return r;
}

/// log2(log2(x)) guarded for tiny x; used for the Theorem 1.4 round shape.
inline double loglog2(double x) {
  if (x < 4.0) return 1.0;
  return std::log2(std::log2(x));
}

}  // namespace detcol
