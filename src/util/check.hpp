// Checked-assertion macros for detcolor.
//
// DC_CHECK(cond, msg...)  — always-on invariant check; throws detcol::CheckError.
// DC_ASSERT(cond)         — debug-only (compiled out under NDEBUG).
//
// Library code throws rather than aborts so that tests can exercise failure
// paths (model-limit violations are *meant* to be observable events: the
// simulators use DC_CHECK to enforce bandwidth and space bounds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace detcol {

/// Error thrown by DC_CHECK violations (invariant or model-limit breaches).
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
template <typename... Args>
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, Args&&... args) {
  std::ostringstream os;
  os << "DC_CHECK failed: " << expr << " at " << file << ":" << line;
  if constexpr (sizeof...(args) > 0) {
    os << " — ";
    (os << ... << args);
  }
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace detcol

#define DC_CHECK(cond, ...)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::detcol::detail::check_fail(#cond, __FILE__, __LINE__,            \
                                   ##__VA_ARGS__);                       \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define DC_ASSERT(cond) ((void)0)
#else
#define DC_ASSERT(cond) DC_CHECK(cond)
#endif
