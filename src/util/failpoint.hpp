// Deterministic named failpoints — the derandomization discipline applied
// to failures: the same spec always fails the same site on the same hit, so
// every error path in the tree is reproducible and testable.
//
// A failpoint is a named site:
//
//   DC_FAILPOINT("dcg.write.body");
//
// Unarmed, the macro costs one branch on a global bool (define
// DETCOL_DISABLE_FAILPOINTS to compile every site to literally nothing).
// Armed via
//
//   DETCOL_FAILPOINTS=name@k[:action],...        (environment)
//   detcol <cmd> --failpoints=name@k[:action],...  (flag, wins over env)
//
// the site throws on exactly its k-th execution (1-based, counted across
// the whole process). Actions:
//
//   io      std::system_error(ENOSPC)  — simulated disk-full (default)
//   oom     std::bad_alloc             — simulated allocation failure
//   check   CheckError                 — simulated invariant/data failure
//   timeout DeadlineExceeded           — simulated budget expiry
//   kill    std::_Exit(137)            — simulated SIGKILL (no unwinding,
//                                        no flushes: crash-safety tests)
//
// Site naming scheme: <layer>.<operation>[.<detail>], e.g. "dcg.write.body",
// "color_reduce.recurse", "suite.checkpoint" (docs/ARCHITECTURE.md,
// "Failure model & fault injection" lists every site).
//
// Counting is atomic, so sites inside pool tasks are safe to instrument;
// for a deterministic k-th hit under parallel recursion, arm the run with
// --threads=1 (hit order equals the sequential schedule).
#pragma once

#include <cstdint>
#include <string>

namespace detcol {

namespace failpoint_detail {

/// True iff any failpoint is armed. Read on every DC_FAILPOINT; written
/// only by arm_failpoints (before threaded work starts).
extern bool g_enabled;

/// Slow path: looks `name` up in the armed registry and fires its action
/// when this hit is the armed one. Called only when g_enabled.
void fire_if_armed(const char* name);

}  // namespace failpoint_detail

/// Replace the armed set with the parsed `spec` ("name@k[:action],...";
/// empty disarms everything). Returns false and sets *error (when non-null)
/// on a malformed spec, leaving the previous arming untouched. Not
/// thread-safe — arm before spawning workers (the CLI arms in main, tests
/// arm in their bodies).
bool arm_failpoints(const std::string& spec, std::string* error);

/// Number of times the named site has been executed since arming (0 when
/// the name is not armed). Test observability only.
std::uint64_t failpoint_hits(const std::string& name);

}  // namespace detcol

#if defined(DETCOL_DISABLE_FAILPOINTS)
#define DC_FAILPOINT(name) ((void)0)
#else
#define DC_FAILPOINT(name)                               \
  do {                                                   \
    if (::detcol::failpoint_detail::g_enabled) {         \
      ::detcol::failpoint_detail::fire_if_armed(name);   \
    }                                                    \
  } while (0)
#endif
