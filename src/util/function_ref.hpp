// Non-owning callable reference: the hot-path alternative to std::function.
//
// The seed-search inner loops (derand/strategies, derand/distributed_mce)
// invoke their cost callback tens of thousands of times per partition() call.
// std::function is the wrong tool there: constructing one may heap-allocate
// the captured state, and every copy repeats the allocation. The callbacks
// never outlive the call that receives them, so ownership buys nothing — a
// FunctionRef is two words (object pointer + trampoline) and is trivially
// copyable.
//
// Lifetime contract: a FunctionRef references the callable it was built
// from. Binding a temporary lambda is safe exactly when the FunctionRef does
// not outlive the full expression (the usual case: passing a lambda directly
// to a function parameter). To *store* a FunctionRef, bind it to a named
// callable whose lifetime encloses the use — never `SeedCostFn f = [..]{..};`
// at namespace/local scope, which dangles as soon as the statement ends.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace detcol {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::string_view — call sites pass lambdas where a FunctionRef is due.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(
              obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace detcol
