// Deterministic pseudo-random generators.
//
// Everything in detcolor that needs entropy takes an explicit 64-bit seed and
// uses these generators, so every test, bench and example is reproducible
// bit-for-bit. SplitMix64 is used for seeding/stream-splitting; xoshiro256**
// for bulk generation.
#pragma once

#include <array>
#include <cstdint>

namespace detcol {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream; ideal for
/// deriving independent sub-seeds from a master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += kGamma);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Skip `n` outputs in O(1): the state advances by a fixed increment per
  /// next(), so discard(n) then next() yields exactly the (n+1)-th output.
  constexpr void discard(std::uint64_t n) { state_ += n * kGamma; }

 private:
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  std::uint64_t state_;
};

/// Derive the i-th sub-seed of a master seed (order-independent).
constexpr std::uint64_t sub_seed(std::uint64_t master, std::uint64_t i) {
  SplitMix64 sm(master ^ (0xD1B54A32D192ED03ULL * (i + 1)));
  return sm.next();
}

/// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Unbiased via rejection; bound >= 1.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace detcol
