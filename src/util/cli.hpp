// Tiny --key=value flag parser for bench and example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace detcol {

/// Parses flags of the form --name=value (or bare --name for booleans).
/// Unknown positional arguments are collected in positional().
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of unsigned integers, e.g. --ns=1000,2000,4000.
  std::vector<std::uint64_t> get_uint_list(
      const std::string& name, std::vector<std::uint64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags that were passed (for callers that reject unknowns).
  std::vector<std::string> flag_names() const;

  /// True if the flag was passed bare (--name, no "=value"). Bare flags read
  /// as the string "true"; callers with value-requiring flags can use this
  /// to reject e.g. a bare --out instead of writing to a file named "true".
  bool was_bare(const std::string& name) const;

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> bare_;
  std::vector<std::string> positional_;
};

}  // namespace detcol
