#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace detcol {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (expecting_value_) return;  // value follows "key":
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  expecting_value_ = false;
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
           "end_object outside object");
  DC_CHECK(!expecting_value_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  expecting_value_ = false;
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
           "end_array outside array");
  out_ += ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
           "key outside object");
  DC_CHECK(!expecting_value_, "two keys in a row");
  maybe_comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(unsigned v) {
  return value(static_cast<std::uint64_t>(v));
}

JsonWriter& JsonWriter::value(double v) {
  DC_CHECK(std::isfinite(v), "JSON cannot hold non-finite numbers");
  maybe_comma();
  expecting_value_ = false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const {
  DC_CHECK(stack_.empty(), "unclosed JSON scopes");
  return out_;
}

}  // namespace detcol
