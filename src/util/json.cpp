#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace detcol {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (expecting_value_) return;  // value follows "key":
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  expecting_value_ = false;
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
           "end_object outside object");
  DC_CHECK(!expecting_value_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  expecting_value_ = false;
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
           "end_array outside array");
  out_ += ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  DC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
           "key outside object");
  DC_CHECK(!expecting_value_, "two keys in a row");
  maybe_comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(unsigned v) {
  return value(static_cast<std::uint64_t>(v));
}

JsonWriter& JsonWriter::value(double v) {
  DC_CHECK(std::isfinite(v), "JSON cannot hold non-finite numbers");
  maybe_comma();
  expecting_value_ = false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  DC_CHECK(!json.empty(), "raw JSON value must be non-empty");
  maybe_comma();
  expecting_value_ = false;
  out_.append(json.data(), json.size());
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  expecting_value_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const {
  DC_CHECK(stack_.empty(), "unclosed JSON scopes");
  return out_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON reader. Strict except where our own writer never
/// goes (no NaN/Infinity, no comments); a depth cap bounds recursion on
/// adversarial input.
class JsonParser {
 public:
  JsonParser(std::string_view text, const std::string& what)
      : text_(text), what_(what) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    DC_CHECK(at_ == text_.size(), what_, ": trailing content at byte ", at_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const {
    throw CheckError(what_ + ": " + message + " at byte " +
                     std::to_string(at_));
  }

  void skip_ws() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  char peek() const {
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(at_, lit.size()) != lit) return false;
    at_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    JsonValue v;
    v.raw_begin = at_;
    const char c = peek();
    switch (c) {
      case '{': parse_object(&v, depth); break;
      case '[': parse_array(&v, depth); break;
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string_value = parse_string();
        break;
      case 't':
      case 'f':
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) v.bool_value = true;
        else if (consume_literal("false")) v.bool_value = false;
        else fail("invalid literal");
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.kind = JsonValue::Kind::kNull;
        break;
      default:
        v.kind = JsonValue::Kind::kNumber;
        v.number = parse_number();
    }
    v.raw_end = at_;
    return v;
  }

  void parse_object(JsonValue* v, int depth) {
    v->kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v->members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++at_;
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  void parse_array(JsonValue* v, int depth) {
    v->kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return;
    }
    while (true) {
      skip_ws();
      v->items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++at_;
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++at_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++at_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  /// \uXXXX, decoded to UTF-8. Surrogate pairs are not recombined (our
  /// writer never emits them: only \u00XX control codes).
  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++at_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      at_ = start;
      fail("invalid number");
    }
    return value;
  }

  std::string_view text_;
  std::string what_;
  std::size_t at_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, const std::string& what) {
  return JsonParser(text, what).parse_document();
}

}  // namespace detcol
