// ASCII table printer used by the bench harness to emit paper-shaped tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace detcol {

/// Accumulates rows of string cells and renders an aligned ASCII table
/// (optionally GitHub-markdown formatted). Numeric convenience overloads
/// format with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::uint64_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v);
  Table& cell(unsigned v);
  Table& cell(double v, int precision = 3);

  /// Render to a string (ASCII box style).
  std::string str() const;

  /// Render as GitHub markdown.
  std::string markdown() const;

  /// Print ASCII rendering to stdout with a caption line.
  void print(const std::string& caption) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared with benches.
std::string format_double(double v, int precision);
std::string format_ratio(double got, double want);

}  // namespace detcol
