#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace detcol {

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  DC_FAILPOINT("mmap.open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DC_CHECK(fd >= 0, "cannot open ", path, " for mapping: ",
           std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    DC_CHECK(false, "cannot stat ", path, ": ", std::strerror(saved));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    DC_CHECK(false, "cannot map ", path, ": not a regular file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      DC_CHECK(false, "mmap of ", path, " (", size, " bytes) failed: ",
               std::strerror(saved));
    }
  }
  ::close(fd);  // the mapping outlives the descriptor
  return std::shared_ptr<MappedFile>(new MappedFile(addr, size, path));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

void MappedFile::advise_sequential() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_SEQUENTIAL);
}

void MappedFile::advise_random() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_RANDOM);
}

}  // namespace detcol
