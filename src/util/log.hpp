// Minimal leveled logger (stderr). Level controlled programmatically or via
// the DETCOLOR_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace detcol {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace detcol

#define DC_LOG(level)                                             \
  if (static_cast<int>(::detcol::log_level()) >=                  \
      static_cast<int>(::detcol::LogLevel::level))                \
  ::detcol::detail::LogLine(::detcol::LogLevel::level)

#define DC_LOG_INFO DC_LOG(kInfo)
#define DC_LOG_WARN DC_LOG(kWarn)
#define DC_LOG_ERROR DC_LOG(kError)
#define DC_LOG_DEBUG DC_LOG(kDebug)
