#include "util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <system_error>
#include <vector>

#include "util/check.hpp"
#include "util/deadline.hpp"

namespace detcol {

namespace failpoint_detail {

bool g_enabled = false;

namespace {

enum class Action { kIo, kOom, kCheck, kTimeout, kKill };

/// One armed entry. The hit counter is atomic (sites run inside pool
/// tasks); everything else is fixed after arming. unique_ptr because
/// std::atomic is immovable and the registry is a vector.
struct Armed {
  std::string name;
  std::uint64_t fire_at = 1;  // 1-based hit index that fires
  Action action = Action::kIo;
  std::atomic<std::uint64_t> hits{0};
};

std::vector<std::unique_ptr<Armed>>& registry() {
  static std::vector<std::unique_ptr<Armed>> r;
  return r;
}

[[noreturn]] void fire(const Armed& a) {
  switch (a.action) {
    case Action::kIo:
      throw std::system_error(
          std::make_error_code(std::errc::no_space_on_device),
          "failpoint '" + a.name + "' injected I/O failure");
    case Action::kOom:
      throw std::bad_alloc{};
    case Action::kCheck:
      throw CheckError("failpoint '" + a.name + "' injected CheckError");
    case Action::kTimeout:
      throw DeadlineExceeded("failpoint '" + a.name +
                             "' injected deadline expiry");
    case Action::kKill:
      // Simulated SIGKILL: no unwinding, no stream flushes, no atexit —
      // exactly what the crash-safety tests need to interrupt a run
      // between two durable checkpoints.
      std::_Exit(137);
  }
  std::abort();  // unreachable
}

bool parse_action(const std::string& text, Action* out) {
  if (text == "io") *out = Action::kIo;
  else if (text == "oom") *out = Action::kOom;
  else if (text == "check") *out = Action::kCheck;
  else if (text == "timeout") *out = Action::kTimeout;
  else if (text == "kill") *out = Action::kKill;
  else return false;
  return true;
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

void fire_if_armed(const char* name) {
  // A name may be armed more than once ("suite.cell@2:timeout,
  // suite.cell@4:check"): every matching entry counts this hit, then the
  // first entry whose turn it is fires.
  const Armed* to_fire = nullptr;
  for (const auto& a : registry()) {
    if (a->name != name) continue;
    const std::uint64_t hit =
        a->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit == a->fire_at && to_fire == nullptr) to_fire = a.get();
  }
  if (to_fire != nullptr) fire(*to_fire);
}

}  // namespace failpoint_detail

bool arm_failpoints(const std::string& spec, std::string* error) {
  using failpoint_detail::Action;
  using failpoint_detail::Armed;
  std::vector<std::unique_ptr<Armed>> parsed;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(at, comma - at);
    at = comma + 1;
    if (entry.empty()) continue;
    const std::size_t sep = entry.find('@');
    if (sep == std::string::npos || sep == 0) {
      return failpoint_detail::set_error(
          error, "expected NAME@K[:ACTION], got '" + entry + "'");
    }
    auto armed = std::make_unique<Armed>();
    armed->name = entry.substr(0, sep);
    std::string count = entry.substr(sep + 1);
    const std::size_t colon = count.find(':');
    if (colon != std::string::npos) {
      const std::string action = count.substr(colon + 1);
      count.resize(colon);
      if (!failpoint_detail::parse_action(action, &armed->action)) {
        return failpoint_detail::set_error(
            error, "unknown action '" + action +
                       "' (io, oom, check, timeout, kill) in '" + entry + "'");
      }
    }
    const bool digits =
        !count.empty() &&
        count.find_first_not_of("0123456789") == std::string::npos;
    char* end = nullptr;
    const unsigned long long k =
        digits ? std::strtoull(count.c_str(), &end, 10) : 0;
    if (!digits || *end != '\0' || k == 0) {
      return failpoint_detail::set_error(
          error, "hit index must be a positive integer in '" + entry + "'");
    }
    armed->fire_at = k;
    parsed.push_back(std::move(armed));
  }
  failpoint_detail::registry() = std::move(parsed);
  failpoint_detail::g_enabled = !failpoint_detail::registry().empty();
  return true;
}

std::uint64_t failpoint_hits(const std::string& name) {
  for (const auto& a : failpoint_detail::registry()) {
    if (a->name == name) return a->hits.load(std::memory_order_relaxed);
  }
  return 0;
}

}  // namespace detcol
