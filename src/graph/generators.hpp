// Deterministic graph generators for tests, examples and benches.
//
// All generators take an explicit seed; identical inputs produce identical
// graphs on every platform (fixed RNG, no platform-dependent floating-point
// paths in edge selection). Out-of-domain parameters (p outside [0,1],
// infeasible m, n below a generator's minimum) throw CheckError; none of
// them returns a silently clamped instance.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace detcol {

/// Erdős–Rényi G(n, p). O(n²) Bernoulli draws; requires p in [0, 1].
Graph gen_gnp(NodeId n, double p, std::uint64_t seed);

/// G(n, m): exactly m distinct uniform edges. Requires m <= n(n-1)/2.
Graph gen_gnm(NodeId n, std::size_t m, std::uint64_t seed);

/// Random d-regular-ish graph via the configuration model with loop/multi-
/// edge repair; every node ends with degree in [d-1, d] and max degree d.
Graph gen_random_regular(NodeId n, NodeId d, std::uint64_t seed);

/// Chung–Lu power-law graph: expected degree of node v proportional to
/// (v+1)^(-1/(beta-1)), scaled so the average degree is `avg_deg`.
Graph gen_power_law(NodeId n, double beta, double avg_deg, std::uint64_t seed);

/// rows x cols 4-neighbor grid.
Graph gen_grid(NodeId rows, NodeId cols);

/// Cycle on n nodes (n >= 3).
Graph gen_ring(NodeId n);

/// Complete graph K_n.
Graph gen_complete(NodeId n);

/// Random bipartite graph between sides of size a and b with edge prob p.
Graph gen_bipartite(NodeId a, NodeId b, double p, std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edge iff distance
/// <= radius. The classic interference-graph model (frequency assignment).
Graph gen_geometric(NodeId n, double radius, std::uint64_t seed);

/// Graph that is k-colorable by construction: nodes are split into k groups
/// and edges are sampled only across groups with probability p.
Graph gen_planted_kcolorable(NodeId n, NodeId k, double p, std::uint64_t seed);

/// Uniform random tree on n nodes (Prüfer-free random attachment).
Graph gen_random_tree(NodeId n, std::uint64_t seed);

}  // namespace detcol
