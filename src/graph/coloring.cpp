#include "graph/coloring.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace detcol {

std::size_t Coloring::num_colored() const {
  std::size_t c = 0;
  for (const auto x : color) {
    if (x != kUncolored) ++c;
  }
  return c;
}

VerifyResult verify_coloring(const Graph& g,
                             const PaletteSet& initial_palettes,
                             const Coloring& coloring) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!coloring.is_colored(v)) {
      return {false, "node " + std::to_string(v) + " is uncolored"};
    }
    if (!initial_palettes.contains(v, coloring.color[v])) {
      std::ostringstream os;
      os << "node " << v << " uses color " << coloring.color[v]
         << " outside its palette";
      return {false, os.str()};
    }
  }
  return verify_proper_partial(g, coloring);
}

VerifyResult verify_proper_partial(const Graph& g, const Coloring& coloring) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!coloring.is_colored(v)) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && coloring.is_colored(u) &&
          coloring.color[u] == coloring.color[v]) {
        std::ostringstream os;
        os << "edge (" << v << "," << u << ") is monochromatic with color "
           << coloring.color[v];
        return {false, os.str()};
      }
    }
  }
  return {true, ""};
}

bool greedy_color(const Graph& g, const PaletteSet& palettes,
                  std::span<const NodeId> order, Coloring& coloring) {
  // Neighbor colors are read (and the node's own color written) through
  // relaxed atomics: parallel ColorReduce runs collect-and-color leaves of
  // sibling color bins concurrently, so a neighbor in another bin may be
  // committing its color right now. The outcome is unaffected either way —
  // a concurrently-committed color belongs to a disjoint h2 color class, so
  // it can never collide with a candidate from this node's palette (see
  // README, "Parallel execution and determinism") — the atomics only make
  // the unordered read well-defined. On x86 they compile to plain moves.
  std::unordered_set<Color> forbidden;
  for (const NodeId v : order) {
    DC_CHECK(!coloring.is_colored(v), "greedy asked to re-color node ", v);
    forbidden.clear();
    for (const NodeId u : g.neighbors(v)) {
      const Color cu =
          std::atomic_ref<Color>(coloring.color[u])
              .load(std::memory_order_relaxed);
      if (cu != Coloring::kUncolored) forbidden.insert(cu);
    }
    bool placed = false;
    for (const Color c : palettes.palette(v)) {
      if (forbidden.find(c) == forbidden.end()) {
        std::atomic_ref<Color>(coloring.color[v])
            .store(c, std::memory_order_relaxed);
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

bool greedy_color_all(const Graph& g, const PaletteSet& palettes,
                      Coloring& coloring) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return greedy_color(g, palettes, order, coloring);
}

}  // namespace detcol
