// Coloring assignment, verification and the local greedy used whenever an
// instance is collected onto a single machine.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {

/// Partial or complete coloring of the original graph.
struct Coloring {
  static constexpr Color kUncolored = ~Color{0};

  explicit Coloring(NodeId num_nodes)
      : color(num_nodes, kUncolored) {}

  bool is_colored(NodeId v) const { return color[v] != kUncolored; }
  std::size_t num_colored() const;
  bool complete() const { return num_colored() == color.size(); }

  std::vector<Color> color;
};

/// Result of verifying a coloring.
struct VerifyResult {
  bool ok = true;
  std::string issue;  // human-readable description of the first violation
};

/// Checks that the coloring is complete, proper on `g`, and that every node's
/// color belongs to its *initial* palette. O(n + m + total palette size);
/// never throws — violations come back as {ok=false, issue}, and the issue
/// string names the first violation in node order (deterministic).
VerifyResult verify_coloring(const Graph& g, const PaletteSet& initial_palettes,
                             const Coloring& coloring);

/// Checks properness only (partial colorings allowed: uncolored nodes are
/// ignored). O(n + m); never throws, same deterministic-issue contract.
VerifyResult verify_proper_partial(const Graph& g, const Coloring& coloring);

/// Greedily colors the nodes in `order` (original ids). For each node, picks
/// the smallest palette color not used by any already-colored neighbor in
/// `g`. Returns false (and stops) if some node has no available color.
/// Deterministic in `order`; O(sum of palette sizes + m log Δ).
bool greedy_color(const Graph& g, const PaletteSet& palettes,
                  std::span<const NodeId> order, Coloring& coloring);

/// Degree-descending greedy over the whole graph; the classic centralized
/// baseline. Always succeeds when every palette is larger than the degree.
/// Ties break by node id, so the ordering — and the coloring — is
/// deterministic.
bool greedy_color_all(const Graph& g, const PaletteSet& palettes,
                      Coloring& coloring);

}  // namespace detcol
