// Text-ingestion machinery shared by every graph format, plus the native
// edge-list dialect ("n m" header, one "u v" per line, '#' comments).
//
// Parsing is a two-pass sharded scan over an in-memory buffer:
//
//   pass 1  index_lines() cuts the buffer into lines. Byte-range shards with
//           a fixed grain scan for newlines concurrently; the per-shard
//           newline positions are folded in shard-index order, so the line
//           index is bit-identical for every thread count.
//   pass 2  the per-format parser shards over the *lines*, producing one
//           edge buffer (and one optional error) per shard, again folded in
//           shard order. The resulting edge sequence — and, when several
//           lines are malformed, the error that gets reported (the earliest
//           in file order) — is independent of the thread count.
//
// This is the same determinism contract as src/exec/exec.hpp: thread count
// only decides where a shard runs, never what it produces.
//
// See docs/FORMATS.md for the accepted dialects; src/graph/formats.hpp adds
// DIMACS, METIS and the .dcg binary container on top of this machinery.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec.hpp"
#include "graph/graph.hpp"

namespace detcol {

/// Half-open byte range [begin, end) of one line in a text buffer; the
/// terminating '\n' is excluded (a trailing '\r' is not — tokenizers treat
/// it as whitespace, so CRLF files parse identically to LF files).
struct LineSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Items-per-shard for the byte-level newline scan (pass 1). Deliberately
/// much coarser than exec.hpp's kDefaultShardGrain: the per-item work is one
/// byte compare.
inline constexpr std::size_t kLineScanGrain = 1u << 16;

/// Cut `buf` into lines (deterministic parallel scan, see file comment).
/// A final line without a trailing newline is included; an empty buffer
/// yields no lines. O(bytes).
std::vector<LineSpan> index_lines(std::string_view buf, ExecContext exec = {});

/// Reads a whole file into memory (binary mode, so it doubles as the .dcg
/// loader's slurp). Throws CheckError when the file cannot be opened/read.
std::string slurp_file(const std::string& path);

/// Writes "n m" header then one "u v" edge per line (u < v, sorted).
void write_edge_list(std::ostream& os, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

/// Parses the edge-list dialect from an in-memory buffer. Strict: the first
/// line with any tokens (after '#'-comment stripping) must be the "n m"
/// header, every subsequent non-blank line exactly two numeric tokens, every
/// endpoint < n, and the edge-line count must equal m. Throws CheckError
/// naming `what` and the 1-based line number on violation; self-loops and
/// duplicate edges are rejected/collapsed by Graph::from_edges. Bit-identical
/// result and error for every thread count of `exec`.
Graph parse_edge_list(std::string_view buf, ExecContext exec = {},
                      const std::string& what = "<edge list>");

/// Stream/file wrappers over parse_edge_list (the stream variant slurps).
Graph read_edge_list(std::istream& is);
Graph read_edge_list_file(const std::string& path, ExecContext exec = {});

namespace io_detail {

/// First-in-file-order error collector for sharded parses: each shard
/// records at most one (line, message) pair; fold() keeps the smallest line
/// number, so the reported diagnostic is schedule-independent.
struct ShardError {
  bool failed = false;
  std::size_t line = 0;  // 1-based line number in the source buffer
  std::string message;

  void set(std::size_t line_no, std::string msg) {
    if (!failed || line_no < line) {
      failed = true;
      line = line_no;
      message = std::move(msg);
    }
  }
  void fold(const ShardError& other) {
    if (other.failed) set(other.line, other.message);
  }
};

/// Throws CheckError("<what>:<line>: <message>") if any shard failed.
void throw_if_failed(const std::string& what, const ShardError& err);

/// Folds a vector of per-shard errors into the earliest-in-file one and
/// throws it (the deterministic-diagnostic contract of the file comment).
void throw_first_error(const std::string& what,
                       const std::vector<ShardError>& errs);

/// Concatenates per-shard edge buffers in shard-index order (the
/// determinism contract: the result never depends on the thread count).
std::vector<Edge> fold_shards(std::vector<std::vector<Edge>> shard_edges);

/// Splits a line into whitespace-separated tokens (' ', '\t', '\r').
std::vector<std::string_view> tokenize(std::string_view line);

/// Parses a base-10 unsigned integer token; returns false on any non-digit
/// or overflow (no exceptions — shard bodies report through ShardError).
bool parse_u64(std::string_view token, std::uint64_t* out);

}  // namespace io_detail

}  // namespace detcol
