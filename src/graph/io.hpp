// Plain-text edge-list I/O (one "u v" pair per line, '#' comments) plus a
// DIMACS-ish writer, so example inputs/outputs can round-trip through files.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace detcol {

/// Writes "n m" header then one edge per line.
void write_edge_list(std::ostream& os, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

/// Reads the format produced by write_edge_list. Throws CheckError on
/// malformed input.
Graph read_edge_list(std::istream& is);
Graph read_edge_list_file(const std::string& path);

}  // namespace detcol
