#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

Graph gen_gnp(NodeId n, double p, std::uint64_t seed) {
  DC_CHECK(p >= 0.0 && p <= 1.0, "p out of [0,1]");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  if (p > 0.0) {
    // Geometric skipping over the upper-triangular pair sequence: O(m).
    const double log1mp = std::log1p(-p);
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    bool first = true;
    while (true) {
      if (p >= 1.0) {
        if (idx >= total) break;
      } else {
        const double u = rng.next_double();
        const auto skip = static_cast<std::uint64_t>(
            std::floor(std::log1p(-u) / log1mp));
        idx += first ? skip : skip + 1;
        first = false;
        if (idx >= total) break;
      }
      // Decode linear index into (u, v), u < v.
      // Find u such that idx falls into row u of the triangle.
      const double nn = static_cast<double>(n);
      double approx = nn - 0.5 -
                      std::sqrt((nn - 0.5) * (nn - 0.5) -
                                2.0 * static_cast<double>(idx));
      auto u = static_cast<std::uint64_t>(std::max(0.0, approx));
      auto row_start = [&](std::uint64_t r) {
        return r * (2 * n - r - 1) / 2;
      };
      while (u > 0 && row_start(u) > idx) --u;
      while (row_start(u + 1) <= idx) ++u;
      const std::uint64_t v = u + 1 + (idx - row_start(u));
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
      if (p >= 1.0) ++idx;
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gen_gnm(NodeId n, std::size_t m, std::uint64_t seed) {
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  DC_CHECK(m <= total, "too many edges requested");
  Xoshiro256 rng(seed);
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    chosen.emplace(std::min(u, v), std::max(u, v));
  }
  std::vector<Edge> edges(chosen.begin(), chosen.end());
  return Graph::from_edges(n, edges);
}

Graph gen_random_regular(NodeId n, NodeId d, std::uint64_t seed) {
  DC_CHECK(d < n, "degree must be < n");
  Xoshiro256 rng(seed);
  // Configuration model: d stubs per node, random perfect matching on stubs,
  // drop loops/duplicates (degrees may dip slightly below d, never above).
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId i = 0; i < d; ++i) stubs.push_back(v);
  }
  std::shuffle(stubs.begin(), stubs.end(), rng);
  std::set<std::pair<NodeId, NodeId>> chosen;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u == v) continue;
    chosen.emplace(std::min(u, v), std::max(u, v));
  }
  std::vector<Edge> edges(chosen.begin(), chosen.end());
  return Graph::from_edges(n, edges);
}

Graph gen_power_law(NodeId n, double beta, double avg_deg,
                    std::uint64_t seed) {
  DC_CHECK(beta > 2.0, "Chung-Lu needs beta > 2");
  Xoshiro256 rng(seed);
  std::vector<double> w(n);
  const double exponent = -1.0 / (beta - 1.0);
  double sum = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v + 1), exponent);
    sum += w[v];
  }
  const double scale = avg_deg * static_cast<double>(n) / sum;
  for (auto& x : w) x *= scale;
  const double total_w = avg_deg * static_cast<double>(n);
  std::vector<Edge> edges;
  // Chung-Lu sampling restricted to a weight-sorted sweep with geometric
  // skipping per row (weights are already non-increasing in v).
  for (NodeId u = 0; u < n; ++u) {
    NodeId v = u + 1;
    while (v < n) {
      const double p = std::min(1.0, w[u] * w[v] / total_w);
      if (p <= 0.0) break;
      if (p >= 1.0) {
        edges.emplace_back(u, v);
        ++v;
        continue;
      }
      const double r = rng.next_double();
      const auto skip = static_cast<std::uint64_t>(
          std::floor(std::log1p(-r) / std::log1p(-p)));
      if (skip > static_cast<std::uint64_t>(n - v)) break;
      v = static_cast<NodeId>(v + skip);
      if (v >= n) break;
      // Accept with corrected probability (weights decrease along the row,
      // so the skip based on p at position v is an upper bound).
      const double pv = std::min(1.0, w[u] * w[v] / total_w);
      if (rng.next_double() < pv / p) edges.emplace_back(u, v);
      ++v;
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gen_grid(NodeId rows, NodeId cols) {
  std::vector<Edge> edges;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph gen_ring(NodeId n) {
  DC_CHECK(n >= 3, "ring needs n >= 3");
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<NodeId>((v + 1) % n));
  }
  return Graph::from_edges(n, edges);
}

Graph gen_complete(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph gen_bipartite(NodeId a, NodeId b, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      if (rng.next_bool(p)) edges.emplace_back(u, static_cast<NodeId>(a + v));
    }
  }
  return Graph::from_edges(a + b, edges);
}

Graph gen_geometric(NodeId n, double radius, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.next_double();
    y = rng.next_double();
  }
  // Grid bucketing for O(n) expected neighborhood scans.
  const double cell = std::max(radius, 1e-9);
  const auto grid_dim = static_cast<std::size_t>(1.0 / cell) + 1;
  std::vector<std::vector<NodeId>> buckets(grid_dim * grid_dim);
  auto bucket_of = [&](double x, double y) {
    auto bx = std::min(grid_dim - 1, static_cast<std::size_t>(x / cell));
    auto by = std::min(grid_dim - 1, static_cast<std::size_t>(y / cell));
    return bx * grid_dim + by;
  };
  for (NodeId v = 0; v < n; ++v) {
    buckets[bucket_of(pts[v].first, pts[v].second)].push_back(v);
  }
  std::vector<Edge> edges;
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    const auto bx = std::min(grid_dim - 1,
                             static_cast<std::size_t>(pts[u].first / cell));
    const auto by = std::min(grid_dim - 1,
                             static_cast<std::size_t>(pts[u].second / cell));
    for (std::size_t dx = (bx == 0 ? 0 : bx - 1);
         dx <= std::min(grid_dim - 1, bx + 1); ++dx) {
      for (std::size_t dy = (by == 0 ? 0 : by - 1);
           dy <= std::min(grid_dim - 1, by + 1); ++dy) {
        for (const NodeId v : buckets[dx * grid_dim + dy]) {
          if (v <= u) continue;
          const double ddx = pts[u].first - pts[v].first;
          const double ddy = pts[u].second - pts[v].second;
          if (ddx * ddx + ddy * ddy <= r2) edges.emplace_back(u, v);
        }
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gen_planted_kcolorable(NodeId n, NodeId k, double p,
                             std::uint64_t seed) {
  DC_CHECK(k >= 2, "need at least two groups");
  Xoshiro256 rng(seed);
  std::vector<NodeId> group(n);
  for (NodeId v = 0; v < n; ++v) group[v] = static_cast<NodeId>(v % k);
  std::shuffle(group.begin(), group.end(), rng);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (group[u] != group[v] && rng.next_bool(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gen_random_tree(NodeId n, std::uint64_t seed) {
  DC_CHECK(n >= 1, "tree needs nodes");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<NodeId>(rng.next_below(v)), v);
  }
  return Graph::from_edges(n, edges);
}

}  // namespace detcol
