#include "graph/corpus.hpp"

#include <cstdlib>
#include <vector>

#include "util/check.hpp"

namespace detcol {

Graph corpus_queens(NodeId board) {
  DC_CHECK(board >= 1, "queens needs a board of at least 1x1");
  const NodeId n = board * board;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId ur = u / board, uc = u % board;
    for (NodeId v = u + 1; v < n; ++v) {
      const NodeId vr = v / board, vc = v % board;
      const bool attacks = ur == vr || uc == vc ||
                           static_cast<std::int64_t>(ur) - uc ==
                               static_cast<std::int64_t>(vr) - vc ||
                           ur + uc == vr + vc;
      if (attacks) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph corpus_mycielski(unsigned levels) {
  NodeId n = 2;
  std::vector<Edge> edges{{0, 1}};  // K_2
  for (unsigned step = 0; step < levels; ++step) {
    std::vector<Edge> next = edges;
    next.reserve(3 * edges.size() + n);
    for (const auto& [u, v] : edges) {
      next.emplace_back(static_cast<NodeId>(u + n), v);  // copy(u) - v
      next.emplace_back(u, static_cast<NodeId>(v + n));  // u - copy(v)
    }
    const NodeId apex = 2 * n;
    for (NodeId v = 0; v < n; ++v) {
      next.emplace_back(static_cast<NodeId>(v + n), apex);
    }
    edges = std::move(next);
    n = 2 * n + 1;
  }
  return Graph::from_edges(n, edges);
}

Graph corpus_karate() {
  // Zachary (1977), the standard 0-indexed 78-edge list.
  static constexpr Edge kEdges[] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33},
  };
  return Graph::from_edges(34, std::span<const Edge>(kEdges));
}

Graph corpus_threshold_blocks(NodeId ell, NodeId blocks) {
  DC_CHECK(ell >= 1 && blocks >= 1, "threshold adversary needs ell >= 1 and "
           "blocks >= 1");
  std::vector<Edge> edges;
  edges.reserve(std::size_t{ell} * ell * blocks);
  for (NodeId b = 0; b < blocks; ++b) {
    const NodeId base = b * 2 * ell;  // [base, base+ell) x [base+ell, base+2ell)
    for (NodeId u = 0; u < ell; ++u) {
      for (NodeId v = 0; v < ell; ++v) {
        edges.emplace_back(base + u, static_cast<NodeId>(base + ell + v));
      }
    }
  }
  return Graph::from_edges(blocks * 2 * ell, edges);
}

namespace {
// Zero-argument builders for the registry (the committed parameterizations).
Graph build_queens8() { return corpus_queens(8); }
Graph build_myciel7() { return corpus_mycielski(6); }
Graph build_karate() { return corpus_karate(); }
// ell = 32: b = max(2, floor(32^0.1)) = 2, so d/b = 16 against a degree
// slack of 32^0.6 ~= 8.0, and p/b + 32^0.7 ~= 16.5 + 11.3 = 27.8 against
// palettes of 33 — both margins tight, both identical at every node.
Graph build_threshold32() { return corpus_threshold_blocks(32, 48); }

constexpr CorpusGraph kCorpus[] = {
    {"queens8", "queens8.dcg", &build_queens8},
    {"myciel7", "myciel7.dcg", &build_myciel7},
    {"karate", "karate.dcg", &build_karate},
    {"threshold32", "threshold32.dcg", &build_threshold32},
};
}  // namespace

std::span<const CorpusGraph> corpus_graphs() { return kCorpus; }

}  // namespace detcol
