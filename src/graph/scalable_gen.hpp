// Sharded scalable graph generators that stream straight to a .dcg file.
//
// The classic generators in graph/generators.hpp materialize an edge list
// and hand it to Graph::from_edges — fine up to a few million edges, but
// both the edge list and the CSR must fit in RAM at once. The families
// here are built for instances near (or past) RAM: every producer is a
// *stateless hashed* sampler sharded over a static index domain, arcs are
// routed into vertex-range chunks (spilling to temp files past a byte
// budget), and the final CSR is streamed into the .dcg container chunk by
// chunk — the full adjacency array never exists in memory. Peak generator
// residency is O(n) (the degree array plus one chunk's sort buffer), not
// O(m). Pair the output with map_dcg_file (graph/formats.hpp) and the
// whole gen→color pipeline runs out-of-core.
//
// Determinism contract (same spirit as exec/exec.hpp): every random
// decision is a pure function of (seed, index) — hashed with SplitMix64
// sub-streams, never an RNG threaded across items — and chunk boundaries
// depend only on n. Sorting each chunk canonicalizes producer emission
// order, so the output file is byte-identical for every thread count and
// every spill budget. Golden FNV fingerprints in tests/test_scalable_gen.cpp
// pin this contract per family.
//
// Families (CLI names in parentheses):
//   kBarabasiAlbert (ba)  — preferential attachment, d arcs per node, via
//                           the hashed Batagelj–Brandes recursion: the
//                           attachment target of edge e re-derives the
//                           random slot chain instead of reading the M
//                           array, so no shared state. Self-loops dropped,
//                           multi-edges collapse, so m <= n*d.
//   kGeometric (rgg)      — random geometric graph on hashed unit-square
//                           points, grid-bucketed 3x3 cell scan. Exact
//                           same model as gen_geometric, scalable path.
//   kGnm (sgnm)           — m hashed uniform pair draws; self-loops
//                           dropped and duplicates collapse, so the edge
//                           count is *approximately* m (the classic
//                           fixed-m sampler needs global dedup state).
//   kGnp (sgnp)           — per-row geometric skipping over the upper
//                           triangle, one hashed RNG stream per row.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "exec/exec.hpp"
#include "graph/graph.hpp"

namespace detcol {

enum class ScalableFamily {
  kBarabasiAlbert,  // "ba"
  kGeometric,       // "rgg"
  kGnm,             // "sgnm"
  kGnp,             // "sgnp"
};

/// Canonical CLI name ("ba", "rgg", "sgnm", "sgnp").
const char* scalable_family_name(ScalableFamily family);

/// Inverse of scalable_family_name. Returns false on an unknown name.
bool parse_scalable_family(std::string_view name, ScalableFamily* out);

/// One generation request. Only the parameters of `family` are read:
/// ba uses {n, d, seed}; rgg uses {n, radius, seed}; sgnm uses {n, m, seed};
/// sgnp uses {n, p, seed}. Out-of-domain parameters throw CheckError.
struct ScalableGenSpec {
  ScalableFamily family = ScalableFamily::kBarabasiAlbert;
  NodeId n = 0;
  NodeId d = 0;            // ba: arcs added per node (>= 1)
  double radius = 0.0;     // rgg: connection radius in (0, 1]
  std::uint64_t m = 0;     // sgnm: number of hashed pair draws
  double p = 0.0;          // sgnp: edge probability in [0, 1]
  std::uint64_t seed = 0;
};

struct ScalableGenOptions {
  /// Watermark for in-memory arc/adjacency staging. Past it, chunk buffers
  /// spill to temp files next to the output (removed on completion and on
  /// error). Advisory, not a hard cap: parallel chunk finalization may
  /// transiently exceed it by one wave of sort buffers. The default keeps
  /// everything in RAM for test-scale graphs; tests force tiny budgets to
  /// exercise the spill path and prove it changes nothing (byte-identical
  /// output).
  std::size_t budget_bytes = std::size_t{1} << 30;
};

struct ScalableGenResult {
  NodeId n = 0;
  std::uint64_t num_edges = 0;  // undirected, after dedup
  NodeId max_degree = 0;
};

/// Generate `spec` and stream it to `out_path` as a .dcg container (the
/// write is crash-atomic: temp file + fsync + rename, like every durable
/// write in the tree). The emitted bytes are exactly what dcg_bytes() of
/// the same graph would produce — canonical encoding, valid FNV trailer —
/// so parse_dcg and map_dcg_file both accept the file and fingerprints are
/// comparable across paths. Deterministic for every thread count of `exec`
/// and every budget. Throws CheckError on bad parameters or I/O failure.
ScalableGenResult generate_scalable_dcg(const ScalableGenSpec& spec,
                                        const std::string& out_path,
                                        ExecContext exec = {},
                                        const ScalableGenOptions& options = {});

}  // namespace detcol
