// Immutable CSR graph, the substrate every algorithm in detcolor runs on.
//
// Storage comes in two flavors behind one accessor surface:
//
//  * owned  — offsets/adjacency live in this object's vectors (from_edges,
//             from_csr). Fully validated at construction.
//  * mapped — the arrays are views straight into a memory-mapped .dcg file
//             (from_mapped_csr, built by map_dcg_file in graph/formats.hpp).
//             The header and the whole offsets array are validated eagerly
//             at map time; adjacency blocks are validated lazily, the first
//             time any vertex of the block is touched, so opening a graph
//             larger than RAM costs O(n) — not O(m) — page-ins. A Graph
//             copy shares the mapping (shared_ptr), and the file stays
//             mapped until the last copy dies — that ordering is what makes
//             cache eviction under live handles safe in the serving layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace detcol {

using NodeId = std::uint32_t;
using Color = std::uint64_t;
using Edge = std::pair<NodeId, NodeId>;

class MappedFile;  // util/mmap_file.hpp

/// Shared backing store of a mapped Graph: the mmap itself plus the lazy
/// adjacency-validation state. Heap-only, shared by every Graph copy.
///
/// Lazy validation contract: validate_block(v) checks the structural CSR
/// invariants (neighbors strictly increasing, in range, no self-loop) for
/// the fixed-size vertex block containing v, exactly the checks
/// Graph::from_csr applies eagerly — except symmetry, which needs O(m log Δ)
/// cross-block probes and is deliberately NOT re-verified on the mapped
/// path (the .dcg writers only emit symmetric CSR; `detcol convert` through
/// the eager parser re-checks it). The per-block "done" bits are atomics:
/// two threads may validate one block concurrently (idempotent reads of
/// immutable pages), and the release/acquire pair orders the check before
/// any use that skips it. A corrupt block throws CheckError naming the file
/// — a clean exit-1 data error, not a crash — no matter how late in a run
/// the first touch happens.
class MappedCsr {
 public:
  /// `offsets` / `adj` must point into `file`'s mapping; the offsets array
  /// (n+1 entries) must already be validated by the caller.
  MappedCsr(std::shared_ptr<const MappedFile> file,
            const std::uint64_t* offsets, const NodeId* adj, NodeId n);

  MappedCsr(const MappedCsr&) = delete;
  MappedCsr& operator=(const MappedCsr&) = delete;

  void validate_block(NodeId v) const;

  /// The raw bytes of the whole mapped .dcg file — byte-identical to
  /// dcg_bytes() of the same graph (the encoding is canonical), which gives
  /// the serving layer a zero-serialization content checksum.
  std::string_view file_bytes() const;
  const std::string& path() const;

  /// Vertices per lazy-validation block (one atomic bit each).
  static constexpr NodeId kBlockVertices = 4096;

 private:
  std::shared_ptr<const MappedFile> file_;
  const std::uint64_t* offsets_;
  const NodeId* adj_;
  NodeId n_;
  /// Bit b of checked_[b / 32] is set once block b has passed validation.
  mutable std::vector<std::atomic<std::uint32_t>> checked_;
};

/// Simple undirected graph in compressed-sparse-row form. No self-loops, no
/// parallel edges (the builders deduplicate and reject loops).
class Graph {
 public:
  Graph() = default;
  // Copies rebind the accessor pointers at the copied (or shared) storage;
  // the defaults would leave them dangling at the source's vectors.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  /// Build from an undirected edge list; edges are deduplicated, order-
  /// normalized and sorted. Self-loops are rejected (DC_CHECK).
  /// O(m log m) in the edge count; deterministic for a given input list.
  static Graph from_edges(NodeId num_nodes, std::span<const Edge> edges);
  static Graph from_edges(NodeId num_nodes, const std::vector<Edge>& edges) {
    return from_edges(num_nodes, std::span<const Edge>(edges));
  }

  /// Adopt prebuilt CSR arrays directly (the `.dcg` binary-format fast path:
  /// no edge-list rebuild or re-sort). `offsets` has n+1 monotone entries
  /// with offsets[0] == 0 and offsets[n] == adj.size(); every adjacency list
  /// must be strictly increasing (sorted, no duplicates, no self-loop) and
  /// symmetric (u in adj(v) iff v in adj(u)). All of this is DC_CHECKed —
  /// O(n + m log Δ) validation — so a malformed file cannot produce a graph
  /// that violates the class invariants.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<NodeId> adj);

  /// Adopt a mapped .dcg CSR (see MappedCsr for the validation split).
  /// `max_degree` comes from the caller's eager offsets pass.
  static Graph from_mapped_csr(std::shared_ptr<const MappedCsr> mapped,
                               NodeId n, std::size_t num_arcs,
                               NodeId max_degree);

  NodeId num_nodes() const { return n_; }
  /// Number of undirected edges.
  std::size_t num_edges() const { return num_arcs_ / 2; }

  /// Sorted (strictly increasing) adjacency of v. O(1) for owned storage;
  /// a mapped graph's first touch of a vertex block pays that block's lazy
  /// validation. The span stays valid for the lifetime of the graph (and,
  /// for mapped graphs, of every copy sharing the mapping).
  std::span<const NodeId> neighbors(NodeId v) const {
    if (mapped_) mapped_->validate_block(v);
    return {adj_p_ + offsets_p_[v], adj_p_ + offsets_p_[v + 1]};
  }

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_p_[v + 1] - offsets_p_[v]);
  }

  /// Cached at construction (the graph is immutable): hot paths consult the
  /// degree bound per call and must not pay an O(n) scan each time.
  NodeId max_degree() const { return max_degree_; }

  /// O(log deg(u)) binary search over u's sorted adjacency.
  bool has_edge(NodeId u, NodeId v) const;

  /// Words of memory needed to describe the graph (the paper's notion of
  /// instance "size": nodes + directed adjacency entries).
  std::size_t size_words() const { return num_nodes() + num_arcs_; }

  /// Enumerate undirected edges as (u, v) with u < v, sorted
  /// lexicographically. O(n + m); allocates the returned vector.
  std::vector<Edge> edge_list() const;

  /// True when the graph is a view over a mapped .dcg file.
  bool is_mapped() const { return mapped_ != nullptr; }
  /// The mapped file's raw bytes; empty for owned graphs.
  std::string_view mapped_bytes() const {
    return mapped_ ? mapped_->file_bytes() : std::string_view{};
  }

 private:
  /// Point the accessor pointers at this object's own vectors.
  void rebind_owned();

  // Owned storage (empty when mapped_ is set).
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adj_;           // both directions
  // Mapped storage (shared across copies; null when owned).
  std::shared_ptr<const MappedCsr> mapped_;
  // Accessor pointers into whichever storage is active. static_asserts in
  // graph.cpp pin the std::size_t / on-disk u64 layout equivalence the
  // mapped rebind relies on.
  const std::size_t* offsets_p_ = nullptr;
  const NodeId* adj_p_ = nullptr;
  NodeId n_ = 0;
  std::size_t num_arcs_ = 0;
  NodeId max_degree_ = 0;  // max over degree(v); 0 when empty
};

/// Induced subgraph on `nodes` (original node ids, need not be sorted).
/// Local node i corresponds to nodes[i]; returns the local graph. The
/// original ids are exactly `nodes` (caller keeps the mapping). O(n + m_sub);
/// duplicate entries in `nodes` are rejected (DC_CHECK).
Graph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace detcol
