// Immutable CSR graph, the substrate every algorithm in detcolor runs on.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace detcol {

using NodeId = std::uint32_t;
using Color = std::uint64_t;
using Edge = std::pair<NodeId, NodeId>;

/// Simple undirected graph in compressed-sparse-row form. No self-loops, no
/// parallel edges (the builder deduplicates and rejects loops).
class Graph {
 public:
  Graph() = default;

  /// Build from an undirected edge list; edges are deduplicated, order-
  /// normalized and sorted. Self-loops are rejected (DC_CHECK).
  /// O(m log m) in the edge count; deterministic for a given input list.
  static Graph from_edges(NodeId num_nodes, std::span<const Edge> edges);
  static Graph from_edges(NodeId num_nodes, const std::vector<Edge>& edges) {
    return from_edges(num_nodes, std::span<const Edge>(edges));
  }

  /// Adopt prebuilt CSR arrays directly (the `.dcg` binary-format fast path:
  /// no edge-list rebuild or re-sort). `offsets` has n+1 monotone entries
  /// with offsets[0] == 0 and offsets[n] == adj.size(); every adjacency list
  /// must be strictly increasing (sorted, no duplicates, no self-loop) and
  /// symmetric (u in adj(v) iff v in adj(u)). All of this is DC_CHECKed —
  /// O(n + m log Δ) validation — so a malformed file cannot produce a graph
  /// that violates the class invariants.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<NodeId> adj);

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  /// Number of undirected edges.
  std::size_t num_edges() const { return adj_.size() / 2; }

  /// Sorted (strictly increasing) adjacency of v. O(1); the span stays valid
  /// for the lifetime of the graph (immutable storage).
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Cached at construction (the graph is immutable): hot paths consult the
  /// degree bound per call and must not pay an O(n) scan each time.
  NodeId max_degree() const { return max_degree_; }

  /// O(log deg(u)) binary search over u's sorted adjacency.
  bool has_edge(NodeId u, NodeId v) const;

  /// Words of memory needed to describe the graph (the paper's notion of
  /// instance "size": nodes + directed adjacency entries).
  std::size_t size_words() const { return num_nodes() + adj_.size(); }

  /// Enumerate undirected edges as (u, v) with u < v, sorted
  /// lexicographically. O(n + m); allocates the returned vector.
  std::vector<Edge> edge_list() const;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adj_;           // both directions
  NodeId max_degree_ = 0;             // max over degree(v); 0 when empty
};

/// Induced subgraph on `nodes` (original node ids, need not be sorted).
/// Local node i corresponds to nodes[i]; returns the local graph. The
/// original ids are exactly `nodes` (caller keeps the mapping). O(n + m_sub);
/// duplicate entries in `nodes` are rejected (DC_CHECK).
Graph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace detcol
