#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {

Graph Graph::from_edges(NodeId num_nodes, std::span<const Edge> edges) {
  std::vector<Edge> norm;
  norm.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    DC_CHECK(u != v, "self-loop on node ", u);
    DC_CHECK(u < num_nodes && v < num_nodes, "edge endpoint out of range: (",
             u, ",", v, ") with n=", num_nodes);
    norm.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(norm.begin(), norm.end());
  norm.erase(std::unique(norm.begin(), norm.end()), norm.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : norm) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(norm.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : norm) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  // Adjacency lists come out sorted because the edge list was sorted on the
  // first endpoint and, within a node, insertion order follows the second.
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto nb = g.neighbors(v);
    DC_ASSERT(std::is_sorted(nb.begin(), nb.end()));
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<NodeId> adj) {
  DC_CHECK(!offsets.empty(), "CSR offsets array is empty (need n+1 entries)");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  DC_CHECK(offsets.front() == 0, "CSR offsets must start at 0, got ",
           offsets.front());
  DC_CHECK(offsets.back() == adj.size(), "CSR offsets end at ", offsets.back(),
           " but the adjacency array has ", adj.size(), " entries");
  for (NodeId v = 0; v < n; ++v) {
    DC_CHECK(offsets[v] <= offsets[v + 1], "CSR offsets not monotone at node ",
             v);
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      DC_CHECK(nb[i] < n, "CSR neighbor ", nb[i], " of node ", v,
               " out of range (n=", n, ")");
      DC_CHECK(nb[i] != v, "CSR self-loop on node ", v);
      DC_CHECK(i == 0 || nb[i - 1] < nb[i], "CSR adjacency of node ", v,
               " not strictly increasing at entry ", i);
    }
  }
  // Symmetry: every directed arc must have its reverse (the undirected
  // contract every algorithm in the tree assumes).
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.neighbors(v)) {
      DC_CHECK(g.has_edge(w, v), "CSR adjacency is asymmetric: node ", v,
               " lists ", w, " but not vice versa");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

Graph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  // Map original -> local. A dense scratch map keeps this O(n + m_sub).
  static constexpr NodeId kAbsent = ~NodeId{0};
  std::vector<NodeId> local(g.num_nodes(), kAbsent);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DC_CHECK(local[nodes[i]] == kAbsent, "duplicate node in induced set");
    local[nodes[i]] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  // Upper bound: the parent-graph degree sum of the induced nodes counts
  // every induced edge twice (plus edges leaving the set, so this can
  // over-reserve when the set keeps few of its neighbors).
  std::size_t deg_sum = 0;
  for (const NodeId v : nodes) deg_sum += g.degree(v);
  edges.reserve(deg_sum / 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId w : g.neighbors(nodes[i])) {
      const NodeId lw = local[w];
      if (lw != kAbsent && static_cast<NodeId>(i) < lw) {
        edges.emplace_back(static_cast<NodeId>(i), lw);
      }
    }
  }
  return Graph::from_edges(static_cast<NodeId>(nodes.size()), edges);
}

}  // namespace detcol
