#include "graph/graph.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"
#include "util/mmap_file.hpp"

namespace detcol {

// The mapped rebind reinterprets the on-disk little-endian u64 offsets array
// as std::size_t. Both assumptions are compile-time facts of every supported
// target (x86-64 / aarch64 Linux); a port to a platform where either fails
// must fall back to the eager parse_dcg path.
static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "mapped .dcg offsets require 64-bit std::size_t");
static_assert(std::endian::native == std::endian::little,
              "mapped .dcg arrays require a little-endian host");

// ---------------------------------------------------------------------------
// MappedCsr: lazy per-block structural validation.
// ---------------------------------------------------------------------------

MappedCsr::MappedCsr(std::shared_ptr<const MappedFile> file,
                     const std::uint64_t* offsets, const NodeId* adj, NodeId n)
    : file_(std::move(file)), offsets_(offsets), adj_(adj), n_(n) {
  const std::size_t blocks =
      (static_cast<std::size_t>(n) + kBlockVertices - 1) / kBlockVertices;
  checked_ = std::vector<std::atomic<std::uint32_t>>((blocks + 31) / 32);
}

void MappedCsr::validate_block(NodeId v) const {
  const std::size_t block = v / kBlockVertices;
  std::atomic<std::uint32_t>& word = checked_[block / 32];
  const std::uint32_t bit = std::uint32_t{1} << (block % 32);
  if ((word.load(std::memory_order_acquire) & bit) != 0) return;
  const NodeId begin = static_cast<NodeId>(block * kBlockVertices);
  const NodeId end = static_cast<NodeId>(
      std::min<std::size_t>(n_, (block + 1) * kBlockVertices));
  for (NodeId u = begin; u < end; ++u) {
    const std::uint64_t lo = offsets_[u];
    const std::uint64_t hi = offsets_[u + 1];
    for (std::uint64_t i = lo; i < hi; ++i) {
      const NodeId w = adj_[i];
      DC_CHECK(w < n_, file_->path(), ": mapped CSR neighbor ", w, " of node ",
               u, " out of range (n=", n_, ")");
      DC_CHECK(w != u, file_->path(), ": mapped CSR self-loop on node ", u);
      DC_CHECK(i == lo || adj_[i - 1] < w, file_->path(),
               ": mapped CSR adjacency of node ", u,
               " not strictly increasing at entry ", i - lo);
    }
  }
  // Concurrent validators re-check the same immutable bytes; whichever
  // publishes first, the block is proven before any reader skips the check.
  word.fetch_or(bit, std::memory_order_release);
}

std::string_view MappedCsr::file_bytes() const { return file_->bytes(); }

const std::string& MappedCsr::path() const { return file_->path(); }

// ---------------------------------------------------------------------------
// Graph: copy/move rebinding.
// ---------------------------------------------------------------------------

void Graph::rebind_owned() {
  offsets_p_ = offsets_.data();
  adj_p_ = adj_.data();
}

Graph::Graph(const Graph& other)
    : offsets_(other.offsets_),
      adj_(other.adj_),
      mapped_(other.mapped_),
      offsets_p_(other.offsets_p_),
      adj_p_(other.adj_p_),
      n_(other.n_),
      num_arcs_(other.num_arcs_),
      max_degree_(other.max_degree_) {
  if (!mapped_) rebind_owned();
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  offsets_ = other.offsets_;
  adj_ = other.adj_;
  mapped_ = other.mapped_;
  offsets_p_ = other.offsets_p_;
  adj_p_ = other.adj_p_;
  n_ = other.n_;
  num_arcs_ = other.num_arcs_;
  max_degree_ = other.max_degree_;
  if (!mapped_) rebind_owned();
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : offsets_(std::move(other.offsets_)),
      adj_(std::move(other.adj_)),
      mapped_(std::move(other.mapped_)),
      offsets_p_(other.offsets_p_),
      adj_p_(other.adj_p_),
      n_(other.n_),
      num_arcs_(other.num_arcs_),
      max_degree_(other.max_degree_) {
  if (!mapped_) rebind_owned();
  other.mapped_.reset();
  other.offsets_p_ = nullptr;
  other.adj_p_ = nullptr;
  other.n_ = 0;
  other.num_arcs_ = 0;
  other.max_degree_ = 0;
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  offsets_ = std::move(other.offsets_);
  adj_ = std::move(other.adj_);
  mapped_ = std::move(other.mapped_);
  offsets_p_ = other.offsets_p_;
  adj_p_ = other.adj_p_;
  n_ = other.n_;
  num_arcs_ = other.num_arcs_;
  max_degree_ = other.max_degree_;
  if (!mapped_) rebind_owned();
  other.mapped_.reset();
  other.offsets_p_ = nullptr;
  other.adj_p_ = nullptr;
  other.n_ = 0;
  other.num_arcs_ = 0;
  other.max_degree_ = 0;
  return *this;
}

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

Graph Graph::from_edges(NodeId num_nodes, std::span<const Edge> edges) {
  std::vector<Edge> norm;
  norm.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    DC_CHECK(u != v, "self-loop on node ", u);
    DC_CHECK(u < num_nodes && v < num_nodes, "edge endpoint out of range: (",
             u, ",", v, ") with n=", num_nodes);
    norm.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(norm.begin(), norm.end());
  norm.erase(std::unique(norm.begin(), norm.end()), norm.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : norm) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(norm.size() * 2);
  g.n_ = num_nodes;
  g.num_arcs_ = g.adj_.size();
  g.rebind_owned();
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : norm) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  // Adjacency lists come out sorted because the edge list was sorted on the
  // first endpoint and, within a node, insertion order follows the second.
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto nb = g.neighbors(v);
    DC_ASSERT(std::is_sorted(nb.begin(), nb.end()));
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<NodeId> adj) {
  DC_CHECK(!offsets.empty(), "CSR offsets array is empty (need n+1 entries)");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  DC_CHECK(offsets.front() == 0, "CSR offsets must start at 0, got ",
           offsets.front());
  DC_CHECK(offsets.back() == adj.size(), "CSR offsets end at ", offsets.back(),
           " but the adjacency array has ", adj.size(), " entries");
  for (NodeId v = 0; v < n; ++v) {
    DC_CHECK(offsets[v] <= offsets[v + 1], "CSR offsets not monotone at node ",
             v);
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.n_ = n;
  g.num_arcs_ = g.adj_.size();
  g.rebind_owned();
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      DC_CHECK(nb[i] < n, "CSR neighbor ", nb[i], " of node ", v,
               " out of range (n=", n, ")");
      DC_CHECK(nb[i] != v, "CSR self-loop on node ", v);
      DC_CHECK(i == 0 || nb[i - 1] < nb[i], "CSR adjacency of node ", v,
               " not strictly increasing at entry ", i);
    }
  }
  // Symmetry: every directed arc must have its reverse (the undirected
  // contract every algorithm in the tree assumes).
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.neighbors(v)) {
      DC_CHECK(g.has_edge(w, v), "CSR adjacency is asymmetric: node ", v,
               " lists ", w, " but not vice versa");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

Graph Graph::from_mapped_csr(std::shared_ptr<const MappedCsr> mapped,
                             NodeId n, std::size_t num_arcs,
                             NodeId max_degree) {
  DC_CHECK(mapped != nullptr, "from_mapped_csr needs a mapping");
  Graph g;
  g.mapped_ = std::move(mapped);
  const std::string_view bytes = g.mapped_->file_bytes();
  // Layout facts established by the caller's header validation (see
  // map_dcg_file): offsets at byte 32, adjacency right after. Both are
  // naturally aligned because the mapping is page-aligned.
  g.offsets_p_ = reinterpret_cast<const std::size_t*>(bytes.data() + 32);
  g.adj_p_ = reinterpret_cast<const NodeId*>(
      bytes.data() + 32 + (static_cast<std::size_t>(n) + 1) * 8);
  g.n_ = n;
  g.num_arcs_ = num_arcs;
  g.max_degree_ = max_degree;
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

Graph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  // Map original -> local. A dense scratch map keeps this O(n + m_sub).
  static constexpr NodeId kAbsent = ~NodeId{0};
  std::vector<NodeId> local(g.num_nodes(), kAbsent);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DC_CHECK(local[nodes[i]] == kAbsent, "duplicate node in induced set");
    local[nodes[i]] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  // Upper bound: the parent-graph degree sum of the induced nodes counts
  // every induced edge twice (plus edges leaving the set, so this can
  // over-reserve when the set keeps few of its neighbors).
  std::size_t deg_sum = 0;
  for (const NodeId v : nodes) deg_sum += g.degree(v);
  edges.reserve(deg_sum / 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId w : g.neighbors(nodes[i])) {
      const NodeId lw = local[w];
      if (lw != kAbsent && static_cast<NodeId>(i) < lw) {
        edges.emplace_back(static_cast<NodeId>(i), lw);
      }
    }
  }
  return Graph::from_edges(static_cast<NodeId>(nodes.size()), edges);
}

}  // namespace detcol
