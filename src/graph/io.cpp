#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace detcol {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    os << u << ' ' << v << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DC_CHECK(os.good(), "cannot open ", path, " for writing");
  write_edge_list(os, g);
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  NodeId n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    if (!have_header) {
      if (ls >> n >> m) {
        have_header = true;
        edges.reserve(m);
      }
      continue;
    }
    NodeId u, v;
    if (ls >> u >> v) edges.emplace_back(u, v);
  }
  DC_CHECK(have_header, "edge list missing 'n m' header");
  DC_CHECK(edges.size() == m, "edge list header claims ", m, " edges, found ",
           edges.size());
  return Graph::from_edges(n, edges);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK(is.good(), "cannot open ", path, " for reading");
  return read_edge_list(is);
}

}  // namespace detcol
