#include "graph/io.hpp"

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace detcol {

namespace io_detail {

void throw_if_failed(const std::string& what, const ShardError& err) {
  if (err.failed) {
    DC_CHECK(false, what, ":", err.line, ": ", err.message);
  }
}

void throw_first_error(const std::string& what,
                       const std::vector<ShardError>& errs) {
  ShardError first;
  for (const auto& e : errs) first.fold(e);
  throw_if_failed(what, first);
}

std::vector<Edge> fold_shards(std::vector<std::vector<Edge>> shard_edges) {
  std::size_t total = 0;
  for (const auto& se : shard_edges) total += se.size();
  std::vector<Edge> edges;
  edges.reserve(total);
  for (auto& se : shard_edges) {
    edges.insert(edges.end(), se.begin(), se.end());
  }
  return edges;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  while (i < line.size()) {
    while (i < line.size() && is_ws(line[i])) ++i;
    const std::size_t start = i;
    while (i < line.size() && !is_ws(line[i])) ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

bool parse_u64(std::string_view token, std::uint64_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out, 10);
  return ec == std::errc{} && ptr == end;
}

}  // namespace io_detail

std::vector<LineSpan> index_lines(std::string_view buf, ExecContext exec) {
  // Pass 1a: per-shard newline positions over fixed byte ranges.
  const std::size_t newlines = parallel_reduce_shards<std::size_t>(
      exec, buf.size(), 0,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (buf[i] == '\n') ++count;
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; }, kLineScanGrain);

  std::vector<std::size_t> positions;
  positions.reserve(newlines);
  auto folded = parallel_reduce_shards<std::vector<std::size_t>>(
      exec, buf.size(), std::move(positions),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<std::size_t> local;
        for (std::size_t i = begin; i < end; ++i) {
          if (buf[i] == '\n') local.push_back(i);
        }
        return local;
      },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      },
      kLineScanGrain);

  std::vector<LineSpan> lines;
  lines.reserve(folded.size() + 1);
  std::size_t start = 0;
  for (const std::size_t nl : folded) {
    lines.push_back({start, nl});
    start = nl + 1;
  }
  if (start < buf.size()) lines.push_back({start, buf.size()});
  return lines;
}

std::string slurp_file(const std::string& path) {
  DC_FAILPOINT("io.read");
  std::ifstream is(path, std::ios::binary);
  DC_CHECK(is.good(), "cannot open ", path, " for reading: ",
           std::strerror(errno));
  std::ostringstream os;
  os << is.rdbuf();
  DC_CHECK(!is.bad(), "read from ", path, " failed: ", std::strerror(errno));
  return std::move(os).str();
}

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    os << u << ' ' << v << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  DC_FAILPOINT("edges.write.body");
  atomic_write_stream(path, [&](std::ostream& os) { write_edge_list(os, g); });
}

namespace {

/// Comment-stripped content of a line ('#' to end of line).
std::string_view strip_comment(std::string_view buf, LineSpan span) {
  std::string_view line = buf.substr(span.begin, span.end - span.begin);
  const auto hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return line;
}

}  // namespace

Graph parse_edge_list(std::string_view buf, ExecContext exec,
                      const std::string& what) {
  using io_detail::ShardError;
  using io_detail::parse_u64;
  using io_detail::tokenize;

  const std::vector<LineSpan> lines = index_lines(buf, exec);

  // Header: the first line with any tokens must be "n m".
  NodeId n = 0;
  std::uint64_t m = 0;
  std::size_t header_index = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto tokens = tokenize(strip_comment(buf, lines[i]));
    if (tokens.empty()) continue;
    std::uint64_t n64 = 0;
    DC_CHECK(tokens.size() == 2 && parse_u64(tokens[0], &n64) &&
                 parse_u64(tokens[1], &m),
             what, ":", i + 1,
             ": expected \"n m\" header, got '",
             std::string(strip_comment(buf, lines[i])), "'");
    DC_CHECK(n64 <= std::numeric_limits<NodeId>::max(), what, ":", i + 1,
             ": node count ", n64, " exceeds the node-id limit");
    n = static_cast<NodeId>(n64);
    header_index = i;
    break;
  }
  DC_CHECK(header_index < lines.size(), what, ": missing 'n m' header");

  // Pass 2: shard over the edge lines; per-shard buffers folded in order.
  const std::size_t first_edge_line = header_index + 1;
  const std::size_t edge_lines = lines.size() - first_edge_line;
  const std::size_t shards = shard_count(edge_lines);
  std::vector<std::vector<Edge>> shard_edges(shards);
  std::vector<ShardError> shard_err(shards);
  parallel_for_shards(exec, edge_lines, [&](std::size_t s, std::size_t begin,
                                            std::size_t end) {
    auto& edges = shard_edges[s];
    auto& err = shard_err[s];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t line_no = first_edge_line + i + 1;  // 1-based
      const auto tokens = tokenize(strip_comment(buf, lines[first_edge_line + i]));
      if (tokens.empty()) continue;
      std::uint64_t u = 0, v = 0;
      if (tokens.size() != 2 || !parse_u64(tokens[0], &u) ||
          !parse_u64(tokens[1], &v)) {
        err.set(line_no, "expected \"u v\" edge, got '" +
                             std::string(strip_comment(
                                 buf, lines[first_edge_line + i])) +
                             "'");
        return;
      }
      if (u >= n || v >= n) {
        err.set(line_no, "edge endpoint out of range (n=" + std::to_string(n) +
                             "): " + std::to_string(u) + " " +
                             std::to_string(v));
        return;
      }
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  });
  io_detail::throw_first_error(what, shard_err);

  const std::vector<Edge> edges = io_detail::fold_shards(std::move(shard_edges));
  DC_CHECK(edges.size() == m, what, ": header claims ", m, " edges, found ",
           edges.size());
  return Graph::from_edges(n, edges);
}

Graph read_edge_list(std::istream& is) {
  std::ostringstream os;
  os << is.rdbuf();
  return parse_edge_list(std::move(os).str());
}

Graph read_edge_list_file(const std::string& path, ExecContext exec) {
  return parse_edge_list(slurp_file(path), exec, path);
}

}  // namespace detcol
