#include "graph/palette.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

PaletteSet::PaletteSet(std::vector<std::vector<Color>> palettes)
    : pal_(std::move(palettes)) {
  for (auto& p : pal_) {
    std::sort(p.begin(), p.end());
    DC_CHECK(std::adjacent_find(p.begin(), p.end()) == p.end(),
             "palette contains duplicate colors");
  }
}

PaletteSet PaletteSet::uniform(NodeId num_nodes, Color num_colors) {
  auto colors = std::make_shared<std::vector<Color>>(num_colors);
  for (Color c = 0; c < num_colors; ++c) (*colors)[c] = c;
  PaletteSet out;
  out.shared_ = std::move(colors);
  out.shared_nodes_ = num_nodes;
  return out;
}

void PaletteSet::materialize() {
  if (!shared_) return;
  pal_.assign(shared_nodes_, *shared_);
  shared_.reset();
  shared_nodes_ = 0;
}

PaletteSet PaletteSet::delta_plus_one(const Graph& g) {
  return uniform(g.num_nodes(), static_cast<Color>(g.max_degree()) + 1);
}

namespace {
std::vector<Color> distinct_colors(Color color_space, std::size_t k,
                                   Xoshiro256& rng) {
  DC_CHECK(k <= color_space, "palette larger than color space");
  std::vector<Color> out;
  out.reserve(k);
  if (k * 3 >= color_space) {
    // Dense case: sample by shuffling a prefix of the space.
    std::vector<Color> all(color_space);
    for (Color c = 0; c < color_space; ++c) all[c] = c;
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = i + rng.next_below(color_space - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection sampling.
    std::vector<Color> sorted;
    while (out.size() < k) {
      const Color c = rng.next_below(color_space);
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
  }
  return out;
}
}  // namespace

PaletteSet PaletteSet::random_lists(const Graph& g, Color color_space,
                                    std::uint64_t seed) {
  const std::size_t k = static_cast<std::size_t>(g.max_degree()) + 1;
  std::vector<std::vector<Color>> pal(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Xoshiro256 rng(sub_seed(seed, v));
    pal[v] = distinct_colors(color_space, k, rng);
  }
  return PaletteSet(std::move(pal));
}

PaletteSet PaletteSet::deg_plus_one_lists(const Graph& g, Color color_space,
                                          std::uint64_t seed) {
  std::vector<std::vector<Color>> pal(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Xoshiro256 rng(sub_seed(seed, v));
    pal[v] = distinct_colors(color_space,
                             static_cast<std::size_t>(g.degree(v)) + 1, rng);
  }
  return PaletteSet(std::move(pal));
}

std::size_t PaletteSet::total_size() const {
  if (shared_) return std::size_t{shared_nodes_} * shared_->size();
  std::size_t s = 0;
  for (const auto& p : pal_) s += p.size();
  return s;
}

void PaletteSet::restrict(NodeId v, FunctionRef<bool(Color)> keep) {
  materialize();
  auto& p = pal_[v];
  p.erase(std::remove_if(p.begin(), p.end(),
                         [&](Color c) { return !keep(c); }),
          p.end());
}

bool PaletteSet::remove_color(NodeId v, Color c) {
  // A miss must not cost the whole-set materialization: the uniform palette
  // is {0..k-1}, so c >= k is decidable in shared mode.
  if (shared_ && c >= shared_->size()) return false;
  materialize();
  auto& p = pal_[v];
  const auto it = std::lower_bound(p.begin(), p.end(), c);
  if (it == p.end() || *it != c) return false;
  p.erase(it);
  return true;
}

void PaletteSet::truncate(NodeId v, std::size_t k) {
  if (shared_ && shared_->size() <= k) return;  // no-op, stay shared
  materialize();
  auto& p = pal_[v];
  if (p.size() > k) p.resize(k);
}

bool PaletteSet::contains(NodeId v, Color c) const {
  if (shared_) return c < shared_->size();
  const auto& p = pal_[v];
  return std::binary_search(p.begin(), p.end(), c);
}

}  // namespace detcol
