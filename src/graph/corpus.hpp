// The adversarial regression corpus: a small, fixed set of graphs with
// known hard structure, committed to the repository as canonical .dcg files
// (corpus/*.dcg) and rebuilt from scratch here. Because the .dcg encoding is
// canonical (formats.hpp), "the committed file is intact and current" is a
// single byte comparison against dcg_bytes(build()).
//
// The corpus has two kinds of members:
//
//  * Classic coloring benchmarks (queens, iterated Mycielski, Zachary's
//    karate club) — graphs whose chromatic structure is well understood and
//    documented, so a regression in rounds or colors is meaningful rather
//    than noise.
//
//  * A Definition 3.1 threshold adversary — disjoint K_{d,d} blocks sized
//    so every node sits at the same distance from the partition's goodness
//    thresholds (|d' - d/b| <= ell^0.6 and p' >= p/b + ell^0.7, with
//    b = max(2, ell^0.1); see core/params.hpp and the Lemma 4.5 test in
//    lowspace/seed_engine.hpp). Perfect regularity makes the bad event
//    maximally correlated across nodes: a biased seed fails everywhere at
//    once, so the seed searches get no partial credit and the recursion is
//    exercised at its least forgiving.
//
// tests/test_adversarial.cpp pins byte-identity of the committed files plus
// rounds/colors baselines per pipeline at several thread counts;
// corpus/corpus.spec runs the same graphs through the suite runner.
#pragma once

#include <span>

#include "graph/graph.hpp"

namespace detcol {

/// Queens graph on a board x board chessboard: one node per square, an edge
/// between squares that share a row, column or diagonal — the classic
/// frequency-assignment-style benchmark (queens8 = DIMACS queen8_8:
/// n = 64, m = 728, chromatic number 9).
Graph corpus_queens(NodeId board);

/// `levels` Mycielski constructions applied to K_2. Each step takes G to a
/// triangle-free-preserving supergraph with n' = 2n+1, m' = 3m+n and
/// chromatic number chi+1, so the result is (levels+2)-chromatic while
/// staying sparse — maximal gap between clique number and chromatic number.
/// levels = 2 is the Grötzsch graph; levels = 6 is DIMACS myciel7
/// (n = 191, m = 2360).
Graph corpus_mycielski(unsigned levels);

/// Zachary's karate club (n = 34, m = 78): the standard small community
/// graph; two hubs, skewed degrees, real-world irregularity.
Graph corpus_karate();

/// The Definition 3.1 threshold adversary: `blocks` disjoint complete
/// bipartite blocks K_{ell,ell}. Every node has degree exactly ell and a
/// (Delta+1)-palette of exactly ell+1 colors, so under a b-bin partition
/// every node sits at the identical margin from both goodness thresholds.
Graph corpus_threshold_blocks(NodeId ell, NodeId blocks);

/// A committed corpus member: its registry name, its .dcg file name under
/// corpus/, and the construction that must reproduce the file byte-for-byte.
struct CorpusGraph {
  const char* name;
  const char* file;
  Graph (*build)();
};

/// The fixed corpus, in committed order.
std::span<const CorpusGraph> corpus_graphs();

}  // namespace detcol
