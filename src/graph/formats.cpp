#include "graph/formats.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/mmap_file.hpp"

namespace detcol {

using io_detail::ShardError;
using io_detail::fold_shards;
using io_detail::parse_u64;
using io_detail::throw_first_error;
using io_detail::tokenize;

namespace {

std::string_view line_view(std::string_view buf, LineSpan span) {
  return buf.substr(span.begin, span.end - span.begin);
}

// ---------------------------------------------------------------------------
// Little-endian scalar encoding + FNV-1a, the .dcg building blocks.
// ---------------------------------------------------------------------------

void append_le(std::string* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t read_le(std::string_view bytes, std::size_t offset, int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= std::uint64_t{static_cast<unsigned char>(bytes[offset + i])}
         << (8 * i);
  }
  return v;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// .dcg layout offsets (see docs/FORMATS.md): magic[8], n u64, m u64,
// flags u64, offsets u64[n+1], adj u32[2m], checksum u64.
constexpr std::size_t kDcgHeaderBytes = 8 + 3 * 8;
constexpr std::size_t kDcgChecksumBytes = 8;

}  // namespace

// ---------------------------------------------------------------------------
// Format names, extensions, sniffing.
// ---------------------------------------------------------------------------

const char* format_name(GraphFormat fmt) {
  switch (fmt) {
    case GraphFormat::kAuto: return "auto";
    case GraphFormat::kEdgeList: return "edges";
    case GraphFormat::kDimacs: return "dimacs";
    case GraphFormat::kMetis: return "metis";
    case GraphFormat::kDcg: return "dcg";
  }
  return "unknown";
}

bool parse_format_name(std::string_view name, GraphFormat* out) {
  if (name == "auto") *out = GraphFormat::kAuto;
  else if (name == "edges" || name == "edgelist") *out = GraphFormat::kEdgeList;
  else if (name == "dimacs" || name == "col") *out = GraphFormat::kDimacs;
  else if (name == "metis") *out = GraphFormat::kMetis;
  else if (name == "dcg") *out = GraphFormat::kDcg;
  else return false;
  return true;
}

GraphFormat format_from_extension(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return GraphFormat::kAuto;
  std::string ext = path.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (ext == "dcg") return GraphFormat::kDcg;
  if (ext == "col" || ext == "dimacs") return GraphFormat::kDimacs;
  if (ext == "graph" || ext == "metis") return GraphFormat::kMetis;
  if (ext == "edges" || ext == "txt" || ext == "el") {
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kAuto;
}

GraphFormat sniff_format(std::string_view buf, const std::string& path) {
  // (1) Binary magic beats everything.
  if (buf.size() >= sizeof(kDcgMagic) &&
      std::memcmp(buf.data(), kDcgMagic, sizeof(kDcgMagic)) == 0) {
    return GraphFormat::kDcg;
  }
  // (2) A DIMACS marker on the first non-blank line. Scan incrementally —
  // never index the whole buffer just to look at its head (the chosen
  // parser builds the real line index, in parallel, right after).
  for (std::size_t at = 0; at < buf.size();) {
    const std::size_t nl = buf.find('\n', at);
    const std::size_t end = nl == std::string_view::npos ? buf.size() : nl;
    const auto tokens = tokenize(buf.substr(at, end - at));
    if (!tokens.empty()) {
      if (tokens[0] == "c" || tokens[0] == "p") return GraphFormat::kDimacs;
      break;
    }
    if (nl == std::string_view::npos) break;
    at = nl + 1;
  }
  // (3) The extension, when it names a known format.
  const GraphFormat by_ext = format_from_extension(path);
  if (by_ext != GraphFormat::kAuto) return by_ext;
  // (4) Data-line count: a numeric "a b [fmt]" first line followed by
  // exactly `a` non-'%'-comment lines is METIS — unless a literal 0 token
  // appears in the data (METIS is 1-indexed, the edge list 0-indexed).
  // Only this last resort pays a full line scan.
  const std::vector<LineSpan> lines = index_lines(buf);
  std::uint64_t header_n = 0;
  bool have_header = false;
  std::size_t data_lines = 0;
  bool saw_zero_token = false;
  for (const LineSpan span : lines) {
    const std::string_view line = line_view(buf, span);
    if (!line.empty() && line[0] == '%') continue;
    const auto tokens = tokenize(line);
    if (!have_header) {
      if (tokens.empty()) continue;
      std::uint64_t b = 0;
      if ((tokens.size() < 2 || tokens.size() > 4) ||
          !parse_u64(tokens[0], &header_n) || !parse_u64(tokens[1], &b)) {
        return GraphFormat::kEdgeList;  // not METIS-shaped; let edges report
      }
      have_header = true;
      continue;
    }
    ++data_lines;
    for (const auto tok : tokens) {
      if (tok == "0") saw_zero_token = true;
    }
  }
  if (have_header && data_lines == header_n && !saw_zero_token) {
    return GraphFormat::kMetis;
  }
  return GraphFormat::kEdgeList;
}

// ---------------------------------------------------------------------------
// DIMACS ("p edge") dialect.
// ---------------------------------------------------------------------------

Graph parse_dimacs(std::string_view buf, ExecContext exec,
                   const std::string& what) {
  const std::vector<LineSpan> lines = index_lines(buf, exec);

  // Problem line: first non-blank, non-'c' line must be "p edge N M".
  NodeId n = 0;
  std::uint64_t m = 0;
  std::size_t p_index = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto tokens = tokenize(line_view(buf, lines[i]));
    if (tokens.empty() || tokens[0] == "c") continue;
    std::uint64_t n64 = 0;
    DC_CHECK(tokens.size() == 4 && tokens[0] == "p" &&
                 (tokens[1] == "edge" || tokens[1] == "edges" ||
                  tokens[1] == "col") &&
                 parse_u64(tokens[2], &n64) && parse_u64(tokens[3], &m),
             what, ":", i + 1, ": expected DIMACS problem line 'p edge N M', ",
             "got '", std::string(line_view(buf, lines[i])), "'");
    DC_CHECK(n64 <= std::numeric_limits<NodeId>::max(), what, ":", i + 1,
             ": node count ", n64, " exceeds the node-id limit");
    n = static_cast<NodeId>(n64);
    p_index = i;
    break;
  }
  DC_CHECK(p_index < lines.size(), what,
           ": missing DIMACS problem line 'p edge N M'");

  const std::size_t first = p_index + 1;
  const std::size_t count = lines.size() - first;
  const std::size_t shards = shard_count(count);
  std::vector<std::vector<Edge>> shard_edges(shards);
  std::vector<ShardError> shard_err(shards);
  parallel_for_shards(exec, count, [&](std::size_t s, std::size_t begin,
                                       std::size_t end) {
    auto& edges = shard_edges[s];
    auto& err = shard_err[s];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t line_no = first + i + 1;  // 1-based
      const std::string_view line = line_view(buf, lines[first + i]);
      const auto tokens = tokenize(line);
      if (tokens.empty() || tokens[0] == "c") continue;
      if (tokens[0] != "e" || tokens.size() != 3) {
        err.set(line_no,
                "expected DIMACS edge line 'e U V', got '" + std::string(line) +
                    "'");
        return;
      }
      std::uint64_t u = 0, v = 0;
      if (!parse_u64(tokens[1], &u) || !parse_u64(tokens[2], &v)) {
        err.set(line_no, "malformed edge endpoints '" + std::string(line) + "'");
        return;
      }
      if (u < 1 || v < 1 || u > n || v > n) {
        err.set(line_no, "edge endpoint out of range [1, " + std::to_string(n) +
                             "]: '" + std::string(line) + "'");
        return;
      }
      if (u == v) {
        err.set(line_no, "self-loop on vertex " + std::to_string(u));
        return;
      }
      edges.emplace_back(static_cast<NodeId>(u - 1),
                         static_cast<NodeId>(v - 1));
    }
  });
  throw_first_error(what, shard_err);

  const std::vector<Edge> edges = fold_shards(std::move(shard_edges));
  DC_CHECK(edges.size() == m, what, ": problem line claims ", m,
           " edges, found ", edges.size(), " 'e' lines");
  return Graph::from_edges(n, edges);
}

void write_dimacs(std::ostream& os, const Graph& g) {
  os << "p edge " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    os << "e " << (u + 1) << ' ' << (v + 1) << '\n';
  }
}

// ---------------------------------------------------------------------------
// METIS adjacency format.
// ---------------------------------------------------------------------------

Graph parse_metis(std::string_view buf, ExecContext exec,
                  const std::string& what) {
  const std::vector<LineSpan> all_lines = index_lines(buf, exec);

  // '%' lines are comments and do not count toward the n adjacency lines;
  // blank lines DO count (an isolated node has an empty line). Keep the
  // original line numbers for diagnostics.
  std::vector<std::pair<LineSpan, std::size_t>> data;  // (span, 1-based line)
  data.reserve(all_lines.size());
  for (std::size_t i = 0; i < all_lines.size(); ++i) {
    const std::string_view line = line_view(buf, all_lines[i]);
    if (!line.empty() && line[0] == '%') continue;
    data.emplace_back(all_lines[i], i + 1);
  }
  // Header: "N M" or "N M fmt" with fmt 0 (unweighted). Leading blank lines
  // are tolerated before the header only.
  std::size_t header = 0;
  while (header < data.size() &&
         tokenize(line_view(buf, data[header].first)).empty()) {
    ++header;
  }
  DC_CHECK(header < data.size(), what, ": missing METIS header line 'N M'");
  const auto head_tokens = tokenize(line_view(buf, data[header].first));
  std::uint64_t n64 = 0, m = 0;
  DC_CHECK(head_tokens.size() >= 2 && head_tokens.size() <= 3 &&
               parse_u64(head_tokens[0], &n64) && parse_u64(head_tokens[1], &m),
           what, ":", data[header].second,
           ": expected METIS header 'N M [fmt]', got '",
           std::string(line_view(buf, data[header].first)), "'");
  if (head_tokens.size() == 3) {
    const std::string_view fmt = head_tokens[2];
    DC_CHECK(fmt == "0" || fmt == "00" || fmt == "000", what, ":",
             data[header].second, ": weighted METIS graphs (fmt=",
             std::string(fmt), ") are not supported");
  }
  DC_CHECK(n64 <= std::numeric_limits<NodeId>::max(), what, ":",
           data[header].second, ": node count ", n64,
           " exceeds the node-id limit");
  const auto n = static_cast<NodeId>(n64);
  const std::size_t adj_lines = data.size() - header - 1;
  DC_CHECK(adj_lines == n, what, ": header claims ", n,
           " adjacency lines, found ", adj_lines);

  // Sharded adjacency parse: node u's directed arcs come from data line
  // header+1+u; per-shard arc buffers fold in shard order.
  const std::size_t shards = shard_count(n);
  std::vector<std::vector<Edge>> shard_arcs(shards);
  std::vector<ShardError> shard_err(shards);
  parallel_for_shards(exec, n, [&](std::size_t s, std::size_t begin,
                                   std::size_t end) {
    auto& arcs = shard_arcs[s];
    auto& err = shard_err[s];
    for (std::size_t u = begin; u < end; ++u) {
      const auto& [span, line_no] = data[header + 1 + u];
      for (const auto tok : tokenize(line_view(buf, span))) {
        std::uint64_t w = 0;
        if (!parse_u64(tok, &w)) {
          err.set(line_no, "malformed neighbor '" + std::string(tok) +
                               "' of node " + std::to_string(u + 1));
          return;
        }
        if (w < 1 || w > n) {
          err.set(line_no, "neighbor " + std::to_string(w) + " of node " +
                               std::to_string(u + 1) +
                               " out of range [1, " + std::to_string(n) + "]");
          return;
        }
        if (w == u + 1) {
          err.set(line_no,
                  "self-loop on node " + std::to_string(u + 1) +
                      " (METIS graphs must be loop-free)");
          return;
        }
        arcs.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(w - 1));
      }
    }
  });
  throw_first_error(what, shard_err);

  // Duplicate entries within a line collapse; each undirected edge must be
  // listed by BOTH endpoints (the METIS symmetry contract). The arcs are
  // not needed in file order again, so sort them in place.
  std::vector<Edge> sorted = fold_shards(std::move(shard_arcs));
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const auto& [u, v] : sorted) {
    DC_CHECK(std::binary_search(sorted.begin(), sorted.end(), Edge{v, u}),
             what, ": asymmetric adjacency — node ", u + 1, " lists ", v + 1,
             " but node ", v + 1, " does not list ", u + 1);
  }
  std::size_t distinct = 0;
  for (const auto& [u, v] : sorted) {
    if (u < v) ++distinct;
  }
  DC_CHECK(distinct == m, what, ": header claims ", m,
           " edges, adjacency lists contain ", distinct);
  return Graph::from_edges(n, sorted);
}

void write_metis(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (i > 0) os << ' ';
      os << (nb[i] + 1);
    }
    os << '\n';
  }
}

// ---------------------------------------------------------------------------
// The .dcg binary CSR container.
// ---------------------------------------------------------------------------

std::string dcg_bytes(const Graph& g) {
  const NodeId n = g.num_nodes();
  const std::uint64_t m = g.num_edges();
  std::string out;
  out.reserve(kDcgHeaderBytes + (std::size_t{n} + 1) * 8 + 2 * m * 4 +
              kDcgChecksumBytes);
  out.append(reinterpret_cast<const char*>(kDcgMagic), sizeof(kDcgMagic));
  append_le(&out, n, 8);
  append_le(&out, m, 8);
  append_le(&out, /*flags=*/0, 8);
  std::uint64_t offset = 0;
  append_le(&out, offset, 8);
  for (NodeId v = 0; v < n; ++v) {
    offset += g.degree(v);
    append_le(&out, offset, 8);
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.neighbors(v)) append_le(&out, w, 4);
  }
  append_le(&out, fnv1a64(out), 8);
  return out;
}

Graph parse_dcg(std::string_view bytes, const std::string& what) {
  DC_CHECK(bytes.size() >= kDcgHeaderBytes + 8 + kDcgChecksumBytes, what,
           ": truncated .dcg file (", bytes.size(), " bytes)");
  DC_CHECK(std::memcmp(bytes.data(), kDcgMagic, sizeof(kDcgMagic)) == 0, what,
           ": not a .dcg file (bad magic — wrong format or version)");
  const std::uint64_t n64 = read_le(bytes, 8, 8);
  const std::uint64_t m = read_le(bytes, 16, 8);
  const std::uint64_t flags = read_le(bytes, 24, 8);
  DC_CHECK(flags == 0, what, ": unsupported .dcg flags ", flags);
  DC_CHECK(n64 <= std::numeric_limits<NodeId>::max(), what, ": node count ",
           n64, " exceeds the node-id limit");
  // Bound the claimed sizes by the actual file before computing the expected
  // byte count (a corrupt header must not overflow the arithmetic).
  DC_CHECK(n64 <= bytes.size() / 8 && m <= bytes.size() / 8, what,
           ": truncated .dcg file (header claims n=", n64, ", m=", m,
           " in ", bytes.size(), " bytes)");
  const std::size_t expected = kDcgHeaderBytes +
                               (static_cast<std::size_t>(n64) + 1) * 8 +
                               static_cast<std::size_t>(2 * m) * 4 +
                               kDcgChecksumBytes;
  DC_CHECK(bytes.size() >= expected, what, ": truncated .dcg file (expected ",
           expected, " bytes, have ", bytes.size(), ")");
  DC_CHECK(bytes.size() <= expected, what, ": trailing bytes after .dcg "
           "payload (expected ", expected, " bytes, have ", bytes.size(), ")");
  const std::uint64_t stored = read_le(bytes, bytes.size() - 8, 8);
  const std::uint64_t actual = fnv1a64(bytes.substr(0, bytes.size() - 8));
  DC_CHECK(stored == actual, what, ": checksum mismatch (corrupt file)");

  const auto n = static_cast<NodeId>(n64);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1);
  std::size_t at = kDcgHeaderBytes;
  for (auto& o : offsets) {
    o = static_cast<std::size_t>(read_le(bytes, at, 8));
    at += 8;
  }
  std::vector<NodeId> adj(static_cast<std::size_t>(2 * m));
  for (auto& a : adj) {
    a = static_cast<NodeId>(read_le(bytes, at, 4));
    at += 4;
  }
  try {
    return Graph::from_csr(std::move(offsets), std::move(adj));
  } catch (const CheckError& e) {
    DC_CHECK(false, what, ": invalid .dcg CSR payload — ", e.what());
  }
  return {};  // unreachable
}

void write_dcg_file(const std::string& path, const Graph& g) {
  DC_FAILPOINT("dcg.write.body");
  atomic_write_file(path, dcg_bytes(g));
}

Graph map_dcg_file(const std::string& path, ExecContext exec) {
  const std::shared_ptr<MappedFile> file = MappedFile::open(path);
  const std::string_view bytes = file->bytes();
  DC_CHECK(bytes.size() >= kDcgHeaderBytes + 8 + kDcgChecksumBytes, path,
           ": truncated .dcg file (", bytes.size(), " bytes)");
  DC_CHECK(std::memcmp(bytes.data(), kDcgMagic, sizeof(kDcgMagic)) == 0, path,
           ": not a .dcg file (bad magic — wrong format or version)");
  const std::uint64_t n64 = read_le(bytes, 8, 8);
  const std::uint64_t m = read_le(bytes, 16, 8);
  const std::uint64_t flags = read_le(bytes, 24, 8);
  DC_CHECK(flags == 0, path, ": unsupported .dcg flags ", flags);
  DC_CHECK(n64 <= std::numeric_limits<NodeId>::max(), path, ": node count ",
           n64, " exceeds the node-id limit");
  DC_CHECK(n64 <= bytes.size() / 8 && m <= bytes.size() / 8, path,
           ": truncated .dcg file (header claims n=", n64, ", m=", m, " in ",
           bytes.size(), " bytes)");
  const std::size_t expected = kDcgHeaderBytes +
                               (static_cast<std::size_t>(n64) + 1) * 8 +
                               static_cast<std::size_t>(2 * m) * 4 +
                               kDcgChecksumBytes;
  DC_CHECK(bytes.size() == expected, path, ": .dcg payload size mismatch ",
           "(expected ", expected, " bytes for n=", n64, ", m=", m, ", have ",
           bytes.size(), ")");

  const auto n = static_cast<NodeId>(n64);
  const std::size_t num_arcs = static_cast<std::size_t>(2 * m);
  // Zero-copy views into the mapping (alignment: the mapping is
  // page-aligned, offsets start at byte 32, adjacency at 32 + 8(n+1); the
  // static_asserts in graph.cpp pin the layout equivalence).
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(bytes.data() + kDcgHeaderBytes);
  const auto* adj = reinterpret_cast<const NodeId*>(
      bytes.data() + kDcgHeaderBytes + (static_cast<std::size_t>(n) + 1) * 8);

  // Eager offsets pass: monotone + exact arc total, and the degree bound
  // every palette/pipeline consults up front. Sharded + shard-order folded,
  // so the scan parallelizes without changing which violation is reported.
  DC_CHECK(offsets[0] == 0, path, ": CSR offsets must start at 0, got ",
           offsets[0]);
  DC_CHECK(offsets[n] == num_arcs, path, ": CSR offsets end at ", offsets[n],
           " but the header claims ", num_arcs, " adjacency entries");
  struct OffsetsScan {
    NodeId max_degree = 0;
    NodeId first_bad = 0;
    bool bad = false;
  };
  const OffsetsScan scan = parallel_reduce_shards<OffsetsScan>(
      exec, n, {},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        OffsetsScan part;
        for (std::size_t v = begin; v < end; ++v) {
          if (offsets[v] > offsets[v + 1]) {
            if (!part.bad) {
              part.bad = true;
              part.first_bad = static_cast<NodeId>(v);
            }
            continue;
          }
          part.max_degree = std::max(
              part.max_degree, static_cast<NodeId>(offsets[v + 1] - offsets[v]));
        }
        return part;
      },
      [](OffsetsScan acc, OffsetsScan part) {
        if (!acc.bad && part.bad) {
          acc.bad = true;
          acc.first_bad = part.first_bad;
        }
        acc.max_degree = std::max(acc.max_degree, part.max_degree);
        return acc;
      });
  DC_CHECK(!scan.bad, path, ": CSR offsets not monotone at node ",
           scan.first_bad);

  // Adjacency access tends to be vertex-range scans (the pipelines walk
  // nodes in order); let readahead work for us.
  file->advise_sequential();
  auto mapped = std::make_shared<const MappedCsr>(file, offsets, adj, n);
  return Graph::from_mapped_csr(std::move(mapped), n, num_arcs,
                                scan.max_degree);
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Graph parse_graph(std::string_view buf, GraphFormat fmt, ExecContext exec,
                  const std::string& what) {
  if (fmt == GraphFormat::kAuto) fmt = sniff_format(buf, what);
  switch (fmt) {
    case GraphFormat::kEdgeList: return parse_edge_list(buf, exec, what);
    case GraphFormat::kDimacs: return parse_dimacs(buf, exec, what);
    case GraphFormat::kMetis: return parse_metis(buf, exec, what);
    case GraphFormat::kDcg: return parse_dcg(buf, what);
    case GraphFormat::kAuto: break;
  }
  DC_CHECK(false, what, ": unresolved graph format");
  return {};  // unreachable
}

Graph read_graph_file(const std::string& path, GraphFormat fmt,
                      ExecContext exec) {
  // kAuto flows through: parse_graph sniffs with `what` = the path, so the
  // extension participates in resolution exactly once.
  return parse_graph(slurp_file(path), fmt, exec, path);
}

void write_graph_file(const std::string& path, const Graph& g,
                      GraphFormat fmt) {
  if (fmt == GraphFormat::kAuto) fmt = format_from_extension(path);
  DC_CHECK(fmt != GraphFormat::kAuto, "cannot infer a graph format from the "
           "extension of ", path, "; pass an explicit format");
  if (fmt == GraphFormat::kDcg) {
    write_dcg_file(path, g);
    return;
  }
  DC_FAILPOINT("graph.write.body");
  atomic_write_stream(path, [&](std::ostream& os) {
    switch (fmt) {
      case GraphFormat::kEdgeList: write_edge_list(os, g); break;
      case GraphFormat::kDimacs: write_dimacs(os, g); break;
      case GraphFormat::kMetis: write_metis(os, g); break;
      default: DC_CHECK(false, "unreachable write format");
    }
  });
}

}  // namespace detcol
