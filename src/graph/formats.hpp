// Multi-format graph ingestion: DIMACS, METIS, the native edge list, and
// the `.dcg` versioned binary CSR container, behind one sniffing reader.
//
// Full format specs (byte layouts, accepted dialects, error handling) live
// in docs/FORMATS.md; the short version:
//
//   edge list  "n m" header, one "u v" per line (0-indexed), '#' comments.
//   DIMACS     "c" comments, "p edge N M" problem line, "e U V" edges
//              (1-indexed). The e-line count must equal M; duplicate and
//              reversed e-lines collapse to one undirected edge.
//   METIS      "%" comments, "N M [fmt]" header (only unweighted fmt 0),
//              then N adjacency lines (1-indexed, line i = neighbors of
//              node i). Each edge must appear in both endpoints' lines;
//              duplicates within a line collapse; self-loops are errors.
//   .dcg       binary CSR: 8-byte magic (version embedded), little-endian
//              header (n, m, flags), degree-offset array (u64 × n+1),
//              neighbor array (u32 × 2m), FNV-1a-64 checksum. Loads
//              directly into Graph's adjacency storage via Graph::from_csr
//              — no edge-list rebuild, no re-sort.
//
// Every text parser runs on the two-pass sharded machinery of graph/io.hpp,
// so parse results (and the diagnostic chosen when several lines are bad)
// are bit-identical for every thread count of the ExecContext.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "exec/exec.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace detcol {

enum class GraphFormat {
  kAuto,      // resolve by magic bytes / content markers / extension
  kEdgeList,  // native "n m" + "u v" dialect        (.edges, .txt)
  kDimacs,    // DIMACS coloring "p edge" dialect     (.col, .dimacs)
  kMetis,     // METIS adjacency format               (.graph, .metis)
  kDcg,       // detcolor binary CSR container        (.dcg)
};

/// Canonical lowercase name ("auto", "edges", "dimacs", "metis", "dcg").
const char* format_name(GraphFormat fmt);

/// Inverse of format_name. Returns false on an unknown name.
bool parse_format_name(std::string_view name, GraphFormat* out);

/// Format implied by the path's extension, or kAuto when the extension is
/// not one of the known ones (see the enum above).
GraphFormat format_from_extension(const std::string& path);

/// Resolve kAuto against actual file content (+ optionally the path's
/// extension). Sniffing order — first match wins, documented in
/// docs/FORMATS.md: (1) .dcg magic bytes; (2) a DIMACS 'c'/'p' marker on the
/// first non-blank line; (3) the path extension; (4) data-line count: a
/// numeric first line "a b" followed by exactly `a` data lines is METIS,
/// anything else is an edge list.
GraphFormat sniff_format(std::string_view buf, const std::string& path = "");

/// Parse `buf` as `fmt` (kAuto sniffs first). `what` names the source in
/// errors. Deterministic under `exec` (see file comment); throws CheckError
/// on any malformed input.
Graph parse_graph(std::string_view buf, GraphFormat fmt = GraphFormat::kAuto,
                  ExecContext exec = {}, const std::string& what = "<graph>");

/// Slurp + parse_graph. The one entry point CLI/sim callers need.
Graph read_graph_file(const std::string& path,
                      GraphFormat fmt = GraphFormat::kAuto,
                      ExecContext exec = {});

/// DIMACS parser/writer ("p edge" dialect, 1-indexed).
Graph parse_dimacs(std::string_view buf, ExecContext exec = {},
                   const std::string& what = "<dimacs>");
void write_dimacs(std::ostream& os, const Graph& g);

/// METIS adjacency parser/writer (unweighted, 1-indexed, symmetric).
Graph parse_metis(std::string_view buf, ExecContext exec = {},
                  const std::string& what = "<metis>");
void write_metis(std::ostream& os, const Graph& g);

// ---------------------------------------------------------------------------
// The .dcg binary CSR container.
// ---------------------------------------------------------------------------

/// 8-byte magic: "DCG1" + CRLF + ^Z + LF (the PNG trick — text-mode
/// transmission damage corrupts the tail bytes and is caught up front).
/// The format version is the '1'; an incompatible layout bumps it.
inline constexpr unsigned char kDcgMagic[8] = {'D',  'C',  'G',  '1',
                                               0x0d, 0x0a, 0x1a, 0x0a};

/// Serialized .dcg bytes of `g` (explicit little-endian, so the encoding is
/// platform-independent and byte-comparable in tests).
std::string dcg_bytes(const Graph& g);

/// Parse .dcg bytes. Validates magic, reserved flags, exact payload size,
/// the FNV-1a checksum, and — via Graph::from_csr — every structural CSR
/// invariant. Throws CheckError naming `what` on any violation.
Graph parse_dcg(std::string_view bytes, const std::string& what = "<dcg>");

/// Out-of-core read path: mmap a .dcg file and return a Graph whose CSR
/// arrays are views into the mapping (Graph::from_mapped_csr). Validated
/// eagerly: magic, header, exact file size, and the entire offsets array
/// (monotone, bounds; one sharded pass under `exec` that also computes the
/// degree bound). Validated lazily, per vertex block on first touch:
/// adjacency structure (sorted, in-range, loop-free) — see MappedCsr.
/// Deliberately NOT verified on this path, documented in docs/FORMATS.md:
/// the trailing FNV-1a checksum (sequential by construction — checking it
/// would fault in every page of a graph chosen to be larger than RAM; use
/// parse_dcg / `detcol convert` when end-to-end integrity matters more
/// than residency) and adjacency symmetry. Throws CheckError on any
/// violation; the returned Graph (and every copy) keeps the file mapped.
Graph map_dcg_file(const std::string& path, ExecContext exec = {});

void write_dcg_file(const std::string& path, const Graph& g);

/// Write `g` to `path` as `fmt` (kAuto resolves from the extension; an
/// unknown extension is a CheckError). .dcg opens the file in binary mode.
void write_graph_file(const std::string& path, const Graph& g,
                      GraphFormat fmt = GraphFormat::kAuto);

}  // namespace detcol
