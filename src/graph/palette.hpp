// Palette storage for list-coloring instances.
//
// A PaletteSet holds, for every node of the *original* graph, its current
// color palette as a sorted vector of color ids. The ColorReduce driver
// mutates palettes in exactly the two ways the paper allows:
//   * restrict-to-bin (Algorithm 2: keep only colors h2 maps to the bin), and
//   * remove-used (palette updates before coloring the last bin and G0).
// Storage comes in two modes behind one accessor surface (the same split
// Graph makes for owned vs mapped CSR):
//   * per-node  — every node owns its sorted vector (lists, deg1, or any
//                 set that has been mutated).
//   * shared-uniform — uniform()/delta_plus_one() sets, where every node's
//                 palette is the one immutable vector {0..k-1}. O(1) memory
//                 instead of Theta(nΔ), which is what lets the read-only
//                 pipelines (greedy, stats, verify) run on mmap-backed
//                 graphs far past RAM. The first mutating call materializes
//                 every node's own copy (whole-set copy-on-write) — the
//                 mutating pipelines genuinely need per-node palettes, so
//                 finer granularity would only complicate the hot accessors.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/function_ref.hpp"

namespace detcol {

class PaletteSet {
 public:
  PaletteSet() = default;
  explicit PaletteSet(std::vector<std::vector<Color>> palettes);

  /// Every node gets the same palette {0, ..., num_colors-1}: the classic
  /// (Δ+1)-coloring setup when num_colors = Δ+1. Stored shared-uniform
  /// (see file comment): O(num_colors) memory until the first mutation.
  static PaletteSet uniform(NodeId num_nodes, Color num_colors);

  /// (Δ+1)-coloring palettes for a given graph.
  static PaletteSet delta_plus_one(const Graph& g);

  /// (Δ+1)-list coloring: node v gets Δ+1 distinct colors drawn
  /// deterministically from [0, color_space) — identical (graph, space,
  /// seed) inputs always produce identical lists. Throws CheckError when
  /// color_space < Δ+1 (the list cannot be filled).
  static PaletteSet random_lists(const Graph& g, Color color_space,
                                 std::uint64_t seed);

  /// (deg+1)-list coloring: node v gets deg(v)+1 distinct colors from
  /// [0, color_space). Same determinism/throw contract as random_lists.
  static PaletteSet deg_plus_one_lists(const Graph& g, Color color_space,
                                       std::uint64_t seed);

  NodeId num_nodes() const {
    return shared_ ? shared_nodes_ : static_cast<NodeId>(pal_.size());
  }
  std::span<const Color> palette(NodeId v) const {
    return shared_ ? std::span<const Color>(*shared_)
                   : std::span<const Color>(pal_[v]);
  }
  std::size_t palette_size(NodeId v) const {
    return shared_ ? shared_->size() : pal_[v].size();
  }

  /// Total number of stored colors (the Theta(nΔ) term of Theorem 1.2).
  std::size_t total_size() const;

  /// Keep only the colors for which `keep` returns true. O(palette size);
  /// preserves sorted order, so downstream binary searches stay valid.
  void restrict(NodeId v, FunctionRef<bool(Color)> keep);

  /// Remove a single color (used-by-neighbor update). Returns true iff the
  /// color was present — i.e. the palette actually changed. The ColorReduce
  /// driver keys its palette-update message accounting off this, which keeps
  /// the ledger schedule-independent under parallel bin recursion (a color
  /// committed by a concurrent sibling bin belongs to a disjoint h2 class
  /// and can never be present here).
  bool remove_color(NodeId v, Color c);

  /// Drop colors from the back until the palette has at most `k` entries
  /// (Theorem 1.3: shrink to deg+1 before collecting).
  void truncate(NodeId v, std::size_t k);

  bool contains(NodeId v, Color c) const;

 private:
  /// Leave shared-uniform mode: give every node its own copy. Called by
  /// every mutator; no-op in per-node mode.
  void materialize();

  std::vector<std::vector<Color>> pal_;  // empty while shared_ is set
  // Shared-uniform mode: every node's palette is *shared_ ({0..k-1},
  // immutable — copies of the set alias it safely).
  std::shared_ptr<const std::vector<Color>> shared_;
  NodeId shared_nodes_ = 0;
};

}  // namespace detcol
