#include "graph/scalable_gen.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <system_error>
#include <vector>

#include "graph/formats.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

// The writer streams NodeId arrays as raw bytes; graph.cpp pins the same
// facts for the mmap read path, so both ends of the .dcg pipeline share one
// set of platform assumptions.
static_assert(std::endian::native == std::endian::little,
              "the streaming .dcg writer emits native arrays as little-endian");

namespace {

// ---------------------------------------------------------------------------
// Raw POSIX spill-file I/O. These are scratch files (not durable artifacts),
// so they bypass the atomic-write protocol deliberately; the *output* .dcg
// still goes through atomic_write_chunked.
// ---------------------------------------------------------------------------

void raw_append(const std::string& path, const void* data, std::size_t len) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  DC_CHECK(fd >= 0, path, ": cannot open spill file: ", std::strerror(errno));
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0) {
      const int saved = errno;
      ::close(fd);
      DC_CHECK(false, path, ": spill write failed: ", std::strerror(saved));
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  DC_CHECK(::close(fd) == 0, path, ": spill close failed");
}

template <typename T>
void raw_read_append(const std::string& path, std::vector<T>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  DC_CHECK(fd >= 0, path, ": cannot open spill file: ", std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    DC_CHECK(false, path, ": fstat failed: ", std::strerror(saved));
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  DC_CHECK(bytes % sizeof(T) == 0, path, ": torn spill file (", bytes,
           " bytes)");
  const std::size_t old = out->size();
  out->resize(old + bytes / sizeof(T));
  char* p = reinterpret_cast<char*>(out->data() + old);
  std::size_t left = bytes;
  while (left > 0) {
    const ssize_t r = ::read(fd, p, left);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      const int saved = errno;
      ::close(fd);
      DC_CHECK(false, path, ": spill read failed: ", std::strerror(saved));
    }
    p += r;
    left -= static_cast<std::size_t>(r);
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// ArcStore: chunked staging area between the producers and the writer.
//
// An arc (owner, other) is packed into one u64 (owner in the high half), so
// sorting a chunk's packed arcs IS the canonical (owner, other) CSR order.
// Producers append concurrently (one mutex; they batch through Flusher so
// the lock is cold); past the byte budget every bucket spills to a per-chunk
// temp file. After producers finish, finalize_chunk() sorts + dedups one
// chunk and converts it to its adjacency slice, which take_adj() later
// yields to the writer in file order. The spill decisions never change the
// output: sort+unique canonicalizes whatever interleaving produced.
// ---------------------------------------------------------------------------

constexpr NodeId kChunkVertices = 1u << 20;
constexpr std::size_t kFlushArcs = std::size_t{1} << 15;

class ArcStore {
 public:
  ArcStore(NodeId n, std::string spill_dir, std::size_t budget_bytes)
      : n_(n), spill_dir_(std::move(spill_dir)), budget_(budget_bytes) {
    chunks_ = (static_cast<std::size_t>(n) + kChunkVertices - 1) /
              kChunkVertices;
    if (chunks_ == 0) chunks_ = 1;
    raw_.resize(chunks_);
    adj_mem_.resize(chunks_);
    adj_on_disk_.assign(chunks_, 0);
    raw_spilled_.assign(chunks_, 0);
    // A crashed previous run may have left a stale spill dir; appending to
    // its files would corrupt this run, so clear it up front.
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  ~ArcStore() {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  ArcStore(const ArcStore&) = delete;
  ArcStore& operator=(const ArcStore&) = delete;

  std::size_t num_chunks() const { return chunks_; }

  /// Thread-safe bulk append of packed arcs (any mix of chunks).
  void append(const std::vector<std::uint64_t>& packed) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint64_t arc : packed) {
      raw_[static_cast<std::size_t>(arc >> 32) / kChunkVertices].push_back(
          arc);
    }
    mem_bytes_ += packed.size() * sizeof(std::uint64_t);
    if (mem_bytes_ > budget_) spill_locked();
  }

  /// Sort + dedup chunk `c`, bump `degrees[owner]` for every surviving arc
  /// (owners of distinct chunks are disjoint vertex ranges, so concurrent
  /// finalizes write disjoint slots), and stash the adjacency slice for
  /// take_adj. Call only after every producer has finished.
  void finalize_chunk(std::size_t c, NodeId* degrees) {
    std::vector<std::uint64_t> arcs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      arcs = std::move(raw_[c]);
    }
    if (raw_spilled_[c]) {
      raw_read_append(arc_path(c), &arcs);
      std::error_code ec;
      std::filesystem::remove(arc_path(c), ec);
    }
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    std::vector<NodeId> adj;
    adj.reserve(arcs.size());
    for (const std::uint64_t arc : arcs) {
      const auto owner = static_cast<NodeId>(arc >> 32);
      DC_ASSERT(owner / kChunkVertices == c && owner < n_);
      ++degrees[owner];
      adj.push_back(static_cast<NodeId>(arc & 0xffffffffu));
    }
    arcs = {};
    if (made_dir_) {  // this run spilled: keep finals out-of-core too
      if (!adj.empty()) {
        raw_append(adj_path(c), adj.data(), adj.size() * sizeof(NodeId));
      }
      adj_on_disk_[c] = 1;
    } else {
      adj_mem_[c] = std::move(adj);
    }
  }

  /// Surrender chunk `c`'s sorted adjacency slice (each chunk once).
  std::vector<NodeId> take_adj(std::size_t c) {
    if (adj_on_disk_[c]) {
      std::vector<NodeId> adj;
      if (std::filesystem::exists(adj_path(c))) {
        raw_read_append(adj_path(c), &adj);
      }
      return adj;
    }
    return std::move(adj_mem_[c]);
  }

 private:
  std::string arc_path(std::size_t c) const {
    return spill_dir_ + "/arcs." + std::to_string(c);
  }
  std::string adj_path(std::size_t c) const {
    return spill_dir_ + "/adj." + std::to_string(c);
  }

  void spill_locked() {
    if (!made_dir_) {
      std::filesystem::create_directories(spill_dir_);
      made_dir_ = true;
    }
    for (std::size_t c = 0; c < chunks_; ++c) {
      if (raw_[c].empty()) continue;
      raw_append(arc_path(c), raw_[c].data(),
                 raw_[c].size() * sizeof(std::uint64_t));
      raw_spilled_[c] = 1;
      std::vector<std::uint64_t>().swap(raw_[c]);
    }
    mem_bytes_ = 0;
  }

  NodeId n_;
  std::string spill_dir_;
  std::size_t budget_;
  std::size_t chunks_ = 0;
  std::mutex mu_;
  std::size_t mem_bytes_ = 0;
  bool made_dir_ = false;
  std::vector<std::vector<std::uint64_t>> raw_;
  std::vector<std::vector<NodeId>> adj_mem_;
  std::vector<char> adj_on_disk_;
  std::vector<char> raw_spilled_;
};

/// Shard-local emission buffer: batches arcs so ArcStore's mutex is taken
/// once per kFlushArcs arcs, not per arc.
class Flusher {
 public:
  explicit Flusher(ArcStore& store) : store_(store) {
    buf_.reserve(kFlushArcs);
  }
  void emit(NodeId owner, NodeId other) {
    buf_.push_back((std::uint64_t{owner} << 32) | other);
    if (buf_.size() >= kFlushArcs) flush();
  }
  void flush() {
    if (buf_.empty()) return;
    store_.append(buf_);
    buf_.clear();
  }

 private:
  ArcStore& store_;
  std::vector<std::uint64_t> buf_;
};

// ---------------------------------------------------------------------------
// Family producers. Every arc is emitted in both directions at the point
// the undirected edge is decided (or, for rgg, re-decided symmetrically by
// both endpoints' scans), so the deduped multiset is symmetric by
// construction — the invariant the .dcg contract requires and parse_dcg
// re-verifies on the eager path.
// ---------------------------------------------------------------------------

/// Hashed Batagelj–Brandes attachment target of edge `e`. The classic
/// algorithm stores every draw in an array M and copies M[r]; here M is
/// never materialized — an odd slot r is the target slot of edge (r-1)/2,
/// whose value this recursion re-derives from the hash stream. Expected
/// depth O(log e).
NodeId ba_target(std::uint64_t e, std::uint64_t d, std::uint64_t seed) {
  for (;;) {
    const std::uint64_t r = sub_seed(seed, e) % (2 * e + 1);
    if ((r & 1) == 0) return static_cast<NodeId>((r / 2) / d);
    e = (r - 1) / 2;
  }
}

void produce_ba(const ScalableGenSpec& spec, ExecContext exec,
                ArcStore& store) {
  DC_CHECK(spec.d >= 1, "ba generator needs d >= 1, got ", spec.d);
  const std::uint64_t edges = std::uint64_t{spec.n} * spec.d;
  parallel_for_shards(
      exec, edges,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        exec.check_deadline("scalable_gen.ba");
        Flusher out(store);
        for (std::uint64_t e = begin; e < end; ++e) {
          const auto s = static_cast<NodeId>(e / spec.d);
          const NodeId t = ba_target(e, spec.d, spec.seed);
          if (s == t) continue;  // self-attachment: dropped, like loops
          out.emit(s, t);
          out.emit(t, s);
        }
        out.flush();
      },
      /*grain=*/std::size_t{1} << 16);
}

double unit_coord(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void produce_rgg(const ScalableGenSpec& spec, ExecContext exec,
                 ArcStore& store) {
  DC_CHECK(spec.radius > 0.0 && spec.radius <= 1.0,
           "rgg generator needs radius in (0, 1], got ", spec.radius);
  const NodeId n = spec.n;
  // Cell side must stay >= radius (so neighbors live in the 3x3 block) and
  // the cell count O(n) (so the grid arrays stay linear in the input).
  std::uint64_t gs = static_cast<std::uint64_t>(1.0 / spec.radius);
  gs = std::max<std::uint64_t>(1, gs);
  gs = std::min(gs,
                static_cast<std::uint64_t>(
                    std::sqrt(static_cast<double>(n))) +
                    1);
  const auto coord = [&](NodeId v, double* px, double* py) {
    *px = unit_coord(sub_seed(spec.seed, 2 * std::uint64_t{v}));
    *py = unit_coord(sub_seed(spec.seed, 2 * std::uint64_t{v} + 1));
  };
  const auto cell_xy = [&](double x) {
    return std::min<std::uint64_t>(gs - 1,
                                   static_cast<std::uint64_t>(
                                       x * static_cast<double>(gs)));
  };
  const std::size_t cells = static_cast<std::size_t>(gs) * gs;
  std::vector<std::uint64_t> starts(cells + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    double x, y;
    coord(v, &x, &y);
    ++starts[cell_xy(y) * gs + cell_xy(x) + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) starts[c + 1] += starts[c];
  std::vector<NodeId> cell_nodes(n);
  {
    std::vector<std::uint64_t> cursor(starts.begin(), starts.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      double x, y;
      coord(v, &x, &y);
      cell_nodes[cursor[cell_xy(y) * gs + cell_xy(x)]++] = v;
    }
  }
  const double r2 = spec.radius * spec.radius;
  parallel_for_shards(
      exec, n,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        exec.check_deadline("scalable_gen.rgg");
        Flusher out(store);
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          double x, y;
          coord(v, &x, &y);
          const std::uint64_t cx = cell_xy(x), cy = cell_xy(y);
          const std::uint64_t x0 = cx > 0 ? cx - 1 : 0;
          const std::uint64_t x1 = std::min(gs - 1, cx + 1);
          const std::uint64_t y0 = cy > 0 ? cy - 1 : 0;
          const std::uint64_t y1 = std::min(gs - 1, cy + 1);
          for (std::uint64_t qy = y0; qy <= y1; ++qy) {
            for (std::uint64_t qx = x0; qx <= x1; ++qx) {
              const std::size_t cell = qy * gs + qx;
              for (std::uint64_t i = starts[cell]; i < starts[cell + 1];
                   ++i) {
                const NodeId w = cell_nodes[i];
                if (w == v) continue;
                double wx, wy;
                coord(w, &wx, &wy);
                const double dx = x - wx, dy = y - wy;
                if (dx * dx + dy * dy <= r2) out.emit(v, w);
              }
            }
          }
        }
        out.flush();
      },
      /*grain=*/std::size_t{1} << 12);
}

void produce_sgnm(const ScalableGenSpec& spec, ExecContext exec,
                  ArcStore& store) {
  parallel_for_shards(
      exec, spec.m,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        exec.check_deadline("scalable_gen.sgnm");
        Flusher out(store);
        for (std::uint64_t i = begin; i < end; ++i) {
          Xoshiro256 rng(sub_seed(spec.seed, i));
          const auto u = static_cast<NodeId>(rng.next_below(spec.n));
          const auto v = static_cast<NodeId>(rng.next_below(spec.n));
          if (u == v) continue;
          out.emit(u, v);
          out.emit(v, u);
        }
        out.flush();
      },
      /*grain=*/std::size_t{1} << 14);
}

void produce_sgnp(const ScalableGenSpec& spec, ExecContext exec,
                  ArcStore& store) {
  DC_CHECK(spec.p >= 0.0 && spec.p <= 1.0,
           "sgnp generator needs p in [0, 1], got ", spec.p);
  if (spec.p == 0.0) return;
  const NodeId n = spec.n;
  const double log1mp = std::log1p(-spec.p);  // -inf when p == 1
  parallel_for_shards(
      exec, n,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        exec.check_deadline("scalable_gen.sgnp");
        Flusher out(store);
        for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
          if (spec.p >= 1.0) {
            for (NodeId v = u + 1; v < n; ++v) {
              out.emit(u, v);
              out.emit(v, u);
            }
            continue;
          }
          // Geometric skipping over the row's upper triangle: one hashed
          // stream per row, same inverse-CDF scheme as gen_gnp.
          Xoshiro256 rng(sub_seed(spec.seed, u));
          std::uint64_t v = u;
          for (;;) {
            const double gap =
                std::floor(std::log1p(-rng.next_double()) / log1mp);
            if (gap >= static_cast<double>(n)) break;  // past the row
            v += 1 + static_cast<std::uint64_t>(gap);
            if (v >= n) break;
            out.emit(u, static_cast<NodeId>(v));
            out.emit(static_cast<NodeId>(v), u);
          }
        }
        out.flush();
      },
      /*grain=*/std::size_t{1} << 12);
}

// ---------------------------------------------------------------------------
// Streaming .dcg emission.
// ---------------------------------------------------------------------------

void append_le64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// ByteSink adapter that folds everything written through it into the
/// running FNV-1a the .dcg trailer stores — so the writer never needs the
/// whole payload in memory to checksum it.
class HashingSink {
 public:
  explicit HashingSink(ByteSink& out) : out_(out) {}
  void write(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ull;
    }
    out_.write(data, len);
  }
  void write(std::string_view bytes) { write(bytes.data(), bytes.size()); }
  std::uint64_t hash() const { return h_; }

 private:
  ByteSink& out_;
  std::uint64_t h_ = 14695981039346656037ull;
};

}  // namespace

const char* scalable_family_name(ScalableFamily family) {
  switch (family) {
    case ScalableFamily::kBarabasiAlbert: return "ba";
    case ScalableFamily::kGeometric: return "rgg";
    case ScalableFamily::kGnm: return "sgnm";
    case ScalableFamily::kGnp: return "sgnp";
  }
  return "?";
}

bool parse_scalable_family(std::string_view name, ScalableFamily* out) {
  if (name == "ba") *out = ScalableFamily::kBarabasiAlbert;
  else if (name == "rgg") *out = ScalableFamily::kGeometric;
  else if (name == "sgnm") *out = ScalableFamily::kGnm;
  else if (name == "sgnp") *out = ScalableFamily::kGnp;
  else return false;
  return true;
}

ScalableGenResult generate_scalable_dcg(const ScalableGenSpec& spec,
                                        const std::string& out_path,
                                        ExecContext exec,
                                        const ScalableGenOptions& options) {
  DC_CHECK(spec.n >= 1, "scalable generator needs n >= 1");
  ArcStore store(spec.n, out_path + ".spill", options.budget_bytes);
  switch (spec.family) {
    case ScalableFamily::kBarabasiAlbert: produce_ba(spec, exec, store); break;
    case ScalableFamily::kGeometric: produce_rgg(spec, exec, store); break;
    case ScalableFamily::kGnm: produce_sgnm(spec, exec, store); break;
    case ScalableFamily::kGnp: produce_sgnp(spec, exec, store); break;
  }

  // Sort + dedup every chunk (concurrently; disjoint degree slots), then
  // reduce the degree array — after this the adjacency slices are staged
  // and the header/offsets are fully determined.
  std::vector<NodeId> degrees(spec.n, 0);
  parallel_for_shards(
      exec, store.num_chunks(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          store.finalize_chunk(c, degrees.data());
        }
      },
      /*grain=*/1);
  std::uint64_t arcs = 0;
  NodeId max_degree = 0;
  for (const NodeId deg : degrees) {
    arcs += deg;
    max_degree = std::max(max_degree, deg);
  }
  DC_CHECK(arcs % 2 == 0,
           "internal: scalable generator emitted an asymmetric arc multiset");
  const std::uint64_t m = arcs / 2;

  atomic_write_chunked(out_path, [&](ByteSink& raw) {
    HashingSink sink(raw);
    std::string buf;
    buf.reserve(std::size_t{1} << 20);
    buf.append(reinterpret_cast<const char*>(kDcgMagic), sizeof(kDcgMagic));
    append_le64(&buf, spec.n);
    append_le64(&buf, m);
    append_le64(&buf, 0);  // flags
    // Offsets: running prefix sum over the degree array, flushed in ~1MB
    // slabs — the only whole-graph array the writer keeps is `degrees`
    // (4 bytes/vertex), never the 8-byte offsets.
    std::uint64_t running = 0;
    append_le64(&buf, running);
    for (NodeId v = 0; v < spec.n; ++v) {
      running += degrees[v];
      append_le64(&buf, running);
      if (buf.size() >= (std::size_t{1} << 20)) {
        sink.write(buf);
        buf.clear();
      }
    }
    sink.write(buf);
    // Adjacency: chunks loaded (from RAM or spill) in parallel but written
    // strictly in file order.
    parallel_ordered_chunks<std::vector<NodeId>>(
        exec, store.num_chunks(),
        [&](std::size_t c) { return store.take_adj(c); },
        [&](std::size_t, std::vector<NodeId>&& adj) {
          sink.write(adj.data(), adj.size() * sizeof(NodeId));
        });
    std::string tail;
    append_le64(&tail, sink.hash());
    raw.write(tail);  // the trailer is not part of its own checksum
  });
  return {spec.n, m, max_degree};
}

}  // namespace detcol
