#include "sim/mpc_costs.hpp"

#include <algorithm>
#include <vector>

namespace detcol {
namespace {

/// Everything except the ledger: peaks max, counters add. Shared by both
/// compositions — only the ledger distinguishes sequential from parallel.
void fold_scalars(MpcCosts& acc, const MpcCosts& other) {
  acc.peak_local_words = std::max(acc.peak_local_words, other.peak_local_words);
  acc.peak_total_words = std::max(acc.peak_total_words, other.peak_total_words);
  acc.num_sorts += other.num_sorts;
  acc.num_prefix_sums += other.num_prefix_sums;
  acc.num_routes += other.num_routes;
  acc.num_gathers += other.num_gathers;
  acc.num_broadcasts += other.num_broadcasts;
  acc.num_aggregates += other.num_aggregates;
  acc.num_collects += other.num_collects;
}

}  // namespace

void MpcCosts::merge(const MpcCosts& other) {
  ledger.merge_sequential(other.ledger);
  fold_scalars(*this, other);
}

void MpcCosts::merge_parallel(std::span<const MpcCosts> group) {
  std::vector<RoundLedger> ledgers;
  ledgers.reserve(group.size());
  for (const MpcCosts& g : group) ledgers.push_back(g.ledger);
  ledger.merge_parallel(ledgers);
  for (const MpcCosts& g : group) fold_scalars(*this, g);
}

void MpcCosts::note_resident(std::uint64_t local_words,
                             std::uint64_t total_words) {
  peak_local_words = std::max(peak_local_words, local_words);
  peak_total_words = std::max(peak_total_words, total_words);
}

}  // namespace detcol
