#include "sim/clique_sim.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {

CliqueModel::CliqueModel(std::uint64_t n, CliqueCosts costs, double route_slack,
                         double collect_slack)
    : n_(n),
      costs_(costs),
      route_slack_(route_slack),
      collect_slack_(collect_slack) {
  DC_CHECK(n >= 1, "clique needs at least one node");
  DC_CHECK(route_slack >= 1.0, "route slack must be >= 1");
  DC_CHECK(collect_slack >= 1.0, "collect slack must be >= 1");
}

std::uint64_t CliqueModel::collect_capacity() const {
  return static_cast<std::uint64_t>(collect_slack_ * static_cast<double>(n_));
}

std::uint64_t CliqueModel::route_capacity() const {
  return static_cast<std::uint64_t>(route_slack_ * static_cast<double>(n_));
}

void CliqueModel::lenzen_route(std::uint64_t total_words,
                               std::uint64_t max_words_per_node,
                               const std::string& phase, MpcCosts& acc) const {
  DC_CHECK(max_words_per_node <= route_capacity(),
           "Lenzen routing precondition violated: node moves ",
           max_words_per_node, " words but capacity is ", route_capacity());
  acc.ledger.charge(phase, costs_.lenzen_route, total_words);
  ++acc.num_routes;
}

void CliqueModel::broadcast(std::uint64_t words, const std::string& phase,
                            MpcCosts& acc) const {
  // Payloads up to n words: spread word i to node i, then everyone
  // rebroadcasts — the standard 2-round doubling trick. Larger payloads
  // repeat the pattern.
  const std::uint64_t reps = std::max<std::uint64_t>(1, ceil_div(words, n_));
  acc.ledger.charge(phase, costs_.broadcast * reps, words * n_);
  ++acc.num_broadcasts;
}

void CliqueModel::aggregate(std::uint64_t candidates, const std::string& phase,
                            MpcCosts& acc) const {
  DC_CHECK(candidates >= 1, "aggregate needs at least one value");
  // Node i is responsible for candidate i; everyone sends its contribution
  // for candidate i to node i (1 round, each node sends <= candidates <= n
  // words), then results are rebroadcast (1 round).
  const std::uint64_t reps =
      std::max<std::uint64_t>(1, ceil_div(candidates, n_));
  acc.ledger.charge(phase, costs_.aggregate * reps, candidates * n_);
  ++acc.num_aggregates;
}

void CliqueModel::collect(std::uint64_t words, const std::string& phase,
                          MpcCosts& acc) const {
  DC_CHECK(words <= collect_capacity(),
           "collect of ", words, " words exceeds single-machine capacity ",
           collect_capacity(),
           " — the 'size O(n)' precondition of Algorithm 1 is violated");
  acc.peak_local_words = std::max(acc.peak_local_words, words);
  acc.ledger.charge(phase, costs_.lenzen_route, words);
  ++acc.num_collects;
}

}  // namespace detcol
