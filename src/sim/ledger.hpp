// Round/traffic accounting for simulated CONGESTED CLIQUE and MPC runs.
//
// The theorems we reproduce are statements about rounds, bandwidth and space,
// not wall-clock time. Algorithms charge every communication step to a
// RoundLedger; parallel recursive calls compose with `max` over rounds (they
// run simultaneously in the model) while sequential phases add up.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace detcol {

struct PhaseCost {
  std::uint64_t rounds = 0;
  std::uint64_t words = 0;  // total message words moved in this phase
};

class RoundLedger {
 public:
  /// Charge `rounds` rounds (and optionally message words) to a named phase.
  void charge(const std::string& phase, std::uint64_t rounds,
              std::uint64_t words = 0);

  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t total_words() const { return total_words_; }
  const std::map<std::string, PhaseCost>& by_phase() const { return phases_; }

  /// Append another ledger after this one (sequential composition).
  void merge_sequential(const RoundLedger& other);

  /// Compose a group of ledgers that ran in parallel: rounds advance by the
  /// maximum (critical path), words by the sum. Phase attribution follows
  /// the critical-path child; other children's words are folded into their
  /// phases with zero additional rounds.
  void merge_parallel(std::span<const RoundLedger> group);

  /// Render a per-phase summary (for benches/examples).
  std::string summary() const;

 private:
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_words_ = 0;
  std::map<std::string, PhaseCost> phases_;
};

}  // namespace detcol
