#include "sim/mpc_sim.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {

MpcModel::MpcModel(std::uint64_t local_space, std::uint64_t total_space,
                   MpcOpCosts costs)
    : local_space_(local_space), total_space_(total_space), costs_(costs) {
  DC_CHECK(local_space >= 1, "machine needs space");
  DC_CHECK(total_space >= local_space, "total space below local space");
}

void MpcModel::sort(std::uint64_t items, const std::string& phase,
                    MpcCosts& acc) const {
  DC_CHECK(items <= total_space_, "sort input of ", items,
           " words exceeds total space ", total_space_);
  acc.ledger.charge(phase, costs_.sort, items);
  ++acc.num_sorts;
}

void MpcModel::prefix_sum(std::uint64_t items, const std::string& phase,
                          MpcCosts& acc, std::uint64_t concurrent) const {
  const std::uint64_t volume = items * std::max<std::uint64_t>(1, concurrent);
  DC_CHECK(volume <= total_space_, "prefix-sum volume ", volume,
           " exceeds total space ", total_space_);
  acc.ledger.charge(phase, costs_.prefix_sum, volume);
  ++acc.num_prefix_sums;
}

void MpcModel::route(std::uint64_t total_words,
                     std::uint64_t max_words_per_machine,
                     const std::string& phase, MpcCosts& acc) const {
  DC_CHECK(max_words_per_machine <= local_space_,
           "machine traffic ", max_words_per_machine,
           " exceeds local space ", local_space_);
  DC_CHECK(total_words <= total_space_, "route volume exceeds total space");
  acc.ledger.charge(phase, costs_.route, total_words);
  ++acc.num_routes;
}

void MpcModel::gather(std::uint64_t words, const std::string& phase,
                      MpcCosts& acc) const {
  DC_CHECK(words <= local_space_, "gather of ", words,
           " words exceeds local space ", local_space_,
           " — instance too large for one machine");
  acc.peak_local_words = std::max(acc.peak_local_words, words);
  acc.ledger.charge(phase, costs_.gather, words);
  ++acc.num_gathers;
}

void MpcModel::note_resident(std::uint64_t local_words,
                             std::uint64_t total_words, MpcCosts& acc) const {
  DC_CHECK(local_words <= local_space_, "resident local footprint ",
           local_words, " exceeds local space ", local_space_);
  DC_CHECK(total_words <= total_space_, "resident global footprint ",
           total_words, " exceeds total space ", total_space_);
  acc.note_resident(local_words, total_words);
}

}  // namespace detcol
