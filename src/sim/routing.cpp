#include "sim/routing.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace detcol {
namespace cc {

std::pair<std::uint64_t, std::uint64_t> load_of(
    std::uint32_t n, const std::vector<Packet>& packets) {
  std::vector<std::uint64_t> send(n, 0), recv(n, 0);
  for (const auto& p : packets) {
    DC_CHECK(p.src < n && p.dst < n, "packet endpoint out of range");
    ++send[p.src];
    ++recv[p.dst];
  }
  const auto ms = *std::max_element(send.begin(), send.end());
  const auto mr = *std::max_element(recv.begin(), recv.end());
  return {ms, mr};
}

RouteResult route_packets(Network& net, const std::vector<Packet>& packets) {
  const std::uint32_t n = net.n();
  RouteResult result;
  result.delivered.resize(n);
  if (packets.empty()) return result;
  DC_CHECK(n >= 2, "routing needs at least two nodes");

  // The network carries one word per link per round; we use the payload as
  // an index into `packets` (headers ride along out of band, with the
  // bandwidth cost of the real word still enforced by net.send).

  // ---- Phase 1: spread. Sender v forwards its k-th packet to the
  // intermediary (v + 1 + (k mod (n-1))). One sweep per ceil(load/(n-1)).
  std::vector<std::vector<std::uint64_t>> outbox(n);  // packet indices
  for (std::uint64_t i = 0; i < packets.size(); ++i) {
    outbox[packets[i].src].push_back(i);
  }
  // inter_queue[w] = packets parked at intermediary w.
  std::vector<std::deque<std::uint64_t>> inter_queue(n);
  std::uint64_t max_send = 0;
  for (const auto& o : outbox) max_send = std::max<std::uint64_t>(max_send, o.size());
  const std::uint64_t sweeps = (max_send + n - 2) / (n - 1);
  for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
    bool any = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const auto& o = outbox[v];
      for (std::uint64_t k = sweep * (n - 1);
           k < std::min<std::uint64_t>(o.size(), (sweep + 1) * (n - 1));
           ++k) {
        const std::uint32_t w =
            static_cast<std::uint32_t>((v + 1 + (k % (n - 1))) % n);
        if (w == v) continue;  // cannot happen by construction
        net.send(v, w, o[k]);
        any = true;
      }
    }
    if (any) {
      net.deliver();
      ++result.phase1_rounds;
      for (std::uint32_t w = 0; w < n; ++w) {
        for (const auto& msg : net.inbox(w)) {
          inter_queue[w].push_back(msg.payload);
        }
      }
    }
  }

  // ---- Phase 2: forward. Each intermediary sends, per round, at most one
  // packet to each destination; rounds repeat until all queues drain.
  bool pending = true;
  while (pending) {
    pending = false;
    bool sent_any = false;
    for (std::uint32_t w = 0; w < n; ++w) {
      auto& q = inter_queue[w];
      std::vector<char> dst_used(n, 0);
      std::deque<std::uint64_t> rest;
      while (!q.empty()) {
        const std::uint64_t idx = q.front();
        q.pop_front();
        const std::uint32_t d = packets[idx].dst;
        if (d == w) {
          // Already at destination (intermediary == destination).
          result.delivered[d].push_back(packets[idx]);
          continue;
        }
        if (dst_used[d]) {
          rest.push_back(idx);  // link budget for this round exhausted
        } else {
          dst_used[d] = 1;
          net.send(w, d, idx);
          sent_any = true;
        }
      }
      q = std::move(rest);
      if (!q.empty()) pending = true;
    }
    if (sent_any) {
      net.deliver();
      ++result.phase2_rounds;
      for (std::uint32_t d = 0; d < n; ++d) {
        for (const auto& msg : net.inbox(d)) {
          result.delivered[d].push_back(packets[msg.payload]);
        }
      }
    } else if (pending) {
      DC_CHECK(false, "routing stalled — internal scheduling bug");
    }
  }

  result.rounds = result.phase1_rounds + result.phase2_rounds;
  return result;
}

}  // namespace cc
}  // namespace detcol
