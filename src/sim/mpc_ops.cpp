#include "sim/mpc_ops.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace detcol {
namespace mpc {

std::uint64_t Distribution::total_items() const {
  std::uint64_t t = 0;
  for (const auto& m : machine) t += m.size();
  return t;
}

std::vector<std::uint64_t> Distribution::gather() const {
  std::vector<std::uint64_t> out;
  out.reserve(total_items());
  for (const auto& m : machine) {
    out.insert(out.end(), m.begin(), m.end());
  }
  return out;
}

Distribution distribute(const std::vector<std::uint64_t>& items,
                        std::uint64_t local_space) {
  DC_CHECK(local_space >= 8, "machines too small to be useful");
  Distribution d;
  d.local_space = local_space;
  const std::uint64_t cap = local_space / 2;
  const std::uint64_t machines =
      std::max<std::uint64_t>(1, ceil_div(items.size(), cap));
  d.machine.resize(machines);
  for (std::uint64_t i = 0; i < items.size(); ++i) {
    d.machine[i % machines].push_back(items[i]);
  }
  for (const auto& m : d.machine) {
    DC_CHECK(m.size() <= cap, "distribution overflow");
  }
  return d;
}

std::uint64_t sample_sort(Distribution& dist, const MpcModel& model,
                          MpcCosts& acc) {
  const std::uint64_t p = dist.num_machines();
  if (dist.total_items() == 0) return 0;
  std::uint64_t rounds = 0;

  // Local sort (free: local computation).
  for (auto& m : dist.machine) std::sort(m.begin(), m.end());
  if (p == 1) return rounds;

  // Regular sampling: each machine contributes p evenly spaced samples.
  std::vector<std::uint64_t> samples;
  for (const auto& m : dist.machine) {
    if (m.empty()) continue;
    for (std::uint64_t k = 0; k < p; ++k) {
      samples.push_back(m[(k * m.size()) / p]);
    }
  }
  // Samples fit one machine (p^2 <= local_space required for sample sort).
  DC_CHECK(samples.size() <= dist.local_space,
           "sample set exceeds machine space — too many machines for s");
  model.route(samples.size(), samples.size(), "sort-sample", acc);
  ++rounds;
  std::sort(samples.begin(), samples.end());
  std::vector<std::uint64_t> splitters;  // p-1 splitters
  for (std::uint64_t k = 1; k < p; ++k) {
    splitters.push_back(samples[(k * samples.size()) / p]);
  }
  model.route(splitters.size() * p, splitters.size(), "sort-splitters", acc);
  ++rounds;

  // Bucket exchange: key goes to the bucket of the first splitter >= key.
  std::vector<std::vector<std::uint64_t>> buckets(p);
  for (const auto& m : dist.machine) {
    for (const auto x : m) {
      const auto it =
          std::upper_bound(splitters.begin(), splitters.end(), x);
      buckets[static_cast<std::uint64_t>(
                  std::distance(splitters.begin(), it))]
          .push_back(x);
    }
  }
  std::uint64_t moved = 0, max_bucket = 0;
  for (const auto& b : buckets) {
    moved += b.size();
    max_bucket = std::max<std::uint64_t>(max_bucket, b.size());
  }
  // Regular sampling guarantees every bucket fits in ~2N/p <= local_space.
  DC_CHECK(max_bucket <= dist.local_space,
           "bucket of ", max_bucket, " exceeds machine space ",
           dist.local_space, " — skewed keys beyond sample-sort guarantee");
  model.route(moved, max_bucket, "sort-exchange", acc);
  ++rounds;

  for (std::uint64_t i = 0; i < p; ++i) {
    std::sort(buckets[i].begin(), buckets[i].end());
    dist.machine[i] = std::move(buckets[i]);
  }
  return rounds;
}

std::vector<std::uint64_t> machine_prefix_sums(const Distribution& dist,
                                               const MpcModel& model,
                                               MpcCosts& acc) {
  const std::uint64_t p = dist.num_machines();
  std::vector<std::uint64_t> subtotal(p, 0);
  for (std::uint64_t i = 0; i < p; ++i) {
    for (const auto x : dist.machine[i]) subtotal[i] += x;
  }
  // Converge-cast subtotals to machine 0 (must fit: p <= local_space),
  // then broadcast exclusive prefixes back.
  DC_CHECK(p <= dist.local_space, "too many machines for one aggregator");
  model.route(p, p, "prefix-up", acc);
  std::vector<std::uint64_t> prefix(p, 0);
  for (std::uint64_t i = 1; i < p; ++i) {
    prefix[i] = prefix[i - 1] + subtotal[i - 1];
  }
  model.route(p, p, "prefix-down", acc);
  return prefix;
}

}  // namespace mpc
}  // namespace detcol
