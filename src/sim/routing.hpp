// Message-level balanced routing on the cc::Network — a working model of
// Lenzen's routing theorem [15] at true per-link granularity.
//
// Lenzen's result: any pattern in which every node sends and receives O(n)
// words can be delivered in O(1) rounds of the CONGESTED CLIQUE. The costed
// CliqueSim consumes that as a black box; this module *implements* a
// deterministic two-phase balanced scheme (send via spread-out
// intermediaries, then forward to destinations) on the bandwidth-enforcing
// network, so tests can observe the O(1)-round behaviour for balanced loads
// and the graceful degradation for skewed ones.
//
// The scheme is the classical Valiant-style two-phase (deterministic
// variant): sender v forwards its k-th packet to intermediary (v+k+1) mod n,
// which then forwards it to the true destination. For loads with
// send/receive degree <= n it completes in a small constant number of
// rounds; heavier loads take proportionally longer, which the return value
// reports.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace detcol {
namespace cc {

struct Packet {
  std::uint32_t src;
  std::uint32_t dst;
  std::uint64_t payload;
};

struct RouteResult {
  /// Packets delivered, grouped by destination (order within a destination
  /// is deterministic but unspecified).
  std::vector<std::vector<Packet>> delivered;
  std::uint64_t rounds = 0;        // network rounds consumed
  std::uint64_t phase1_rounds = 0; // spread to intermediaries
  std::uint64_t phase2_rounds = 0; // forward to destinations
};

/// Route an arbitrary packet multiset through `net`. Every packet's src/dst
/// must be < net.n(). The network's per-link bandwidth is respected exactly
/// (violations would throw; the scheme schedules around them instead).
RouteResult route_packets(Network& net, const std::vector<Packet>& packets);

/// Convenience check used by tests: the maximum send and receive load of a
/// packet set (Lenzen's precondition is max <= c*n).
std::pair<std::uint64_t, std::uint64_t> load_of(
    std::uint32_t n, const std::vector<Packet>& packets);

}  // namespace cc
}  // namespace detcol
