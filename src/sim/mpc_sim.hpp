// Costed Massively Parallel Computation model.
//
// MPC (Section 1.1): M machines with s words of local space each; per round,
// each machine's total in+out traffic must fit in s. The paper relies on the
// MapReduce-era primitives of Goodrich et al. [11] (Lemma 2.1): sorting and
// prefix sums of N items in O(1) rounds with s = N^delta space per machine.
//
// The model is split along the instance/run-state boundary: MpcModel is
// immutable (space parameters + contract checks, shared read-only by any
// number of tasks); every op charges its contract cost into a caller-owned
// MpcCosts accumulator (sim/mpc_costs.hpp). Tasks therefore account
// concurrently without locks and merge their accumulators deterministically
// at join points.
#pragma once

#include <cstdint>
#include <string>

#include "sim/mpc_costs.hpp"

namespace detcol {

/// Round costs of the MPC primitives — the constants of the black-box
/// results the paper builds on, configurable so ablations can study their
/// impact on the theorem constants.
struct MpcOpCosts {
  std::uint64_t sort = 3;        // Lemma 2.1 via [11]
  std::uint64_t prefix_sum = 2;  // Lemma 2.1
  std::uint64_t route = 1;       // arbitrary pattern within space bounds
  std::uint64_t gather = 2;      // collect an instance onto one machine
};

/// Immutable MPC space model. Every method is const: it validates the op's
/// space precondition against the fixed parameters and charges the contract
/// cost (rounds, words, peaks) into `acc`.
class MpcModel {
 public:
  /// `local_space` = s in words; `total_space` = M*s in words.
  MpcModel(std::uint64_t local_space, std::uint64_t total_space,
           MpcOpCosts costs = {});

  std::uint64_t local_space() const { return local_space_; }
  std::uint64_t total_space() const { return total_space_; }

  /// Sort `items` records distributed across machines (Lemma 2.1).
  void sort(std::uint64_t items, const std::string& phase,
            MpcCosts& acc) const;

  /// Prefix sums over `items` values; `concurrent` independent instances run
  /// side by side (Section 2.1: n^Omega(1) simultaneous aggregations).
  void prefix_sum(std::uint64_t items, const std::string& phase, MpcCosts& acc,
                  std::uint64_t concurrent = 1) const;

  /// Arbitrary routing of `total_words`, no machine sending/receiving more
  /// than `max_words_per_machine`.
  void route(std::uint64_t total_words, std::uint64_t max_words_per_machine,
             const std::string& phase, MpcCosts& acc) const;

  /// Collect `words` onto one machine (must fit in local space).
  void gather(std::uint64_t words, const std::string& phase,
              MpcCosts& acc) const;

  /// Record a data-at-rest footprint; enforces the global space bound and
  /// tracks the peak (Theorems 1.2-1.4 space accounting).
  void note_resident(std::uint64_t local_words, std::uint64_t total_words,
                     MpcCosts& acc) const;

 private:
  std::uint64_t local_space_;
  std::uint64_t total_space_;
  MpcOpCosts costs_;
};

}  // namespace detcol
