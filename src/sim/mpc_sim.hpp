// Costed Massively Parallel Computation simulator.
//
// MPC (Section 1.1): M machines with s words of local space each; per round,
// each machine's total in+out traffic must fit in s. The paper relies on the
// MapReduce-era primitives of Goodrich et al. [11] (Lemma 2.1): sorting and
// prefix sums of N items in O(1) rounds with s = N^delta space per machine.
// Each primitive here enforces its space precondition and charges its
// contract cost.
#pragma once

#include <cstdint>
#include <string>

#include "sim/ledger.hpp"

namespace detcol {

struct MpcCosts {
  std::uint64_t sort = 3;        // Lemma 2.1 via [11]
  std::uint64_t prefix_sum = 2;  // Lemma 2.1
  std::uint64_t route = 1;       // arbitrary pattern within space bounds
  std::uint64_t gather = 2;      // collect an instance onto one machine
};

class MpcSim {
 public:
  /// `local_space` = s in words; `total_space` = M*s in words.
  MpcSim(std::uint64_t local_space, std::uint64_t total_space,
         MpcCosts costs = {});

  std::uint64_t local_space() const { return local_space_; }
  std::uint64_t total_space() const { return total_space_; }

  /// Sort `items` records distributed across machines (Lemma 2.1).
  void sort(std::uint64_t items, const std::string& phase);

  /// Prefix sums over `items` values; `concurrent` independent instances run
  /// side by side (Section 2.1: n^Omega(1) simultaneous aggregations).
  void prefix_sum(std::uint64_t items, const std::string& phase,
                  std::uint64_t concurrent = 1);

  /// Arbitrary routing of `total_words`, no machine sending/receiving more
  /// than `max_words_per_machine`.
  void route(std::uint64_t total_words, std::uint64_t max_words_per_machine,
             const std::string& phase);

  /// Collect `words` onto one machine (must fit in local space).
  void gather(std::uint64_t words, const std::string& phase);

  /// Record a data-at-rest footprint; enforces the global space bound and
  /// tracks the peak (Theorems 1.2-1.4 space accounting).
  void note_resident(std::uint64_t local_words, std::uint64_t total_words);

  std::uint64_t peak_local_words() const { return peak_local_; }
  std::uint64_t peak_total_words() const { return peak_total_; }

  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }

 private:
  std::uint64_t local_space_;
  std::uint64_t total_space_;
  MpcCosts costs_;
  std::uint64_t peak_local_ = 0;
  std::uint64_t peak_total_ = 0;
  RoundLedger ledger_;
};

}  // namespace detcol
