#include "sim/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {
namespace cc {

Network::Network(std::uint32_t n, std::uint32_t bandwidth_words)
    : n_(n),
      bandwidth_(bandwidth_words),
      pending_(n),
      inboxes_(n),
      link_use_(static_cast<std::size_t>(n) * n, 0) {
  DC_CHECK(n >= 1, "network needs nodes");
  DC_CHECK(bandwidth_words >= 1, "bandwidth must be at least one word");
}

void Network::send(std::uint32_t src, std::uint32_t dst,
                   std::uint64_t payload) {
  DC_CHECK(src < n_ && dst < n_, "send endpoint out of range");
  DC_CHECK(src != dst, "self-sends are local computation, not messages");
  auto& use = link_use_[static_cast<std::size_t>(src) * n_ + dst];
  DC_CHECK(use < bandwidth_, "bandwidth exceeded on link ", src, "->", dst,
           " in round ", round_ + 1);
  ++use;
  pending_[dst].push_back({src, payload});
  ++total_words_;
}

void Network::deliver() {
  for (std::uint32_t v = 0; v < n_; ++v) {
    inboxes_[v] = std::move(pending_[v]);
    pending_[v].clear();
  }
  std::fill(link_use_.begin(), link_use_.end(), 0);
  ++round_;
}

std::span<const Message> Network::inbox(std::uint32_t v) const {
  DC_CHECK(v < n_, "inbox out of range");
  return inboxes_[v];
}

void Network::broadcast_one(std::uint32_t root, std::uint64_t value) {
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (v != root) send(root, v, value);
  }
  deliver();
}

std::uint64_t Network::all_sum(std::span<const std::uint64_t> values) {
  DC_CHECK(values.size() == n_, "one value per node required");
  // Converge-cast to node 0.
  for (std::uint32_t v = 1; v < n_; ++v) send(v, 0, values[v]);
  deliver();
  std::uint64_t sum = values[0];
  for (const auto& m : inbox(0)) sum += m.payload;
  broadcast_one(0, sum);
  return sum;
}

std::uint64_t Network::all_min(std::span<const std::uint64_t> values) {
  DC_CHECK(values.size() == n_, "one value per node required");
  for (std::uint32_t v = 1; v < n_; ++v) send(v, 0, values[v]);
  deliver();
  std::uint64_t mn = values[0];
  for (const auto& m : inbox(0)) mn = std::min(mn, m.payload);
  broadcast_one(0, mn);
  return mn;
}

}  // namespace cc
}  // namespace detcol
