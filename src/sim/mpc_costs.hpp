// Per-task cost accumulator for the costed CONGESTED CLIQUE / MPC models.
//
// State-ownership contract (docs/ARCHITECTURE.md, "State ownership &
// determinism"): the immutable models (MpcModel, CliqueModel) hold the space
// parameters and contract checks and are shared read-only by any number of
// tasks; every pool task owns one MpcCosts privately and charges into it
// without synchronization. Join points fold the per-task accumulators in a
// fixed order (bin/shard index), so every counter — rounds, words, peaks,
// op counts — is bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <span>

#include "sim/ledger.hpp"

namespace detcol {

/// Value-type run-state accumulator: a ledger plus space peaks and op
/// counters. Default-constructed it is the identity of merge(); merge() is
/// associative (ledger phases add, peaks max, counters add), so any fixed
/// fold order over per-task accumulators yields the same result as the
/// serial schedule.
struct MpcCosts {
  RoundLedger ledger;
  std::uint64_t peak_local_words = 0;  // max words resident on one machine
  std::uint64_t peak_total_words = 0;  // max words resident across machines
  std::uint64_t num_sorts = 0;
  std::uint64_t num_prefix_sums = 0;
  std::uint64_t num_routes = 0;
  std::uint64_t num_gathers = 0;
  std::uint64_t num_broadcasts = 0;
  std::uint64_t num_aggregates = 0;
  std::uint64_t num_collects = 0;

  /// Sequential composition: append `other` after this accumulator. Ledger
  /// rounds and words add per phase, peaks fold by max, op counters add.
  /// Associative with the default-constructed accumulator as identity.
  void merge(const MpcCosts& other);

  /// Fork/join composition of a group of accumulators that ran in parallel
  /// in the model: ledger rounds advance by the critical path (words sum;
  /// see RoundLedger::merge_parallel), peaks fold by max, counters add.
  /// The group is folded in index order.
  void merge_parallel(std::span<const MpcCosts> group);

  /// Fold a data-at-rest footprint into the peaks without a model's space
  /// contract (standalone baselines that have no MPC space parameters; the
  /// checked path is MpcModel::note_resident).
  void note_resident(std::uint64_t local_words, std::uint64_t total_words);
};

}  // namespace detcol
