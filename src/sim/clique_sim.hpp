// Costed CONGESTED CLIQUE model.
//
// The model (Section 1.1): n nodes, synchronous rounds, each ordered pair can
// exchange one O(log n)-bit word per round; local computation is unbounded.
// Lenzen's routing [15] lets any communication pattern where every node sends
// and receives O(n) words complete in O(1) rounds — the paper (Section 2.1)
// consumes routing, sorting and prefix sums as black boxes with exactly these
// guarantees, and so do we: each primitive *enforces its precondition* and
// charges its contract cost.
//
// Like MpcModel, the model is split along the instance/run-state boundary:
// CliqueModel is immutable (n, cost constants, slack parameters) and shared
// read-only; every op charges into a caller-owned MpcCosts accumulator, so
// concurrent recursion branches account without locks and merge their
// accumulators in a fixed order at join points.
#pragma once

#include <cstdint>
#include <string>

#include "sim/mpc_costs.hpp"

namespace detcol {

/// Round costs of the communication primitives. These are the constants of
/// the black-box results the paper builds on; they are configurable so that
/// ablations can study their impact on the constant in Theorem 1.1.
struct CliqueCosts {
  std::uint64_t lenzen_route = 2;   // [15]: O(1); 2 in the common statement
  std::uint64_t broadcast = 2;      // distribute + rebroadcast
  std::uint64_t aggregate = 2;      // converge-cast a sum/min/max
};

/// Immutable CONGESTED CLIQUE model: every method is const, validates the
/// op's precondition against the fixed parameters and charges the contract
/// cost into `acc`. collect() folds its instance size into
/// `acc.peak_local_words` (the peak single-machine footprint).
class CliqueModel {
 public:
  /// `n` is the number of nodes of the input graph = number of machines.
  /// `route_slack` is the constant in Lenzen's O(n) send/receive bound;
  /// `collect_slack` the constant in the O(n)-words single-machine space
  /// bound (graph words + deg+1-truncated palettes of a collected instance).
  explicit CliqueModel(std::uint64_t n, CliqueCosts costs = {},
                       double route_slack = 16.0, double collect_slack = 16.0);

  std::uint64_t n() const { return n_; }

  /// Route an arbitrary message pattern: total `total_words` words, with no
  /// node sending or receiving more than `max_words_per_node`. Enforces the
  /// Lenzen precondition max_words_per_node <= route_slack * n.
  void lenzen_route(std::uint64_t total_words,
                    std::uint64_t max_words_per_node, const std::string& phase,
                    MpcCosts& acc) const;

  /// One node distributes `words` words to everyone (words <= n per the
  /// doubling broadcast; larger payloads charge proportionally).
  void broadcast(std::uint64_t words, const std::string& phase,
                 MpcCosts& acc) const;

  /// Global aggregation (sum/min/...) of `values` per-node contributions,
  /// e.g. the conditional-expectation sums of Section 2.4. `candidates`
  /// parallel aggregations share the same rounds as long as candidates <= n.
  void aggregate(std::uint64_t candidates, const std::string& phase,
                 MpcCosts& acc) const;

  /// Collect an instance of `words` words onto a single node. Enforces the
  /// O(n) local-space bound (the "size O(n)" branch of Algorithm 1).
  void collect(std::uint64_t words, const std::string& phase,
               MpcCosts& acc) const;

  /// Capacity available to collect() = collect_slack * n words.
  std::uint64_t collect_capacity() const;

  /// Per-node routing budget = route_slack * n words.
  std::uint64_t route_capacity() const;

 private:
  std::uint64_t n_;
  CliqueCosts costs_;
  double route_slack_;
  double collect_slack_;
};

}  // namespace detcol
