#include "sim/ledger.hpp"

#include <algorithm>
#include <sstream>

namespace detcol {

void RoundLedger::charge(const std::string& phase, std::uint64_t rounds,
                         std::uint64_t words) {
  auto& p = phases_[phase];
  p.rounds += rounds;
  p.words += words;
  total_rounds_ += rounds;
  total_words_ += words;
}

void RoundLedger::merge_sequential(const RoundLedger& other) {
  for (const auto& [name, cost] : other.phases_) {
    auto& p = phases_[name];
    p.rounds += cost.rounds;
    p.words += cost.words;
  }
  total_rounds_ += other.total_rounds_;
  total_words_ += other.total_words_;
}

void RoundLedger::merge_parallel(std::span<const RoundLedger> group) {
  if (group.empty()) return;
  const RoundLedger* critical = &group[0];
  for (const auto& l : group) {
    if (l.total_rounds() > critical->total_rounds()) critical = &l;
  }
  for (const auto& l : group) {
    for (const auto& [name, cost] : l.phases_) {
      auto& p = phases_[name];
      p.words += cost.words;
      if (&l == critical) p.rounds += cost.rounds;
    }
    total_words_ += l.total_words_;
  }
  total_rounds_ += critical->total_rounds_;
}

std::string RoundLedger::summary() const {
  std::ostringstream os;
  os << "rounds=" << total_rounds_ << " words=" << total_words_ << "\n";
  for (const auto& [name, cost] : phases_) {
    os << "  " << name << ": rounds=" << cost.rounds << " words=" << cost.words
       << "\n";
  }
  return os.str();
}

}  // namespace detcol
