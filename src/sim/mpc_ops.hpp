// Item-level MPC primitives: the Lemma 2.1 toolbox (Goodrich et al. [11])
// actually executed over simulated machines with hard space limits.
//
// The costed MpcModel charges contract costs; this module *runs* the
// primitives: items physically live in per-machine memories, every
// redistribution respects the s-word space bound, and the round counts are
// those of the classical algorithms (sample sort: O(1) rounds; prefix sums:
// one up-sweep + one down-sweep over a machine tree of constant depth for
// poly-size inputs).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/mpc_sim.hpp"

namespace detcol {
namespace mpc {

/// Items distributed across machines, each holding at most `local_space`.
struct Distribution {
  std::uint64_t local_space = 0;
  std::vector<std::vector<std::uint64_t>> machine;  // per-machine memory

  std::uint64_t num_machines() const { return machine.size(); }
  std::uint64_t total_items() const;
  /// Concatenation in machine order.
  std::vector<std::uint64_t> gather() const;
};

/// Spread `items` round-robin over ceil(N / (local_space/2)) machines
/// (half-full machines leave room for the exchanges the primitives do).
Distribution distribute(const std::vector<std::uint64_t>& items,
                        std::uint64_t local_space);

/// Deterministic sample sort: local sort, regular sampling of splitters,
/// splitter broadcast, bucket exchange, local sort. After the call the
/// distribution is globally sorted (machine i holds keys <= machine i+1's).
/// Charges O(1) rounds through `model` into the caller-owned `acc` and
/// enforces the space bound on every machine throughout. Returns rounds used.
std::uint64_t sample_sort(Distribution& dist, const MpcModel& model,
                          MpcCosts& acc);

/// Prefix sums: machine i learns sum of all values held by machines < i
/// (returned per machine); constant rounds via converge-cast/broadcast of
/// per-machine subtotals.
std::vector<std::uint64_t> machine_prefix_sums(const Distribution& dist,
                                               const MpcModel& model,
                                               MpcCosts& acc);

}  // namespace mpc
}  // namespace detcol
