// Message-level CONGESTED CLIQUE network.
//
// Unlike CliqueSim (which charges contract costs for black-box primitives),
// this is a faithful per-round message simulator: every ordered pair of nodes
// may carry at most `bandwidth` words per round, violations throw. It exists
// to demonstrate and test the primitives the costed simulator charges for
// (broadcast, converge-cast aggregation, direct exchange), and to run the
// randomized color-trial baseline at true message granularity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace detcol {
namespace cc {

struct Message {
  std::uint32_t src;
  std::uint64_t payload;
};

class Network {
 public:
  explicit Network(std::uint32_t n, std::uint32_t bandwidth_words = 1);

  std::uint32_t n() const { return n_; }
  std::uint64_t round() const { return round_; }
  std::uint64_t total_words_sent() const { return total_words_; }

  /// Queue one word from src to dst for delivery at the end of the round.
  /// Throws CheckError if the (src,dst) link bandwidth is exhausted.
  void send(std::uint32_t src, std::uint32_t dst, std::uint64_t payload);

  /// Close the round: deliver all queued messages into inboxes.
  void deliver();

  /// Messages delivered to `v` in the last completed round.
  std::span<const Message> inbox(std::uint32_t v) const;

  // -- Primitives implemented with real messages (each advances rounds) --

  /// Node `root` sends `value` to everyone: 1 round (n-1 single words).
  void broadcast_one(std::uint32_t root, std::uint64_t value);

  /// Sum of one value per node, result known to all: 2 rounds
  /// (converge-cast to node 0, then broadcast).
  std::uint64_t all_sum(std::span<const std::uint64_t> values);

  /// Minimum with the same pattern: 2 rounds.
  std::uint64_t all_min(std::span<const std::uint64_t> values);

 private:
  std::uint32_t n_;
  std::uint32_t bandwidth_;
  std::uint64_t round_ = 0;
  std::uint64_t total_words_ = 0;
  std::vector<std::vector<Message>> pending_;   // per destination
  std::vector<std::vector<Message>> inboxes_;   // per destination
  std::vector<std::uint32_t> link_use_;         // n*n usage this round
};

}  // namespace cc
}  // namespace detcol
