#include "lowspace/reduction.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace detcol {

NodeId ReductionGraph::node_of(std::uint64_t vertex) const {
  const auto it = std::upper_bound(base.begin(), base.end(), vertex);
  DC_CHECK(it != base.begin(), "vertex below first base");
  return static_cast<NodeId>(std::distance(base.begin(), it) - 1);
}

ReductionGraph build_reduction(
    const Graph& g, const std::vector<std::vector<Color>>& palettes) {
  DC_CHECK(palettes.size() == g.num_nodes(), "palette/node count mismatch");
  ReductionGraph r;
  const NodeId n = g.num_nodes();
  r.palettes.resize(n);
  r.base.resize(n);
  std::uint64_t next = 0;
  for (NodeId v = 0; v < n; ++v) {
    r.palettes[v] = palettes[v];
    DC_CHECK(std::is_sorted(r.palettes[v].begin(), r.palettes[v].end()),
             "palettes must be sorted");
    // Truncate to deg+1: dropping surplus colors preserves solvability.
    const std::size_t keep = static_cast<std::size_t>(g.degree(v)) + 1;
    if (r.palettes[v].size() > keep) r.palettes[v].resize(keep);
    r.base[v] = next;
    next += r.palettes[v].size();
  }
  r.num_vertices = next;
  r.conflicts.resize(next);

  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      if (u <= v) continue;
      // Merge-intersect the two sorted palettes.
      const auto& pv = r.palettes[v];
      const auto& pu = r.palettes[u];
      std::size_t i = 0, j = 0;
      while (i < pv.size() && j < pu.size()) {
        if (pv[i] < pu[j]) {
          ++i;
        } else if (pu[j] < pv[i]) {
          ++j;
        } else {
          const std::uint64_t a = r.base[v] + i;
          const std::uint64_t b = r.base[u] + j;
          r.conflicts[a].push_back(b);
          r.conflicts[b].push_back(a);
          ++r.num_conflict_edges;
          ++i;
          ++j;
        }
      }
    }
  }
  return r;
}

}  // namespace detcol
