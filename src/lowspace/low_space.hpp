// Algorithms 3 & 4: deterministic (deg+1)-list coloring in low-space MPC
// (Theorem 1.4).
//
// LowSpaceColorReduce recursively partitions nodes and colors into n^delta
// bins until every remaining node has degree at most n^{7*delta}; low-degree
// nodes are diverted to G0 at every level and colored through the MIS
// reduction (Section 4.1). The derandomized seed selection enforces the
// Lemma 4.5 guarantees (d' < 2d/b + slack, and d' < p' on color bins);
// nodes violating them under the chosen seed are diverted to G0 as well,
// which preserves correctness unconditionally (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "lowspace/mis.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_costs.hpp"
#include "sim/mpc_sim.hpp"

namespace detcol {

struct LowSpaceParams {
  /// The paper's delta (bins per level b = max(2, floor(n^delta))).
  double delta = 0.08;
  /// Low-degree threshold exponent: nodes with d <= n^{low_deg_coeff*delta}
  /// go to G0 (paper: 7*delta).
  double low_deg_coeff = 7.0;
  unsigned independence = 4;
  SeedSelectConfig seed;
  MisParams mis;
  unsigned max_depth = 64;
  /// Degree-deviation slack exponent in the good-machine condition
  /// (Definition 4.1 uses chunk^0.6; we apply it at node granularity).
  double slack_exp = 0.6;
  /// Local space = max(local_space_floor, space_coeff * n^{22*delta}) words
  /// (the paper sets delta = eps/22, i.e. s = n^eps).
  std::uint64_t local_space_floor = 1 << 14;
  double space_coeff = 8.0;
  /// Host execution context: sibling color bins recurse as pool tasks, and
  /// every per-node pass of the seed searches (partition violator counts,
  /// MIS phase simulations — `mis.exec` is overridden with this value)
  /// shards over it. Results are bit-identical for any thread count.
  ExecContext exec;

  /// Optional shared power-table source (hashing/batch_eval.hpp), forwarded
  /// to every seed engine of the run (`mis.tables` is overridden with this
  /// value, like `mis.exec`). Null = private tables; never changes results.
  PowerTableProvider* tables = nullptr;
};

struct LowSpaceResult {
  Coloring coloring;
  RoundLedger ledger;

  /// Merged per-branch MPC cost accumulator (sorts, prefix sums, routes,
  /// residency peaks and their phase ledger), charged through the driver's
  /// immutable MpcModel. Bit-identical for every thread count.
  MpcCosts mpc;

  unsigned depth_reached = 0;
  std::uint64_t num_partitions = 0;
  std::uint64_t num_mis_calls = 0;
  std::uint64_t total_mis_phases = 0;
  std::uint64_t seed_evaluations = 0;
  std::uint64_t diverted_violators = 0;  // good-by-seed but p'<=d' guards
  /// Legacy views of mpc.peak_local_words / mpc.peak_total_words.
  std::uint64_t peak_local_words = 0;
  std::uint64_t peak_total_words = 0;

  explicit LowSpaceResult(NodeId n) : coloring(n) {}
};

/// Run LowSpaceColorReduce on (g, palettes). Requires p(v) > d(v) for all v
/// ((deg+1)-lists and (Δ+1)(-list) instances both qualify).
LowSpaceResult low_space_color(const Graph& g, const PaletteSet& palettes,
                               const LowSpaceParams& params = {},
                               std::uint64_t salt = 0x10053ACEULL);

}  // namespace detcol
