#include "lowspace/low_space.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "exec/thread_pool.hpp"
#include "hashing/kwise.hpp"
#include "lowspace/seed_engine.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

struct LsInstance {
  Graph graph;
  std::vector<NodeId> orig;
  NodeId n() const { return graph.num_nodes(); }
};

/// Per-branch run state (two-tier model, docs/ARCHITECTURE.md): everything a
/// recursion branch accumulates — the round ledger, the MPC cost block and
/// the recursion counters. Branches own their state privately; join points
/// merge children in bin-index order, so the merged values are independent
/// of the schedule. merge_sequential is associative with a default-
/// constructed state as identity.
struct LsRunState {
  RoundLedger ledger;  // the algorithm's round schedule (result_.ledger)
  MpcCosts mpc;        // MPC primitive costs + residency peaks
  unsigned depth_reached = 0;
  std::uint64_t num_partitions = 0;
  std::uint64_t num_mis_calls = 0;
  std::uint64_t total_mis_phases = 0;
  std::uint64_t seed_evaluations = 0;
  std::uint64_t diverted_violators = 0;

  void fold_scalars(const LsRunState& child) {
    depth_reached = std::max(depth_reached, child.depth_reached);
    num_partitions += child.num_partitions;
    num_mis_calls += child.num_mis_calls;
    total_mis_phases += child.total_mis_phases;
    seed_evaluations += child.seed_evaluations;
    diverted_violators += child.diverted_violators;
  }

  /// Child ran after this state's charges (model time): ledgers add.
  void merge_sequential(LsRunState&& child) {
    ledger.merge_sequential(child.ledger);
    mpc.merge(child.mpc);
    fold_scalars(child);
  }

  /// Children ran simultaneously in the model: rounds advance by the
  /// critical path, everything else folds in bin-index order.
  void merge_group(std::vector<LsRunState>&& children) {
    std::vector<RoundLedger> ledgers;
    std::vector<MpcCosts> costs;
    ledgers.reserve(children.size());
    costs.reserve(children.size());
    for (LsRunState& c : children) {
      ledgers.push_back(std::move(c.ledger));
      costs.push_back(std::move(c.mpc));
    }
    ledger.merge_parallel(ledgers);
    mpc.merge_parallel(costs);
    for (const LsRunState& c : children) fold_scalars(c);
  }
};

// Concurrency discipline (mirrors core/color_reduce.cpp's driver): the
// sibling color bins G1..G_{b-1} of one LowSpacePartition run as pool tasks.
// Two branches running concurrently belong to distinct bins of a common
// ancestor partition, so their node sets are disjoint (every coloring entry
// and palette row has one writer) and their palettes were restricted to
// disjoint h2 color classes *before* the group was spawned — a color
// committed by a concurrent branch is never present in (and never removable
// from) a palette this branch reads, so whether a cross-branch color read
// observes it cannot change any output. Cross-branch color accesses go
// through relaxed atomics purely to make them well-defined; everything else
// lives in the branch-private LsRunState (costs charged through the
// immutable MpcModel) and merges at the fork/join boundaries in bin-index
// order. No mutexes, no atomic counters. Net effect: colorings, ledgers,
// cost blocks and every counter are bit-identical for any thread count.
class LsDriver {
 public:
  LsDriver(const Graph& g, const PaletteSet& palettes,
           const LowSpaceParams& params, std::uint64_t salt)
      : g_(g),
        pal_(palettes),
        p_(params),
        salt_(salt),
        result_(g.num_nodes()),
        mpc_model_(local_space(), total_space()) {
    // The MIS sub-searches shard over the driver's pool and share the
    // driver's power-table source.
    p_.mis.exec = p_.exec;
    p_.mis.tables = p_.tables;
  }

  LowSpaceResult run() {
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      DC_CHECK(pal_.palette_size(v) > g_.degree(v),
               "(deg+1)-list precondition violated at node ", v);
    }
    LsInstance root;
    root.orig.resize(g_.num_nodes());
    std::iota(root.orig.begin(), root.orig.end(), NodeId{0});
    root.graph = g_;
    LsRunState st = recurse(root, 0, salt_);
    result_.ledger = std::move(st.ledger);
    result_.peak_local_words = st.mpc.peak_local_words;
    result_.peak_total_words = st.mpc.peak_total_words;
    result_.depth_reached = st.depth_reached;
    result_.num_partitions = st.num_partitions;
    result_.num_mis_calls = st.num_mis_calls;
    result_.total_mis_phases = st.total_mis_phases;
    result_.seed_evaluations = st.seed_evaluations;
    result_.diverted_violators = st.diverted_violators;
    result_.mpc = std::move(st.mpc);
    return std::move(result_);
  }

 private:
  std::uint64_t low_deg_threshold() const {
    const double n = static_cast<double>(g_.num_nodes());
    return std::max<std::uint64_t>(
        2, ipow_floor(n, p_.low_deg_coeff * p_.delta));
  }

  std::uint64_t bins() const {
    const double n = static_cast<double>(g_.num_nodes());
    return std::max<std::uint64_t>(2, ipow_floor(n, p_.delta));
  }

  std::uint64_t local_space() const {
    const double n = static_cast<double>(std::max<NodeId>(g_.num_nodes(), 2));
    const auto s = static_cast<std::uint64_t>(
        p_.space_coeff * std::pow(n, 22.0 * p_.delta));
    return std::max(p_.local_space_floor, s);
  }

  std::uint64_t total_space() const {
    const double n = static_cast<double>(std::max<NodeId>(g_.num_nodes(), 2));
    const std::uint64_t input =
        g_.size_words() + pal_.total_size();
    const auto extra = static_cast<std::uint64_t>(
        16.0 * std::pow(n, 1.0 + 22.0 * p_.delta));
    return 4 * input + extra;
  }

  /// Drop colors used by colored original-graph neighbors. The routed word
  /// count is the number of removals that actually changed a palette — a
  /// schedule-independent quantity (class comment: a concurrently committed
  /// color is never present in this branch's palettes).
  void update_palettes(std::span<const NodeId> nodes, LsRunState& st) {
    std::uint64_t touched = 0;
    for (const NodeId v : nodes) {
      for (const NodeId u : g_.neighbors(v)) {
        const Color cu = std::atomic_ref<Color>(result_.coloring.color[u])
                             .load(std::memory_order_relaxed);
        if (cu == Coloring::kUncolored) continue;
        if (pal_.remove_color(v, cu)) ++touched;
      }
    }
    if (touched > 0) {
      mpc_model_.route(touched,
                       std::min(touched, mpc_model_.local_space()),
                       "palette-update", st.mpc);
    }
  }

  /// Color an all-low-degree instance through the MIS reduction. The MIS
  /// call carries the driver's model, so the reduction graph it builds is
  /// contract-checked and charged into its own cost block exactly once —
  /// merged here into the branch state.
  void color_via_mis(const LsInstance& inst, std::uint64_t salt,
                     LsRunState& st) {
    if (inst.n() == 0) return;
    std::vector<std::vector<Color>> pals(inst.n());
    for (NodeId v = 0; v < inst.n(); ++v) {
      const auto span = pal_.palette(inst.orig[v]);
      pals[v].assign(span.begin(), span.end());
    }
    MisColorResult mis =
        mis_list_color(inst.graph, pals, p_.mis, salt, &mpc_model_);
    for (NodeId v = 0; v < inst.n(); ++v) {
      DC_CHECK(mis.color[v] != Coloring::kUncolored, "MIS left a node");
      std::atomic_ref<Color>(result_.coloring.color[inst.orig[v]])
          .store(mis.color[v], std::memory_order_relaxed);
    }
    st.num_mis_calls += 1;
    st.total_mis_phases += mis.phases;
    st.seed_evaluations += mis.seed_evaluations;
    st.ledger.merge_sequential(mis.ledger);
    st.mpc.merge(mis.mpc);
  }

  LsRunState recurse(const LsInstance& inst, unsigned depth,
                     std::uint64_t salt) {
    // Recursion entry = safe point: budget poll + fault-injection site.
    p_.exec.check_deadline("lowspace");
    DC_FAILPOINT("lowspace.recurse");
    LsRunState st;
    st.depth_reached = depth;
    if (inst.n() == 0) return st;

    const std::uint64_t low_deg = low_deg_threshold();
    std::vector<NodeId> low_local, high_local;
    for (NodeId v = 0; v < inst.n(); ++v) {
      (inst.graph.degree(v) <= low_deg ? low_local : high_local)
          .push_back(v);
    }

    if (high_local.empty() || depth >= p_.max_depth) {
      if (!high_local.empty()) {
        DC_LOG_WARN << "low-space recursion depth cap hit at depth " << depth;
      }
      update_palettes(inst.orig, st);
      color_via_mis(inst, sub_seed(salt, 7), st);
      return st;
    }

    // --- LowSpacePartition (Algorithm 4). ---
    const std::uint64_t b = bins();
    const unsigned c = p_.independence;
    const unsigned bits = 2 * KWiseHash::seed_bits(c);
    LsInstance high = make_child(inst, high_local);

    // Batched incremental violator counts (lowspace/seed_engine.hpp): power
    // tables amortized over the whole search, per-node passes sharded over
    // the pool; bit-identical to the naive per-candidate recomputation.
    LowSpaceSeedEngine engine(high.graph, high.orig, pal_, b, c, p_.slack_exp,
                              p_.exec, p_.tables);
    const auto cost = [&engine](const SeedBits& s) { return engine.cost(s); };
    const SeedSelectResult sel =
        select_seed(bits, cost, 0.0, p_.seed, sub_seed(salt, 1));
    st.seed_evaluations += sel.evaluations;
    st.num_partitions += 1;
    // Seed schedule: per chunk one concurrent prefix-sum family (Lemma 2.1).
    mpc_model_.prefix_sum(high.n(), "seed-selection", st.mpc,
                          ceil_div(bits, p_.seed.chunk_bits));
    st.ledger.charge("seed-selection", sel.rounds_charged, sel.words_charged);

    // One evaluation of the selected seed (usually already cached from the
    // search) yields the violator count, the per-node bins *and* the
    // Lemma 4.5 verdicts — the assign loop below reuses them instead of
    // recomputing d'/p' from scratch.
    const std::uint64_t bad = engine.violations(sel.seed);
    const std::span<const std::uint32_t> bin = engine.bins();
    const std::span<const char> good = engine.good();
    if (bad > 0) {
      DC_LOG_DEBUG << "low-space partition diverts " << bad
                   << " violator(s) to G0";
      st.diverted_violators += bad;
    }

    // Assign: violators join the low-degree set G0.
    std::vector<std::vector<NodeId>> bin_local(b);
    std::vector<NodeId> g0_local = low_local;
    for (NodeId v = 0; v < high.n(); ++v) {
      if (good[v] != 0) {
        bin_local[bin[v] - 1].push_back(high_local[v]);
      } else {
        g0_local.push_back(high_local[v]);
      }
    }
    mpc_model_.sort(inst.graph.size_words(), "partition-route", st.mpc);

    // Restrict palettes of color bins. This happens *before* the sibling
    // group is spawned: it is what makes the group's palettes pairwise
    // disjoint, and with them every cross-branch interaction harmless.
    const KWiseHash h2(sel.seed.word_range(c, c), b - 1);
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      for (const NodeId l : bin_local[i]) {
        const NodeId v = inst.orig[l];
        pal_.restrict(v, [&](Color col) { return h2(col) + 1 == i + 1; });
      }
    }

    // Recurse on color bins in parallel (disjoint palettes): dispatched as
    // pool tasks when an ExecContext is configured, inline otherwise.
    // TaskGroup::fold joins the branch states in bin-index order either
    // way, so both paths produce identical merged results.
    const std::uint64_t groups = b - 1;
    const bool par = p_.exec.parallel() && groups > 1;
    std::vector<LsRunState> children;
    children.reserve(groups);
    TaskGroup::fold(
        par ? p_.exec.pool() : nullptr, groups,
        [&](std::size_t i) {
          LsInstance child = make_child(inst, bin_local[i]);
          return recurse(child, depth + 1, sub_seed(salt, 100 + i));
        },
        [&](std::size_t, LsRunState&& rs) {
          children.push_back(std::move(rs));
        });
    st.merge_group(std::move(children));

    // Last bin: update palettes, recurse. Runs strictly after the group
    // join — exactly the model's schedule, where G_b's palette update sees
    // every color the parallel phase committed.
    LsInstance last = make_child(inst, bin_local[b - 1]);
    update_palettes(last.orig, st);
    st.merge_sequential(recurse(last, depth + 1, sub_seed(salt, 999)));

    // G0: update palettes, color via the MIS reduction.
    LsInstance g0 = make_child(inst, g0_local);
    update_palettes(g0.orig, st);
    color_via_mis(g0, sub_seed(salt, 1234), st);
    return st;
  }

  LsInstance make_child(const LsInstance& inst,
                        std::span<const NodeId> local_nodes) const {
    LsInstance child;
    child.graph = induced_subgraph(inst.graph, local_nodes);
    child.orig.reserve(local_nodes.size());
    for (const NodeId l : local_nodes) child.orig.push_back(inst.orig[l]);
    return child;
  }

  // Immutable instance state (after the ctor): shared read-only everywhere.
  const Graph& g_;
  PaletteSet pal_;  // per-node rows, one writer each (class comment)
  LowSpaceParams p_;
  std::uint64_t salt_;
  LowSpaceResult result_;  // coloring entries: one writer each
  const MpcModel mpc_model_;
};

}  // namespace

LowSpaceResult low_space_color(const Graph& g, const PaletteSet& palettes,
                               const LowSpaceParams& params,
                               std::uint64_t salt) {
  LsDriver driver(g, palettes, params, salt);
  return driver.run();
}

}  // namespace detcol
