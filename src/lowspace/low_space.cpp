#include "lowspace/low_space.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hashing/kwise.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

struct LsInstance {
  Graph graph;
  std::vector<NodeId> orig;
  NodeId n() const { return graph.num_nodes(); }
};

class LsDriver {
 public:
  LsDriver(const Graph& g, const PaletteSet& palettes,
           const LowSpaceParams& params, std::uint64_t salt)
      : g_(g),
        pal_(palettes),
        p_(params),
        salt_(salt),
        result_(g.num_nodes()),
        mpc_(local_space(), total_space()) {}

  LowSpaceResult run() {
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      DC_CHECK(pal_.palette_size(v) > g_.degree(v),
               "(deg+1)-list precondition violated at node ", v);
    }
    LsInstance root;
    root.orig.resize(g_.num_nodes());
    std::iota(root.orig.begin(), root.orig.end(), NodeId{0});
    root.graph = g_;
    result_.ledger = recurse(root, 0, salt_);
    result_.peak_local_words = mpc_.peak_local_words();
    result_.peak_total_words = mpc_.peak_total_words();
    return std::move(result_);
  }

 private:
  std::uint64_t low_deg_threshold() const {
    const double n = static_cast<double>(g_.num_nodes());
    return std::max<std::uint64_t>(
        2, ipow_floor(n, p_.low_deg_coeff * p_.delta));
  }

  std::uint64_t bins() const {
    const double n = static_cast<double>(g_.num_nodes());
    return std::max<std::uint64_t>(2, ipow_floor(n, p_.delta));
  }

  std::uint64_t local_space() const {
    const double n = static_cast<double>(std::max<NodeId>(g_.num_nodes(), 2));
    const auto s = static_cast<std::uint64_t>(
        p_.space_coeff * std::pow(n, 22.0 * p_.delta));
    return std::max(p_.local_space_floor, s);
  }

  std::uint64_t total_space() const {
    const double n = static_cast<double>(std::max<NodeId>(g_.num_nodes(), 2));
    const std::uint64_t input =
        g_.size_words() + pal_.total_size();
    const auto extra = static_cast<std::uint64_t>(
        16.0 * std::pow(n, 1.0 + 22.0 * p_.delta));
    return 4 * input + extra;
  }

  /// Drop colors used by colored original-graph neighbors.
  void update_palettes(std::span<const NodeId> nodes) {
    std::uint64_t touched = 0;
    for (const NodeId v : nodes) {
      for (const NodeId u : g_.neighbors(v)) {
        if (result_.coloring.is_colored(u)) {
          pal_.remove_color(v, result_.coloring.color[u]);
          ++touched;
        }
      }
    }
    if (touched > 0) {
      mpc_.route(touched, std::min(touched, mpc_.local_space()),
                 "palette-update");
    }
  }

  /// Color an all-low-degree instance through the MIS reduction.
  RoundLedger color_via_mis(const LsInstance& inst, std::uint64_t salt) {
    if (inst.n() == 0) return {};
    std::vector<std::vector<Color>> pals(inst.n());
    for (NodeId v = 0; v < inst.n(); ++v) {
      const auto span = pal_.palette(inst.orig[v]);
      pals[v].assign(span.begin(), span.end());
    }
    MisColorResult mis = mis_list_color(inst.graph, pals, p_.mis, salt);
    for (NodeId v = 0; v < inst.n(); ++v) {
      DC_CHECK(mis.color[v] != Coloring::kUncolored, "MIS left a node");
      result_.coloring.color[inst.orig[v]] = mis.color[v];
    }
    ++result_.num_mis_calls;
    result_.total_mis_phases += mis.phases;
    result_.seed_evaluations += mis.seed_evaluations;
    // Space accounting for the reduction graph (Section 4.1's bound).
    const ReductionGraph red = build_reduction(inst.graph, pals);
    mpc_.note_resident(std::min<std::uint64_t>(red.size_words(),
                                               mpc_.local_space()),
                       red.size_words());
    return mis.ledger;
  }

  RoundLedger recurse(const LsInstance& inst, unsigned depth,
                      std::uint64_t salt) {
    result_.depth_reached = std::max(result_.depth_reached, depth);
    RoundLedger led;
    if (inst.n() == 0) return led;

    const std::uint64_t low_deg = low_deg_threshold();
    std::vector<NodeId> low_local, high_local;
    for (NodeId v = 0; v < inst.n(); ++v) {
      (inst.graph.degree(v) <= low_deg ? low_local : high_local)
          .push_back(v);
    }

    if (high_local.empty() || depth >= p_.max_depth) {
      if (!high_local.empty()) {
        DC_LOG_WARN << "low-space recursion depth cap hit at depth " << depth;
      }
      update_palettes(inst.orig);
      led.merge_sequential(color_via_mis(inst, sub_seed(salt, 7)));
      return led;
    }

    // --- LowSpacePartition (Algorithm 4). ---
    const std::uint64_t b = bins();
    const unsigned c = p_.independence;
    const unsigned bits = 2 * KWiseHash::seed_bits(c);
    LsInstance high = make_child(inst, high_local);

    auto violations = [&](const KWiseHash& h1, const KWiseHash& h2,
                          std::vector<std::uint32_t>* bins_out) {
      std::uint64_t bad = 0;
      std::vector<std::uint32_t> bin(high.n());
      for (NodeId v = 0; v < high.n(); ++v) {
        bin[v] = static_cast<std::uint32_t>(h1(high.orig[v])) + 1;
      }
      for (NodeId v = 0; v < high.n(); ++v) {
        std::uint64_t dprime = 0;
        for (const NodeId u : high.graph.neighbors(v)) {
          if (bin[u] == bin[v]) ++dprime;
        }
        const double d = static_cast<double>(high.graph.degree(v));
        const double slack = std::pow(std::max(d, 2.0), p_.slack_exp);
        bool ok = std::abs(static_cast<double>(dprime) -
                           d / static_cast<double>(b)) <= slack;
        if (ok && bin[v] != b) {
          std::uint64_t pprime = 0;
          for (const Color col : pal_.palette(high.orig[v])) {
            if (h2(col) + 1 == bin[v]) ++pprime;
          }
          if (pprime <= dprime) ok = false;
        }
        if (!ok) ++bad;
      }
      if (bins_out != nullptr) *bins_out = std::move(bin);
      return bad;
    };

    const auto cost = [&](const SeedBits& s) {
      const KWiseHash h1(s.word_range(0, c), b);
      const KWiseHash h2(s.word_range(c, c), b - 1);
      return static_cast<double>(violations(h1, h2, nullptr));
    };
    const SeedSelectResult sel =
        select_seed(bits, cost, 0.0, p_.seed, sub_seed(salt, 1));
    result_.seed_evaluations += sel.evaluations;
    ++result_.num_partitions;
    // Seed schedule: per chunk one concurrent prefix-sum family (Lemma 2.1).
    mpc_.prefix_sum(high.n(), "seed-selection",
                    ceil_div(bits, p_.seed.chunk_bits));
    led.charge("seed-selection", sel.rounds_charged, sel.words_charged);

    const KWiseHash h1(sel.seed.word_range(0, c), b);
    const KWiseHash h2(sel.seed.word_range(c, c), b - 1);
    std::vector<std::uint32_t> bin;
    const std::uint64_t bad = violations(h1, h2, &bin);
    if (bad > 0) {
      DC_LOG_DEBUG << "low-space partition diverts " << bad
                   << " violator(s) to G0";
      result_.diverted_violators += bad;
    }

    // Assign: violators join the low-degree set G0.
    std::vector<std::vector<NodeId>> bin_local(b);
    std::vector<NodeId> g0_local = low_local;
    for (NodeId v = 0; v < high.n(); ++v) {
      std::uint64_t dprime = 0;
      for (const NodeId u : high.graph.neighbors(v)) {
        if (bin[u] == bin[v]) ++dprime;
      }
      const double d = static_cast<double>(high.graph.degree(v));
      const double slack = std::pow(std::max(d, 2.0), p_.slack_exp);
      bool ok = std::abs(static_cast<double>(dprime) -
                         d / static_cast<double>(b)) <= slack;
      std::uint64_t pprime = 0;
      if (ok && bin[v] != b) {
        for (const Color col : pal_.palette(high.orig[v])) {
          if (h2(col) + 1 == bin[v]) ++pprime;
        }
        if (pprime <= dprime) ok = false;
      }
      if (ok) {
        bin_local[bin[v] - 1].push_back(high_local[v]);
      } else {
        g0_local.push_back(high_local[v]);
      }
    }
    mpc_.sort(inst.graph.size_words(), "partition-route");

    // Restrict palettes of color bins.
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      for (const NodeId l : bin_local[i]) {
        const NodeId v = inst.orig[l];
        pal_.restrict(v, [&](Color col) { return h2(col) + 1 == i + 1; });
      }
    }

    // Recurse on color bins in parallel.
    std::vector<RoundLedger> group;
    for (std::uint64_t i = 0; i + 1 < b; ++i) {
      LsInstance child = make_child(inst, bin_local[i]);
      group.push_back(recurse(child, depth + 1, sub_seed(salt, 100 + i)));
    }
    led.merge_parallel(group);

    // Last bin: update palettes, recurse.
    LsInstance last = make_child(inst, bin_local[b - 1]);
    update_palettes(last.orig);
    led.merge_sequential(recurse(last, depth + 1, sub_seed(salt, 999)));

    // G0: update palettes, color via the MIS reduction.
    LsInstance g0 = make_child(inst, g0_local);
    update_palettes(g0.orig);
    led.merge_sequential(color_via_mis(g0, sub_seed(salt, 1234)));
    return led;
  }

  LsInstance make_child(const LsInstance& inst,
                        std::span<const NodeId> local_nodes) const {
    LsInstance child;
    child.graph = induced_subgraph(inst.graph, local_nodes);
    child.orig.reserve(local_nodes.size());
    for (const NodeId l : local_nodes) child.orig.push_back(inst.orig[l]);
    return child;
  }

  const Graph& g_;
  PaletteSet pal_;
  LowSpaceParams p_;
  std::uint64_t salt_;
  LowSpaceResult result_;
  MpcSim mpc_;
};

}  // namespace

LowSpaceResult low_space_color(const Graph& g, const PaletteSet& palettes,
                               const LowSpaceParams& params,
                               std::uint64_t salt) {
  LsDriver driver(g, palettes, params, salt);
  return driver.run();
}

}  // namespace detcol
