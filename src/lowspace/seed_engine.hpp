// Batched seed-evaluation engines for the low-space MPC layer (Theorem 1.4).
//
// Both seed searches of the layer evaluate a fixed instance under thousands
// of nearby candidate seeds (the enumeration orders of derand/strategies.hpp
// mutate one candidate buffer in place), and both paid a naive full pass per
// candidate before this engine existed:
//
//  * LowSpacePartition (Algorithm 4): per candidate, rebuild (h1, h2) and
//    re-run a Horner polynomial per node and per palette color to count the
//    Lemma 4.5 violators.
//  * The derandomized-Luby MIS phase (Section 4.1): per candidate, rebuild h
//    and re-evaluate the priority polynomial at every reduction vertex on
//    every access of the phase simulation.
//
// LowSpaceSeedEngine and MisPhaseEngine amortize everything that does not
// depend on the seed, exactly in the style of core/seed_eval.hpp:
//
//  * power tables (BatchKWiseEval) over the node ids / distinct palette
//    colors / reduction-vertex ids, built once per search — a candidate
//    costs one multiply-add per point per *changed* seed word;
//  * distinct-color memoization — h2 is evaluated once per distinct color in
//    the union of palettes; nodes whose palette is the full color universe
//    read their p'(v) from a per-bin color count in O(1);
//  * change tracking — an MCE chunk inside the h2 half of the seed leaves h1
//    untouched, so the d'(v) neighbor pass (the expensive O(m) part) is
//    skipped wholesale, and vice versa;
//  * scratch reuse — bins, d'/verdict buffers and color-bin counts live in
//    the engine and are reused across evaluations.
//
// Every per-node pass shards over the engine's ExecContext with static shard
// boundaries (exec/exec.hpp), so violation counts, verdicts and priorities
// are bit-identical for any thread count. violations() equals the naive
// per-candidate recomputation bit for bit; tests/test_lowspace_engine.cpp
// asserts this and that select_seed picks identical seeds on either backend.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "derand/seedbits.hpp"
#include "exec/exec.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "hashing/batch_eval.hpp"
#include "hashing/kwise.hpp"

namespace detcol {

class LowSpaceSeedEngine {
 public:
  /// Precomputes power tables and the distinct-color index for the local
  /// graph `g` with original ids `orig` and the palettes of the *original*
  /// graph. All three must outlive the engine and stay unmodified while it
  /// is in use (the driver holds palettes fixed for the whole seed search).
  /// Seed layout: `independence` words for h1 (range `num_bins`), then
  /// `independence` words for h2 (range `num_bins` - 1). `tables`, when
  /// non-null, supplies the shared power tables (see batch_eval.hpp).
  LowSpaceSeedEngine(const Graph& g, std::span<const NodeId> orig,
                     const PaletteSet& palettes, std::uint64_t num_bins,
                     unsigned independence, double slack_exp,
                     ExecContext exec = {},
                     PowerTableProvider* tables = nullptr);

  /// Number of Lemma 4.5 violators under `seed` — bit-identical to
  /// classifying every node from scratch with the KWiseHash pair built from
  /// the same words. Buffers are engine-owned and reused.
  std::uint64_t violations(const SeedBits& seed);

  /// SeedCostFn adapter.
  double cost(const SeedBits& seed) {
    return static_cast<double>(violations(seed));
  }

  /// Per-node h1 bins (1..b) of the last violations() call. Valid until the
  /// next call.
  std::span<const std::uint32_t> bins() const { return bin_; }

  /// Per-node Lemma 4.5 verdicts of the last violations() call: non-zero
  /// means the node keeps its color bin, zero diverts it to G0.
  std::span<const char> good() const { return good_; }

  std::uint64_t num_bins() const { return b_; }
  std::size_t num_distinct_colors() const { return colors_.size(); }

 private:
  const Graph& g_;
  std::uint64_t b_;
  unsigned c_;

  std::vector<Color> colors_;  // sorted union of the nodes' palettes
  BatchKWiseEval h1_;          // points: original node ids, range b
  BatchKWiseEval h2_;          // points: distinct colors, range b-1
  // Per node: its degree target d/b and slack (seed-independent doubles of
  // the Lemma 4.5 test, precomputed so every evaluation runs the identical
  // float ops); full-universe flag and palette indices as in SeedEvalEngine.
  std::vector<double> dev_target_;
  std::vector<double> slack_;
  std::vector<bool> full_palette_;
  std::vector<std::uint32_t> pal_idx_;
  std::vector<std::size_t> pal_off_;

  // Per-evaluation scratch. bin_/dprime_ are only recomputed when an h1
  // coefficient actually moved, cbin_/colors_in_bin_ when h2 did.
  std::vector<std::uint32_t> bin_;            // per node: h1 bin 1..b
  std::vector<std::uint64_t> dprime_;         // per node: same-bin degree
  std::vector<std::uint32_t> cbin_;           // per distinct color: 1..b-1
  std::vector<std::uint64_t> colors_in_bin_;  // per color bin: |h2^-1(bin)|
  std::vector<char> good_;                    // per node verdict
  std::uint64_t cached_bad_ = 0;
  bool primed_ = false;  // scratch holds a valid previous evaluation
  ExecContext exec_;
};

/// Reference oracle: the Lemma 4.5 violator count computed the naive way —
/// full h1/h2 evaluation per node and per palette color, d'/p' from scratch
/// — exactly as the pre-engine driver did. LowSpaceSeedEngine::violations()
/// must match it bit for bit; tests and benches diff the two backends
/// against this single implementation so they cannot drift apart.
/// `bins_out`/`good_out` (optional) receive the per-node bins and verdicts.
std::uint64_t lowspace_naive_violations(
    const Graph& g, std::span<const NodeId> orig, const PaletteSet& palettes,
    std::uint64_t num_bins, double slack_exp, const KWiseHash& h1,
    const KWiseHash& h2, std::vector<std::uint32_t>* bins_out = nullptr,
    std::vector<char>* good_out = nullptr);

/// Batched c-wise independent priorities for the derandomized-Luby phase
/// seeds: the priority polynomial evaluated at every reduction vertex, kept
/// current under word-diff loads. priority() is bit-identical to
/// KWiseHash::field_eval on the same seed words.
class MisPhaseEngine {
 public:
  MisPhaseEngine(std::uint64_t num_vertices, unsigned independence,
                 ExecContext exec = {}, PowerTableProvider* tables = nullptr);

  /// Load the candidate's coefficient words (layout: `independence` words
  /// from bit 0). Returns true when any priority moved — false means every
  /// vertex keeps its exact previous priority, so callers can reuse a phase
  /// simulation computed under the previous load.
  bool load(const SeedBits& seed);

  /// Field-value priority of reduction vertex x under the loaded seed.
  std::uint64_t priority(std::uint64_t x) const {
    return eval_.field_value(x);
  }

  ExecContext exec() const { return exec_; }

 private:
  unsigned c_;
  BatchKWiseEval eval_;
  ExecContext exec_;
};

}  // namespace detcol
