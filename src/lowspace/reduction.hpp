// Luby's coloring-to-MIS reduction (Section 4.1 of the paper).
//
// Given a list-coloring instance, build the reduction graph: each node v
// becomes a clique over its palette colors {(v,c)}; cross edges connect
// (v,c)-(u,c) for adjacent u,v sharing color c. An MIS of this graph selects
// exactly one (v,c) per node — a proper list coloring. Cliques are kept
// implicit (a vertex knows its node), so the stored size is
// O(sum palettes + conflict edges), matching the paper's accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {

struct ReductionGraph {
  /// Per local node: its palette (truncated to deg+1 — always safe and keeps
  /// the reduction at the paper's stated size).
  std::vector<std::vector<Color>> palettes;
  /// Flat vertex ids: vertex (v, i) has id base[v] + i.
  std::vector<std::uint64_t> base;
  /// Conflict adjacency per flat vertex id (cross edges only; the per-node
  /// clique is implicit).
  std::vector<std::vector<std::uint64_t>> conflicts;

  std::uint64_t num_vertices = 0;
  std::uint64_t num_conflict_edges = 0;

  NodeId num_nodes() const { return static_cast<NodeId>(base.size()); }
  NodeId node_of(std::uint64_t vertex) const;
  /// Words to store the reduction (vertices + conflict adjacency).
  std::uint64_t size_words() const {
    return num_vertices + 2 * num_conflict_edges;
  }
};

/// Build the reduction for a local graph whose node v has palette
/// `palettes[v]` (sorted).
ReductionGraph build_reduction(const Graph& g,
                               const std::vector<std::vector<Color>>& palettes);

}  // namespace detcol
