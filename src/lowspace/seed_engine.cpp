#include "lowspace/seed_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace detcol {
namespace {

/// Sorted union of the palettes of `orig`'s nodes.
std::vector<Color> color_universe(std::span<const NodeId> orig,
                                  const PaletteSet& palettes) {
  std::vector<Color> colors;
  for (const NodeId v : orig) {
    const auto p = palettes.palette(v);
    colors.insert(colors.end(), p.begin(), p.end());
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  return colors;
}

std::vector<std::uint64_t> iota_points(std::uint64_t count) {
  std::vector<std::uint64_t> points(count);
  std::iota(points.begin(), points.end(), std::uint64_t{0});
  return points;
}

}  // namespace

LowSpaceSeedEngine::LowSpaceSeedEngine(const Graph& g,
                                       std::span<const NodeId> orig,
                                       const PaletteSet& palettes,
                                       std::uint64_t num_bins,
                                       unsigned independence, double slack_exp,
                                       ExecContext exec,
                                       PowerTableProvider* tables)
    : g_(g),
      b_(num_bins),
      c_(independence),
      colors_(color_universe(orig, palettes)),
      h1_(acquire_power_table(
              tables,
              std::vector<std::uint64_t>(orig.begin(), orig.end()), c_),
          b_),
      h2_(acquire_power_table(tables, colors_, c_), b_ - 1),
      exec_(exec) {
  DC_CHECK(b_ >= 2, "low-space partition needs at least 2 bins");
  DC_CHECK(orig.size() == g.num_nodes(), "orig map size mismatch");

  const NodeId n = g.num_nodes();
  dev_target_.resize(n);
  slack_.resize(n);
  full_palette_.assign(n, false);
  pal_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t partial_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    const double d = static_cast<double>(g.degree(v));
    dev_target_[v] = d / static_cast<double>(b_);
    slack_[v] = std::pow(std::max(d, 2.0), slack_exp);
    // Palettes are sorted and duplicate-free (PaletteSet invariant), so a
    // palette equals the universe iff the sizes match.
    const std::size_t sz = palettes.palette_size(orig[v]);
    full_palette_[v] = sz == colors_.size();
    if (!full_palette_[v]) partial_total += sz;
    pal_off_[v + 1] = partial_total;
  }
  pal_idx_.reserve(partial_total);
  for (NodeId v = 0; v < n; ++v) {
    if (full_palette_[v]) continue;
    auto it = colors_.begin();
    for (const Color col : palettes.palette(orig[v])) {
      it = std::lower_bound(it, colors_.end(), col);
      DC_ASSERT(it != colors_.end() && *it == col);
      pal_idx_.push_back(static_cast<std::uint32_t>(it - colors_.begin()));
    }
  }
  bin_.assign(n, 0);
  dprime_.assign(n, 0);
  cbin_.assign(colors_.size(), 0);
  colors_in_bin_.assign(b_ - 1, 0);
  good_.assign(n, 0);
}

std::uint64_t LowSpaceSeedEngine::violations(const SeedBits& seed) {
  // Incremental coefficient load: an MCE chunk inside the h2 half leaves h1
  // untouched and skips the O(m) d'(v) pass entirely, and vice versa.
  const bool h1_changed = h1_.load(seed.word_range(0, c_), exec_);
  const bool h2_changed = h2_.load(seed.word_range(c_, c_), exec_);
  if (primed_ && !h1_changed && !h2_changed) return cached_bad_;

  const NodeId n = g_.num_nodes();
  if (h1_changed || !primed_) {
    h1_.bins_into(bin_, /*offset=*/1, exec_);
    // d'(v) needs every neighbor's bin, so it runs as a second pass after
    // the bin fill's barrier.
    parallel_for_shards(exec_, n, [&](std::size_t, std::size_t begin,
                                      std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        std::uint64_t d = 0;
        const std::uint32_t mine = bin_[v];
        for (const NodeId u : g_.neighbors(static_cast<NodeId>(v))) {
          if (bin_[u] == mine) ++d;
        }
        dprime_[v] = d;
      }
    });
  }

  if (h2_changed || !primed_) {
    h2_.bins_into(cbin_, /*offset=*/1, exec_);  // 1..b-1
    colors_in_bin_.assign(b_ - 1, 0);
    for (std::size_t k = 0; k < cbin_.size(); ++k) {
      ++colors_in_bin_[cbin_[k] - 1];
    }
  }

  // Verdict pass: the exact Lemma 4.5 test of the naive implementation (the
  // float ops run on the precomputed per-node doubles, so they associate
  // identically), with p'(v) memoized per distinct color and read in O(1)
  // for full-universe palettes. Shard-ordered integer sum.
  cached_bad_ = parallel_reduce_shards(
      exec_, n, std::uint64_t{0},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::uint64_t bad = 0;
        for (std::size_t v = begin; v < end; ++v) {
          const std::uint64_t dprime = dprime_[v];
          bool ok = std::abs(static_cast<double>(dprime) - dev_target_[v]) <=
                    slack_[v];
          if (ok && bin_[v] != b_) {
            std::uint64_t pprime = 0;
            if (full_palette_[v]) {
              pprime = colors_in_bin_[bin_[v] - 1];
            } else {
              for (std::size_t k = pal_off_[v]; k < pal_off_[v + 1]; ++k) {
                if (cbin_[pal_idx_[k]] == bin_[v]) ++pprime;
              }
            }
            if (pprime <= dprime) ok = false;
          }
          good_[v] = ok ? 1 : 0;
          if (!ok) ++bad;
        }
        return bad;
      },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
  primed_ = true;
  return cached_bad_;
}

std::uint64_t lowspace_naive_violations(
    const Graph& g, std::span<const NodeId> orig, const PaletteSet& palettes,
    std::uint64_t num_bins, double slack_exp, const KWiseHash& h1,
    const KWiseHash& h2, std::vector<std::uint32_t>* bins_out,
    std::vector<char>* good_out) {
  std::uint64_t bad = 0;
  std::vector<std::uint32_t> bin(g.num_nodes());
  // Bulk h1 pass through the active field kernel, so the naive/engine
  // equivalence tests exercise the kernel on both sides of the comparison.
  const std::vector<std::uint64_t> pts(orig.begin(), orig.end());
  h1.eval_bins_many(pts, bin, /*offset=*/1);
  if (good_out != nullptr) good_out->assign(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint64_t dprime = 0;
    for (const NodeId u : g.neighbors(v)) {
      if (bin[u] == bin[v]) ++dprime;
    }
    const double d = static_cast<double>(g.degree(v));
    const double slack = std::pow(std::max(d, 2.0), slack_exp);
    bool ok = std::abs(static_cast<double>(dprime) -
                       d / static_cast<double>(num_bins)) <= slack;
    if (ok && bin[v] != num_bins) {
      std::uint64_t pprime = 0;
      for (const Color col : palettes.palette(orig[v])) {
        if (h2(col) + 1 == bin[v]) ++pprime;
      }
      if (pprime <= dprime) ok = false;
    }
    if (!ok) ++bad;
    if (good_out != nullptr) (*good_out)[v] = ok ? 1 : 0;
  }
  if (bins_out != nullptr) *bins_out = std::move(bin);
  return bad;
}

MisPhaseEngine::MisPhaseEngine(std::uint64_t num_vertices,
                               unsigned independence, ExecContext exec,
                               PowerTableProvider* tables)
    : c_(independence),
      eval_(acquire_power_table(tables, iota_points(num_vertices),
                                independence),
            /*range=*/1),
      exec_(exec) {}

bool MisPhaseEngine::load(const SeedBits& seed) {
  return eval_.load(seed.word_range(0, c_), exec_);
}

}  // namespace detcol
