#include "lowspace/mis.hpp"

#include <algorithm>

#include "hashing/kwise.hpp"
#include "lowspace/seed_engine.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace detcol {
namespace {

struct PhaseOutcome {
  std::vector<std::uint64_t> joined;   // reduction vertices entering the MIS
  std::uint64_t removed_edges = 0;     // conflict edges deleted by the phase
};

struct MisState {
  const ReductionGraph* r;
  std::vector<char> active;            // per reduction vertex
  std::vector<Color> color;            // per node, kUncolored until joined
  std::uint64_t remaining_edges = 0;
  std::uint64_t uncolored = 0;         // tracked incrementally per phase

  bool vertex_active(std::uint64_t x) const { return active[x] != 0; }
};

/// Priority of vertex x under the loaded phase seed: field value with id
/// tiebreak.
inline std::pair<std::uint64_t, std::uint64_t> priority(
    const MisPhaseEngine& eng, std::uint64_t x) {
  return {eng.priority(x), x};
}

/// Simulate one Luby phase under the engine's loaded seed without mutating
/// the state. Both heavy passes — the per-node join resolution and the
/// removed-edge count — shard over the engine's ExecContext; the join lists
/// fold in shard-index order, so the outcome matches the serial node-order
/// walk bit for bit at any thread count.
PhaseOutcome simulate_phase(const MisState& st, const MisPhaseEngine& eng) {
  const ReductionGraph& r = *st.r;
  PhaseOutcome out;
  out.joined = parallel_reduce_shards(
      eng.exec(), r.num_nodes(), std::vector<std::uint64_t>{},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t> joined;
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v = static_cast<NodeId>(i);
          if (st.color[v] != Coloring::kUncolored) continue;
          // Clique candidate: the active palette position with minimum
          // priority.
          std::uint64_t best = ~std::uint64_t{0};
          std::pair<std::uint64_t, std::uint64_t> best_pri{~std::uint64_t{0},
                                                           ~std::uint64_t{0}};
          const std::uint64_t lo = r.base[v];
          const std::uint64_t hi = lo + r.palettes[v].size();
          for (std::uint64_t x = lo; x < hi; ++x) {
            if (!st.vertex_active(x)) continue;
            const auto pri = priority(eng, x);
            if (pri < best_pri) {
              best_pri = pri;
              best = x;
            }
          }
          DC_CHECK(best != ~std::uint64_t{0},
                   "uncolored node lost its whole palette — invariant broken");
          // The candidate joins iff it beats every *active* conflict
          // neighbor.
          bool wins = true;
          for (const std::uint64_t y : r.conflicts[best]) {
            if (st.vertex_active(y) && priority(eng, y) < best_pri) {
              wins = false;
              break;
            }
          }
          if (wins) joined.push_back(best);
        }
        return joined;
      },
      [](std::vector<std::uint64_t> acc, std::vector<std::uint64_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });

  // Mark removals: the joiner's whole clique plus its conflict neighbors.
  std::vector<char> removed(r.num_vertices, 0);
  for (const std::uint64_t x : out.joined) {
    const NodeId v = r.node_of(x);
    const std::uint64_t lo = r.base[v];
    const std::uint64_t hi = lo + r.palettes[v].size();
    for (std::uint64_t y = lo; y < hi; ++y) {
      if (st.vertex_active(y)) removed[y] = 1;
    }
    for (const std::uint64_t y : r.conflicts[x]) {
      if (st.vertex_active(y)) removed[y] = 1;
    }
  }
  // Count conflict edges losing at least one endpoint (pure reads of the
  // finished removal marks: an integer shard sum).
  out.removed_edges = parallel_reduce_shards(
      eng.exec(), r.num_vertices, std::uint64_t{0},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::uint64_t cnt = 0;
        for (std::size_t x = begin; x < end; ++x) {
          if (!removed[x]) continue;
          for (const std::uint64_t y : r.conflicts[x]) {
            if (!st.vertex_active(y)) continue;
            if (removed[y] && y < x) continue;  // counted at the smaller id
            ++cnt;
          }
        }
        return cnt;
      },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
  return out;
}

/// Apply a simulated phase: color joiners, deactivate removed vertices,
/// maintain the remaining-edge and uncolored counts.
void apply_phase(MisState& st, const PhaseOutcome& out) {
  const ReductionGraph& r = *st.r;
  std::vector<std::uint64_t> to_remove;
  for (const std::uint64_t x : out.joined) {
    const NodeId v = r.node_of(x);
    st.color[v] = r.palettes[v][x - r.base[v]];
    --st.uncolored;
    const std::uint64_t lo = r.base[v];
    const std::uint64_t hi = lo + r.palettes[v].size();
    for (std::uint64_t y = lo; y < hi; ++y) {
      if (st.vertex_active(y)) to_remove.push_back(y);
    }
    for (const std::uint64_t y : r.conflicts[x]) {
      if (st.vertex_active(y)) to_remove.push_back(y);
    }
  }
  std::sort(to_remove.begin(), to_remove.end());
  to_remove.erase(std::unique(to_remove.begin(), to_remove.end()),
                  to_remove.end());
  st.remaining_edges -= out.removed_edges;
  for (const std::uint64_t y : to_remove) st.active[y] = 0;
}

}  // namespace

MisColorResult mis_list_color(
    const Graph& g, const std::vector<std::vector<Color>>& palettes,
    const MisParams& params, std::uint64_t salt, const MpcModel* model) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DC_CHECK(palettes[v].size() > g.degree(v),
             "MIS reduction needs p(v) > d(v) at node ", v);
  }
  const ReductionGraph r = build_reduction(g, palettes);
  MisState st{&r,
              std::vector<char>(r.num_vertices, 1),
              std::vector<Color>(g.num_nodes(), Coloring::kUncolored),
              r.num_conflict_edges,
              g.num_nodes()};

  MisColorResult result;
  result.color.assign(g.num_nodes(), Coloring::kUncolored);

  const unsigned c = params.independence;
  const unsigned bits = KWiseHash::seed_bits(c);
  MisPhaseEngine engine(r.num_vertices, c, params.exec, params.tables);

  while (st.uncolored > 0) {
    params.exec.check_deadline("mis");
    DC_CHECK(result.phases < params.max_phases,
             "MIS failed to converge within ", params.max_phases, " phases");
    const std::uint64_t remaining = st.remaining_edges;
    const double target =
        remaining == 0
            ? 0.0
            : static_cast<double>(remaining) -
                  static_cast<double>(ceil_div(remaining,
                                               params.removal_fraction));
    // One simulation per *distinct* loaded seed: the state is fixed for the
    // whole phase, so when the selected seed was the last one evaluated (or
    // a candidate repeats under the enumeration), the cached outcome is
    // reused instead of re-simulating.
    PhaseOutcome sim;
    bool sim_valid = false;
    const auto simulate = [&]() -> const PhaseOutcome& {
      if (!sim_valid) {
        sim = simulate_phase(st, engine);
        sim_valid = true;
      }
      return sim;
    };
    const auto cost = [&](const SeedBits& s) {
      if (engine.load(s)) sim_valid = false;
      const PhaseOutcome& out = simulate();
      // Cost: edges left after the phase; joining progress breaks zero-edge
      // ties so the final conflict-free phases still advance.
      return static_cast<double>(remaining - out.removed_edges) -
             (out.joined.empty() ? 0.0 : 0.5);
    };
    const SeedSelectResult sel =
        select_seed(bits, cost, target, params.seed,
                    sub_seed(salt, result.phases));
    result.seed_evaluations += sel.evaluations;
    result.seed_rounds += sel.rounds_charged;
    result.ledger.charge("mis-seed", sel.rounds_charged, sel.words_charged);
    result.ledger.charge("mis-phase", params.rounds_per_phase,
                         r.num_vertices);
    result.mpc.ledger.charge("mis-seed", sel.rounds_charged,
                             sel.words_charged);
    result.mpc.ledger.charge("mis-phase", params.rounds_per_phase,
                             r.num_vertices);

    if (engine.load(sel.seed)) sim_valid = false;
    apply_phase(st, simulate());
    ++result.phases;
  }
  result.color = st.color;
  // Residency of the reduction graph (Section 4.1's space bound): checked
  // against the caller's model when one is supplied, recorded raw otherwise.
  if (model != nullptr) {
    model->note_resident(
        std::min<std::uint64_t>(r.size_words(), model->local_space()),
        r.size_words(), result.mpc);
  } else {
    result.mpc.note_resident(r.size_words(), r.size_words());
  }
  return result;
}

}  // namespace detcol
