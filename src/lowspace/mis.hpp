// Deterministic (derandomized-Luby) MIS on the coloring reduction graph.
//
// Stand-in for the CDP SPAA'20 MIS [7] that Theorem 1.4 consumes (see
// DESIGN.md §2): per phase, c-wise independent priorities are drawn from a
// seed chosen deterministically so that at least a constant fraction of the
// remaining conflict edges is removed (Luby's analysis needs only pairwise
// independence, so the expectation bound survives derandomization). A
// reduction-graph vertex (v,c) joins the MIS when it has the smallest
// priority within its implicit clique and among its active conflict
// neighbors; joining colors node v with c.
#pragma once

#include <cstdint>
#include <vector>

#include "derand/strategies.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "lowspace/reduction.hpp"
#include "sim/ledger.hpp"
#include "sim/mpc_costs.hpp"
#include "sim/mpc_sim.hpp"

namespace detcol {

class PowerTableProvider;  // hashing/batch_eval.hpp

struct MisParams {
  unsigned independence = 4;
  /// Accept a phase seed that removes at least remaining/removal_fraction
  /// conflict edges (16 mirrors Luby's m/8 expectation with slack 2).
  std::uint64_t removal_fraction = 16;
  SeedSelectConfig seed;
  /// Safety cap on phases (the theory gives O(log m)).
  unsigned max_phases = 256;
  /// Model rounds charged per phase on top of the seed-selection schedule
  /// (priority exchange + join resolution + cleanup).
  std::uint64_t rounds_per_phase = 4;
  /// Host execution context: the phase-seed search shards its simulation
  /// passes over this pool (results are bit-identical for any thread count).
  ExecContext exec;

  /// Optional shared power-table source (hashing/batch_eval.hpp); null =
  /// build private tables. Must be thread-safe; never changes results.
  PowerTableProvider* tables = nullptr;
};

struct MisColorResult {
  /// Color per local node (all nodes colored on success).
  std::vector<Color> color;
  unsigned phases = 0;
  std::uint64_t seed_evaluations = 0;
  std::uint64_t seed_rounds = 0;   // rounds of all per-phase seed schedules
  RoundLedger ledger;              // phase rounds + seed rounds

  /// MPC cost accumulator for this call: mirrors the ledger charges and
  /// records the reduction graph's residency footprint. When the caller
  /// passes an MpcModel the peaks are contract-checked against its space
  /// bounds; otherwise they are recorded unchecked.
  MpcCosts mpc;
};

/// Solve list coloring of `g` (local ids, palettes[v] sorted, strictly larger
/// than deg(v)) via the MIS reduction. Deterministic; `salt` namespaces the
/// seed enumeration. `model`, if non-null, contract-checks the reduction
/// graph's footprint against its space bounds (the low-space driver passes
/// its own model; the standalone baseline passes none).
MisColorResult mis_list_color(const Graph& g,
                              const std::vector<std::vector<Color>>& palettes,
                              const MisParams& params, std::uint64_t salt,
                              const MpcModel* model = nullptr);

}  // namespace detcol
