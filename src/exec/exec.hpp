// ExecContext + deterministic data-parallel primitives.
//
// The determinism contract of this layer (the reason results are bit-
// identical for every thread count):
//
//  * Static shard boundaries. A loop over n items is cut into
//    shard_count(n, grain) contiguous shards whose boundaries depend only on
//    n and the grain — never on the thread count or on runtime load. Thread
//    count only changes which thread executes which shard.
//
//  * Shard-ordered reduction. parallel_reduce_shards materializes one
//    partial result per shard and folds them sequentially in shard-index
//    order. Floating-point sums therefore associate exactly as they would in
//    a serial loop over the shards, independent of execution interleaving.
//
//  * Disjoint writes. parallel_for_shards bodies may write only to slots
//    owned by their shard (plus commutative atomic accumulators).
//
// An ExecContext is a value (one pointer): default-constructed it is
// sequential; constructed from a ThreadPool it fans shards out as pool
// tasks. Either way the same shard decomposition runs, so the sequential
// path is the 1-thread special case of the parallel one, not separate code.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/deadline.hpp"

namespace detcol {

/// Two-pointer value type handed down every parallelized call path. Copying
/// is free and thread-safe; the referenced pool must outlive every context
/// that points at it (ExecHolder packages that lifetime rule). A
/// default-constructed context is the sequential special case — same shard
/// decomposition, no pool — so code never branches on "parallel or not".
///
/// The context also carries the run's optional wall-clock Deadline
/// (util/deadline.hpp): the driver loops poll check_deadline() at coarse
/// safe points, so every pipeline that takes an exec token inherits timeout
/// support without new plumbing. The pointed-to Deadline, like the pool,
/// must outlive the context (the suite runner keeps it on the cell's stack
/// frame around the whole pipeline call).
///
/// A context may additionally carry a *thread budget* (with_budget): a
/// per-call cap on the data-parallel fan-out below the pool's worker count.
/// The serving layer uses it to run many requests on one shared pool while
/// honoring each request's own --threads value: a budget of B caps every
/// shard loop at B concurrent lane tasks, and a budget of 1 makes the whole
/// call sequential (parallel() turns false, so sibling-recursion dispatch
/// degenerates to the inline fold). Budgets never change results — the
/// determinism contract already makes every thread count bit-identical —
/// only how many workers a call can occupy at once.
class ExecContext {
 public:
  constexpr ExecContext() = default;  // sequential
  explicit ExecContext(ThreadPool& pool) : pool_(&pool) {}

  /// The context's logical thread count: the budget when one is set, else
  /// the pool's worker count (1 without a pool). This is the value runs
  /// report as "threads" — a budget ABOVE the pool's worker count is legal
  /// (the serving layer honors a request's --threads on whatever pool it
  /// has) and merely means the cap is not binding; the determinism contract
  /// makes the difference unobservable in results.
  unsigned num_threads() const {
    if (budget_ != 0) return budget_;
    return pool_ ? pool_->num_threads() : 1;
  }
  bool parallel() const { return pool_ != nullptr && num_threads() > 1; }
  ThreadPool* pool() const { return pool_; }

  /// Copy of this context capped at `budget` concurrent lanes (0 = uncapped).
  ExecContext with_budget(unsigned budget) const {
    ExecContext out = *this;
    out.budget_ = budget;
    return out;
  }
  /// True when a budget below the pool's worker count is in force (a budget
  /// at or above the worker count never binds — the pool itself is the cap).
  bool budgeted() const {
    return pool_ != nullptr && budget_ != 0 && budget_ < pool_->num_threads();
  }

  void set_deadline(const Deadline* d) { deadline_ = d; }
  const Deadline* deadline() const { return deadline_; }

  /// Cooperative timeout poll: throws DeadlineExceeded once the attached
  /// deadline has expired. `where` names the polling driver for the
  /// diagnostic. Near-free when no deadline is attached.
  void check_deadline(const char* where) const {
    if (deadline_ != nullptr && deadline_->expired()) {
      throw DeadlineExceeded(std::string(where) +
                             ": wall-clock budget exhausted");
    }
  }

 private:
  ThreadPool* pool_ = nullptr;
  const Deadline* deadline_ = nullptr;
  unsigned budget_ = 0;  // 0 = no cap; otherwise max concurrent lanes
};

/// Pool + context pair for callers that size the pool from a runtime thread
/// count: the ExecContext holds a raw pointer into the pool, so both must
/// travel (and die) together. unique_ptr because ThreadPool is immovable;
/// threads <= 1 yields the sequential context with no pool.
struct ExecHolder {
  std::unique_ptr<ThreadPool> pool;
  ExecContext exec;
};

inline ExecHolder make_exec_holder(unsigned threads) {
  ExecHolder out;
  if (threads > 1) {
    out.pool = std::make_unique<ThreadPool>(threads);
    out.exec = ExecContext(*out.pool);
  }
  return out;
}

/// Relaxed atomic max — commutative, so the final value is independent of
/// the order concurrent branches reach it (used for driver-wide peak/depth
/// accumulators by both recursion drivers).
template <typename T>
void atomic_fetch_max(std::atomic<T>& a, T v) {
  T cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Default items-per-shard. Coarse enough that shard dispatch is noise next
/// to the per-item work of the seed-evaluation loops, fine enough to occupy
/// ~8 threads at the bench scale (n = 2^14). Part of the determinism
/// contract: changing it changes shard boundaries, which is safe (results
/// are shard-order folded) but alters nothing observable anyway for the
/// integer pipelines.
inline constexpr std::size_t kDefaultShardGrain = 2048;

/// Number of static shards for n items: depends only on n and grain — the
/// first clause of the determinism contract. O(1), never throws.
inline std::size_t shard_count(std::size_t n,
                               std::size_t grain = kDefaultShardGrain) {
  return (n + grain - 1) / grain;
}

/// Run body(shard_index, begin, end) over every shard of [0, n). Shards may
/// execute concurrently and in any order; the call returns after all have
/// finished. Exceptions from shard bodies propagate (first one wins).
template <typename Body>
void parallel_for_shards(ExecContext exec, std::size_t n, Body&& body,
                         std::size_t grain = kDefaultShardGrain) {
  const std::size_t shards = shard_count(n, grain);
  if (shards == 0) return;
  if (shards == 1 || !exec.parallel()) {
    for (std::size_t s = 0; s < shards; ++s) {
      body(s, s * grain, std::min(n, (s + 1) * grain));
    }
    return;
  }
  TaskGroup group(*exec.pool());
  // One shared context per call, so each spawned closure captures only
  // {&ctx, s} (16 bytes): it fits std::function's small-object buffer and
  // the per-shard spawn stays allocation-free — parallel_for_shards sits in
  // the per-candidate hot loop of the seed engines.
  struct Ctx {
    std::remove_reference_t<Body>* body;
    std::size_t grain;
    std::size_t n;
  } ctx{&body, grain, n};
  const std::size_t lanes = exec.num_threads();
  if (exec.budgeted() && lanes < shards) {
    // Thread-budgeted call: `lanes` strided tasks instead of one task per
    // shard, so this loop can occupy at most `lanes` workers of the shared
    // pool. Each lane runs the same (s, begin, end) triples the per-shard
    // spawn would, just batched — shard boundaries (and therefore results)
    // are untouched.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      group.spawn([&ctx, lane, lanes, shards] {
        for (std::size_t s = lane; s < shards; s += lanes) {
          (*ctx.body)(s, s * ctx.grain, std::min(ctx.n, (s + 1) * ctx.grain));
        }
      });
    }
    group.wait();
    return;
  }
  for (std::size_t s = 0; s < shards; ++s) {
    group.spawn([&ctx, s] {
      (*ctx.body)(s, s * ctx.grain, std::min(ctx.n, (s + 1) * ctx.grain));
    });
  }
  group.wait();
}

/// Ordered producer/consumer over `chunks` sequential work units:
/// process(c) -> R runs concurrently (in waves of the context's thread
/// count, bounding buffered results to one wave), consume(c, R&&) runs on
/// the calling thread in strict chunk order. The shape the streaming .dcg
/// writer needs — chunk payloads are prepared in parallel but hit the byte
/// sink in file order, so the emitted stream is bit-identical for every
/// thread count. Exceptions from either side propagate; once consume(c)
/// has run, chunks <= c are never revisited.
template <typename R, typename Process, typename Consume>
void parallel_ordered_chunks(ExecContext exec, std::size_t chunks,
                             Process&& process, Consume&& consume) {
  const std::size_t wave = std::max<std::size_t>(1, exec.num_threads());
  std::vector<R> buffered;
  for (std::size_t base = 0; base < chunks; base += wave) {
    const std::size_t count = std::min(wave, chunks - base);
    buffered.clear();
    buffered.resize(count);
    parallel_for_shards(
        exec, count,
        [&](std::size_t s, std::size_t begin, std::size_t) {
          buffered[s] = process(base + begin);
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < count; ++i) {
      consume(base + i, std::move(buffered[i]));
    }
  }
}

/// Shard-ordered reduction: body(shard_index, begin, end) -> T computed per
/// shard (concurrently), then folded left-to-right in shard-index order with
/// combine(acc, partial). The fold order is fixed, so floating-point results
/// are bit-identical for every thread count.
template <typename T, typename Body, typename Combine>
T parallel_reduce_shards(ExecContext exec, std::size_t n, T init, Body&& body,
                         Combine&& combine,
                         std::size_t grain = kDefaultShardGrain) {
  const std::size_t shards = shard_count(n, grain);
  std::vector<T> partial(shards);
  parallel_for_shards(
      exec, n,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        partial[s] = body(s, begin, end);
      },
      grain);
  T acc = std::move(init);
  for (std::size_t s = 0; s < shards; ++s) {
    acc = combine(std::move(acc), std::move(partial[s]));
  }
  return acc;
}

}  // namespace detcol
