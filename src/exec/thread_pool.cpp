#include "exec/thread_pool.hpp"

#include "util/check.hpp"

namespace detcol {

ThreadPool::ThreadPool(unsigned num_threads) : num_threads_(num_threads) {
  DC_CHECK(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (unsigned i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lk) {
  if (queue_.empty()) return false;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  lk.unlock();
  std::exception_ptr err;
  try {
    task.fn();
  } catch (...) {
    err = std::current_exception();
  }
  // Release the (possibly capturing) callable outside the lock.
  task.fn = nullptr;
  lk.lock();
  if (err && !task.group->error_) task.group->error_ = err;
  --task.group->pending_;
  if (task.group->pending_ == 0) cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (!run_one(lk)) cv_.wait(lk);
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lk(pool_.mu_);
    pool_.queue_.push_back(ThreadPool::Task{std::move(fn), this});
    ++pending_;
  }
  pool_.cv_.notify_one();
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lk(pool_.mu_);
  while (pending_ > 0) {
    // Help: run queued work (any group's) rather than sleeping; block only
    // when all remaining work of this group is running on other threads.
    if (!pool_.run_one(lk)) pool_.cv_.wait(lk);
  }
  const std::exception_ptr err = error_;
  error_ = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

TaskGroup::~TaskGroup() {
  // Tasks hold a pointer to this group; never let it die with work in
  // flight. Errors are swallowed here — join via wait() to observe them.
  std::unique_lock<std::mutex> lk(pool_.mu_);
  while (pending_ > 0) {
    if (!pool_.run_one(lk)) pool_.cv_.wait(lk);
  }
}

}  // namespace detcol
