// Worker pool + fork/join task groups for the deterministic execution layer.
//
// Design constraints (see README "Parallel execution and determinism"):
//
//  * Scheduling must never influence results. The pool only decides *when*
//    and *on which thread* a task runs; callers are responsible for making
//    task outputs independent of that (disjoint output slots, commutative
//    accumulators, static shard boundaries). Everything in src/exec obeys
//    this contract, so any thread count — including 1 — produces bit-
//    identical colorings, ledgers and stats.
//
//  * Nested fork/join must not deadlock. ColorReduce recursions spawn groups
//    from inside pool tasks; a blocking join could strand every worker in a
//    wait. TaskGroup::wait() therefore *helps*: while its tasks are pending
//    it pops and runs queued tasks (from any group) instead of sleeping, and
//    only blocks when the queue is empty (its work is in flight elsewhere).
//
//  * A pool of n threads uses the calling thread plus n-1 workers, so
//    ThreadPool(1) spawns nothing and TaskGroup degenerates to an inline
//    FIFO loop — the sequential execution order, exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace detcol {

class TaskGroup;

class ThreadPool {
 public:
  /// `num_threads` >= 1 counts the calling thread: n-1 workers are spawned.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void worker_loop();
  /// Pops and runs the front task, releasing `lk` around the call. Returns
  /// false (without running anything) when the queue is empty. `lk` is held
  /// on entry and on return.
  bool run_one(std::unique_lock<std::mutex>& lk);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  unsigned num_threads_;
};

/// A fork/join scope: spawn() submits tasks, wait() joins them (helping with
/// queued work meanwhile) and rethrows the first exception a task raised.
/// The group must outlive its tasks — the destructor joins if needed.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(std::function<void()> fn);
  void wait();

  /// Fork/join with a shard-ordered merge — the join-point primitive of the
  /// two-tier state model (immutable instance state, per-task run state).
  /// Runs body(i) -> T for i in [0, count) and calls
  /// merge(i, std::move(result_i)) on the calling thread in index order.
  /// With a pool, bodies run as group tasks and every merge happens after
  /// the join; without one (`pool == nullptr`, the sequential special case)
  /// each merge directly follows its body. The merge call sequence is
  /// identical either way, so any merge whose result depends only on the
  /// fold order — ledger composition, counter sums, peak maxes — is
  /// bit-identical for every thread count. Bodies must not read state the
  /// merges write.
  template <typename Body, typename Merge>
  static void fold(ThreadPool* pool, std::size_t count, Body&& body,
                   Merge&& merge) {
    using T = decltype(body(std::size_t{0}));
    if (pool == nullptr || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) merge(i, body(i));
      return;
    }
    std::vector<std::optional<T>> slots(count);
    TaskGroup tg(*pool);
    for (std::size_t i = 0; i < count; ++i) {
      tg.spawn([&slots, &body, i] { slots[i].emplace(body(i)); });
    }
    tg.wait();
    for (std::size_t i = 0; i < count; ++i) {
      merge(i, std::move(*slots[i]));
    }
  }

 private:
  friend class ThreadPool;

  ThreadPool& pool_;
  std::size_t pending_ = 0;   // guarded by pool_.mu_
  std::exception_ptr error_;  // first task failure, guarded by pool_.mu_
};

}  // namespace detcol
