// Worker pool + fork/join task groups for the deterministic execution layer.
//
// Design constraints (see README "Parallel execution and determinism"):
//
//  * Scheduling must never influence results. The pool only decides *when*
//    and *on which thread* a task runs; callers are responsible for making
//    task outputs independent of that (disjoint output slots, commutative
//    accumulators, static shard boundaries). Everything in src/exec obeys
//    this contract, so any thread count — including 1 — produces bit-
//    identical colorings, ledgers and stats.
//
//  * Nested fork/join must not deadlock. ColorReduce recursions spawn groups
//    from inside pool tasks; a blocking join could strand every worker in a
//    wait. TaskGroup::wait() therefore *helps*: while its tasks are pending
//    it pops and runs queued tasks (from any group) instead of sleeping, and
//    only blocks when the queue is empty (its work is in flight elsewhere).
//
//  * A pool of n threads uses the calling thread plus n-1 workers, so
//    ThreadPool(1) spawns nothing and TaskGroup degenerates to an inline
//    FIFO loop — the sequential execution order, exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace detcol {

class TaskGroup;

class ThreadPool {
 public:
  /// `num_threads` >= 1 counts the calling thread: n-1 workers are spawned.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void worker_loop();
  /// Pops and runs the front task, releasing `lk` around the call. Returns
  /// false (without running anything) when the queue is empty. `lk` is held
  /// on entry and on return.
  bool run_one(std::unique_lock<std::mutex>& lk);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  unsigned num_threads_;
};

/// A fork/join scope: spawn() submits tasks, wait() joins them (helping with
/// queued work meanwhile) and rethrows the first exception a task raised.
/// The group must outlive its tasks — the destructor joins if needed.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(std::function<void()> fn);
  void wait();

 private:
  friend class ThreadPool;

  ThreadPool& pool_;
  std::size_t pending_ = 0;   // guarded by pool_.mu_
  std::exception_ptr error_;  // first task failure, guarded by pool_.mu_
};

}  // namespace detcol
