// Vectorized kernels for the three hot field passes of the batched
// seed-evaluation engines, behind a runtime-dispatched function-pointer
// table.
//
// Every pipeline's innermost loop — the method-of-conditional-expectations
// seed search (Lemma 2.4 polynomial hashing, Section 2.3 range mapping) —
// bottoms out in element-wise multiply-adds over F_{2^61 - 1} on the
// contiguous power tables of BatchKWiseEval. Those passes are embarrassingly
// data-parallel per element, so they vectorize 4 (AVX2) or 2 (NEON) points
// per instruction with the exact same per-element arithmetic as the scalar
// code in hashing/field.hpp.
//
// The determinism contract (the reason forcing any kernel is safe):
//
//  * Bit-identical per element. Each vector lane performs the identical
//    sequence of modular reductions as the scalar m61_* helpers — the limb
//    decomposition below reconstructs the exact (lo, hi) split of the
//    128-bit product, so every intermediate 64-bit value matches the scalar
//    path bit for bit (see simd_kernels.cpp for the algebra).
//  * Index-order tails. A kernel processes full vector blocks from `begin`
//    upward and finishes the remainder with the scalar loop in index order.
//    Elements are independent, so lane width never reorders observable
//    arithmetic.
//  * Shard boundaries unchanged. Kernels run *inside* the static shards of
//    exec/exec.hpp ([begin, end) slices of a base pointer); dispatch changes
//    how a shard's elements are computed, never how work is split or folded.
//
// Dispatch is selected once at startup: the best ISA the host supports
// (cpuid on x86, unconditional NEON on aarch64), overridable with
// `--simd=auto|scalar|avx2|neon` / $DETCOL_SIMD (see select_simd). The
// active table is captured by BatchKWiseEval at construction, so a running
// engine never observes a mid-search switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace detcol {

enum class SimdKind { kScalar, kAvx2, kNeon };

/// One dispatch table of element-wise field kernels. All functions operate
/// on the half-open index range [begin, end) of their base pointers, so
/// callers can hand a kernel one static shard of a larger array. All inputs
/// except reduce_row must already be canonical residues in [0, p).
struct FieldKernel {
  /// Display name: "scalar", "avx2", "neon".
  const char* name;

  /// The coefficient-diff multiply-add of BatchKWiseEval::load:
  ///   vals[i] += deltas[k] * rows[k][i]  (mod p)  for k in [0, num_rows),
  /// accumulated in k order per element (one vals load/store per element).
  void (*mul_add_rows)(std::uint64_t* vals, const std::uint64_t* const* rows,
                       const std::uint64_t* deltas, unsigned num_rows,
                       std::size_t begin, std::size_t end);

  /// Power-table row step: out[i] = a[i] * b[i] (mod p).
  void (*mul_rows)(std::uint64_t* out, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t begin, std::size_t end);

  /// Canonicalize arbitrary 64-bit words: out[i] = m61_reduce(in[i]).
  void (*reduce_row)(std::uint64_t* out, const std::uint64_t* in,
                     std::size_t begin, std::size_t end);

  /// The batched Section 2.3 range mapping:
  ///   out[i] = uint32(m61_to_range(vals[i], range)) + offset.
  /// `range` >= 1; ranges >= 2^32 take the scalar path in every kernel.
  void (*to_bins)(std::uint32_t* out, const std::uint64_t* vals,
                  std::uint64_t range, std::uint32_t offset, std::size_t begin,
                  std::size_t end);

  /// One Horner step over a point vector: acc[i] = acc[i] * x[i] + coeff
  /// (mod p) — the bulk KWiseHash::field_eval path.
  void (*fma_const)(std::uint64_t* acc, const std::uint64_t* x,
                    std::uint64_t coeff, std::size_t begin, std::size_t end);
};

/// Whether this build + host can run the given kernel. kScalar is always
/// true; kAvx2 needs an x86 build and the AVX2 cpuid bit; kNeon needs an
/// aarch64 build (NEON is baseline there).
bool simd_available(SimdKind kind);

/// The best available kind for this host (what "auto" resolves to).
SimdKind simd_auto_kind();

/// Display name of a kind ("scalar", "avx2", "neon").
const char* simd_kind_name(SimdKind kind);

/// The currently selected kernel table. Before any select_simd call this is
/// $DETCOL_SIMD if set (a malformed or unavailable value raises CheckError),
/// else the auto-detected best — i.e. selection happens once at first use.
const FieldKernel& active_field_kernel();

/// Name of the active kernel — the "kernel" field of stats/suite JSON.
/// Host-dependent, so it is excluded from cross-host bit-compares exactly
/// like "timing" (in-process invariance suites run under one fixed kernel).
const char* active_simd_name();

/// Select the active kernel from a spec string: "auto" (best available),
/// "scalar", "avx2", "neon". Returns false without changing the selection
/// when the spec is malformed or names an ISA this host cannot run; *error
/// then holds a one-line diagnostic (the CLI maps it to usage exit 2).
bool select_simd(const std::string& spec, std::string* error);

}  // namespace detcol
