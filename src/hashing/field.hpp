// Arithmetic over the Mersenne prime field F_p with p = 2^61 - 1.
//
// The c-wise independent hash families of Section 2.3 of the paper are
// realized as degree-(c-1) polynomials over this field: the classical
// construction behind Lemma 2.4. Mersenne-61 admits branch-light reduction
// and holds every id we hash (node ids in [n], color ids in [n^2]).
#pragma once

#include <cstdint>

namespace detcol {

inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Reduce a value < 2^62 into [0, p).
constexpr std::uint64_t m61_reduce(std::uint64_t x) {
  x = (x & kMersenne61) + (x >> 61);
  return x >= kMersenne61 ? x - kMersenne61 : x;
}

constexpr std::uint64_t m61_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // both < p < 2^61, no overflow
  return s >= kMersenne61 ? s - kMersenne61 : s;
}

constexpr std::uint64_t m61_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kMersenne61 - b;
}

/// Multiply in F_p using 128-bit intermediate.
constexpr std::uint64_t m61_mul(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kMersenne61;
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  // For a, b < 2^62: prod < 2^124, so hi < 2^63 and s = lo + hi < 2^61 +
  // 2^63 does not overflow; the fold leaves (s & M) + (s >> 61) <= M + 4,
  // which one conditional subtract canonicalizes. (Canonical inputs < p
  // give the tighter hi < 2^61, s < 2^62, fold <= M + 1 — the bound the
  // vector kernels in hashing/simd_kernels.cpp replicate limb by limb.)
  std::uint64_t s = lo + hi;
  s = (s & kMersenne61) + (s >> 61);
  return s >= kMersenne61 ? s - kMersenne61 : s;
}

/// Map a field element u in [0, p) onto [0, range) with near-equal interval
/// sizes (the paper's Section 2.3 range-mapping; bias O(range / p)).
constexpr std::uint64_t m61_to_range(std::uint64_t u, std::uint64_t range) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(u) * range) >> 61);
}

/// Modular exponentiation in F_p (used by tests for field sanity checks).
std::uint64_t m61_pow(std::uint64_t base, std::uint64_t exp);

/// Multiplicative inverse via Fermat (a != 0).
std::uint64_t m61_inv(std::uint64_t a);

}  // namespace detcol
