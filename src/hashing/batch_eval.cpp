#include "hashing/batch_eval.hpp"

#include "util/check.hpp"

namespace detcol {

BatchKWiseEval::BatchKWiseEval(std::span<const std::uint64_t> points,
                               unsigned independence, std::uint64_t range)
    : c_(independence), range_(range) {
  DC_CHECK(independence >= 1, "hash needs at least one coefficient");
  DC_CHECK(independence <= 64, "independence beyond 64 is unsupported");
  DC_CHECK(range >= 1, "hash range must be >= 1");
  const std::size_t n = points.size();
  pow_.resize(static_cast<std::size_t>(c_) * n);
  for (std::size_t i = 0; i < n; ++i) pow_[i] = 1;  // x^0
  for (unsigned j = 1; j < c_; ++j) {
    const std::uint64_t* prev = pow_.data() + (j - 1) * n;
    std::uint64_t* row = pow_.data() + static_cast<std::size_t>(j) * n;
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = m61_mul(prev[i], m61_reduce(points[i]));
    }
  }
  cur_words_.assign(c_, 0);
  cur_.assign(c_, 0);
  vals_.assign(n, 0);  // the zero polynomial evaluates to 0 everywhere
}

bool BatchKWiseEval::load(std::span<const std::uint64_t> seed_words,
                          ExecContext exec) {
  DC_CHECK(seed_words.size() == c_, "expected ", c_, " seed words, got ",
           seed_words.size());
  const std::size_t n = vals_.size();
  // Collect the changed coefficients first, then apply them in one fused
  // pass over the value array: the per-point multiplies are independent, so
  // one pass pipelines better than one pass per coefficient.
  unsigned num_changed = 0;
  std::uint64_t deltas[64];
  const std::uint64_t* rows[64];
  for (unsigned j = 0; j < c_; ++j) {
    const std::uint64_t w = seed_words[j];
    if (w == cur_words_[j]) continue;
    const std::uint64_t a = m61_reduce(w);
    const std::uint64_t delta = m61_sub(a, cur_[j]);
    cur_words_[j] = w;
    cur_[j] = a;
    if (delta == 0) continue;  // distinct words, same residue
    deltas[num_changed] = delta;
    rows[num_changed] = pow_.data() + static_cast<std::size_t>(j) * n;
    ++num_changed;
  }
  if (num_changed == 0) return false;
  parallel_for_shards(exec, n, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
    if (num_changed == 1) {
      const std::uint64_t d0 = deltas[0];
      const std::uint64_t* row = rows[0];
      for (std::size_t i = begin; i < end; ++i) {
        vals_[i] = m61_add(vals_[i], m61_mul(d0, row[i]));
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        std::uint64_t acc = vals_[i];
        for (unsigned k = 0; k < num_changed; ++k) {
          acc = m61_add(acc, m61_mul(deltas[k], rows[k][i]));
        }
        vals_[i] = acc;
      }
    }
  });
  return true;
}

}  // namespace detcol
