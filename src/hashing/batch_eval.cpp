#include "hashing/batch_eval.hpp"

#include "util/check.hpp"

namespace detcol {

M61PowerTable::M61PowerTable(std::span<const std::uint64_t> points,
                             unsigned independence)
    : c_(independence), n_(points.size()) {
  DC_CHECK(independence >= 1, "hash needs at least one coefficient");
  DC_CHECK(independence <= 64, "independence beyond 64 is unsupported");
  const FieldKernel& kernel = active_field_kernel();
  pow_.resize(static_cast<std::size_t>(c_) * n_);
  for (std::size_t i = 0; i < n_; ++i) pow_[i] = 1;  // x^0
  if (c_ > 1) {
    // Row 1 is the reduced points themselves (x^1 = m61_reduce(x), exactly
    // the m61_mul(1, m61_reduce(x)) the row recurrence would compute); each
    // later row multiplies the previous one by row 1 element-wise.
    std::uint64_t* x1 = pow_.data() + n_;
    kernel.reduce_row(x1, points.data(), 0, n_);
    for (unsigned j = 2; j < c_; ++j) {
      const std::uint64_t* prev = pow_.data() + (j - 1) * n_;
      std::uint64_t* r = pow_.data() + static_cast<std::size_t>(j) * n_;
      kernel.mul_rows(r, prev, x1, 0, n_);
    }
  }
}

bool M61PowerTable::matches(std::span<const std::uint64_t> points,
                            unsigned independence) const {
  if (independence != c_ || points.size() != n_) return false;
  if (c_ == 1) return true;  // only the all-ones row exists
  const std::uint64_t* x1 = row(1);
  for (std::size_t i = 0; i < n_; ++i) {
    if (m61_reduce(points[i]) != x1[i]) return false;
  }
  return true;
}

std::shared_ptr<const M61PowerTable> acquire_power_table(
    PowerTableProvider* provider, std::span<const std::uint64_t> points,
    unsigned independence) {
  if (provider != nullptr) return provider->acquire(points, independence);
  return std::make_shared<M61PowerTable>(points, independence);
}

BatchKWiseEval::BatchKWiseEval(std::span<const std::uint64_t> points,
                               unsigned independence, std::uint64_t range)
    : BatchKWiseEval(std::make_shared<M61PowerTable>(points, independence),
                     range) {}

BatchKWiseEval::BatchKWiseEval(std::shared_ptr<const M61PowerTable> table,
                               std::uint64_t range)
    : kernel_(&active_field_kernel()),
      c_(table->independence()),
      range_(range),
      table_(std::move(table)) {
  DC_CHECK(range >= 1, "hash range must be >= 1");
  cur_words_.assign(c_, 0);
  cur_.assign(c_, 0);
  vals_.assign(table_->num_points(), 0);  // zero polynomial -> 0 everywhere
}

bool BatchKWiseEval::load(std::span<const std::uint64_t> seed_words,
                          ExecContext exec) {
  DC_CHECK(seed_words.size() == c_, "expected ", c_, " seed words, got ",
           seed_words.size());
  const std::size_t n = vals_.size();
  // Collect the changed coefficients first, then apply them in one fused
  // pass over the value array: the per-point multiplies are independent, so
  // one pass pipelines better than one pass per coefficient.
  unsigned num_changed = 0;
  std::uint64_t deltas[64];
  const std::uint64_t* rows[64];
  for (unsigned j = 0; j < c_; ++j) {
    const std::uint64_t w = seed_words[j];
    if (w == cur_words_[j]) continue;
    const std::uint64_t a = m61_reduce(w);
    const std::uint64_t delta = m61_sub(a, cur_[j]);
    cur_words_[j] = w;
    cur_[j] = a;
    if (delta == 0) continue;  // distinct words, same residue
    deltas[num_changed] = delta;
    rows[num_changed] = table_->row(j);
    ++num_changed;
  }
  if (num_changed == 0) return false;
  parallel_for_shards(
      exec, n, [&](std::size_t, std::size_t begin, std::size_t end) {
        kernel_->mul_add_rows(vals_.data(), rows, deltas, num_changed, begin,
                              end);
      });
  return true;
}

void BatchKWiseEval::bins_into(std::span<std::uint32_t> out,
                               std::uint32_t offset, ExecContext exec) const {
  DC_CHECK(out.size() == vals_.size(), "bins_into expects one slot per point");
  parallel_for_shards(
      exec, vals_.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        kernel_->to_bins(out.data(), vals_.data(), range_, offset, begin, end);
      });
}

}  // namespace detcol
