// Batched, incremental evaluation of one c-wise independent hash function
// (Definition 2.3 / Lemma 2.4) over a fixed point set.
//
// The method of conditional expectations evaluates the *same* polynomial
// family at the *same* points under thousands of nearby coefficient vectors:
// consecutive candidates share most of their seed words. Writing the hash in
// monomial form,
//   h(x) = sum_j a_j x^j  over F_{2^61 - 1},
// a coefficient change a_j -> a_j' moves every evaluation by exactly
// (a_j' - a_j) * x^j. BatchKWiseEval precomputes the power table x^j for all
// points once, keeps the field value of every point under the currently
// loaded coefficients, and applies a new coefficient vector by diffing it
// word-by-word against the previous one — one multiply-add per point per
// *changed* coefficient instead of a full Horner pass per point per call.
//
// Field values (and hence the range mapping of Section 2.3) are bit-identical
// to KWiseHash::field_eval / to_range: both compute the exact same element of
// F_p, just associated differently. tests/test_seed_eval.cpp asserts this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "hashing/field.hpp"
#include "hashing/simd_kernels.hpp"

namespace detcol {

class BatchKWiseEval {
 public:
  /// Build the power table for `points` (arbitrary 64-bit values; reduced
  /// mod p exactly like KWiseHash does) for a degree-(independence-1)
  /// polynomial with the given output `range` (>= 1).
  ///
  /// The engine captures the active field kernel (hashing/simd_kernels.hpp)
  /// here, so all passes of one engine run under one kernel even if the
  /// selection changes mid-search. Kernels are bit-identical per element, so
  /// which one is captured never shows in any output.
  BatchKWiseEval(std::span<const std::uint64_t> points, unsigned independence,
                 std::uint64_t range);

  /// Load a coefficient vector given as raw 64-bit seed words (the same
  /// representation KWiseHash consumes; exactly `independence` words).
  /// Coefficients whose word is unchanged since the previous load() cost
  /// nothing; the initial state is the all-zero polynomial. Returns true if
  /// any field value moved — false means every point evaluates exactly as
  /// before, so callers can reuse anything derived from the values.
  ///
  /// The per-point multiply-add pass shards over `exec` (static shard
  /// boundaries; pure integer arithmetic, so the values are bit-identical
  /// for any thread count).
  bool load(std::span<const std::uint64_t> seed_words, ExecContext exec = {});

  /// Field value of point i under the loaded coefficients, in [0, p).
  std::uint64_t field_value(std::size_t i) const { return vals_[i]; }

  /// Range-mapped value of point i, in [0, range) — identical to
  /// KWiseHash::operator() for the loaded seed words.
  std::uint64_t bin(std::size_t i) const {
    return m61_to_range(vals_[i], range_);
  }

  /// Batched bin pass: out[i] = uint32(bin(i)) + offset for every point
  /// (out.size() must equal num_points()). Shards over `exec`; each shard
  /// runs the captured kernel's to_bins, bit-identical to the bin() loop.
  void bins_into(std::span<std::uint32_t> out, std::uint32_t offset,
                 ExecContext exec = {}) const;

  std::size_t num_points() const { return vals_.size(); }
  unsigned independence() const { return c_; }
  std::uint64_t range() const { return range_; }

 private:
  const FieldKernel* kernel_;
  unsigned c_;
  std::uint64_t range_;
  // pow_[j * n + i] = (point i)^j mod p; row 0 is all ones.
  std::vector<std::uint64_t> pow_;
  std::vector<std::uint64_t> cur_words_;  // raw words currently applied
  std::vector<std::uint64_t> cur_;        // the same, reduced mod p
  std::vector<std::uint64_t> vals_;       // per-point field values
};

}  // namespace detcol
