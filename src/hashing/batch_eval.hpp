// Batched, incremental evaluation of one c-wise independent hash function
// (Definition 2.3 / Lemma 2.4) over a fixed point set.
//
// The method of conditional expectations evaluates the *same* polynomial
// family at the *same* points under thousands of nearby coefficient vectors:
// consecutive candidates share most of their seed words. Writing the hash in
// monomial form,
//   h(x) = sum_j a_j x^j  over F_{2^61 - 1},
// a coefficient change a_j -> a_j' moves every evaluation by exactly
// (a_j' - a_j) * x^j. BatchKWiseEval precomputes the power table x^j for all
// points once, keeps the field value of every point under the currently
// loaded coefficients, and applies a new coefficient vector by diffing it
// word-by-word against the previous one — one multiply-add per point per
// *changed* coefficient instead of a full Horner pass per point per call.
//
// The power table itself is a pure function of (points, independence) — it
// carries no load state — so it lives in its own immutable value type,
// M61PowerTable, shareable across engines, threads and (via a
// PowerTableProvider) across whole runs: the serving layer keeps each
// instance's tables resident so repeated requests on one graph skip the
// O(n·c) table build entirely. Sharing is invisible in outputs: a cached
// table is byte-identical to a freshly built one (the construction is
// deterministic and every field kernel is bit-identical per element).
//
// Field values (and hence the range mapping of Section 2.3) are bit-identical
// to KWiseHash::field_eval / to_range: both compute the exact same element of
// F_p, just associated differently. tests/test_seed_eval.cpp asserts this.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "hashing/field.hpp"
#include "hashing/simd_kernels.hpp"

namespace detcol {

/// Immutable per-point power table: pow[j * n + i] = (point i)^j mod p for
/// j in [0, independence). Row 0 is all ones; row 1 is the reduced points.
/// Construction is deterministic and kernel-independent (all kernels are
/// bit-identical per element), so two tables built from the same
/// (points, independence) pair hold identical bytes — the property that
/// makes cross-request sharing safe.
class M61PowerTable {
 public:
  M61PowerTable(std::span<const std::uint64_t> points, unsigned independence);

  std::size_t num_points() const { return n_; }
  unsigned independence() const { return c_; }
  const std::uint64_t* row(unsigned j) const { return pow_.data() + j * n_; }
  std::size_t bytes() const { return pow_.size() * sizeof(std::uint64_t); }

  /// True iff this table is exactly the one (points, independence) would
  /// build: same independence, same count, and every reduced point matches
  /// row 1. The table content is a pure function of the reduced points, so a
  /// true result guarantees byte-identity — providers use this to make hash
  /// collisions in their cache keys harmless.
  bool matches(std::span<const std::uint64_t> points,
               unsigned independence) const;

 private:
  unsigned c_;
  std::size_t n_;
  std::vector<std::uint64_t> pow_;
};

/// Source of shared power tables. acquire() must return a table for exactly
/// (points, independence) — typically from a cache, building on miss — and
/// must be thread-safe: engines are constructed concurrently from sibling
/// recursion tasks. Implementations live above the core layers (the serving
/// layer's per-instance store); pipeline configs carry a nullable pointer
/// and engines fall back to building private tables when it is null.
class PowerTableProvider {
 public:
  virtual ~PowerTableProvider() = default;
  virtual std::shared_ptr<const M61PowerTable> acquire(
      std::span<const std::uint64_t> points, unsigned independence) = 0;
};

/// Build a table directly when `provider` is null, else route through it.
std::shared_ptr<const M61PowerTable> acquire_power_table(
    PowerTableProvider* provider, std::span<const std::uint64_t> points,
    unsigned independence);

class BatchKWiseEval {
 public:
  /// Build the power table for `points` (arbitrary 64-bit values; reduced
  /// mod p exactly like KWiseHash does) for a degree-(independence-1)
  /// polynomial with the given output `range` (>= 1).
  ///
  /// The engine captures the active field kernel (hashing/simd_kernels.hpp)
  /// here, so all passes of one engine run under one kernel even if the
  /// selection changes mid-search. Kernels are bit-identical per element, so
  /// which one is captured never shows in any output.
  BatchKWiseEval(std::span<const std::uint64_t> points, unsigned independence,
                 std::uint64_t range);

  /// Same engine on a pre-built (possibly shared) power table. Load state is
  /// engine-private; only the immutable table is shared.
  BatchKWiseEval(std::shared_ptr<const M61PowerTable> table,
                 std::uint64_t range);

  /// Load a coefficient vector given as raw 64-bit seed words (the same
  /// representation KWiseHash consumes; exactly `independence` words).
  /// Coefficients whose word is unchanged since the previous load() cost
  /// nothing; the initial state is the all-zero polynomial. Returns true if
  /// any field value moved — false means every point evaluates exactly as
  /// before, so callers can reuse anything derived from the values.
  ///
  /// The per-point multiply-add pass shards over `exec` (static shard
  /// boundaries; pure integer arithmetic, so the values are bit-identical
  /// for any thread count).
  bool load(std::span<const std::uint64_t> seed_words, ExecContext exec = {});

  /// Field value of point i under the loaded coefficients, in [0, p).
  std::uint64_t field_value(std::size_t i) const { return vals_[i]; }

  /// Range-mapped value of point i, in [0, range) — identical to
  /// KWiseHash::operator() for the loaded seed words.
  std::uint64_t bin(std::size_t i) const {
    return m61_to_range(vals_[i], range_);
  }

  /// Batched bin pass: out[i] = uint32(bin(i)) + offset for every point
  /// (out.size() must equal num_points()). Shards over `exec`; each shard
  /// runs the captured kernel's to_bins, bit-identical to the bin() loop.
  void bins_into(std::span<std::uint32_t> out, std::uint32_t offset,
                 ExecContext exec = {}) const;

  std::size_t num_points() const { return vals_.size(); }
  unsigned independence() const { return c_; }
  std::uint64_t range() const { return range_; }

 private:
  const FieldKernel* kernel_;
  unsigned c_;
  std::uint64_t range_;
  std::shared_ptr<const M61PowerTable> table_;
  std::vector<std::uint64_t> cur_words_;  // raw words currently applied
  std::vector<std::uint64_t> cur_;        // the same, reduced mod p
  std::vector<std::uint64_t> vals_;       // per-point field values
};

}  // namespace detcol
