#include "hashing/field.hpp"

#include "util/check.hpp"

namespace detcol {

std::uint64_t m61_pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = m61_reduce(base);
  while (exp > 0) {
    if (exp & 1) result = m61_mul(result, b);
    b = m61_mul(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t m61_inv(std::uint64_t a) {
  DC_CHECK(m61_reduce(a) != 0, "inverse of zero");
  return m61_pow(a, kMersenne61 - 2);
}

}  // namespace detcol
