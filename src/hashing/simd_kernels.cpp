#include "hashing/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "hashing/field.hpp"
#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace detcol {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the reference semantics. Every vector kernel below is a
// lane-parallel transcription of exactly these loops.
// ---------------------------------------------------------------------------

void scalar_mul_add_rows(std::uint64_t* vals, const std::uint64_t* const* rows,
                         const std::uint64_t* deltas, unsigned num_rows,
                         std::size_t begin, std::size_t end) {
  if (num_rows == 1) {
    const std::uint64_t d0 = deltas[0];
    const std::uint64_t* row = rows[0];
    for (std::size_t i = begin; i < end; ++i) {
      vals[i] = m61_add(vals[i], m61_mul(d0, row[i]));
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    std::uint64_t acc = vals[i];
    for (unsigned k = 0; k < num_rows; ++k) {
      acc = m61_add(acc, m61_mul(deltas[k], rows[k][i]));
    }
    vals[i] = acc;
  }
}

void scalar_mul_rows(std::uint64_t* out, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) out[i] = m61_mul(a[i], b[i]);
}

void scalar_reduce_row(std::uint64_t* out, const std::uint64_t* in,
                       std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) out[i] = m61_reduce(in[i]);
}

void scalar_to_bins(std::uint32_t* out, const std::uint64_t* vals,
                    std::uint64_t range, std::uint32_t offset,
                    std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    out[i] = static_cast<std::uint32_t>(m61_to_range(vals[i], range)) + offset;
  }
}

void scalar_fma_const(std::uint64_t* acc, const std::uint64_t* x,
                      std::uint64_t coeff, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    acc[i] = m61_add(m61_mul(acc[i], x[i]), coeff);
  }
}

constexpr FieldKernel kScalarKernel = {
    "scalar",        scalar_mul_add_rows, scalar_mul_rows,
    scalar_reduce_row, scalar_to_bins,    scalar_fma_const,
};

// ---------------------------------------------------------------------------
// AVX2 kernels: 4 points per instruction.
//
// The bit-identity argument. The scalar m61_mul computes, for a, b < 2^61:
//   P  = a * b                  (exact, < 2^122)
//   lo = P mod 2^61,  hi = P >> 61   (hi < 2^61)
//   s  = lo + hi                (< 2^62, no u64 overflow)
//   s2 = (s & M) + (s >> 61);  result = s2 - M if s2 >= M else s2
// AVX2 has no 64x64->128 multiply, so each lane rebuilds the same P from
// 32-bit limbs via _mm256_mul_epu32 (unsigned 32x32->64). With
// a = 2^32*a1 + a0 (a1 < 2^29 since a < 2^61) and likewise b:
//   m0 = a0*b0 (< 2^64, exact)   m1 = a0*b1 + a1*b0 (< 2^62)   m2 = a1*b1
//   P  = m0 + 2^32*m1 + 2^64*m2
// Regrouping at bit 61 (all in-lane values < 2^63, so nothing overflows):
//   L = (m0 & M) + ((m1 mod 2^29) << 32)                (P = L + 2^61*H)
//   H = (m0 >> 61) + (m1 >> 29) + (m2 << 3)
// hence lo = L & M and hi = H + (L >> 61) *as exact u64 values*, so
//   s = (L & M) + H + (L >> 61)
// is the very same integer the scalar computes, and the shared fold +
// conditional subtract lands on the identical canonical residue. The signed
// _mm256_cmpgt_epi64 is safe because every compared value is < 2^63.
// ---------------------------------------------------------------------------
#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) inline __m256i avx2_mersenne() {
  return _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
}

// Conditional subtract: canonicalize s in [0, 2*p) to [0, p).
__attribute__((target("avx2"))) inline __m256i avx2_m61_canon(__m256i s) {
  const __m256i m = avx2_mersenne();
  const __m256i ge =
      _mm256_cmpgt_epi64(s, _mm256_sub_epi64(m, _mm256_set1_epi64x(1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, m));
}

// m61_add for canonical lanes a, b < p.
__attribute__((target("avx2"))) inline __m256i avx2_m61_add(__m256i a,
                                                            __m256i b) {
  return avx2_m61_canon(_mm256_add_epi64(a, b));
}

// m61_reduce for arbitrary 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i avx2_m61_reduce(__m256i x) {
  const __m256i m = avx2_mersenne();
  return avx2_m61_canon(_mm256_add_epi64(_mm256_and_si256(x, m),
                                         _mm256_srli_epi64(x, 61)));
}

// m61_mul for lanes a, b < 2^61 (see the derivation above).
__attribute__((target("avx2"))) inline __m256i avx2_m61_mul(__m256i a,
                                                            __m256i b) {
  const __m256i m = avx2_mersenne();
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i a1 = _mm256_srli_epi64(a, 32);
  const __m256i b1 = _mm256_srli_epi64(b, 32);
  // _mm256_mul_epu32 reads only the low 32 bits of each lane, so a and b
  // serve directly as a0 and b0.
  const __m256i m0 = _mm256_mul_epu32(a, b);
  const __m256i m1 =
      _mm256_add_epi64(_mm256_mul_epu32(a, b1), _mm256_mul_epu32(a1, b));
  const __m256i m2 = _mm256_mul_epu32(a1, b1);
  const __m256i low =
      _mm256_add_epi64(_mm256_and_si256(m0, m),
                       _mm256_slli_epi64(_mm256_and_si256(m1, mask29), 32));
  const __m256i high = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(m0, 61), _mm256_srli_epi64(m1, 29)),
      _mm256_slli_epi64(m2, 3));
  const __m256i s = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(low, m), high),
      _mm256_srli_epi64(low, 61));
  return avx2_m61_canon(_mm256_add_epi64(_mm256_and_si256(s, m),
                                         _mm256_srli_epi64(s, 61)));
}

__attribute__((target("avx2"))) void avx2_mul_add_rows(
    std::uint64_t* vals, const std::uint64_t* const* rows,
    const std::uint64_t* deltas, unsigned num_rows, std::size_t begin,
    std::size_t end) {
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    for (unsigned k = 0; k < num_rows; ++k) {
      const __m256i d =
          _mm256_set1_epi64x(static_cast<long long>(deltas[k]));
      const __m256i row =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[k] + i));
      acc = avx2_m61_add(acc, avx2_m61_mul(d, row));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + i), acc);
  }
  scalar_mul_add_rows(vals, rows, deltas, num_rows, i, end);
}

__attribute__((target("avx2"))) void avx2_mul_rows(std::uint64_t* out,
                                                   const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::size_t begin,
                                                   std::size_t end) {
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        avx2_m61_mul(va, vb));
  }
  scalar_mul_rows(out, a, b, i, end);
}

__attribute__((target("avx2"))) void avx2_reduce_row(std::uint64_t* out,
                                                     const std::uint64_t* in,
                                                     std::size_t begin,
                                                     std::size_t end) {
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        avx2_m61_reduce(x));
  }
  scalar_reduce_row(out, in, i, end);
}

// Range mapping, vector path for range < 2^32. With u < 2^61 split as
// 2^32*u1 + u0 (u1 < 2^29) and r = range: p0 = u0*r (< 2^64, exact) and
// p1 = u1*r (< 2^61), so u*r = p0 + 2^32*p1 and
//   (u*r) >> 61 = ((p0 >> 32) + p1) >> 29
// exactly (the discarded low 32 bits of p0 cannot carry into bit 61). The
// result is < range < 2^32, so the lane's low 32 bits hold it all and the
// +offset wraps mod 2^32 just like the scalar u32 addition.
__attribute__((target("avx2"))) void avx2_to_bins(
    std::uint32_t* out, const std::uint64_t* vals, std::uint64_t range,
    std::uint32_t offset, std::size_t begin, std::size_t end) {
  if (range >> 32 != 0) {  // u1*r would overflow a lane; all kernels agree
    scalar_to_bins(out, vals, range, offset, begin, end);
    return;
  }
  const __m256i r = _mm256_set1_epi64x(static_cast<long long>(range));
  const __m256i pick_low32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i off = _mm_set1_epi32(static_cast<int>(offset));
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i p0 = _mm256_mul_epu32(u, r);
    const __m256i p1 = _mm256_mul_epu32(_mm256_srli_epi64(u, 32), r);
    const __m256i t = _mm256_add_epi64(_mm256_srli_epi64(p0, 32), p1);
    const __m256i bin = _mm256_srli_epi64(t, 29);
    const __m128i packed = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(bin, pick_low32));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(packed, off));
  }
  scalar_to_bins(out, vals, range, offset, i, end);
}

__attribute__((target("avx2"))) void avx2_fma_const(std::uint64_t* acc,
                                                    const std::uint64_t* x,
                                                    std::uint64_t coeff,
                                                    std::size_t begin,
                                                    std::size_t end) {
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(coeff));
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        avx2_m61_add(avx2_m61_mul(va, vx), c));
  }
  scalar_fma_const(acc, x, coeff, i, end);
}

constexpr FieldKernel kAvx2Kernel = {
    "avx2",          avx2_mul_add_rows, avx2_mul_rows,
    avx2_reduce_row, avx2_to_bins,      avx2_fma_const,
};

#endif  // x86

// ---------------------------------------------------------------------------
// NEON kernels: 2 points per instruction. Same limb algebra as AVX2 —
// vmull_u32 is the 32x32->64 multiply, vmovn_u64 / vshrn_n_u64 split a lane
// into its 32-bit limbs, and vcgeq_u64 gives an unsigned compare directly.
// ---------------------------------------------------------------------------
#if defined(__aarch64__)

inline uint64x2_t neon_m61_canon(uint64x2_t s) {
  const uint64x2_t m = vdupq_n_u64(kMersenne61);
  const uint64x2_t ge = vcgeq_u64(s, m);
  return vsubq_u64(s, vandq_u64(ge, m));
}

inline uint64x2_t neon_m61_add(uint64x2_t a, uint64x2_t b) {
  return neon_m61_canon(vaddq_u64(a, b));
}

inline uint64x2_t neon_m61_reduce(uint64x2_t x) {
  const uint64x2_t m = vdupq_n_u64(kMersenne61);
  return neon_m61_canon(vaddq_u64(vandq_u64(x, m), vshrq_n_u64(x, 61)));
}

inline uint64x2_t neon_m61_mul(uint64x2_t a, uint64x2_t b) {
  const uint64x2_t m = vdupq_n_u64(kMersenne61);
  const uint64x2_t mask29 = vdupq_n_u64((std::uint64_t{1} << 29) - 1);
  const uint32x2_t a0 = vmovn_u64(a);
  const uint32x2_t a1 = vshrn_n_u64(a, 32);
  const uint32x2_t b0 = vmovn_u64(b);
  const uint32x2_t b1 = vshrn_n_u64(b, 32);
  const uint64x2_t m0 = vmull_u32(a0, b0);
  const uint64x2_t m1 = vmlal_u32(vmull_u32(a0, b1), a1, b0);
  const uint64x2_t m2 = vmull_u32(a1, b1);
  const uint64x2_t low =
      vaddq_u64(vandq_u64(m0, m), vshlq_n_u64(vandq_u64(m1, mask29), 32));
  const uint64x2_t high = vaddq_u64(
      vaddq_u64(vshrq_n_u64(m0, 61), vshrq_n_u64(m1, 29)), vshlq_n_u64(m2, 3));
  const uint64x2_t s =
      vaddq_u64(vaddq_u64(vandq_u64(low, m), high), vshrq_n_u64(low, 61));
  return neon_m61_canon(vaddq_u64(vandq_u64(s, m), vshrq_n_u64(s, 61)));
}

void neon_mul_add_rows(std::uint64_t* vals, const std::uint64_t* const* rows,
                       const std::uint64_t* deltas, unsigned num_rows,
                       std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    uint64x2_t acc = vld1q_u64(vals + i);
    for (unsigned k = 0; k < num_rows; ++k) {
      const uint64x2_t d = vdupq_n_u64(deltas[k]);
      acc = neon_m61_add(acc, neon_m61_mul(d, vld1q_u64(rows[k] + i)));
    }
    vst1q_u64(vals + i, acc);
  }
  scalar_mul_add_rows(vals, rows, deltas, num_rows, i, end);
}

void neon_mul_rows(std::uint64_t* out, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    vst1q_u64(out + i, neon_m61_mul(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  scalar_mul_rows(out, a, b, i, end);
}

void neon_reduce_row(std::uint64_t* out, const std::uint64_t* in,
                     std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    vst1q_u64(out + i, neon_m61_reduce(vld1q_u64(in + i)));
  }
  scalar_reduce_row(out, in, i, end);
}

void neon_to_bins(std::uint32_t* out, const std::uint64_t* vals,
                  std::uint64_t range, std::uint32_t offset, std::size_t begin,
                  std::size_t end) {
  if (range >> 32 != 0) {
    scalar_to_bins(out, vals, range, offset, begin, end);
    return;
  }
  const uint32x2_t r = vdup_n_u32(static_cast<std::uint32_t>(range));
  const uint32x2_t off = vdup_n_u32(offset);
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const uint64x2_t u = vld1q_u64(vals + i);
    const uint64x2_t p0 = vmull_u32(vmovn_u64(u), r);
    const uint64x2_t p1 = vmull_u32(vshrn_n_u64(u, 32), r);
    const uint64x2_t t = vaddq_u64(vshrq_n_u64(p0, 32), p1);
    const uint32x2_t bin = vmovn_u64(vshrq_n_u64(t, 29));
    vst1_u32(out + i, vadd_u32(bin, off));
  }
  scalar_to_bins(out, vals, range, offset, i, end);
}

void neon_fma_const(std::uint64_t* acc, const std::uint64_t* x,
                    std::uint64_t coeff, std::size_t begin, std::size_t end) {
  const uint64x2_t c = vdupq_n_u64(coeff);
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    vst1q_u64(acc + i,
              neon_m61_add(neon_m61_mul(vld1q_u64(acc + i), vld1q_u64(x + i)),
                           c));
  }
  scalar_fma_const(acc, x, coeff, i, end);
}

constexpr FieldKernel kNeonKernel = {
    "neon",          neon_mul_add_rows, neon_mul_rows,
    neon_reduce_row, neon_to_bins,      neon_fma_const,
};

#endif  // aarch64

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

const FieldKernel* kernel_for(SimdKind kind) {
  switch (kind) {
    case SimdKind::kScalar:
      return &kScalarKernel;
    case SimdKind::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return &kAvx2Kernel;
#else
      break;
#endif
    case SimdKind::kNeon:
#if defined(__aarch64__)
      return &kNeonKernel;
#else
      break;
#endif
  }
  DC_CHECK(false, "simd kernel not compiled into this build");
  return &kScalarKernel;  // unreachable
}

bool parse_simd_spec(const std::string& spec, SimdKind* kind,
                     std::string* error) {
  if (spec == "auto") {
    *kind = simd_auto_kind();
    return true;
  }
  SimdKind want;
  if (spec == "scalar") {
    want = SimdKind::kScalar;
  } else if (spec == "avx2") {
    want = SimdKind::kAvx2;
  } else if (spec == "neon") {
    want = SimdKind::kNeon;
  } else {
    if (error != nullptr) {
      *error = "invalid simd kernel '" + spec +
               "' (expected auto, scalar, avx2 or neon)";
    }
    return false;
  }
  if (!simd_available(want)) {
    if (error != nullptr) {
      *error = "simd kernel '" + spec +
               "' is not available on this host/build (available: " +
               simd_kind_name(simd_auto_kind()) + ", scalar)";
    }
    return false;
  }
  *kind = want;
  return true;
}

std::atomic<const FieldKernel*> g_active{nullptr};

// First-use default: $DETCOL_SIMD if set (the CLI validates it up front and
// exits 2 on a bad value; in pure library use a bad value is a CheckError),
// else the best kernel the host supports.
const FieldKernel* boot_kernel() {
  const char* env = std::getenv("DETCOL_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdKind kind = SimdKind::kScalar;
    std::string error;
    DC_CHECK(parse_simd_spec(env, &kind, &error), "DETCOL_SIMD: ", error);
    return kernel_for(kind);
  }
  return kernel_for(simd_auto_kind());
}

}  // namespace

bool simd_available(SimdKind kind) {
  switch (kind) {
    case SimdKind::kScalar:
      return true;
    case SimdKind::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdKind::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdKind simd_auto_kind() {
  if (simd_available(SimdKind::kAvx2)) return SimdKind::kAvx2;
  if (simd_available(SimdKind::kNeon)) return SimdKind::kNeon;
  return SimdKind::kScalar;
}

const char* simd_kind_name(SimdKind kind) {
  switch (kind) {
    case SimdKind::kAvx2:
      return "avx2";
    case SimdKind::kNeon:
      return "neon";
    case SimdKind::kScalar:
      break;
  }
  return "scalar";
}

const FieldKernel& active_field_kernel() {
  const FieldKernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Concurrent first uses all compute the same pointer, so the racing
    // stores agree; the atomic only serves publication.
    k = boot_kernel();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

const char* active_simd_name() { return active_field_kernel().name; }

bool select_simd(const std::string& spec, std::string* error) {
  SimdKind kind = SimdKind::kScalar;
  if (!parse_simd_spec(spec, &kind, error)) return false;
  g_active.store(kernel_for(kind), std::memory_order_release);
  return true;
}

}  // namespace detcol
