#include "hashing/concentration.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace detcol {

double bellare_rompel_tail(unsigned c, double t, double lambda) {
  DC_CHECK(c >= 4 && c % 2 == 0, "Lemma 2.2 requires even c >= 4, got ", c);
  DC_CHECK(lambda > 0.0, "deviation must be positive");
  DC_CHECK(t >= 0.0, "variable count must be non-negative");
  const double base = (static_cast<double>(c) * t) / (lambda * lambda);
  const double tail = 2.0 * std::pow(base, static_cast<double>(c) / 2.0);
  return std::clamp(tail, 0.0, 1.0);
}

unsigned required_independence(double t, double lambda, double target,
                               unsigned c_max) {
  for (unsigned c = 4; c <= c_max; c += 2) {
    if (bellare_rompel_tail(c, t, lambda) <= target) return c;
  }
  return 0;
}

}  // namespace detcol
