#include "hashing/kwise.hpp"

#include "hashing/field.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

KWiseHash::KWiseHash(std::span<const std::uint64_t> seed_words,
                     std::uint64_t range)
    : range_(range) {
  DC_CHECK(!seed_words.empty(), "hash needs at least one coefficient");
  DC_CHECK(range >= 1, "hash range must be >= 1");
  coeffs_.reserve(seed_words.size());
  for (const auto w : seed_words) coeffs_.push_back(m61_reduce(w));
}

KWiseHash KWiseHash::from_u64_seed(std::uint64_t seed, unsigned independence,
                                   std::uint64_t range) {
  DC_CHECK(independence >= 1, "independence must be >= 1");
  SplitMix64 sm(seed);
  std::vector<std::uint64_t> words(independence);
  for (auto& w : words) w = sm.next();
  return KWiseHash(words, range);
}

std::uint64_t KWiseHash::field_eval(std::uint64_t x) const {
  const std::uint64_t xr = m61_reduce(x);
  // Horner, highest coefficient first.
  std::uint64_t acc = coeffs_.back();
  for (auto it = coeffs_.rbegin() + 1; it != coeffs_.rend(); ++it) {
    acc = m61_add(m61_mul(acc, xr), *it);
  }
  return acc;
}

std::uint64_t KWiseHash::to_range(std::uint64_t field_value) const {
  return m61_to_range(field_value, range_);
}

}  // namespace detcol
