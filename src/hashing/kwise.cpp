#include "hashing/kwise.hpp"

#include "hashing/field.hpp"
#include "hashing/simd_kernels.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

KWiseHash::KWiseHash(std::span<const std::uint64_t> seed_words,
                     std::uint64_t range)
    : range_(range) {
  DC_CHECK(!seed_words.empty(), "hash needs at least one coefficient");
  DC_CHECK(range >= 1, "hash range must be >= 1");
  coeffs_.reserve(seed_words.size());
  for (const auto w : seed_words) coeffs_.push_back(m61_reduce(w));
}

KWiseHash KWiseHash::from_u64_seed(std::uint64_t seed, unsigned independence,
                                   std::uint64_t range) {
  DC_CHECK(independence >= 1, "independence must be >= 1");
  SplitMix64 sm(seed);
  std::vector<std::uint64_t> words(independence);
  for (auto& w : words) w = sm.next();
  return KWiseHash(words, range);
}

std::uint64_t KWiseHash::field_eval(std::uint64_t x) const {
  const std::uint64_t xr = m61_reduce(x);
  // Horner, highest coefficient first.
  std::uint64_t acc = coeffs_.back();
  for (auto it = coeffs_.rbegin() + 1; it != coeffs_.rend(); ++it) {
    acc = m61_add(m61_mul(acc, xr), *it);
  }
  return acc;
}

void KWiseHash::field_eval_many(std::span<const std::uint64_t> xs,
                                std::span<std::uint64_t> out) const {
  DC_CHECK(out.size() == xs.size(), "field_eval_many expects equal spans");
  const FieldKernel& kernel = active_field_kernel();
  const std::size_t n = xs.size();
  // The same Horner recurrence as field_eval, one step over all points at a
  // time: reduce the points once, start every accumulator at the leading
  // coefficient, then fold in the remaining coefficients high to low.
  std::vector<std::uint64_t> xr(n);
  kernel.reduce_row(xr.data(), xs.data(), 0, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = coeffs_.back();
  for (auto it = coeffs_.rbegin() + 1; it != coeffs_.rend(); ++it) {
    kernel.fma_const(out.data(), xr.data(), *it, 0, n);
  }
}

void KWiseHash::eval_bins_many(std::span<const std::uint64_t> xs,
                               std::span<std::uint32_t> out,
                               std::uint32_t offset) const {
  DC_CHECK(out.size() == xs.size(), "eval_bins_many expects equal spans");
  std::vector<std::uint64_t> vals(xs.size());
  field_eval_many(xs, vals);
  active_field_kernel().to_bins(out.data(), vals.data(), range_, offset, 0,
                                vals.size());
}

std::uint64_t KWiseHash::to_range(std::uint64_t field_value) const {
  return m61_to_range(field_value, range_);
}

}  // namespace detcol
