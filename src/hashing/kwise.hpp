// c-wise independent hash family (Definition 2.3 / Lemma 2.4 of the paper).
//
// A function of the family with independence c is the degree-(c-1) polynomial
//   h(x) = a_{c-1} x^{c-1} + ... + a_1 x + a_0   over F_{2^61 - 1},
// followed by the near-uniform range mapping of Section 2.3. The seed is the
// coefficient vector; we allot 64 bits per coefficient (reduced mod p), so a
// function needs exactly 64*c seed bits — this is the bit string the method
// of conditional expectations fixes chunk by chunk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace detcol {

class KWiseHash {
 public:
  /// Build from raw 64-bit seed words (one per coefficient). `range` >= 1.
  KWiseHash(std::span<const std::uint64_t> seed_words, std::uint64_t range);

  /// Convenience: derive the seed words deterministically from a 64-bit seed.
  static KWiseHash from_u64_seed(std::uint64_t seed, unsigned independence,
                                 std::uint64_t range);

  /// Number of seed bits a function with independence c needs.
  static constexpr unsigned seed_bits(unsigned independence) {
    return 64u * independence;
  }

  /// Evaluate into [0, range).
  std::uint64_t operator()(std::uint64_t x) const {
    return to_range(field_eval(x));
  }

  /// Raw polynomial evaluation in [0, p).
  std::uint64_t field_eval(std::uint64_t x) const;

  /// Bulk field_eval over many points through the active field kernel
  /// (hashing/simd_kernels.hpp): out[i] = field_eval(xs[i]), bit-identical
  /// to the scalar loop under every kernel. out.size() must equal xs.size().
  void field_eval_many(std::span<const std::uint64_t> xs,
                       std::span<std::uint64_t> out) const;

  /// Bulk evaluation into bins: out[i] = uint32((*this)(xs[i])) + offset.
  void eval_bins_many(std::span<const std::uint64_t> xs,
                      std::span<std::uint32_t> out,
                      std::uint32_t offset = 0) const;

  std::uint64_t to_range(std::uint64_t field_value) const;

  unsigned independence() const {
    return static_cast<unsigned>(coeffs_.size());
  }
  std::uint64_t range() const { return range_; }
  std::span<const std::uint64_t> coefficients() const { return coeffs_; }

 private:
  std::vector<std::uint64_t> coeffs_;  // a_0 .. a_{c-1}, reduced mod p
  std::uint64_t range_;
};

}  // namespace detcol
