// The Bellare–Rompel moment bound (Lemma 2.2 of the paper):
//   Pr[|Z - mu| >= lambda] <= 2 * (c*t / lambda^2)^(c/2)
// for Z a sum of t c-wise independent [0,1] variables. Benches compare
// empirical deviation frequencies against this analytic tail.
#pragma once

#include <cstdint>

namespace detcol {

/// The right-hand side of Lemma 2.2 (clamped to [0,1]); c must be an even
/// integer >= 4 (per the lemma's statement).
double bellare_rompel_tail(unsigned c, double t, double lambda);

/// Smallest even c >= 4 such that the Lemma 2.2 tail for t variables and
/// deviation lambda is at most `target`. Returns 0 if no c <= c_max works.
unsigned required_independence(double t, double lambda, double target,
                               unsigned c_max = 64);

}  // namespace detcol
