// Centralized sequential greedy — the correctness reference and wall-clock
// lower bound for all distributed algorithms in the suite.
#pragma once

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {

struct GreedyResult {
  Coloring coloring;
  double seconds = 0.0;
  explicit GreedyResult(NodeId n) : coloring(n) {}
};

/// Degree-descending sequential greedy list coloring. Always succeeds when
/// p(v) > d(v) for all v.
GreedyResult greedy_baseline(const Graph& g, const PaletteSet& palettes);

}  // namespace detcol
