#include "baselines/random_trial.hpp"

#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

RandomTrialResult random_trial_color(const Graph& g,
                                     const PaletteSet& palettes,
                                     std::uint64_t seed,
                                     std::uint64_t max_rounds) {
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    DC_CHECK(palettes.palette_size(v) > g.degree(v),
             "random trial needs p(v) > d(v) at node ", v);
  }
  RandomTrialResult r(n);
  Xoshiro256 rng(seed);
  std::vector<Color> proposal(n, Coloring::kUncolored);
  std::vector<Color> avail;
  std::unordered_set<Color> forbidden;

  std::size_t uncolored = n;
  while (uncolored > 0) {
    DC_CHECK(r.trial_rounds < max_rounds,
             "random trial failed to converge in ", max_rounds, " rounds");
    // Propose.
    for (NodeId v = 0; v < n; ++v) {
      if (r.coloring.is_colored(v)) continue;
      forbidden.clear();
      for (const NodeId u : g.neighbors(v)) {
        if (r.coloring.is_colored(u)) forbidden.insert(r.coloring.color[u]);
      }
      avail.clear();
      for (const Color c : palettes.palette(v)) {
        if (forbidden.find(c) == forbidden.end()) avail.push_back(c);
      }
      DC_CHECK(!avail.empty(), "no available color — invariant broken");
      proposal[v] = avail[rng.next_below(avail.size())];
      r.words_sent += g.degree(v);  // announce proposal to neighbors
    }
    // Commit: keep unless an uncolored neighbor proposed the same color.
    for (NodeId v = 0; v < n; ++v) {
      if (r.coloring.is_colored(v)) continue;
      bool clash = false;
      for (const NodeId u : g.neighbors(v)) {
        if (!r.coloring.is_colored(u) && proposal[u] == proposal[v]) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        r.coloring.color[v] = proposal[v];
        --uncolored;
        r.words_sent += g.degree(v);  // announce commit
      }
    }
    ++r.trial_rounds;
    r.model_rounds += 2;
  }
  return r;
}

}  // namespace detcol
