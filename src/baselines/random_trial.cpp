#include "baselines/random_trial.hpp"

#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace detcol {

RandomTrialResult random_trial_color(const Graph& g,
                                     const PaletteSet& palettes,
                                     std::uint64_t seed,
                                     std::uint64_t max_rounds,
                                     ExecContext exec) {
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    DC_CHECK(palettes.palette_size(v) > g.degree(v),
             "random trial needs p(v) > d(v) at node ", v);
  }
  RandomTrialResult r(n);
  Xoshiro256 rng(seed);
  std::vector<Color> proposal(n, Coloring::kUncolored);
  std::vector<std::vector<Color>> avail(n);
  std::vector<char> keep(n, 0);

  // Per trial round, the heavy passes (available-color filtering, clash
  // resolution) shard over `exec`; only the RNG draws and the commits stay
  // serial in node order. The draw sequence — one next_below(|avail(v)|)
  // per uncolored node in ascending order — is exactly the sequential
  // implementation's, so trajectories are bit-identical for every thread
  // count (and to the pre-parallel baseline).
  std::size_t uncolored = n;
  while (uncolored > 0) {
    exec.check_deadline("random-trial");
    DC_CHECK(r.trial_rounds < max_rounds,
             "random trial failed to converge in ", max_rounds, " rounds");
    // Available colors per uncolored node: palette minus colored-neighbor
    // colors. The coloring is stable for the whole pass.
    parallel_for_shards(exec, n, [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
      std::unordered_set<Color> forbidden;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = static_cast<NodeId>(i);
        if (r.coloring.is_colored(v)) continue;
        forbidden.clear();
        for (const NodeId u : g.neighbors(v)) {
          if (r.coloring.is_colored(u)) forbidden.insert(r.coloring.color[u]);
        }
        avail[v].clear();
        for (const Color c : palettes.palette(v)) {
          if (forbidden.find(c) == forbidden.end()) avail[v].push_back(c);
        }
        DC_CHECK(!avail[v].empty(), "no available color — invariant broken");
      }
    });
    // Propose (serial: the RNG stream is inherently ordered).
    for (NodeId v = 0; v < n; ++v) {
      if (r.coloring.is_colored(v)) continue;
      proposal[v] = avail[v][rng.next_below(avail[v].size())];
      r.words_sent += g.degree(v);  // announce proposal to neighbors
    }
    // Resolve: keep unless an uncolored neighbor proposed the same color.
    // (Symmetric clashes mean a node that commits this round never shares
    // its proposal with an uncolored neighbor, so reading the round-start
    // coloring gives the same verdicts as the interleaved serial commit.)
    parallel_for_shards(exec, n, [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = static_cast<NodeId>(i);
        if (r.coloring.is_colored(v)) {
          keep[v] = 0;
          continue;
        }
        bool clash = false;
        for (const NodeId u : g.neighbors(v)) {
          if (!r.coloring.is_colored(u) && proposal[u] == proposal[v]) {
            clash = true;
            break;
          }
        }
        keep[v] = clash ? 0 : 1;
      }
    });
    // Commit (serial: cheap, and the word count stays an ordered sum).
    for (NodeId v = 0; v < n; ++v) {
      if (keep[v] == 0) continue;
      r.coloring.color[v] = proposal[v];
      --uncolored;
      r.words_sent += g.degree(v);  // announce commit
    }
    ++r.trial_rounds;
    r.model_rounds += 2;
  }
  return r;
}

}  // namespace detcol
