#include "baselines/greedy.hpp"

#include "util/check.hpp"
#include "util/timer.hpp"

namespace detcol {

GreedyResult greedy_baseline(const Graph& g, const PaletteSet& palettes) {
  GreedyResult r(g.num_nodes());
  WallTimer timer;
  const bool ok = greedy_color_all(g, palettes, r.coloring);
  DC_CHECK(ok, "greedy baseline failed: some palette not larger than degree");
  r.seconds = timer.seconds();
  return r;
}

}  // namespace detcol
