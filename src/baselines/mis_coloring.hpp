// Deterministic MIS-reduction coloring in the CONGESTED CLIQUE — the
// pre-paper deterministic approach (cf. Censor-Hillel et al. [5], who solve
// coloring via MIS with derandomized Luby steps in O(log Δ) rounds). Serves
// as the deterministic baseline whose round count the paper's O(1) algorithm
// beats.
#pragma once

#include <cstdint>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "lowspace/mis.hpp"

namespace detcol {

struct MisBaselineResult {
  Coloring coloring;
  unsigned phases = 0;
  std::uint64_t rounds = 0;  // model rounds: per phase O(1) + seed schedule
  std::uint64_t words = 0;   // message words moved
  std::uint64_t seed_evaluations = 0;
  /// MPC cost block of the underlying MIS run (reduction-graph residency is
  /// recorded unchecked — the baseline has no space contract).
  MpcCosts mpc;
  explicit MisBaselineResult(NodeId n) : coloring(n) {}
};

MisBaselineResult mis_baseline_color(const Graph& g,
                                     const PaletteSet& palettes,
                                     const MisParams& params = {},
                                     std::uint64_t salt = 0x4D15C010ULL);

}  // namespace detcol
