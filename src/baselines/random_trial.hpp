// Randomized iterated color trial — the classic O(log n)-round randomized
// CONGESTED CLIQUE baseline the paper's deterministic result is measured
// against.
//
// Per trial round: every uncolored node picks a uniformly random color from
// its palette minus the colors of already-colored neighbors; it keeps the
// color unless an uncolored neighbor picked the same one this round. Each
// trial costs two model rounds (propose to neighbors, commit): messages go
// only along input-graph edges, so bandwidth is trivially respected; words
// are counted exactly.
#pragma once

#include <cstdint>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {

struct RandomTrialResult {
  Coloring coloring;
  std::uint64_t trial_rounds = 0;  // propose/commit iterations
  std::uint64_t model_rounds = 0;  // 2 per trial
  std::uint64_t words_sent = 0;    // per-edge proposal/commit words
  explicit RandomTrialResult(NodeId n) : coloring(n) {}
};

/// Deterministic given `seed`. Requires p(v) > d(v) for all v.
RandomTrialResult random_trial_color(const Graph& g,
                                     const PaletteSet& palettes,
                                     std::uint64_t seed,
                                     std::uint64_t max_rounds = 4096);

}  // namespace detcol
