// Randomized iterated color trial — the classic O(log n)-round randomized
// CONGESTED CLIQUE baseline the paper's deterministic result is measured
// against.
//
// Per trial round: every uncolored node picks a uniformly random color from
// its palette minus the colors of already-colored neighbors; it keeps the
// color unless an uncolored neighbor picked the same one this round. Each
// trial costs two model rounds (propose to neighbors, commit): messages go
// only along input-graph edges, so bandwidth is trivially respected; words
// are counted exactly.
#pragma once

#include <cstdint>

#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {

struct RandomTrialResult {
  Coloring coloring;
  std::uint64_t trial_rounds = 0;  // propose/commit iterations
  std::uint64_t model_rounds = 0;  // 2 per trial
  std::uint64_t words_sent = 0;    // per-edge proposal/commit words
  explicit RandomTrialResult(NodeId n) : coloring(n) {}
};

/// Convergence cap (callers that only want to set `exec` pass this).
inline constexpr std::uint64_t kRandomTrialMaxRounds = 4096;

/// Deterministic given `seed`. Requires p(v) > d(v) for all v. The per-node
/// passes of each trial round shard over `exec` (static boundaries; the RNG
/// draws stay serial in node order), so colorings, round counts and word
/// counts are bit-identical for every thread count — the baseline is
/// parallel-fair in speedup comparisons against the exec-aware algorithms.
RandomTrialResult random_trial_color(
    const Graph& g, const PaletteSet& palettes, std::uint64_t seed,
    std::uint64_t max_rounds = kRandomTrialMaxRounds, ExecContext exec = {});

}  // namespace detcol
