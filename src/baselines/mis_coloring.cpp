#include "baselines/mis_coloring.hpp"

#include <vector>

#include "util/check.hpp"

namespace detcol {

MisBaselineResult mis_baseline_color(const Graph& g,
                                     const PaletteSet& palettes,
                                     const MisParams& params,
                                     std::uint64_t salt) {
  MisBaselineResult r(g.num_nodes());
  std::vector<std::vector<Color>> pals(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto span = palettes.palette(v);
    pals[v].assign(span.begin(), span.end());
  }
  MisColorResult mis = mis_list_color(g, pals, params, salt);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DC_CHECK(mis.color[v] != Coloring::kUncolored, "MIS left node ", v);
    r.coloring.color[v] = mis.color[v];
  }
  r.phases = mis.phases;
  r.rounds = mis.ledger.total_rounds();
  r.words = mis.ledger.total_words();
  r.seed_evaluations = mis.seed_evaluations;
  r.mpc = std::move(mis.mpc);
  return r;
}

}  // namespace detcol
