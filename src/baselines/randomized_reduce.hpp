// Randomized ColorReduce ablation: the same recursive partitioning as
// Algorithm 1 but with the *first* enumerated seed used unconditionally —
// i.e. the randomized procedure of Section 3.2 without the derandomized
// quality guarantee of Lemma 3.9. Benches compare its G0 sizes, bad-node
// counts and rounds against the derandomized algorithm (the cost of
// determinism, and what the seed search actually buys).
#pragma once

#include <cstdint>

#include "core/color_reduce.hpp"

namespace detcol {

/// Runs color_reduce with seed selection disabled (one seed, no threshold).
/// `seed_index` varies the single seed used, playing the role of the random
/// draw.
ColorReduceResult randomized_reduce(const Graph& g, const PaletteSet& palettes,
                                    std::uint64_t seed_index,
                                    ColorReduceConfig config = {});

}  // namespace detcol
