#include "baselines/randomized_reduce.hpp"

#include <limits>

#include "util/rng.hpp"

namespace detcol {

ColorReduceResult randomized_reduce(const Graph& g, const PaletteSet& palettes,
                                    std::uint64_t seed_index,
                                    ColorReduceConfig config) {
  config.part.seed.strategy = SeedStrategy::kThresholdScan;
  config.part.seed.scan_max_seeds = 1;
  // Accept whatever the single random-like seed produces.
  config.part.g0_budget = std::numeric_limits<double>::infinity();
  config.salt = sub_seed(0xBADC0FFEEULL, seed_index);
  return color_reduce(g, palettes, config);
}

}  // namespace detcol
