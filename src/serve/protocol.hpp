// Wire protocol of `detcol serve` (docs/FORMATS.md, "Serve wire protocol").
//
// Every message — request or response — is one frame:
//
//   offset  size  content
//   0       4     magic 'D' 'C' 'S' '1'
//   4       4     payload length, unsigned 32-bit little-endian
//   8       len   payload: one complete JSON object, UTF-8, no terminator
//
// Requests carry an "op" plus the same canonical flag-spec strings the
// one-shot CLI records in coloring headers ("--gen=... --n=...",
// "--palette=delta1"), so the server rebuilds bit-identical instances
// through the exact code path of `detcol color`. Responses are
// {"ok":true,"result":{...},"transient":{...}} — every byte of "result" is
// deterministic (identical for any server worker count and across cache
// hits/misses); "transient" holds the per-run noise (wall time, cache
// flags). Errors are {"ok":false,"error_class":...,"message":...}.
//
// The framing functions below are EINTR-safe, use MSG_NOSIGNAL on sends
// (a dead client must never SIGPIPE the server), and reject frames with a
// bad magic or an implausible length before allocating for the payload.
#pragma once

#include <cstdint>
#include <string>

namespace detcol::serve {

inline constexpr unsigned char kFrameMagic[4] = {'D', 'C', 'S', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Hard payload ceiling: a length beyond this is a protocol violation, not
/// a big request (coloring files at the supported scales are far smaller).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class FrameStatus {
  kOk,     // one complete frame read
  kEof,    // clean end of stream before any header byte
  kError,  // I/O failure, torn frame, bad magic, or oversize length
};

/// Read exactly one frame from `fd` into *payload. Retries on EINTR. EOF in
/// the middle of a frame is kError ("torn frame"), not kEof.
FrameStatus read_frame(int fd, std::string* payload, std::string* error);

/// Write one frame. Retries on EINTR and short writes; MSG_NOSIGNAL when
/// `fd` is a socket (falls back to plain write for pipes in tests).
bool write_frame(int fd, const std::string& payload, std::string* error);

// ---------------------------------------------------------------------------
// Request schema.
// ---------------------------------------------------------------------------

struct Request {
  std::string op;  // color | verify | stats | info | ping | shutdown

  // color / stats (stats implies algo=reduce + the stats JSON as result):
  std::string graph_spec;    // "--gen=..." / "--input=/abs/path"
  std::string palette_spec;  // empty = "--palette=delta1"
  std::string algo = "reduce";
  std::uint64_t seed = 1;
  unsigned threads = 1;          // per-request data-parallel budget
  bool want_stats = false;       // color: include the stats JSON document
  double timeout_seconds = 0;    // 0 = no per-request deadline

  // verify:
  std::string coloring_text;  // full self-describing coloring file
  bool proper_only = false;
};

/// Parse a request payload. Throws cli::UsageError on malformed JSON, a
/// missing/unknown op, or out-of-range fields — the server maps that to an
/// "usage" error frame for this request only.
Request parse_request(const std::string& payload);

/// Render a request payload (the client side of parse_request).
std::string render_request(const Request& req);

/// Render an error response frame payload.
std::string render_error(const std::string& error_class,
                         const std::string& message);

}  // namespace detcol::serve
