#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "cli/spec.hpp"
#include "util/check.hpp"

namespace detcol::serve {

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint out;
  if (spec.empty()) cli::usage_error("--server needs an endpoint");
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      cli::usage_error("--server=tcp:HOST:PORT expected, got '" + spec + "'");
    }
    out.tcp = true;
    out.path_or_host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    const std::uint64_t p =
        cli::parse_uint_strict(port, "--server port");
    if (p == 0 || p > 65535) {
      cli::usage_error("--server port out of range: " + port);
    }
    out.port = static_cast<int>(p);
    return out;
  }
  out.path_or_host = spec;
  return out;
}

ServeClient::ServeClient(const std::string& endpoint) {
  const Endpoint ep = parse_endpoint(endpoint);
  if (ep.tcp) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    DC_CHECK(fd_ >= 0, "socket: ", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    // Numeric host only (the server binds loopback; no resolver needed).
    DC_CHECK(::inet_pton(AF_INET, ep.path_or_host.c_str(), &addr.sin_addr) ==
                 1,
             "--server host must be a numeric IPv4 address, got '",
             ep.path_or_host, "'");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      DC_CHECK(false, "cannot connect to tcp ", ep.path_or_host, ":",
               ep.port, ": ", why);
    }
  } else {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DC_CHECK(ep.path_or_host.size() < sizeof(addr.sun_path),
             "socket path too long: ", ep.path_or_host);
    std::memcpy(addr.sun_path, ep.path_or_host.c_str(),
                ep.path_or_host.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DC_CHECK(fd_ >= 0, "socket: ", std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      DC_CHECK(false, "cannot connect to ", ep.path_or_host, ": ", why,
               " (is `detcol serve --listen=", ep.path_or_host,
               "` running?)");
    }
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

JsonValue ServeClient::roundtrip(const Request& req, std::string* raw_out) {
  std::string error;
  DC_CHECK(write_frame(fd_, render_request(req), &error),
           "request send failed: ", error);
  std::string payload;
  const FrameStatus status = read_frame(fd_, &payload, &error);
  DC_CHECK(status != FrameStatus::kEof,
           "server closed the connection before responding");
  DC_CHECK(status == FrameStatus::kOk, "response read failed: ", error);
  if (raw_out != nullptr) *raw_out = payload;
  return parse_json(payload, "server response");
}

}  // namespace detcol::serve
