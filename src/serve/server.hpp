// `detcol serve` — a persistent coloring service over the one-shot CLI's
// exact pipeline code (docs/ARCHITECTURE.md, "Serving layer").
//
// One process listens on a Unix-domain socket (plus an optional loopback
// TCP port), keeps an LRU-bounded InstanceStore of parsed graphs with their
// palettes and power tables resident, and executes requests concurrently on
// one shared ThreadPool — each request running under a thread *budget*
// (ExecContext::with_budget) equal to its own "threads" field, so the
// response is byte-identical to `detcol color --threads=N` regardless of
// how many workers the server actually has. Identical requests are answered
// from a bounded result cache, which the determinism contract makes sound:
// re-running the pipeline could not produce different bytes.
//
// Failure model: a request that fails — malformed frame, bad spec, pipeline
// error, injected failpoint (serve.accept / serve.request.read /
// serve.response.write / serve.instance.evict) — gets a clean error frame
// (or, when the connection itself is broken, a closed connection) and
// nothing else: the server, its residency, and every other in-flight
// request continue. SIGTERM/SIGINT drain the admission queue, answer every
// accepted request, write a final "shutdown" line to the request log, and
// exit 0.
#pragma once

#include <cstdint>
#include <string>

namespace detcol::serve {

struct ServeOptions {
  std::string listen_path;  // Unix-domain socket path (required)
  int tcp_port = -1;        // also listen on 127.0.0.1:port when >= 0
  unsigned threads = 1;     // shared ThreadPool worker count
  unsigned executors = 4;   // concurrent request executors
  std::size_t queue_depth = 16;    // admission queue bound (beyond in-flight)
  std::size_t max_instances = 8;   // InstanceStore residency bound
  std::size_t result_cache = 64;   // memoized responses; 0 disables
  std::string log_path;            // JSON-lines request log; empty = none
  bool quiet = false;
};

/// Run the server until SIGTERM/SIGINT or a "shutdown" request. Returns the
/// process exit code (0 on graceful shutdown, 1 on a startup failure).
int run_server(const ServeOptions& opts);

}  // namespace detcol::serve
