#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "cli/pipeline.hpp"
#include "cli/spec.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "serve/instance_store.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace detcol::serve {
namespace {

// Self-pipe written by the signal handler to wake the poll() accept loop.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // Best effort: the pipe is non-blocking; a full pipe already guarantees a
  // pending wake-up.
  [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe[1], &byte, 1);
}

/// Memoized deterministic response parts for one (instance, palette, algo,
/// seed, threads, stats) request shape.
struct CachedResult {
  std::string result_json;
  std::string stats_json;  // replayed verbatim; its "timing" block is the
                           // original run's (documented in FORMATS.md)
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t max_entries) : max_(max_entries) {}

  bool get(const std::string& key, CachedResult* out) {
    if (max_ == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->second;
    return true;
  }

  void put(const std::string& key, CachedResult value) {
    if (max_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = std::move(value);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > max_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

 private:
  const std::size_t max_;
  std::mutex mu_;
  std::list<std::pair<std::string, CachedResult>> lru_;
  std::map<std::string, std::list<std::pair<std::string, CachedResult>>::
                            iterator> index_;
};

/// JSON-lines request log over a POSIX fd (O_APPEND: each line is one
/// atomic-enough append; a torn tail after a crash is at most one line).
class RequestLog {
 public:
  bool open(const std::string& path, std::string* error) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
      *error = path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  void line(const std::string& json) {
    if (fd_ < 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const std::string buf = json + "\n";
    std::size_t done = 0;
    while (done < buf.size()) {
      const ssize_t w = ::write(fd_, buf.data() + done, buf.size() - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return;  // logging must never take a request down
      }
      done += static_cast<std::size_t>(w);
    }
  }

  void close_synced() {
    if (fd_ < 0) return;
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::mutex mu_;
};

struct ServerState {
  const ServeOptions* opts = nullptr;
  ExecContext exec;  // shared pool (budgeted per request)
  InstanceStore* store = nullptr;
  ResultCache* results = nullptr;
  RequestLog* log = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> requests{0};

  // Admission queue of accepted connection fds.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> queue;
  bool draining = false;

  void request_stop() {
    stop.store(true);
    on_signal(0);  // wake the accept loop
  }
};

/// The deterministic core of color/stats: resolve the instance, run the
/// pipeline under the request's budget, render the "result" object. Returns
/// via CachedResult so hits and misses share one rendering.
CachedResult run_color(ServerState& st, const Request& req,
                       bool* instance_hit, bool* result_hit) {
  if (req.graph_spec.empty()) {
    cli::usage_error("\"" + req.op + "\" request needs a \"graph\" spec");
  }
  if (!cli::pipeline_known(req.algo)) {
    cli::usage_error("unknown algo '" + req.algo + "'");
  }
  const InstanceStore::Acquired acq =
      st.store->acquire(req.graph_spec, st.exec);
  *instance_hit = acq.hit;
  ServeInstance& inst = *acq.instance;
  std::string pal_canonical;
  const std::shared_ptr<const PaletteSet> palettes =
      inst.palettes(req.palette_spec, &pal_canonical);

  // The key pins every input the rendered bytes depend on — including
  // "threads", which the stats document records verbatim.
  const std::string key = req.op + '\n' + inst.canonical_spec() + '\n' +
                          pal_canonical + '\n' + req.algo + '\n' +
                          std::to_string(req.seed) + '\n' +
                          std::to_string(req.threads) + '\n' +
                          (req.want_stats ? '1' : '0');
  CachedResult out;
  if (st.results->get(key, &out)) {
    *result_hit = true;
    return out;
  }
  *result_hit = false;

  Deadline deadline;
  ExecContext exec = st.exec.with_budget(req.threads);
  if (req.timeout_seconds > 0) {
    deadline = Deadline::after_seconds(req.timeout_seconds);
    exec.set_deadline(&deadline);
  }
  const bool want_stats = req.want_stats || req.op == "stats";
  cli::PipelineRun run =
      cli::run_pipeline(req.algo, inst.graph(), *palettes, exec, req.seed,
                        want_stats, &inst.tables());
  const VerifyResult v =
      verify_coloring(inst.graph(), *palettes, run.coloring);
  DC_CHECK(v.ok, "algo '", req.algo, "' produced an invalid coloring: ",
           v.issue);

  JsonWriter w;
  w.begin_object();
  w.key("op").value(req.op);
  w.key("graph").value(inst.canonical_spec());
  w.key("palette").value(pal_canonical);
  w.key("algo").value(req.algo);
  w.key("seed").value(req.seed);
  w.key("threads").value(req.threads);
  w.key("n").value(std::uint64_t{inst.graph().num_nodes()});
  w.key("m").value(std::uint64_t{inst.graph().num_edges()});
  w.key("rounds").value(run.rounds);
  w.key("colors_used")
      .value(std::uint64_t{cli::count_distinct_colors(run.coloring)});
  w.key("verified").value(true);
  if (req.op == "color") {
    std::ostringstream file;
    cli::write_coloring(file, run.coloring, inst.canonical_spec(),
                        pal_canonical);
    w.key("coloring_file").value(file.str());
  }
  if (!run.mpc_json.empty()) w.key("mpc").raw(run.mpc_json);
  w.end_object();
  out.result_json = w.str();
  out.stats_json = std::move(run.stats_json);
  st.results->put(key, out);
  return out;
}

std::string render_verify_result(ServerState& st, const Request& req,
                                 bool* instance_hit) {
  if (req.coloring_text.empty()) {
    cli::usage_error("\"verify\" request needs a \"coloring\" file text");
  }
  std::istringstream is(req.coloring_text);
  const cli::ColoringFile file = cli::read_coloring(is, "request coloring");
  if (file.graph_spec.empty()) {
    cli::usage_error(
        "coloring file has no '# graph:' header; the server cannot rebuild "
        "its graph");
  }
  const InstanceStore::Acquired acq =
      st.store->acquire(file.graph_spec, st.exec);
  *instance_hit = acq.hit;
  const ServeInstance& inst = *acq.instance;
  DC_CHECK(inst.graph().num_nodes() == file.coloring.color.size(),
           "graph has ", inst.graph().num_nodes(),
           " nodes but the coloring has ", file.coloring.color.size(),
           " entries");
  VerifyResult v;
  const bool proper_only = req.proper_only || file.palette_spec.empty();
  if (proper_only) {
    v = verify_proper_partial(inst.graph(), file.coloring);
    if (v.ok && !file.coloring.complete()) {
      v.ok = false;
      v.issue = "coloring is incomplete (" +
                std::to_string(file.coloring.num_colored()) + " of " +
                std::to_string(file.coloring.color.size()) +
                " nodes colored)";
    }
  } else {
    const std::shared_ptr<const PaletteSet> palettes =
        acq.instance->palettes(file.palette_spec, nullptr);
    v = verify_coloring(inst.graph(), *palettes, file.coloring);
  }
  JsonWriter w;
  w.begin_object();
  w.key("op").value("verify");
  w.key("graph").value(inst.canonical_spec());
  w.key("valid").value(v.ok);
  if (!v.ok) w.key("issue").value(v.issue);
  w.key("proper_only").value(proper_only);
  w.key("n").value(std::uint64_t{inst.graph().num_nodes()});
  w.key("m").value(std::uint64_t{inst.graph().num_edges()});
  w.key("colors_used")
      .value(std::uint64_t{cli::count_distinct_colors(file.coloring)});
  w.end_object();
  return w.str();
}

std::string render_info_result(ServerState& st) {
  const InstanceStore::Counters c = st.store->counters();
  JsonWriter w;
  w.begin_object();
  w.key("op").value("info");
  w.key("threads").value(st.opts->threads);
  w.key("executors").value(st.opts->executors);
  w.key("queue_depth").value(std::uint64_t{st.opts->queue_depth});
  w.key("max_instances").value(std::uint64_t{st.opts->max_instances});
  w.key("result_cache").value(std::uint64_t{st.opts->result_cache});
  w.key("requests").value(st.requests.load());
  w.key("instances").begin_object();
  w.key("resident").value(c.resident);
  w.key("hits").value(c.hits);
  w.key("misses").value(c.misses);
  w.key("evictions").value(c.evictions);
  w.end_object();
  w.end_object();
  return w.str();
}

/// One request -> one response payload. Exceptions map to error classes
/// mirroring the suite runner's taxonomy; only this request is affected.
std::string handle_payload(ServerState& st, const std::string& payload) {
  const std::uint64_t seq = st.requests.fetch_add(1) + 1;
  WallTimer timer;
  std::string op = "?";
  std::string log_status = "ok";
  std::string log_class;
  bool instance_hit = false;
  bool result_hit = false;
  std::string response;
  try {
    const Request req = parse_request(payload);
    op = req.op;
    if (req.op == "ping" || req.op == "shutdown") {
      if (req.op == "shutdown") st.request_stop();
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("result").begin_object();
      w.key("op").value(req.op);
      w.end_object();
      w.end_object();
      response = w.str();
    } else if (req.op == "info") {
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("result").raw(render_info_result(st));
      w.end_object();
      response = w.str();
    } else if (req.op == "color" || req.op == "stats") {
      const CachedResult r = run_color(st, req, &instance_hit, &result_hit);
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("result").raw(r.result_json);
      if (!r.stats_json.empty()) w.key("stats").raw(r.stats_json);
      w.key("transient").begin_object();
      w.key("wall_seconds").value(timer.seconds());
      w.key("instance_hit").value(instance_hit);
      w.key("result_hit").value(result_hit);
      w.end_object();
      w.end_object();
      response = w.str();
    } else if (req.op == "verify") {
      const std::string result = render_verify_result(st, req, &instance_hit);
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("result").raw(result);
      w.key("transient").begin_object();
      w.key("wall_seconds").value(timer.seconds());
      w.key("instance_hit").value(instance_hit);
      w.end_object();
      w.end_object();
      response = w.str();
    } else {
      cli::usage_error("unknown op '" + req.op + "'");
    }
  } catch (const cli::UsageError& e) {
    log_status = "error";
    log_class = "usage";
    response = render_error("usage", e.what());
  } catch (const DeadlineExceeded& e) {
    log_status = "error";
    log_class = "timeout";
    response = render_error("timeout", e.what());
  } catch (const CheckError& e) {
    log_status = "error";
    log_class = "check";
    response = render_error("check", e.what());
  } catch (const std::bad_alloc&) {
    log_status = "error";
    log_class = "oom";
    response = render_error("oom", "allocation failure");
  } catch (const std::system_error& e) {
    log_status = "error";
    log_class = "io";
    response = render_error("io", e.what());
  } catch (const std::exception& e) {
    log_status = "error";
    log_class = "internal";
    response = render_error("internal", e.what());
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("seq").value(seq);
    w.key("op").value(op);
    w.key("status").value(log_status);
    if (!log_class.empty()) w.key("error_class").value(log_class);
    w.key("wall_seconds").value(timer.seconds());
    w.key("instance_hit").value(instance_hit);
    w.key("result_hit").value(result_hit);
    w.end_object();
    st.log->line(w.str());
  }
  return response;
}

/// Serve one accepted connection: frames in, frames out, until the peer
/// closes. A failed read or write affects only this connection.
void handle_connection(ServerState& st, int fd) {
  for (;;) {
    std::string payload;
    std::string error;
    const FrameStatus status = read_frame(fd, &payload, &error);
    if (status == FrameStatus::kEof) break;
    if (status == FrameStatus::kError) {
      // Best effort: the peer may still be able to read the diagnostic.
      write_frame(fd, render_error("protocol", error), nullptr);
      break;
    }
    std::string response;
    try {
      DC_FAILPOINT("serve.request.read");
      response = handle_payload(st, payload);
      DC_FAILPOINT("serve.response.write");
    } catch (const std::bad_alloc&) {
      response = render_error("oom", "allocation failure");
    } catch (const std::exception& e) {
      // Failpoint io/check/timeout actions land here: the request dies with
      // a clean error frame, the connection and server live on.
      response = render_error("io", e.what());
    }
    if (!write_frame(fd, response, &error)) break;
    if (st.stop.load()) break;
  }
  ::close(fd);
}

void executor_loop(ServerState& st) {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(st.mu);
      st.cv.wait(lock, [&] { return !st.queue.empty() || st.draining; });
      if (st.queue.empty()) return;  // draining and nothing left
      fd = st.queue.front();
      st.queue.pop_front();
    }
    handle_connection(st, fd);
  }
}

int make_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    *error = path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int make_tcp_listener(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    *error = "tcp 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int run_server(const ServeOptions& opts) {
  DC_CHECK(!opts.listen_path.empty(), "serve needs --listen=PATH");

  // A client that disappears mid-response must surface as EPIPE on our
  // write, never as a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "detcol serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  ::fcntl(g_signal_pipe[1], F_SETFL, O_NONBLOCK);
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::string error;
  const int unix_fd = make_unix_listener(opts.listen_path, &error);
  if (unix_fd < 0) {
    std::fprintf(stderr, "detcol serve: %s\n", error.c_str());
    return 1;
  }
  int tcp_fd = -1;
  if (opts.tcp_port >= 0) {
    tcp_fd = make_tcp_listener(opts.tcp_port, &error);
    if (tcp_fd < 0) {
      std::fprintf(stderr, "detcol serve: %s\n", error.c_str());
      ::close(unix_fd);
      ::unlink(opts.listen_path.c_str());
      return 1;
    }
  }

  RequestLog log;
  if (!opts.log_path.empty() && !log.open(opts.log_path, &error)) {
    std::fprintf(stderr, "detcol serve: --log: %s\n", error.c_str());
    ::close(unix_fd);
    if (tcp_fd >= 0) ::close(tcp_fd);
    ::unlink(opts.listen_path.c_str());
    return 1;
  }

  const ExecHolder holder = make_exec_holder(opts.threads);
  InstanceStore store(opts.max_instances);
  ResultCache results(opts.result_cache);
  ServerState st;
  st.opts = &opts;
  st.exec = holder.exec;
  st.store = &store;
  st.results = &results;
  st.log = &log;

  std::vector<std::thread> executors;
  const unsigned num_exec = opts.executors == 0 ? 1 : opts.executors;
  executors.reserve(num_exec);
  for (unsigned i = 0; i < num_exec; ++i) {
    executors.emplace_back([&st] { executor_loop(st); });
  }

  if (!opts.quiet) {
    const std::string tcp_note =
        tcp_fd >= 0 ? " and tcp 127.0.0.1:" + std::to_string(opts.tcp_port)
                    : "";
    std::fprintf(stderr,
                 "detcol serve: listening on %s%s (threads=%u executors=%u "
                 "instances=%zu)\n",
                 opts.listen_path.c_str(), tcp_note.c_str(), opts.threads,
                 num_exec, opts.max_instances);
  }

  // Accept loop: poll the listeners plus the signal self-pipe.
  while (!st.stop.load()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {g_signal_pipe[0], POLLIN, 0};
    fds[nfds++] = {unix_fd, POLLIN, 0};
    if (tcp_fd >= 0) fds[nfds++] = {tcp_fd, POLLIN, 0};
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "detcol serve: poll: %s\n", std::strerror(errno));
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // SIGTERM/SIGINT/shutdown op
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      int conn = -1;
      try {
        DC_FAILPOINT("serve.accept");
        conn = ::accept(fds[i].fd, nullptr, nullptr);
      } catch (const std::exception& e) {
        // An injected accept failure drops this one connection attempt; the
        // next poll iteration accepts again.
        log.line(std::string("{\"event\":\"accept_error\",\"message\":\"") +
                 JsonWriter::escape(e.what()) + "\"}");
        continue;
      }
      if (conn < 0) continue;
      std::unique_lock<std::mutex> lock(st.mu);
      if (st.queue.size() >= opts.queue_depth) {
        lock.unlock();
        write_frame(conn,
                    render_error("overloaded", "admission queue is full"),
                    nullptr);
        ::close(conn);
        continue;
      }
      st.queue.push_back(conn);
      lock.unlock();
      st.cv.notify_one();
    }
  }

  // Graceful drain: stop accepting, serve everything already admitted,
  // then write the final log line.
  ::close(unix_fd);
  if (tcp_fd >= 0) ::close(tcp_fd);
  ::unlink(opts.listen_path.c_str());
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.draining = true;
  }
  st.cv.notify_all();
  for (std::thread& t : executors) t.join();
  {
    JsonWriter w;
    w.begin_object();
    w.key("event").value("shutdown");
    w.key("requests").value(st.requests.load());
    w.key("drained").value(true);
    w.end_object();
    log.line(w.str());
  }
  log.close_synced();
  if (!opts.quiet) {
    std::fprintf(stderr, "detcol serve: drained %llu request(s), exiting\n",
                 static_cast<unsigned long long>(st.requests.load()));
  }
  return 0;
}

}  // namespace detcol::serve
