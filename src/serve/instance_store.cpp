#include "serve/instance_store.hpp"

#include <algorithm>
#include <utility>

#include "cli/spec.hpp"
#include "graph/formats.hpp"
#include "util/failpoint.hpp"

namespace detcol::serve {

std::uint64_t fnv1a64_bytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t table_key(std::span<const std::uint64_t> points,
                        unsigned independence) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(independence);
  mix(points.size());
  for (const std::uint64_t p : points) mix(p);
  return h;
}

}  // namespace

std::shared_ptr<const M61PowerTable> PowerTableStore::acquire(
    std::span<const std::uint64_t> points, unsigned independence) {
  const std::uint64_t key = table_key(points, independence);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->table->matches(points,
                                                         independence)) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->table;
    }
  }
  // Build outside the lock: table construction is the expensive part, and
  // two concurrent misses building the same table is only wasted work, never
  // wrong (the tables are byte-identical by construction).
  auto table = std::make_shared<const M61PowerTable>(points, independence);
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost the race (or a genuine hash collision lives at this key): keep
    // the incumbent if it is the right table, else replace it.
    if (it->second->table->matches(points, independence)) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->table;
    }
    bytes_ -= it->second->table->bytes();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, table});
  index_[key] = lru_.begin();
  bytes_ += table->bytes();
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    DC_FAILPOINT("serve.instance.evict");
    const Entry& victim = lru_.back();
    bytes_ -= victim.table->bytes();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return table;
}

PowerTableStore::Counters PowerTableStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.resident_bytes = bytes_;
  c.resident_tables = lru_.size();
  return c;
}

std::shared_ptr<const PaletteSet> ServeInstance::palettes(
    const std::string& palette_spec, std::string* canonical_out) {
  const std::string raw =
      palette_spec.empty() ? "--palette=delta1" : palette_spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto alias = palette_alias_.find(raw);
    if (alias != palette_alias_.end()) {
      if (canonical_out != nullptr) *canonical_out = alias->second;
      return palette_cache_.at(alias->second);
    }
  }
  // Palette builds are deterministic, so a racing duplicate build produces
  // the identical set; the first insert wins and the duplicate is dropped.
  cli::PaletteSource built =
      cli::build_palettes(cli::parse_spec(raw), graph_);
  std::lock_guard<std::mutex> lock(mu_);
  auto cached = palette_cache_.find(built.spec);
  if (cached == palette_cache_.end()) {
    cached = palette_cache_
                 .emplace(built.spec, std::make_shared<const PaletteSet>(
                                          std::move(built.palettes)))
                 .first;
  }
  palette_alias_[raw] = built.spec;
  if (canonical_out != nullptr) *canonical_out = built.spec;
  return cached->second;
}

InstanceStore::Acquired InstanceStore::acquire(
    const std::string& raw_graph_spec, ExecContext exec) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto alias = alias_.find(raw_graph_spec);
  if (alias != alias_.end()) {
    ++hits_;
    touch_locked(alias->second);
    return {by_canonical_.at(alias->second), true};
  }
  // Cold path, still under the lock (see header): build through the exact
  // one-shot code path, then dedupe by content checksum so differently
  // spelled specs of one graph share a single residency slot.
  cli::GraphSource built = cli::build_graph(
      cli::parse_spec(raw_graph_spec), /*allow_algo_seed=*/false,
      GraphFormat::kAuto, exec);
  const auto canon = alias_.find(built.spec);
  if (canon != alias_.end()) {
    ++hits_;
    alias_[raw_graph_spec] = canon->second;
    touch_locked(canon->second);
    return {by_canonical_.at(canon->second), true};
  }
  // Content checksum for spec dedup. The .dcg encoding is canonical, so for
  // a mapped graph the file's own bytes ARE dcg_bytes(graph) — hashing the
  // mapping directly skips re-serializing a graph that may be chosen
  // precisely because it does not fit in RAM as a heap CSR.
  const std::string_view mapped = built.graph.mapped_bytes();
  const std::uint64_t sum = !mapped.empty()
                                ? fnv1a64_bytes(mapped)
                                : fnv1a64_bytes(dcg_bytes(built.graph));
  const auto by_sum = by_sum_.find(sum);
  if (by_sum != by_sum_.end()) {
    ++hits_;
    alias_[raw_graph_spec] = by_sum->second;
    alias_[built.spec] = by_sum->second;
    touch_locked(by_sum->second);
    return {by_canonical_.at(by_sum->second), true};
  }
  ++misses_;
  auto instance = std::make_shared<ServeInstance>(
      built.spec, std::move(built.graph), sum);
  while (lru_.size() >= max_instances_) {
    // Strong exception safety: the failpoint fires before any mutation, so
    // an injected eviction failure leaves the store exactly as it was.
    DC_FAILPOINT("serve.instance.evict");
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto vit = by_canonical_.find(victim);
    by_sum_.erase(vit->second->checksum());
    by_canonical_.erase(vit);
    for (auto it = alias_.begin(); it != alias_.end();) {
      it = it->second == victim ? alias_.erase(it) : std::next(it);
    }
    ++evictions_;
  }
  lru_.push_front(instance->canonical_spec());
  by_canonical_[instance->canonical_spec()] = instance;
  by_sum_[sum] = instance->canonical_spec();
  alias_[raw_graph_spec] = instance->canonical_spec();
  alias_[instance->canonical_spec()] = instance->canonical_spec();
  return {std::move(instance), false};
}

InstanceStore::Counters InstanceStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.resident = lru_.size();
  return c;
}

void InstanceStore::touch_locked(const std::string& canonical) {
  const auto it = std::find(lru_.begin(), lru_.end(), canonical);
  if (it != lru_.end()) lru_.splice(lru_.begin(), lru_, it);
}

}  // namespace detcol::serve
