#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "cli/spec.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace detcol::serve {
namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// read() loop; returns bytes read (< len only at EOF), or -1 on error.
ssize_t read_full(int fd, void* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r =
        ::read(fd, static_cast<char*>(buf) + done, len - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF
    done += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload, std::string* error) {
  unsigned char header[kFrameHeaderBytes];
  const ssize_t got = read_full(fd, header, sizeof(header));
  if (got < 0) {
    if (error != nullptr) *error = errno_string("read");
    return FrameStatus::kError;
  }
  if (got == 0) return FrameStatus::kEof;
  if (static_cast<std::size_t>(got) < sizeof(header)) {
    if (error != nullptr) *error = "torn frame: EOF inside header";
    return FrameStatus::kError;
  }
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    if (error != nullptr) *error = "bad frame magic (expected 'DCS1')";
    return FrameStatus::kError;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[4]) |
                            static_cast<std::uint32_t>(header[5]) << 8 |
                            static_cast<std::uint32_t>(header[6]) << 16 |
                            static_cast<std::uint32_t>(header[7]) << 24;
  if (len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame payload length " + std::to_string(len) +
               " exceeds the protocol limit";
    }
    return FrameStatus::kError;
  }
  payload->resize(len);
  if (len > 0) {
    const ssize_t body = read_full(fd, payload->data(), len);
    if (body < 0) {
      if (error != nullptr) *error = errno_string("read");
      return FrameStatus::kError;
    }
    if (static_cast<std::size_t>(body) < len) {
      if (error != nullptr) *error = "torn frame: EOF inside payload";
      return FrameStatus::kError;
    }
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, const std::string& payload, std::string* error) {
  if (payload.size() > kMaxFramePayload) {
    if (error != nullptr) *error = "frame payload exceeds the protocol limit";
    return false;
  }
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  buf.append(reinterpret_cast<const char*>(kFrameMagic), 4);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (unsigned i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  buf += payload;
  std::size_t done = 0;
  while (done < buf.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill the
    // process. ENOTSOCK (socketpair tests use sockets, but keep pipes
    // working) falls back to plain write; run_server additionally ignores
    // SIGPIPE process-wide.
    ssize_t w = ::send(fd, buf.data() + done, buf.size() - done,
                       MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) {
      w = ::write(fd, buf.data() + done, buf.size() - done);
    }
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errno_string("write");
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

Request parse_request(const std::string& payload) {
  JsonValue doc;
  try {
    doc = parse_json(payload, "request");
  } catch (const CheckError& e) {
    throw cli::UsageError(e.what());
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    throw cli::UsageError("request payload must be a JSON object");
  }
  Request req;
  const auto get_string = [&](const char* key, std::string* dst) {
    if (const JsonValue* v = doc.find(key)) {
      if (v->kind != JsonValue::Kind::kString) {
        throw cli::UsageError(std::string("request field \"") + key +
                              "\" must be a string");
      }
      *dst = v->string_value;
    }
  };
  const auto get_bool = [&](const char* key, bool* dst) {
    if (const JsonValue* v = doc.find(key)) {
      if (v->kind != JsonValue::Kind::kBool) {
        throw cli::UsageError(std::string("request field \"") + key +
                              "\" must be a boolean");
      }
      *dst = v->bool_value;
    }
  };
  const auto get_number = [&](const char* key, double* dst) {
    if (const JsonValue* v = doc.find(key)) {
      if (v->kind != JsonValue::Kind::kNumber) {
        throw cli::UsageError(std::string("request field \"") + key +
                              "\" must be a number");
      }
      *dst = v->number;
    }
  };
  get_string("op", &req.op);
  if (req.op.empty()) throw cli::UsageError("request has no \"op\" field");
  get_string("graph", &req.graph_spec);
  get_string("palette", &req.palette_spec);
  get_string("algo", &req.algo);
  get_string("coloring", &req.coloring_text);
  get_bool("stats", &req.want_stats);
  get_bool("proper_only", &req.proper_only);
  double seed = static_cast<double>(req.seed);
  get_number("seed", &seed);
  if (seed < 0) throw cli::UsageError("request \"seed\" must be >= 0");
  req.seed = static_cast<std::uint64_t>(seed);
  double threads = req.threads;
  get_number("threads", &threads);
  if (threads < 1 || threads > cli::kMaxThreads) {
    throw cli::UsageError("request \"threads\" must be in [1, " +
                          std::to_string(cli::kMaxThreads) + "]");
  }
  req.threads = static_cast<unsigned>(threads);
  get_number("timeout_seconds", &req.timeout_seconds);
  if (req.timeout_seconds < 0) {
    throw cli::UsageError("request \"timeout_seconds\" must be >= 0");
  }
  return req;
}

std::string render_request(const Request& req) {
  JsonWriter w;
  w.begin_object();
  w.key("op").value(req.op);
  if (!req.graph_spec.empty()) w.key("graph").value(req.graph_spec);
  if (!req.palette_spec.empty()) w.key("palette").value(req.palette_spec);
  if (req.algo != "reduce") w.key("algo").value(req.algo);
  if (req.seed != 1) w.key("seed").value(req.seed);
  if (req.threads != 1) w.key("threads").value(req.threads);
  if (req.want_stats) w.key("stats").value(true);
  if (req.timeout_seconds > 0) {
    w.key("timeout_seconds").value(req.timeout_seconds);
  }
  if (!req.coloring_text.empty()) w.key("coloring").value(req.coloring_text);
  if (req.proper_only) w.key("proper_only").value(true);
  w.end_object();
  return w.str();
}

std::string render_error(const std::string& error_class,
                         const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.key("ok").value(false);
  w.key("error_class").value(error_class);
  w.key("message").value(message);
  w.end_object();
  return w.str();
}

}  // namespace detcol::serve
