// The server's LRU-bounded instance cache — what makes warm requests cheap.
//
// A cold `detcol color` pays process startup, graph construction (or file
// parse), palette construction, and every per-engine M61 power table before
// a single seed is evaluated. The serving layer amortizes all of it:
//
//   * ServeInstance keeps one parsed Graph resident, plus a per-instance
//     cache of built PaletteSets (keyed by canonical palette spec) and a
//     PowerTableStore that hands the pipeline engines shared power tables
//     across requests.
//   * InstanceStore maps request graph specs to instances. Raw specs alias:
//     "--gen=gnp --n=100 --p=0.1 --seed=1" and a reordered/defaulted
//     spelling of the same instance resolve — via the canonical spec string
//     build_graph produces, then via the fnv1a64 checksum of the graph's
//     .dcg serialization — to ONE resident instance.
//   * Residency is LRU-bounded at `max_instances` graphs; eviction drops
//     the instance's palettes and tables with it. In-flight requests hold
//     shared_ptr handles, so evicting an instance under a running request
//     is safe — the memory goes when the last request finishes.
//
// Sharing never changes results: graphs/palettes are immutable after
// construction, and power tables are pure functions of their inputs
// (hashing/batch_eval.hpp). The store only changes WHERE the bytes come
// from, never what they are.
//
// Thread safety: every public entry point locks internally (this is the
// serving layer — the core-pipeline no-mutex rule does not apply here).
// Instance builds run under the store lock: cold misses serialize, which
// keeps "two racing requests for the same new graph" building it once.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"
#include "hashing/batch_eval.hpp"

namespace detcol::serve {

/// Thread-safe PowerTableProvider backed by a byte-bounded LRU. Keyed by a
/// hash of (independence, points); a hash collision is harmless: the cached
/// table is verified with M61PowerTable::matches() before reuse, and a
/// mismatch falls back to building a fresh table for this request.
class PowerTableStore : public PowerTableProvider {
 public:
  explicit PowerTableStore(std::size_t max_bytes = std::size_t{256} << 20)
      : max_bytes_(max_bytes) {}

  std::shared_ptr<const M61PowerTable> acquire(
      std::span<const std::uint64_t> points, unsigned independence) override;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t resident_tables = 0;
  };
  Counters counters() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const M61PowerTable> table;
  };

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// One resident graph with everything requests on it can share.
class ServeInstance {
 public:
  ServeInstance(std::string canonical_spec, Graph graph,
                std::uint64_t checksum)
      : canonical_spec_(std::move(canonical_spec)),
        graph_(std::move(graph)),
        checksum_(checksum) {}

  const std::string& canonical_spec() const { return canonical_spec_; }
  const Graph& graph() const { return graph_; }
  std::uint64_t checksum() const { return checksum_; }
  PowerTableStore& tables() { return tables_; }

  /// The PaletteSet for `palette_spec` (raw request spelling), built through
  /// cli::build_palettes on first use and cached under its canonical spec.
  /// Returns the canonical spec in *canonical_out. Throws cli::UsageError on
  /// a malformed spec.
  std::shared_ptr<const PaletteSet> palettes(const std::string& palette_spec,
                                             std::string* canonical_out);

 private:
  const std::string canonical_spec_;
  const Graph graph_;
  const std::uint64_t checksum_;
  PowerTableStore tables_;

  std::mutex mu_;
  std::map<std::string, std::string> palette_alias_;  // raw -> canonical
  std::map<std::string, std::shared_ptr<const PaletteSet>> palette_cache_;
};

/// FNV-1a 64-bit over arbitrary bytes (the .dcg container uses the same
/// function for its trailer checksum).
std::uint64_t fnv1a64_bytes(std::string_view bytes);

class InstanceStore {
 public:
  explicit InstanceStore(std::size_t max_instances)
      : max_instances_(max_instances == 0 ? 1 : max_instances) {}

  struct Acquired {
    std::shared_ptr<ServeInstance> instance;
    bool hit = false;  // served from residency (alias or checksum match)
  };

  /// Resolve `raw_graph_spec` to a resident instance, building (and possibly
  /// evicting) on miss. `exec` parallelizes a cold --input file parse.
  /// Throws cli::UsageError on a malformed spec and CheckError on unreadable
  /// input files.
  Acquired acquire(const std::string& raw_graph_spec, ExecContext exec);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident = 0;
  };
  Counters counters() const;

 private:
  void touch_locked(const std::string& canonical);

  const std::size_t max_instances_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // canonical specs, front = most recent
  std::map<std::string, std::shared_ptr<ServeInstance>> by_canonical_;
  std::map<std::string, std::string> alias_;     // raw spec -> canonical
  std::map<std::uint64_t, std::string> by_sum_;  // checksum -> canonical
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace detcol::serve
