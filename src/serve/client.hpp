// Thin client for `detcol serve`: connect, one framed request, one framed
// response. The CLI subcommands use it to route transparently when
// --server=ENDPOINT is given; the suite runner uses it as a load generator.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace detcol::serve {

/// "PATH" (Unix-domain socket) or "tcp:HOST:PORT".
struct Endpoint {
  bool tcp = false;
  std::string path_or_host;
  int port = 0;
};

/// Throws cli::UsageError on a malformed endpoint string.
Endpoint parse_endpoint(const std::string& spec);

class ServeClient {
 public:
  /// Connects immediately; throws CheckError when the server is not
  /// reachable.
  explicit ServeClient(const std::string& endpoint);
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request, wait for the response. Returns the parsed response
  /// document; *raw_out (optional) receives the exact payload bytes. Throws
  /// CheckError on a broken connection or torn frame.
  JsonValue roundtrip(const Request& req, std::string* raw_out = nullptr);

 private:
  int fd_ = -1;
};

}  // namespace detcol::serve
