#include "cli/pipeline.hpp"

#include <utility>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "baselines/randomized_reduce.hpp"
#include "cli/spec.hpp"
#include "core/color_reduce.hpp"
#include "core/stats_export.hpp"
#include "lowspace/low_space.hpp"
#include "util/timer.hpp"

namespace detcol::cli {

bool pipeline_known(const std::string& algo) {
  return algo == "reduce" || algo == "randreduce" || algo == "lowspace" ||
         algo == "mis" || algo == "trial" || algo == "greedy";
}

bool pipeline_threaded(const std::string& algo) {
  return pipeline_known(algo) && algo != "greedy";
}

bool pipeline_has_stats(const std::string& algo) {
  return algo == "reduce" || algo == "randreduce" || algo == "lowspace" ||
         algo == "mis";
}

PipelineRun run_pipeline(const std::string& algo, const Graph& g,
                         const PaletteSet& palettes, ExecContext exec,
                         std::uint64_t seed, bool want_stats,
                         PowerTableProvider* tables) {
  PipelineRun out;
  out.coloring = Coloring(g.num_nodes());
  WallTimer timer;
  if (algo == "reduce" || algo == "randreduce") {
    ColorReduceConfig cfg;
    cfg.exec = exec;
    cfg.part.tables = tables;
    ColorReduceResult r = algo == "reduce"
                              ? color_reduce(g, palettes, cfg)
                              : randomized_reduce(g, palettes, seed, cfg);
    out.rounds = r.ledger.total_rounds();
    out.mpc_json = mpc_costs_to_json(r.mpc);
    if (want_stats) out.stats_json = result_to_json(r);
    out.coloring = std::move(r.coloring);
  } else if (algo == "lowspace") {
    LowSpaceParams params;
    params.exec = exec;
    params.tables = tables;
    LowSpaceResult r = low_space_color(g, palettes, params);
    out.rounds = r.ledger.total_rounds();
    out.mpc_json = mpc_costs_to_json(r.mpc);
    if (want_stats) out.stats_json = lowspace_result_to_json(r, timer.seconds());
    out.coloring = std::move(r.coloring);
  } else if (algo == "mis") {
    MisParams params;
    params.exec = exec;
    params.tables = tables;
    MisBaselineResult r = mis_baseline_color(g, palettes, params);
    out.rounds = r.rounds;
    out.mpc_json = mpc_costs_to_json(r.mpc);
    if (want_stats) out.stats_json = mis_result_to_json(r, timer.seconds());
    out.coloring = std::move(r.coloring);
  } else if (algo == "trial") {
    RandomTrialResult r =
        random_trial_color(g, palettes, seed, kRandomTrialMaxRounds, exec);
    out.rounds = r.model_rounds;
    out.coloring = std::move(r.coloring);
  } else if (algo == "greedy") {
    GreedyResult r = greedy_baseline(g, palettes);
    out.coloring = std::move(r.coloring);
  } else {
    usage_error("unknown --algo '" + algo + "'");
  }
  out.wall_seconds = timer.seconds();
  return out;
}

}  // namespace detcol::cli
