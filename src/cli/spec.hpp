// Canonical instance specs shared by the one-shot CLI and the serving layer.
//
// A detcol instance is described by two flag strings — a graph spec
// ("--gen=gnp --n=1000 ..." or "--input=path") and a palette spec
// ("--palette=delta1" ...). They are the format recorded in coloring-file
// headers, the keys of the server's instance cache, and the only way any
// entry point builds a Graph/PaletteSet — so one-shot runs, `verify`
// re-builds and served requests construct bit-identical instances from the
// same bytes. This header owns that spec grammar: strict flag parsing
// (reject typos and malformed numbers with exit 2 instead of silently
// running a different instance), the generator/palette dispatch plus the
// canonical spec string each produces, and the coloring-file format itself.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/palette.hpp"
#include "graph/scalable_gen.hpp"
#include "util/cli.hpp"

namespace detcol::cli {

/// Bad invocation (exit 2) — distinct from CheckError, which is bad data /
/// failed verification (exit 1). cmd_verify converts UsageError raised while
/// re-parsing a coloring file's recorded spec into a data error (a corrupt
/// header is a file problem, not a command-line problem); the server maps it
/// to an "invalid request" error frame.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void usage_error(const std::string& msg);

// ---------------------------------------------------------------------------
// Strict flag handling: ArgParser is deliberately permissive for benches and
// examples, but a user-facing entry point must reject typos and malformed
// numbers rather than silently running a different instance.
// ---------------------------------------------------------------------------

/// `what` names the value's source in the error ("flag --n", "DETCOL_THREADS").
std::uint64_t parse_uint_strict(const std::string& s, const std::string& what);

std::uint64_t get_uint_strict(const ArgParser& args, const std::string& name,
                              std::uint64_t fallback);

NodeId get_nodeid_strict(const ArgParser& args, const std::string& name,
                         NodeId fallback);

/// For flags whose value is a path or name: a bare `--out` would otherwise
/// read as the string "true" and e.g. write output to a file named "true".
std::string get_value_flag(const ArgParser& args, const std::string& name,
                           const std::string& fallback);

double get_double_strict(const ArgParser& args, const std::string& name,
                         double fallback);

bool get_bool_strict(const ArgParser& args, const std::string& name);

inline constexpr unsigned kMaxThreads = 256;

/// Thread count: --threads flag first, DETCOL_THREADS env second, 1
/// otherwise. Both sources are validated strictly against [1, kMaxThreads].
unsigned resolve_threads(const ArgParser& args);

inline constexpr std::initializer_list<const char*> kGraphFlags = {
    "input", "gen",  "n", "m", "d",      "p", "beta", "avgdeg", "rows",
    "cols",  "a",    "b", "radius", "k", "seed", "cache", "mmap"};
inline constexpr std::initializer_list<const char*> kPaletteFlags = {
    "palette", "color-space", "palette-seed"};

/// Which graph flags each generator actually consumes. A flag from the graph
/// family that the chosen source ignores is a misdirected invocation (the
/// user probably meant a different --gen), not something to drop silently.
void check_graph_flag_applicability(const ArgParser& args,
                                    const std::string& kind,
                                    std::initializer_list<const char*> used,
                                    bool allow_algo_seed);

std::vector<const char*> combine(std::initializer_list<const char*> a,
                                 std::initializer_list<const char*> b = {},
                                 std::initializer_list<const char*> c = {});

void reject_unknown_flags(const ArgParser& args,
                          const std::vector<const char*>& allowed);

void reject_positionals(const ArgParser& args);

/// Shortest round-trippable decimal rendering ("%.17g").
std::string fmt_double(double v);

// ---------------------------------------------------------------------------
// Graph construction + the canonical flag spec recorded in coloring headers
// and used as the server's instance-cache key.
// ---------------------------------------------------------------------------

struct GraphSource {
  Graph graph;
  std::string spec;  // "--gen=... --n=..." or "--input=path[ --mmap=1]"
};

GraphSource build_graph(const ArgParser& args, bool allow_algo_seed,
                        GraphFormat input_format = GraphFormat::kAuto,
                        ExecContext exec = {});

struct ScalableSource {
  ScalableGenSpec gen;
  std::string spec;  // canonical "--gen=... --n=... --seed=..." string
};

/// Parse + strictly validate the flags of one scalable generator family
/// (graph/scalable_gen.hpp). Out-of-range parameters are usage errors, like
/// every in-RAM generator. `allow_cache` admits --cache in the family's
/// used-flag set (build_graph realizes specs through a cache file) or
/// rejects it (`detcol gen`, where --out is already the .dcg artifact).
ScalableSource parse_scalable_spec(const ArgParser& args,
                                   ScalableFamily family, bool allow_algo_seed,
                                   bool allow_cache);

struct PaletteSource {
  PaletteSet palettes;
  std::string spec;
};

PaletteSource build_palettes(const ArgParser& args, const Graph& g);

/// Re-parse a recorded "--key=value ..." spec line through ArgParser.
ArgParser parse_spec(const std::string& spec);

// ---------------------------------------------------------------------------
// The self-describing coloring-file format (header + one color per line).
// ---------------------------------------------------------------------------

void write_coloring(std::ostream& os, const Coloring& coloring,
                    const std::string& graph_spec,
                    const std::string& palette_spec);

struct ColoringFile {
  Coloring coloring{0};
  std::string graph_spec;    // empty when absent
  std::string palette_spec;  // empty when absent
};

ColoringFile read_coloring(std::istream& is, const std::string& what);

ColoringFile read_coloring_file(const std::string& path);

std::size_t count_distinct_colors(const Coloring& coloring);

}  // namespace detcol::cli
